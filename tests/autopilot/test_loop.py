"""The closed loop: convergence, rollback + backoff, determinism, tracing."""

import json

import pytest

from repro.autopilot.loop import (
    INITIAL_THRESHOLD,
    AutopilotError,
    run_autopilot,
)
from repro.service.loop import ServiceError, resume
from repro.service.store import ResultsStore
from repro.trace.tracer import TRACER

ARGS = dict(hosts=8, seed=42, quick=True)


def open_store(tmp_path, name="ap.sqlite"):
    return ResultsStore(str(tmp_path / name))


def loop_json(tmp_path, name, **kwargs):
    with open_store(tmp_path, name) as store:
        result = run_autopilot(store, **kwargs)
    return json.dumps(result, indent=2, sort_keys=True)


def test_clean_loop_converges(tmp_path):
    with open_store(tmp_path) as store:
        result = run_autopilot(store, iterations=5, **ARGS)
        rows = store.proposal_rows()
    final = result["final"]
    assert final["converged"]
    assert final["rolled_back"] == 0
    assert final["deployed"] >= 2
    assert final["threshold"] < INITIAL_THRESHOLD
    # Monotone tightening: each deployed proposal shrinks the threshold.
    thresholds = [INITIAL_THRESHOLD] + [
        e["proposal"]["provenance"]["threshold"]
        for e in result["iterations"] if e["action"] == "deployed"]
    assert all(b < a for a, b in zip(thresholds, thresholds[1:]))
    # Every deployed proposal is persisted with its deploy run.
    deployed_rows = [r for r in rows if r["verdict"] == "deployed"]
    assert len(deployed_rows) == final["deployed"]
    assert all(r["deploy_run"] is not None for r in deployed_rows)


def test_versions_are_never_reused(tmp_path):
    with open_store(tmp_path) as store:
        run_autopilot(store, iterations=5, **ARGS)
        versions = [r["version"] for r in store.proposal_rows()
                    if r["kind"] == "tighten"]
    assert versions == sorted(set(versions))


def test_corrupt_canary_is_rolled_back_and_backs_off(tmp_path):
    with open_store(tmp_path) as store:
        result = run_autopilot(store, iterations=3, corrupt_at=0, **ARGS)
        rows = store.proposal_rows()
    entry = result["iterations"][0]
    assert entry["action"] == "rolled_back"
    assert entry["rolled_back_at_stage"] == "canary"
    assert any("inconclusive" in reason for reason in entry["gate_reasons"])
    # The deployed threshold did not move.
    assert entry["threshold_after"] == INITIAL_THRESHOLD
    # Backoff: margin widened and the next iteration only observes.
    assert entry["margin_after"] > result["scenario"]["margin"]
    assert result["iterations"][1]["action"] == "cooldown"
    # The rejected proposal's exact spec is never re-proposed.
    specs = [r["spec"] for r in rows if r["kind"] == "tighten"]
    rolled = [r["spec"] for r in rows if r["verdict"] == "rolled_back"]
    assert len(rolled) == 1
    assert specs.count(rolled[0]) == 1
    # Verdict persisted with the deploy run that tripped.
    row = [r for r in rows if r["verdict"] == "rolled_back"][0]
    assert row["deploy_run"] == entry["deploy_run"]


def test_observe_and_deploy_runs_land_in_the_store(tmp_path):
    with open_store(tmp_path) as store:
        run_autopilot(store, iterations=1, **ARGS)
        kinds = [run["kind"] for run in store.runs()]
        assert kinds == ["autopilot.observe", "autopilot.deploy"]
        assert all(run["status"] == "completed" for run in store.runs())


def test_autopilot_runs_do_not_resume(tmp_path):
    # A crashed autopilot run (still "running") must not resume through
    # the service path: autopilot iterations replay as a whole.
    with open_store(tmp_path) as store:
        run_id = store.begin_run("autopilot.observe", {}, 10 ** 9, 2,
                                 total_rounds=2)
        with pytest.raises(ServiceError, match="rerun `grctl autopilot`"):
            resume(store, run_id=run_id)


def test_deploy_false_records_without_deploying(tmp_path):
    with open_store(tmp_path) as store:
        result = run_autopilot(store, iterations=1, deploy=False, **ARGS)
        rows = store.proposal_rows()
        kinds = [run["kind"] for run in store.runs()]
    assert result["iterations"][0]["action"] == "proposed"
    assert result["final"]["deployed"] == 0
    assert [r["verdict"] for r in rows if r["kind"] == "tighten"] == [
        "proposed"]
    assert kinds == ["autopilot.observe"]  # no deploy run


def test_report_is_byte_identical_across_reruns_and_jobs(tmp_path):
    a = loop_json(tmp_path, "a.sqlite", iterations=3, **ARGS)
    b = loop_json(tmp_path, "b.sqlite", iterations=3, **ARGS)
    c = loop_json(tmp_path, "c.sqlite", iterations=3, jobs=4, **ARGS)
    assert a == b
    assert a == c


def test_corrupt_report_is_byte_identical_across_jobs(tmp_path):
    a = loop_json(tmp_path, "a.sqlite", iterations=2, corrupt_at=0, **ARGS)
    b = loop_json(tmp_path, "b.sqlite", iterations=2, corrupt_at=0, jobs=3,
                  **ARGS)
    assert a == b


def test_synthesis_proposals_recorded_not_deployed(tmp_path):
    with open_store(tmp_path) as store:
        result = run_autopilot(store, iterations=1, deploy=False, **ARGS)
        rows = [r for r in store.proposal_rows()
                if r["kind"] == "synthesize"]
    assert len(rows) == len(result["synthesis"]) == 2
    assert all(r["verdict"] == "recorded" for r in rows)
    assert all(r["deploy_run"] is None for r in rows)


def test_synthesize_false_skips_synthesis(tmp_path):
    with open_store(tmp_path) as store:
        result = run_autopilot(store, iterations=1, deploy=False,
                               synthesize=False, **ARGS)
        assert store.proposal_rows()[0]["kind"] == "tighten"
    assert result["synthesis"] == []


def test_iterations_must_be_positive(tmp_path):
    with open_store(tmp_path) as store:
        with pytest.raises(AutopilotError, match="iterations"):
            run_autopilot(store, iterations=0, **ARGS)


def test_loop_emits_autopilot_trace_events(tmp_path):
    TRACER.start(categories=("autopilot",))
    try:
        with open_store(tmp_path) as store:
            run_autopilot(store, iterations=1, **ARGS)
        names = [e.name for e in TRACER.events(category="autopilot")]
    finally:
        TRACER.stop()
    assert "observe.start" in names
    assert "propose" in names
    assert "deploy.start" in names
    assert "verdict.deployed" in names

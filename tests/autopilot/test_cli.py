"""grctl autopilot: exit codes, --json byte-identity, query integration."""

import io
import json

from repro.tools.grctl import main

ARGS = ["--hosts", "8", "--seed", "42", "--quick"]


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_loop_clean_exits_zero_with_summary(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    code, text = run(["autopilot", "loop", "--store", store] + ARGS)
    assert code == 0
    assert "converged" in text
    assert "deployed" in text


def test_apply_corrupt_canary_exits_one(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    code, text = run(["autopilot", "apply", "--store", store,
                      "--corrupt-at", "0"] + ARGS)
    assert code == 1
    assert "rolled_back" in text and "at canary" in text


def test_json_report_is_byte_identical_across_reruns_and_jobs(tmp_path):
    runs = []
    for name, jobs in (("a", "1"), ("b", "1"), ("c", "4")):
        store = str(tmp_path / "{}.sqlite".format(name))
        code, text = run(["autopilot", "loop", "--store", store,
                          "--jobs", jobs, "--json"] + ARGS)
        assert code == 0
        runs.append(text)
    assert runs[0] == runs[1]
    assert runs[0] == runs[2]


def test_out_file_matches_json_stdout(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    path = str(tmp_path / "report.json")
    code, stdout = run(["autopilot", "apply", "--store", store, "--json",
                        "--out", path] + ARGS)
    assert code == 0
    with open(path) as handle:
        assert handle.read() == stdout
    # Human rendering still says where the report went.
    store2 = str(tmp_path / "ap2.sqlite")
    code, stdout = run(["autopilot", "apply", "--store", store2,
                        "--out", path] + ARGS)
    assert code == 0
    assert "wrote report to {}".format(path) in stdout


def test_propose_records_without_deploying(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    code, text = run(["autopilot", "propose", "--store", store,
                      "--json"] + ARGS)
    assert code == 0
    result = json.loads(text)
    assert result["iterations"][0]["action"] == "proposed"
    assert result["final"]["deployed"] == 0


def test_query_autopilot_tells_what_changed_and_why(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    run(["autopilot", "loop", "--store", store] + ARGS)
    code, text = run(["query", "autopilot", "--store", store])
    assert code == 0
    changes = json.loads(text)["proposals"]
    deployed = [c for c in changes if c["verdict"] == "deployed"]
    assert deployed
    assert all(c["provenance"]["kind"] == "tighten" for c in deployed)
    assert all(c["deploy"]["status"] == "completed" for c in deployed)


def test_query_autopilot_shows_rollback_reasons(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    run(["autopilot", "apply", "--store", store, "--corrupt-at", "0"] + ARGS)
    code, text = run(["query", "autopilot", "--store", store])
    assert code == 0
    changes = json.loads(text)["proposals"]
    (rolled,) = [c for c in changes if c["verdict"] == "rolled_back"]
    assert rolled["deploy"]["rolled_back_at_stage"] == "canary"
    assert any("inconclusive" in reason
               for reason in rolled["deploy"]["gate_trip_reasons"])


def test_flag_validation_is_usage_error(tmp_path):
    store = str(tmp_path / "ap.sqlite")
    for argv in (
        ["autopilot", "loop", "--store", store, "--hosts", "0"],
        ["autopilot", "loop", "--store", store, "--iterations", "0"],
        ["autopilot", "loop", "--store", store, "--quantile", "1.5"],
        ["autopilot", "loop", "--store", store, "--margin", "0"],
        ["autopilot", "loop", "--store", store, "--corrupt-at", "-1"],
        ["autopilot", "loop", "--store", store, "--stages", "bogus"],
        ["autopilot", "loop", "--store", store,
         "--out", str(tmp_path / "no" / "dir" / "x.json")],
    ):
        code, _ = run(argv)
        assert code == 2, argv

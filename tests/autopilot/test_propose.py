"""Proposal mining: quantiles, envelope clamps, provenance, synthesis."""

import pytest

from repro.autopilot.propose import (
    Proposal,
    build_tighten_spec,
    exact_quantile,
    mine_false_submit_samples,
    observed_band,
    propose_synthesis,
    propose_tightening,
    storage_policy_manifest,
)
from repro.core.compiler import GuardrailCompiler
from repro.core.synthesis import SYNTHESIS_SOURCES
from repro.fleet.aggregate import HostDigest
from repro.service.store import ResultsStore


# -- exact_quantile ----------------------------------------------------------


def test_exact_quantile_interpolates():
    samples = [0.0, 1.0, 2.0, 3.0]
    assert exact_quantile(samples, 0.0) == 0.0
    assert exact_quantile(samples, 1.0) == 3.0
    assert exact_quantile(samples, 0.5) == pytest.approx(1.5)
    assert exact_quantile([5.0], 0.99) == 5.0


def test_exact_quantile_is_order_independent():
    assert exact_quantile([3.0, 0.0, 2.0, 1.0], 0.25) == exact_quantile(
        [0.0, 1.0, 2.0, 3.0], 0.25)


def test_observed_band_summarizes_evidence():
    band = observed_band([0.1, 0.2, 0.3], 1.0)
    assert band == {"samples": 3, "quantile": 1.0, "quantile_value": 0.3,
                    "observed_min": 0.1, "observed_max": 0.3}


def test_exact_quantile_rejects_bad_input():
    with pytest.raises(ValueError, match="no samples"):
        exact_quantile([], 0.5)
    with pytest.raises(ValueError, match="quantile"):
        exact_quantile([1.0], 1.5)


# -- mining ------------------------------------------------------------------


def make_digest(host_id, round_index, version, submits, false_submits):
    digest = HostDigest(host_id, round_index, (round_index + 1) * 10 ** 9,
                        version)
    for i in range(submits):
        digest.observe_io(i * 10 ** 6, 100.0, i < false_submits, True)
    return digest


def test_mining_filters_by_version_and_skips_empty(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("autopilot.observe", {}, 10 ** 9, 3)
        store.commit_round(run_id, 0, 10 ** 9, [
            make_digest(0, 0, 1, 10, 1),   # 0.1, mined
            make_digest(1, 0, 2, 10, 5),   # wrong version, skipped
            make_digest(2, 0, 1, 0, 0),    # no submits, skipped
        ])
        samples = mine_false_submit_samples(store, [run_id], version=1)
        assert samples == [0.1]
        # Unfiltered mining sees both non-empty rows.
        assert mine_false_submit_samples(store, [run_id]) == [0.1, 0.5]


def test_mining_order_is_run_round_host(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_a = store.begin_run("autopilot.observe", {}, 10 ** 9, 2)
        store.commit_round(run_a, 0, 10 ** 9, [
            make_digest(0, 0, 1, 10, 1), make_digest(1, 0, 1, 10, 2)])
        store.commit_round(run_a, 1, 2 * 10 ** 9, [
            make_digest(0, 1, 1, 10, 3), make_digest(1, 1, 1, 10, 4)])
        run_b = store.begin_run("autopilot.observe", {}, 10 ** 9, 1)
        store.commit_round(run_b, 0, 10 ** 9, [make_digest(0, 0, 1, 10, 5)])
        # Run ids are sorted even when passed out of order.
        samples = mine_false_submit_samples(store, [run_b, run_a])
        assert samples == [0.1, 0.2, 0.3, 0.4, 0.5]


# -- tightening proposals ----------------------------------------------------


def test_proposal_tracks_quantile_times_margin():
    samples = [0.1] * 100
    proposal = propose_tightening(samples, 0.5, 2, quantile=0.99,
                                  margin=1.5, floor=0.05, max_step=1.0)
    assert proposal.provenance["threshold"] == pytest.approx(0.15)
    assert proposal.version == 2
    assert proposal.kind == "tighten"
    assert "0.15" in proposal.spec
    band = proposal.provenance["band"]
    assert band["samples"] == 100
    assert band["quantile_value"] == pytest.approx(0.1)
    assert proposal.provenance["prior_threshold"] == 0.5


def test_max_step_caps_the_shrink():
    proposal = propose_tightening([0.01] * 50, 0.5, 2, margin=1.5,
                                  floor=0.0, max_step=0.5)
    assert proposal.provenance["threshold"] == pytest.approx(0.25)


def test_floor_is_respected():
    proposal = propose_tightening([0.001] * 50, 0.5, 2, margin=1.5,
                                  floor=0.2, max_step=1.0)
    assert proposal.provenance["threshold"] == pytest.approx(0.2)


def test_converged_and_empty_propose_nothing():
    # Candidate at/above the prior threshold: nothing to propose.
    assert propose_tightening([0.4] * 50, 0.5, 2, margin=1.5) is None
    assert propose_tightening([], 0.5, 2) is None


def test_threshold_is_rounded_to_two_significant_figures():
    proposal = propose_tightening([0.123] * 50, 0.5, 2, margin=1.5,
                                  floor=0.0, max_step=1.0)
    # 0.123 * 1.5 = 0.1845 -> 0.18
    assert proposal.provenance["threshold"] == pytest.approx(0.18)


def test_proposed_spec_compiles():
    proposal = propose_tightening([0.1] * 50, 0.5, 3, margin=1.5)
    compiler = GuardrailCompiler()
    compiled = compiler.compile(proposal.spec)
    assert compiled


def test_guardrail_version_carries_provenance():
    proposal = propose_tightening([0.1] * 50, 0.5, 2)
    version = proposal.guardrail_version()
    assert version.version == 2
    assert version.provenance["kind"] == "tighten"
    data = version.to_dict()
    assert data["provenance"]["prior_threshold"] == 0.5
    # Hand-written versions still serialize without the key.
    from repro.fleet.scenario import fleet_versions
    assert "provenance" not in fleet_versions()[0].to_dict()


def test_build_tighten_spec_formats_threshold_plainly():
    assert "<= 0.25" in build_tighten_spec(0.25, 2)
    assert "v7" in build_tighten_spec(0.2, 7)


# -- synthesis proposals -----------------------------------------------------


def test_synthesis_proposals_from_storage_manifest():
    proposals = propose_synthesis(storage_policy_manifest())
    by_property = {p.provenance["property"]: p for p in proposals}
    # The storage manifest declares a reward metric (P4); P5 is always on.
    assert set(by_property) == {"P4", "P5"}
    for proposal in proposals:
        assert proposal.kind == "synthesize"
        assert proposal.guardrail.startswith("storage-")
        fields = set(proposal.provenance["manifest"])
        assert fields == set(SYNTHESIS_SOURCES[
            proposal.provenance["property"]])
        GuardrailCompiler().compile(proposal.spec)


def test_proposal_to_dict_round_trip_shape():
    proposal = Proposal("tighten", "g", 4, "spec", {"a": 1})
    assert proposal.to_dict() == {
        "kind": "tighten", "guardrail": "g", "version": 4,
        "spec": "spec", "provenance": {"a": 1}}

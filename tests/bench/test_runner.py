"""Runner behavior: discovery, sharding determinism, and failure policy."""

import json

import pytest

from repro.bench.results import deterministic_view, make_document
from repro.bench.runner import (
    DiscoveryError,
    discover,
    run_scenarios,
    select,
)
from tests.bench.conftest import write_bench_dir


def test_discover_orders_longest_first(bench_dir):
    specs = discover(bench_dir)
    assert [s.id for s in specs] == ["alpha_slowtier", "alpha_mix", "beta_sum"]
    assert [s.cost for s in specs] == [5.0, 2.0, 1.0]
    assert specs[0].module == "bench_alpha"
    assert specs[0].seed == 8 and not specs[0].quick


def test_discover_rejects_duplicate_ids(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_dupe_one.py": """
            def run(report=None):
                return {}
            def scenarios():
                return [("same_id", run)]
        """,
        "bench_dupe_two.py": """
            def run(report=None):
                return {}
            def scenarios():
                return [("same_id", run)]
        """,
    })
    with pytest.raises(DiscoveryError, match="duplicate scenario id"):
        discover(root)


def test_discover_rejects_module_without_scenarios(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_nofn.py": "X = 1\n",
    })
    with pytest.raises(DiscoveryError, match="does not define scenarios"):
        discover(root)


def test_discover_missing_dir_and_empty_dir(tmp_path):
    with pytest.raises(DiscoveryError, match="does not exist"):
        discover(tmp_path / "nope")
    (tmp_path / "empty").mkdir()
    with pytest.raises(DiscoveryError, match="no bench_"):
        discover(tmp_path / "empty")


def test_select_tier_and_filter(bench_dir):
    specs = discover(bench_dir)
    assert {s.id for s in select(specs, quick=True)} == {
        "alpha_mix", "beta_sum"}
    assert {s.id for s in select(specs, filter_expr="alpha")} == {
        "alpha_mix", "alpha_slowtier"}
    # filter matches module names too
    assert {s.id for s in select(specs, filter_expr="bench_beta")} == {
        "beta_sum"}
    assert select(specs, filter_expr="nosuchthing") == []


def test_jobs_1_vs_jobs_4_byte_identical(bench_dir):
    specs = discover(bench_dir)
    serial = run_scenarios(specs, jobs=1)
    sharded = run_scenarios(specs, jobs=4)
    view_a = deterministic_view(make_document(serial, tier="full", jobs=1))
    view_b = deterministic_view(make_document(sharded, tier="full", jobs=4))
    assert json.dumps(view_a, sort_keys=True) == json.dumps(
        view_b, sort_keys=True)
    # and the deterministic view really holds metrics
    assert view_a[0]["metrics"]


def test_info_key_is_split_out_of_metrics(bench_dir):
    results = run_scenarios(select(discover(bench_dir), quick=True), jobs=2)
    by_id = {r["id"]: r for r in results}
    mix = by_id["alpha_mix"]
    assert "_info" not in mix["metrics"]
    assert mix["info"] == {"machine_noise": 123.456}
    assert by_id["beta_sum"]["info"] is None
    assert by_id["beta_sum"]["metrics"] == {
        "total": 4950, "flag": True, "hole": None}


def test_report_sink_writes_artifacts(bench_dir, tmp_path):
    out_dir = tmp_path / "artifacts"
    run_scenarios(select(discover(bench_dir), quick=True), jobs=1,
                  out_dir=out_dir)
    assert (out_dir / "alpha_mix.txt").read_text() == \
        "mean over 256 hashed points\n"


def test_crash_is_retried_once_then_succeeds(tmp_path):
    sentinel = tmp_path / "crashed_once"
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_crash_retry.py": """
            import os

            SENTINEL = {sentinel!r}

            def run(report=None):
                if not os.path.exists(SENTINEL):
                    open(SENTINEL, "w").close()
                    os._exit(13)  # simulated interpreter death
                return {{"recovered": 1}}

            def scenarios():
                return [("crash_retry", run)]
        """.format(sentinel=str(sentinel)),
    })
    (result,) = run_scenarios(discover(root), jobs=1)
    assert result["status"] == "ok"
    assert result["attempts"] == 2
    assert result["metrics"] == {"recovered": 1}


def test_crash_twice_is_terminal(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_crash_always.py": """
            import os

            def run(report=None):
                os._exit(13)

            def scenarios():
                return [("crash_always", run)]
        """,
    })
    (result,) = run_scenarios(discover(root), jobs=1)
    assert result["status"] == "crash"
    assert result["attempts"] == 2
    assert "exited with code 13" in result["error"]
    assert result["metrics"] == {}


def test_timeout_kills_the_worker(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_sleeper.py": """
            import time

            def run(report=None):
                time.sleep(60)
                return {}

            def scenarios():
                return [("sleeper", run)]
        """,
    })
    (result,) = run_scenarios(discover(root), jobs=1, timeout_s=0.3)
    assert result["status"] == "timeout"
    assert result["attempts"] == 2
    assert "timeout" in result["error"]


def test_python_exception_is_error_without_retry(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_raiser.py": """
            def run(report=None):
                raise ValueError("deliberately broken scenario")

            def scenarios():
                return [("raiser", run)]
        """,
    })
    (result,) = run_scenarios(discover(root), jobs=1)
    assert result["status"] == "error"
    assert result["attempts"] == 1  # exceptions are deterministic: no retry
    assert "deliberately broken scenario" in result["error"]


def test_non_dict_return_is_error(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_badreturn.py": """
            def run(report=None):
                return [1, 2, 3]

            def scenarios():
                return [("badreturn", run)]
        """,
    })
    (result,) = run_scenarios(discover(root), jobs=1)
    assert result["status"] == "error"
    assert "expected a metric dict" in result["error"]


def test_one_bad_scenario_does_not_poison_the_rest(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_mixed.py": """
            import os

            def good(report=None):
                return {"x": 1}

            def bad(report=None):
                os._exit(1)

            def scenarios():
                return [("mixed_good", good), ("mixed_bad", bad)]
        """,
    })
    results = run_scenarios(discover(root), jobs=2)
    by_id = {r["id"]: r for r in results}
    assert by_id["mixed_good"]["status"] == "ok"
    assert by_id["mixed_bad"]["status"] == "crash"


def test_write_bench_dir_helper_dedents(tmp_path):
    root = write_bench_dir(tmp_path / "b", {"bench_x.py": """
        def scenarios():
            return []
    """})
    assert (root / "bench_x.py").read_text().startswith("\ndef scenarios()")

"""Synthetic bench_*.py trees for exercising the runner without the
(expensive) real scenario suite."""

import textwrap

import pytest

GOOD_MODULES = {
    "bench_alpha.py": """
        from repro.bench.results import scenario

        @scenario(cost=2.0, seed=7)
        def run_mix(report=None):
            # Deterministic arithmetic standing in for a seed-pinned sim.
            values = [((i * 2654435761) % 97) / 97 for i in range(256)]
            if report is not None:
                report("alpha_mix", "mean over 256 hashed points")
            return {
                "mean": round(sum(values) / len(values), 9),
                "peak": round(max(values), 9),
                "label": "alpha",
                "_info": {"machine_noise": 123.456},
            }

        @scenario(quick=False, cost=5.0, seed=8)
        def run_slowtier(report=None):
            return {"count": 42}

        def scenarios():
            return [("alpha_mix", run_mix), ("alpha_slowtier", run_slowtier)]
    """,
    "bench_beta.py": """
        from repro.bench.results import scenario

        @scenario(cost=1.0, seed=9)
        def run_sum(report=None):
            return {"total": sum(range(100)), "flag": True, "hole": None}

        def scenarios():
            return [("beta_sum", run_sum)]
    """,
}


def write_bench_dir(root, modules):
    root.mkdir(parents=True, exist_ok=True)
    for name, body in modules.items():
        (root / name).write_text(textwrap.dedent(body))
    return root


@pytest.fixture
def bench_dir(tmp_path):
    """A tiny, fast, fully deterministic benchmark tree."""
    return write_bench_dir(tmp_path / "benchmarks", GOOD_MODULES)

"""`grctl bench` end-to-end through main(), plus the uniform exit codes
(0 success / 1 gate-or-scenario failure / 2 usage error) across
subcommands."""

import io
import json

import pytest

from repro.bench.results import load_document
from repro.tools.grctl import main
from tests.bench.conftest import write_bench_dir


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def bench_argv(bench_dir, tmp_path, *extra):
    return ["bench", "--bench-dir", str(bench_dir),
            "--out", str(tmp_path / "BENCH.json"),
            "--report-dir", str(tmp_path / "report")] + list(extra)


def test_list_shows_tier_cost_seed(bench_dir, tmp_path):
    code, out = run(bench_argv(bench_dir, tmp_path, "--list"))
    assert code == 0
    assert "alpha_slowtier" in out and "tier=full" in out
    assert "3 scenario(s)" in out


def test_quick_run_writes_valid_document(bench_dir, tmp_path):
    code, out = run(bench_argv(bench_dir, tmp_path, "--quick", "--jobs", "2"))
    assert code == 0
    assert "2 scenario(s), 0 failure(s)" in out
    document = load_document(tmp_path / "BENCH.json")
    assert document["tier"] == "quick" and document["jobs"] == 2
    assert [s["id"] for s in document["scenarios"]] == [
        "alpha_mix", "beta_sum"]
    assert all(s["status"] == "ok" for s in document["scenarios"])
    # the report sink regenerated the text artifact
    assert (tmp_path / "report" / "alpha_mix.txt").exists()


def test_gate_passes_against_own_baseline_and_fails_when_injected(
        bench_dir, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    code, _ = run(["bench", "--bench-dir", str(bench_dir),
                   "--out", str(baseline_path),
                   "--report-dir", str(tmp_path / "report")])
    assert code == 0

    code, out = run(bench_argv(
        bench_dir, tmp_path,
        "--baseline", str(baseline_path), "--gate", "0.15"))
    assert code == 0
    assert "gate: ok (3 scenario(s) within 15%" in out

    # Inject a 30% regression into the committed numbers: the next run
    # must fail the 15% gate and name the drifted metric.
    document = json.loads(baseline_path.read_text())
    for entry in document["scenarios"]:
        if entry["id"] == "alpha_mix":
            entry["metrics"]["mean"] *= 1.3
    baseline_path.write_text(json.dumps(document))
    code, out = run(bench_argv(
        bench_dir, tmp_path,
        "--baseline", str(baseline_path), "--gate", "0.15"))
    assert code == 1
    assert "GATE  alpha_mix.mean" in out and "drifted" in out
    assert "gate: 1 regression(s) beyond 15% tolerance" in out


def test_quick_gate_skips_full_only_baseline_entries(bench_dir, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    code, _ = run(["bench", "--bench-dir", str(bench_dir),
                   "--out", str(baseline_path),
                   "--report-dir", str(tmp_path / "report")])
    assert code == 0
    # a --quick run omits alpha_slowtier; the full-tier baseline must not
    # count that as a missing scenario
    code, out = run(bench_argv(
        bench_dir, tmp_path, "--quick",
        "--baseline", str(baseline_path), "--gate", "0.15"))
    assert code == 0
    assert "gate: ok (2 scenario(s)" in out


def test_scenario_failure_exits_1(tmp_path):
    root = write_bench_dir(tmp_path / "benchmarks", {
        "bench_cli_raiser.py": """
            def run(report=None):
                raise RuntimeError("scenario blew up")

            def scenarios():
                return [("cli_raiser", run)]
        """,
    })
    code, out = run(bench_argv(root, tmp_path))
    assert code == 1
    assert "1 failure(s)" in out
    assert "FAIL  cli_raiser [error]: RuntimeError: scenario blew up" in out
    # the document still records the failure for post-mortems
    document = load_document(tmp_path / "BENCH.json")
    assert document["scenarios"][0]["status"] == "error"


@pytest.mark.parametrize("extra", [
    ("--gate", "0.1"),                       # --gate without --baseline
    ("--jobs", "0"),                         # jobs must be >= 1
    ("--timeout", "0"),                      # timeout must be positive
    ("--filter", "nosuchscenario"),          # empty selection
    ("--baseline", "does_not_exist.json"),   # unreadable baseline
])
def test_bench_usage_errors_exit_2(bench_dir, tmp_path, extra, capsys):
    code, _ = run(bench_argv(bench_dir, tmp_path, *extra))
    assert code == 2
    assert "grctl bench: error:" in capsys.readouterr().err


def test_bench_bad_baseline_schema_exits_2(bench_dir, tmp_path, capsys):
    bad = tmp_path / "bad_baseline.json"
    bad.write_text(json.dumps({"schema_version": 999, "scenarios": []}))
    code, _ = run(bench_argv(
        bench_dir, tmp_path, "--baseline", str(bad), "--gate", "0.1"))
    assert code == 2
    assert "schema_version" in capsys.readouterr().err


def test_bench_missing_dir_exits_2(tmp_path, capsys):
    code, _ = run(bench_argv(tmp_path / "nope", tmp_path))
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["check", "no_such_file.grd"],
    ["inspect", "no_such_file.grd"],
    ["fmt", "no_such_file.grd"],
    ["trace", "--replay", "no_such_trace.jsonl"],
    ["trace", "--sample", "hook=abc"],
    ["trace", "--categories", "nosuchcategory"],
])
def test_usage_errors_exit_2_across_subcommands(argv, capsys):
    code, _ = run(argv)
    assert code == 2
    assert "error:" in capsys.readouterr().err

"""The real benchmarks/ tree honors the scenarios() contract.

Cheap structural checks only — actually *running* the scenarios is what
``grctl bench`` and the bench pytest modules do.
"""

import pathlib

from repro.bench.runner import discover, select

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


def test_real_tree_discovers_every_scenario():
    specs = discover(BENCH_DIR)
    ids = [s.id for s in specs]
    assert len(ids) == len(set(ids))
    assert len(ids) >= 20
    # the headline paper scenarios are present and full-tier only
    by_id = {s.id: s for s in specs}
    assert not by_id["fig2_linnos"].quick
    assert not by_id["retrain_loop"].quick
    assert by_id["listing2_pipeline"].quick


def test_real_tree_costs_schedule_training_first():
    specs = discover(BENCH_DIR)
    # longest-first: the model-training scenarios must lead the schedule
    assert specs[0].id == "fig2_linnos"
    assert all(a.cost >= b.cost for a, b in zip(specs, specs[1:]))
    assert all(s.cost > 0 for s in specs)


def test_real_tree_quick_tier_excludes_model_training():
    quick = {s.id for s in select(discover(BENCH_DIR), quick=True)}
    assert "fig2_linnos" not in quick
    assert "retrain_loop" not in quick
    assert "fig1_p1_in_distribution" not in quick
    assert len(quick) >= 15


def test_real_tree_scenarios_are_seed_pinned():
    # Determinism rests on pinned seeds: everything costing >= 0.2 must
    # declare one (the two trivial pipeline/compile smoke scenarios are
    # seed-free by construction).
    for spec in discover(BENCH_DIR):
        if spec.cost >= 0.2:
            assert spec.seed is not None, spec.id

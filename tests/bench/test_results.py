"""Gate logic and BENCH.json document plumbing (pure, no subprocesses)."""

import json
import math

import pytest

from repro.bench.results import (
    SCHEMA_VERSION,
    compare_to_baseline,
    deterministic_view,
    load_document,
    make_document,
    save_document,
)


def sres(sid, metrics, status="ok", **extra):
    result = {
        "id": sid,
        "module": "bench_" + sid,
        "seed": 1,
        "attempts": 1,
        "status": status,
        "wall_time_s": 0.5,
        "metrics": metrics,
        "info": None,
        "error": None,
    }
    result.update(extra)
    return result


def doc(*scenario_results):
    return make_document(list(scenario_results), tier="full", jobs=1)


def gate(current, baseline, tolerance, **kw):
    return compare_to_baseline(current, baseline, tolerance, **kw)


def test_pass_at_tolerance_boundary_fail_beyond():
    baseline = doc(sres("s", {"lat_us": 100.0}))
    # exactly 15% drift passes a 0.15 gate (boundary is inclusive) ...
    assert gate(doc(sres("s", {"lat_us": 115.0})), baseline, 0.15) == []
    assert gate(doc(sres("s", {"lat_us": 85.0})), baseline, 0.15) == []
    # ... one tick past it fails, in either direction
    (reg,) = gate(doc(sres("s", {"lat_us": 115.1})), baseline, 0.15)
    assert reg.metric == "lat_us" and "drifted" in reg.detail
    (reg,) = gate(doc(sres("s", {"lat_us": 84.9})), baseline, 0.15)
    assert "drifted" in reg.detail  # two-sided: improvements gate too


def test_exact_gate_by_default_tolerance_zero():
    baseline = doc(sres("s", {"n": 10}))
    assert gate(doc(sres("s", {"n": 10})), baseline, 0.0) == []
    assert len(gate(doc(sres("s", {"n": 11})), baseline, 0.0)) == 1


def test_zero_baseline_uses_absolute_fallback():
    baseline = doc(sres("s", {"errors": 0}))
    assert gate(doc(sres("s", {"errors": 0.1})), baseline, 0.15) == []
    (reg,) = gate(doc(sres("s", {"errors": 1})), baseline, 0.15)
    assert reg.metric == "errors"


def test_missing_scenario_fails_the_gate():
    baseline = doc(sres("a", {"x": 1}), sres("b", {"x": 1}))
    (reg,) = gate(doc(sres("a", {"x": 1})), baseline, 0.5)
    assert reg.scenario_id == "b"
    assert "missing from current run" in reg.detail


def test_selected_ids_scopes_a_restricted_run():
    baseline = doc(sres("a", {"x": 1}), sres("b", {"x": 1}))
    current = doc(sres("a", {"x": 1}))
    assert gate(current, baseline, 0.5, selected_ids={"a"}) == []
    # unrestricted comparison still notices the vanished scenario
    assert len(gate(current, baseline, 0.5)) == 1


def test_non_ok_current_scenario_fails_the_gate():
    baseline = doc(sres("s", {"x": 1}))
    current = doc(sres("s", {}, status="crash",
                       error="boom\nworker exited with code 9"))
    (reg,) = gate(current, baseline, 0.5)
    assert "did not complete" in reg.detail
    assert "worker exited with code 9" in reg.detail


def test_non_ok_baseline_entry_is_skipped():
    baseline = doc(sres("s", {}, status="error"))
    assert gate(doc(), baseline, 0.0) == []


def test_missing_metric_fails_the_gate():
    baseline = doc(sres("s", {"kept": 1, "dropped": 2}))
    (reg,) = gate(doc(sres("s", {"kept": 1})), baseline, 0.5)
    assert reg.metric == "dropped" and "missing" in reg.detail


def test_new_metrics_and_new_scenarios_pass_until_baselined():
    baseline = doc(sres("s", {"x": 1}))
    current = doc(sres("s", {"x": 1, "brand_new": 99}),
                  sres("t", {"y": 1}))
    assert gate(current, baseline, 0.0) == []


def test_non_numeric_metrics_must_match_exactly():
    baseline = doc(sres("s", {"label": "fast", "enabled": True,
                              "hole": None}))
    assert gate(doc(sres("s", {"label": "fast", "enabled": True,
                               "hole": None})), baseline, 0.5) == []
    (reg,) = gate(doc(sres("s", {"label": "slow", "enabled": True,
                                 "hole": None})), baseline, 0.5)
    assert reg.detail == "value changed"
    # bool is not a number here: True -> 1 is a type change, not 0% drift
    (reg,) = gate(doc(sres("s", {"label": "fast", "enabled": 1,
                                 "hole": None})), baseline, 0.5)
    assert reg.metric == "enabled"


def test_nan_matches_nan_but_nothing_else():
    baseline = doc(sres("s", {"v": math.nan}))
    assert gate(doc(sres("s", {"v": math.nan})), baseline, 0.0) == []
    (reg,) = gate(doc(sres("s", {"v": 1.0})), baseline, 0.0)
    assert reg.detail == "NaN mismatch"


def test_info_key_in_metrics_is_never_gated():
    baseline = doc(sres("s", {"x": 1, "_info": {"host": "ci"}}))
    current = doc(sres("s", {"x": 1, "_info": {"host": "laptop"}}))
    assert gate(current, baseline, 0.0) == []


def test_regression_render_is_greppable():
    baseline = doc(sres("s", {"lat": 100.0}))
    (reg,) = gate(doc(sres("s", {"lat": 150.0})), baseline, 0.15)
    line = reg.render()
    assert line.startswith("GATE  s.lat:")
    assert "baseline=100.0" in line and "current=150.0" in line
    assert "s.lat" in repr(reg)


def test_deterministic_view_strips_run_noise():
    document = doc(sres("s", {"x": 1}, wall_time_s=9.9, attempts=2,
                        error="retried once", info={"t_ms": 3}))
    (view,) = deterministic_view(document)
    assert set(view) == {"id", "module", "seed", "status", "metrics"}
    assert view["metrics"] == {"x": 1}


def test_document_round_trip_and_schema_check(tmp_path):
    document = doc(sres("b", {"x": 1}), sres("a", {"x": 2}))
    assert [s["id"] for s in document["scenarios"]] == ["a", "b"]
    assert document["schema_version"] == SCHEMA_VERSION
    path = tmp_path / "BENCH.json"
    save_document(document, path)
    assert load_document(path) == document

    bad = dict(document, schema_version=SCHEMA_VERSION + 1)
    path_bad = tmp_path / "BENCH_bad.json"
    path_bad.write_text(json.dumps(bad))
    with pytest.raises(ValueError, match="schema_version"):
        load_document(path_bad)
    path_list = tmp_path / "BENCH_nolist.json"
    path_list.write_text(json.dumps({"schema_version": SCHEMA_VERSION}))
    with pytest.raises(ValueError, match="scenario list"):
        load_document(path_list)

"""Policy instrumentation: P1 tracker, P2 probe, P5 meter."""

import numpy as np
import pytest

from repro.core.featurestore import FeatureStore
from repro.detect.reference import ReferenceDistribution
from repro.policies.base import (
    InputDistributionTracker,
    PolicyInstrumentation,
    SensitivityProbe,
)


def make_references(seed=0, bins=16):
    rng = np.random.default_rng(seed)
    return [
        ReferenceDistribution.from_samples("f0", rng.normal(0, 1, 2000),
                                           bins=bins),
        ReferenceDistribution.from_samples("f1", rng.normal(10, 2, 2000),
                                           bins=bins),
    ]


class TestInputDistributionTracker:
    def test_in_distribution_stays_low(self):
        store = FeatureStore()
        tracker = InputDistributionTracker(store, "pol", make_references(),
                                           publish_every=500)
        rng = np.random.default_rng(1)
        for _ in range(1000):
            tracker.observe([rng.normal(0, 1), rng.normal(10, 2)])
        assert tracker.published_windows == 2
        assert store.load("pol.input_psi_max") < 0.25
        assert store.load("pol.input_oor_max") < 0.05

    def test_shifted_inputs_score_high(self):
        store = FeatureStore()
        tracker = InputDistributionTracker(store, "pol", make_references(),
                                           publish_every=500)
        rng = np.random.default_rng(2)
        for _ in range(500):
            tracker.observe([rng.normal(5, 1), rng.normal(10, 2)])
        assert store.load("pol.input_psi_max") > 0.25
        assert store.load("pol.input_oor_max") > 0.3

    def test_window_resets_after_publish(self):
        store = FeatureStore()
        tracker = InputDistributionTracker(store, "pol", make_references(),
                                           publish_every=10)
        rng = np.random.default_rng(3)
        for _ in range(10):
            tracker.observe([rng.normal(50, 1), 10.0])  # badly off
        bad = store.load("pol.input_psi_max")
        for _ in range(10):
            tracker.observe([rng.normal(0, 1), rng.normal(10, 2)])
        good = store.load("pol.input_psi_max")
        assert good < bad  # the new window is clean

    def test_batch_observation(self):
        store = FeatureStore()
        tracker = InputDistributionTracker(store, "pol", make_references(),
                                           publish_every=4)
        tracker.observe(np.zeros((4, 2)) + [0.0, 10.0])
        assert tracker.published_windows == 1

    def test_feature_count_mismatch_raises(self):
        tracker = InputDistributionTracker(FeatureStore(), "pol",
                                           make_references())
        with pytest.raises(ValueError):
            tracker.observe([1.0])

    def test_publish_with_no_data_is_noop(self):
        store = FeatureStore()
        tracker = InputDistributionTracker(store, "pol", make_references())
        tracker.publish()
        assert store.load("pol.input_psi_max") is None


class TestSensitivityProbe:
    def test_robust_function_scores_low(self):
        store = FeatureStore()
        probe = SensitivityProbe(store, "pol", lambda x: 1.0,
                                 probe_every=1)
        for _ in range(10):
            probe.maybe_probe(np.array([1.0, 2.0]), 1.0)
        assert store.load("pol.output_sensitivity") == 0.0

    def test_sensitive_function_scores_high(self):
        store = FeatureStore()
        # A function with huge local slope.
        probe = SensitivityProbe(store, "pol",
                                 lambda x: 1000.0 * float(np.sum(x)),
                                 probe_every=1, noise_scale=0.01)
        value = 1000.0 * 3.0
        for _ in range(10):
            probe.maybe_probe(np.array([1.0, 2.0]), value)
        assert store.load("pol.output_sensitivity") > 1.0

    def test_probe_every_throttles(self):
        probe = SensitivityProbe(FeatureStore(), "p", lambda x: 0.0,
                                 probe_every=4)
        for _ in range(8):
            probe.maybe_probe(np.array([1.0]), 0.0)
        assert probe.probe_count == 2


class TestPolicyInstrumentation:
    def test_meter_always_on(self):
        store = FeatureStore()
        inst = PolicyInstrumentation(store, "pol")
        inst.observe_inference([1.0], inference_ns=100)
        inst.record_gain(300)
        assert store.load("pol.net_benefit") == 200

    def test_trackers_optional(self):
        inst = PolicyInstrumentation(FeatureStore(), "pol")
        assert inst.inputs is None
        assert inst.sensitivity is None

    def test_full_instrumentation_wires_everything(self):
        store = FeatureStore()
        inst = PolicyInstrumentation(
            store, "pol", references=make_references(),
            predict=lambda row: np.array([0.5]), publish_every=2,
            probe_every=1,
        )
        inst.observe_inference([0.0, 10.0], output=0.5, inference_ns=10)
        inst.observe_inference([0.0, 10.0], output=0.5, inference_ns=10)
        assert store.load("pol.input_psi_max") is not None
        assert store.load("pol.output_sensitivity") is not None
        assert store.load("pol.inferences") == 2

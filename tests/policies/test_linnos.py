"""LinnOS policy: training, prediction quality, failover, kill switch."""

import numpy as np
import pytest

from repro.bench.scenarios import build_storage_kernel, train_default_linnos_model
from repro.kernel.storage import PoissonWorkload
from repro.ml.train import accuracy
from repro.policies.linnos import (
    LinnosPolicy,
    collect_training_data,
    train_linnos_model,
)
from repro.sim.units import SECOND


@pytest.fixture(scope="module")
def trained():
    """Training data + model, shared across this module (it is expensive)."""
    kernel, _, volume = build_storage_kernel(seed=1)
    workload = PoissonWorkload(kernel, volume, [(8 * SECOND, 900)])
    features, labels = collect_training_data(kernel, volume, workload.start,
                                             8 * SECOND)
    model = train_linnos_model(features, labels, epochs=12, seed=1)
    return features, labels, model


def test_collection_yields_labeled_features(trained):
    features, labels, _ = trained
    assert features.shape[1] == 4
    assert set(np.unique(labels)) <= {0, 1}
    assert len(features) == len(labels) > 1000
    # Label base rate should be near the pre-drift stationary slow fraction.
    assert 0.02 < labels.mean() < 0.3


def test_model_accuracy_beats_base_rate(trained):
    features, labels, model = trained
    predictions = (model.slow_probabilities(features) > 0.5).astype(int)
    majority = max(labels.mean(), 1 - labels.mean())
    assert accuracy(predictions, labels) > majority + 0.03


def test_model_inference_cost_positive(trained):
    _, _, model = trained
    assert model.inference_ns > 0


def test_policy_uses_model_and_records(trained):
    _, _, model = trained
    kernel, _, volume = build_storage_kernel(seed=3)
    policy = LinnosPolicy(kernel, model)
    volume.install_policy("storage.linnos", policy)
    PoissonWorkload(kernel, volume, [(1 * SECOND, 500)]).start()
    kernel.run(until=1 * SECOND)
    assert policy.model_picks > 0
    assert policy.fallback_picks == 0
    assert kernel.store.load("linnos.inferences") == policy.model_picks


def test_ml_enabled_false_falls_back(trained):
    _, _, model = trained
    kernel, _, volume = build_storage_kernel(seed=3)
    policy = LinnosPolicy(kernel, model)
    volume.install_policy("storage.linnos", policy)
    kernel.store.save("ml_enabled", False)
    PoissonWorkload(kernel, volume, [(1 * SECOND, 500)]).start()
    kernel.run(until=1 * SECOND)
    assert policy.model_picks == 0
    assert policy.fallback_picks > 0
    assert volume.model_submits == 0


def test_policy_avoids_slow_device(trained):
    _, _, model = trained
    kernel, devices, volume = build_storage_kernel(seed=4)
    policy = LinnosPolicy(kernel, model)
    volume.install_policy("storage.linnos", policy)
    # Pin device 0 slow: seed its history with slow completions and freshen.
    devices[0].history.extend([3000.0] * 8)
    devices[0].last_completion_time = 0
    decision = policy(volume)
    assert decision.index != 0
    assert decision.used_model


def test_failover_selection_prefers_primary_order(trained):
    _, _, model = trained
    kernel, devices, volume = build_storage_kernel(seed=5)
    policy = LinnosPolicy(kernel, model, selection="failover")
    # All devices look fresh/fast: the failover variant stays on the
    # round-robin primary.
    picks = [policy(volume).index for _ in range(3)]
    assert picks == [0, 1, 2]


def test_invalid_selection_rejected(trained):
    _, _, model = trained
    kernel, _, volume = build_storage_kernel(seed=6)
    with pytest.raises(ValueError):
        LinnosPolicy(kernel, model, selection="bogus")


def test_pre_drift_deployment_beats_round_robin():
    model = train_default_linnos_model(seed=1, train_seconds=8)

    def run(with_model):
        kernel, _, volume = build_storage_kernel(seed=7)
        if with_model:
            volume.install_policy("storage.linnos",
                                  LinnosPolicy(kernel, model))
        PoissonWorkload(kernel, volume, [(4 * SECOND, 1000)]).start()
        kernel.run(until=4 * SECOND)
        return volume.mean_latency_us()

    assert run(True) < run(False) * 0.7

"""Learned cache eviction: reuse prediction, wins and losses."""

import numpy as np
import pytest

from repro.kernel.cache import KvCache, random_evict
from repro.kernel.cache.cache import ShadowCache
from repro.policies.cachepol import LearnedReusePolicy, attach_learned_cache_policy


def test_observe_learns_gaps():
    clock = {"t": 0}
    policy = LearnedReusePolicy(lambda: clock["t"])
    for t in [0, 10, 20, 30]:
        clock["t"] = t
        policy.observe("k")
    assert policy._gap_ewma["k"] == pytest.approx(10.0)
    assert policy.observations == 3


def test_unseen_key_gets_pessimistic_gap():
    policy = LearnedReusePolicy(lambda: 0, default_gap=999)
    assert policy.predicted_next_access("new", last_access=1) == 1000


def test_evicts_largest_predicted_distance():
    clock = {"t": 0}
    policy = LearnedReusePolicy(lambda: clock["t"])
    cache = ShadowCache(2, lambda: clock["t"], policy)
    # "hot" is accessed every tick, "cold" once.
    for t in range(5):
        clock["t"] = t
        policy.observe("hot")
        cache.access("hot")
    clock["t"] = 5
    policy.observe("cold")
    cache.access("cold")
    clock["t"] = 6
    policy.observe("newkey")
    cache.access("newkey")  # must evict: picks cold (never-reused)
    assert "hot" in cache
    assert "cold" not in cache


def test_attach_wires_online_training(kernel):
    cache = kernel.attach("cache", KvCache(kernel, capacity=8))
    policy = attach_learned_cache_policy(kernel, cache)
    for step in range(20):
        cache.access("a")
        kernel.run(until=kernel.now + 1000)
    assert policy.observations > 0
    assert kernel.functions.slot("cache.evict").current is policy


def test_learned_beats_random_on_skewed_workload(kernel):
    cache = kernel.attach("cache", KvCache(kernel, capacity=32))
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("shadow")))
    attach_learned_cache_policy(kernel, cache)
    rng = np.random.default_rng(0)
    for _ in range(3000):
        cache.access(int(rng.zipf(1.4)) % 200)
        kernel.run(until=kernel.now + 100_000)
    assert cache.hit_rate > cache.shadow("random").hit_rate


def test_learned_loses_on_dead_pair_workload(kernel):
    # Adversarial pattern: every key is touched exactly twice in quick
    # succession, then never again.  The learned policy memorizes a tiny
    # reuse gap and keeps the dead keys forever; random at least recycles.
    cache = kernel.attach("cache", KvCache(kernel, capacity=32))
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("shadow")))
    attach_learned_cache_policy(kernel, cache)
    rng = np.random.default_rng(1)
    hot = [f"hot{i}" for i in range(16)]
    serial = 0
    for step in range(3000):
        if rng.random() < 0.5:
            key = hot[int(rng.integers(len(hot)))]
            cache.access(key)
        else:
            serial += 1
            pair = "dead{}".format(serial)
            cache.access(pair)
            kernel.run(until=kernel.now + 1000)
            cache.access(pair)
        kernel.run(until=kernel.now + 100_000)
    assert cache.hit_rate < cache.shadow("random").hit_rate

"""Learned congestion controller."""

import numpy as np
import pytest

from repro.kernel.net import BottleneckLink
from repro.policies.ccpol import (
    LearnedCcController,
    generate_teacher_trace,
    install_learned_cc,
    train_cc_model,
)
from repro.sim.units import MILLISECOND, SECOND


@pytest.fixture(scope="module")
def trained():
    observations, deltas = generate_teacher_trace(capacity_mbps=100.0,
                                                  epochs=1500, seed=0)
    mlp, normalizer = train_cc_model(observations, deltas, epochs=120, seed=0)
    return observations, deltas, mlp, normalizer


def test_teacher_trace_shape(trained):
    observations, deltas, _, _ = trained
    assert observations.shape[1] == 3
    assert len(observations) == len(deltas)
    # AIMD: mostly +2 increases, occasional big decreases.
    assert (deltas == 2.0).mean() > 0.5
    assert deltas.min() < -10


def test_model_imitates_increase_on_clean_input(trained):
    _, _, mlp, normalizer = trained
    x = normalizer.transform(np.array([[50.0, 50.0, 0.0]]))
    delta = mlp.predict(x)[0, 0]
    assert delta == pytest.approx(2.0, abs=1.5)


def test_model_imitates_backoff_on_loss(trained):
    _, _, mlp, normalizer = trained
    # A realistic steady-state loss epoch: rate slightly over capacity.
    x = normalizer.transform(np.array([[110.0, 100.0, 0.09]]))
    delta = mlp.predict(x)[0, 0]
    assert delta < -10


def test_controller_wraps_model(kernel, trained):
    _, _, mlp, normalizer = trained
    controller = LearnedCcController(kernel, mlp, normalizer)
    rate = controller({"rate_mbps": 50.0, "delivered_mbps": 50.0, "loss": 0.0})
    assert rate > 50.0
    assert controller.decisions == 1
    assert kernel.store.load("learned_cc.inferences") == 1


def test_controller_respects_min_rate(kernel, trained):
    _, _, mlp, normalizer = trained
    controller = LearnedCcController(kernel, mlp, normalizer, min_rate=2.0)
    rate = controller({"rate_mbps": 2.0, "delivered_mbps": 1.0, "loss": 0.9})
    assert rate >= 2.0


def test_good_utilization_at_training_capacity(kernel, trained):
    link = kernel.attach("net", BottleneckLink(kernel, capacity_mbps=100.0,
                                               rtt=20 * MILLISECOND))
    _, _, mlp, normalizer = trained
    controller = LearnedCcController(kernel, mlp, normalizer)
    kernel.functions.register_implementation("net.learned", controller)
    kernel.functions.replace("net.cc_update", "net.learned")
    link.start()
    kernel.run(until=15 * SECOND)
    steady = [v for t, v in kernel.metrics.series("net.utilization")
              if t > 8 * SECOND]
    assert sum(steady) / len(steady) > 0.7


def test_underutilizes_after_capacity_jump(kernel, trained):
    link = kernel.attach("net", BottleneckLink(kernel, capacity_mbps=100.0,
                                               rtt=20 * MILLISECOND))
    _, _, mlp, normalizer = trained
    controller = LearnedCcController(kernel, mlp, normalizer)
    kernel.functions.register_implementation("net.learned", controller)
    kernel.functions.replace("net.cc_update", "net.learned")
    link.start()
    kernel.run(until=10 * SECOND)
    link.set_capacity(400.0)
    kernel.run(until=20 * SECOND)
    late = [v for t, v in kernel.metrics.series("net.utilization")
            if t > 15 * SECOND]
    # The §2 misbehavior: the model never exploits the new headroom.
    assert sum(late) / len(late) < 0.5


def test_install_helper_registers_and_activates(kernel):
    link = kernel.attach("net", BottleneckLink(kernel, capacity_mbps=100.0))
    controller = install_learned_cc(kernel, link, train_capacity=100.0)
    assert kernel.functions.slot("net.cc_update").current is controller


def test_sensitivity_published_under_use(kernel, trained):
    link = kernel.attach("net", BottleneckLink(kernel, capacity_mbps=100.0,
                                               rtt=20 * MILLISECOND,
                                               noise_std=0.05))
    _, _, mlp, normalizer = trained
    controller = LearnedCcController(kernel, mlp, normalizer)
    kernel.functions.register_implementation("net.learned", controller)
    kernel.functions.replace("net.cc_update", "net.learned")
    link.start()
    kernel.run(until=10 * SECOND)
    assert kernel.store.load("learned_cc.output_sensitivity") is not None

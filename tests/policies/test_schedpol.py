"""Learned SJF scheduler policy: the P6 starvation story."""


from repro.core.properties import fairness_liveness
from repro.kernel.sched import CpuScheduler
from repro.policies.schedpol import (
    BurstPredictor,
    LearnedShortestJobPolicy,
    attach_learned_sched_policy,
)
from repro.sim.units import MILLISECOND, SECOND


def test_predictor_ewma():
    predictor = BurstPredictor(alpha=0.5, initial_ns=100)
    assert predictor.predict("t") == 100
    predictor.observe("t", 200)
    assert predictor.predict("t") == 200
    predictor.observe("t", 100)
    assert predictor.predict("t") == 150


def test_policy_picks_shortest_predicted(kernel):
    sched = kernel.attach("sched", CpuScheduler(kernel))
    policy = LearnedShortestJobPolicy()
    policy.predictor.observe("long", 50_000_000)
    policy.predictor.observe("short", 1_000_000)
    sched.spawn("long")
    sched.spawn("short")
    assert policy(sched).name == "short"


def test_policy_none_when_no_runnable(kernel):
    sched = kernel.attach("sched", CpuScheduler(kernel))
    assert LearnedShortestJobPolicy()(sched) is None


def test_sjf_starves_long_task(kernel):
    sched = kernel.attach("sched", CpuScheduler(kernel))
    attach_learned_sched_policy(kernel, sched)
    sched.spawn("batch", burst_ns=50 * MILLISECOND)
    for i in range(4):
        sched.spawn("short{}".format(i), burst_ns=1 * MILLISECOND)
    kernel.run(until=3 * SECOND)
    stats = sched.wait_stats()
    # The batch task barely runs while shorts dominate.
    assert stats["batch"]["executed_ms"] < 100
    assert all(stats["short{}".format(i)]["executed_ms"] > 500 for i in range(4))


def test_sjf_improves_mean_wait_for_shorts(kernel):
    # The reason anyone would deploy it: short tasks wait less than under CFS.
    def mean_short_wait(learned):
        from repro.kernel import Kernel

        k = Kernel(seed=1)
        sched = k.attach("sched", CpuScheduler(k))
        if learned:
            attach_learned_sched_policy(k, sched)
        sched.spawn("batch", burst_ns=40 * MILLISECOND)
        for i in range(3):
            sched.spawn("short{}".format(i), burst_ns=1 * MILLISECOND,
                        think_ns=2 * MILLISECOND)
        k.run(until=2 * SECOND)
        stats = sched.wait_stats()
        waits = [stats["short{}".format(i)]["mean_wait_ms"] for i in range(3)]
        return sum(waits) / len(waits)

    assert mean_short_wait(True) < mean_short_wait(False)


def test_p6_guardrail_restores_liveness(kernel):
    sched = kernel.attach("sched", CpuScheduler(kernel))
    attach_learned_sched_policy(kernel, sched)
    sched.spawn("batch", burst_ns=50 * MILLISECOND)
    for i in range(4):
        sched.spawn("short{}".format(i), burst_ns=1 * MILLISECOND)
    monitor = kernel.guardrails.load(fairness_liveness(max_wait_ms=100.0))
    kernel.run(until=5 * SECOND)
    assert monitor.violation_count >= 1
    stats = sched.wait_stats()
    assert stats["batch"]["executed_ms"] > 500  # recovered under CFS


def test_deprioritize_action_variant(kernel):
    # A4 instead of A2: kill the starving batch task's competitors is too
    # harsh; here we renice the shorts so batch can run.
    sched = kernel.attach("sched", CpuScheduler(kernel))
    attach_learned_sched_policy(kernel, sched)
    sched.spawn("batch", burst_ns=50 * MILLISECOND)
    sched.spawn("short", burst_ns=1 * MILLISECOND)
    kernel.guardrails.load("""
guardrail starvation-deprioritize {
  trigger: { TIMER(start_time, 100ms) },
  rule: { LOAD(sched.max_wait_ms) <= 100 },
  action: { DEPRIORITIZE({short}, {19}) }
}""")
    kernel.run(until=2 * SECOND)
    assert sched.find_task("short").nice == 19

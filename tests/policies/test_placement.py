"""Learned tiered-memory placement."""

import numpy as np

from repro.kernel.mm import TieredMemory
from repro.policies.placement import LearnedPlacementPolicy, attach_learned_placement


def drive(kernel, tiered, keys, gap=100_000):
    for key, is_write in keys:
        tiered.access(key, is_write=is_write)
        kernel.run(until=kernel.now + gap)


def test_state_discretization():
    policy = LearnedPlacementPolicy()
    context = {"is_write": False, "fast_used": 2, "fast_capacity": 8,
               "serial": 1}
    state = policy._state("p", context)
    assert state == (0, False, 1)
    policy._access_counts["p"] = 10
    assert policy._state("p", context)[0] == 4  # capped bucket


def test_pending_not_resolved_by_same_access(kernel):
    tiered = kernel.attach("t", TieredMemory(kernel, fast_capacity=4))
    policy = attach_learned_placement(kernel, tiered, seed=0)
    tiered.access("p")  # decision made; trainer must NOT consume it yet
    assert "p" in policy._pending


def test_reward_resolved_on_next_access(kernel):
    tiered = kernel.attach("t", TieredMemory(kernel, fast_capacity=4))
    policy = attach_learned_placement(kernel, tiered, seed=0)
    tiered.access("p")
    before = policy.learner.update_count
    tiered.access("p")
    assert policy.learner.update_count == before + 1


def test_learns_to_promote_hot_pages(kernel):
    tiered = kernel.attach("t", TieredMemory(kernel, fast_capacity=16))
    policy = attach_learned_placement(kernel, tiered, seed=0)
    policy.learner.epsilon = 0.2
    rng = np.random.default_rng(0)
    hot = ["hot{}".format(i) for i in range(8)]
    for _ in range(3000):
        tiered.access(hot[int(rng.integers(len(hot)))])
        kernel.run(until=kernel.now + 50_000)
    # The learner converged: hot pages live in the fast tier, and every
    # visited state with a learned preference prefers MIGRATE.
    assert tiered.hit_rate > 0.8
    learned_states = [
        s for s in policy.learner._q
        if policy.learner._q[s].any()
    ]
    assert learned_states
    assert all(
        policy.learner.best_action(s) == policy.MIGRATE for s in learned_states
    )


def test_migration_penalty_discourages_churn():
    policy = LearnedPlacementPolicy(migration_penalty=2.0)
    state = (1, False, 0)
    # Promotions that never pay off (reward 0, penalty 2) go negative...
    for _ in range(20):
        policy.learner.update(state, policy.MIGRATE, -2.0)
    # ...while staying put earns 0.
    assert policy.learner.best_action(state) == policy.STAY


def test_decisions_counted(kernel):
    tiered = kernel.attach("t", TieredMemory(kernel, fast_capacity=4))
    policy = attach_learned_placement(kernel, tiered, seed=0)
    drive(kernel, tiered, [("a", False), ("b", False)])
    assert policy.decisions == 2

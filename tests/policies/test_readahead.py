"""Learned readahead."""

import numpy as np
import pytest

from repro.policies.readahead import (
    FixedReadahead,
    LearnedReadahead,
    ReadaheadSimulator,
)


def test_fixed_policy_constant():
    policy = FixedReadahead(window=8)
    assert policy.predict_run(None) == 8


def test_learned_adapts_to_run_length():
    policy = LearnedReadahead(alpha=0.5, initial=8.0)
    for _ in range(10):
        policy.observe_run(64)
    assert policy.predict_run(None) == pytest.approx(64, abs=2)


def test_learned_bounded_by_max_window():
    policy = LearnedReadahead(max_window=32)
    for _ in range(10):
        policy.observe_run(1000)
    assert policy.predict_run(None) == 32


def test_learned_never_below_one():
    policy = LearnedReadahead()
    for _ in range(20):
        policy.observe_run(0)
    assert policy.predict_run(None) == 1


def test_simulator_scores_exact_window():
    sim = ReadaheadSimulator(FixedReadahead(window=10), miss_us=100,
                             waste_us=5, decision_us=0)
    sim.replay([10, 10])
    assert sim.misses == 0
    assert sim.prefetched_wasted == 0
    assert sim.total_cost_us == 0


def test_simulator_charges_misses_and_waste():
    sim = ReadaheadSimulator(FixedReadahead(window=10), miss_us=100,
                             waste_us=5, decision_us=0)
    sim.replay([15])   # 5 missed
    sim.replay([5])    # 5 wasted
    assert sim.misses == 5
    assert sim.prefetched_wasted == 5
    assert sim.total_cost_us == 5 * 100 + 5 * 5


def test_learned_beats_fixed_on_long_runs():
    rng = np.random.default_rng(0)
    runs = [int(rng.normal(64, 4)) for _ in range(500)]
    fixed = ReadaheadSimulator(FixedReadahead(window=8))
    learned = ReadaheadSimulator(LearnedReadahead())
    fixed.replay(runs)
    learned.replay(runs)
    assert learned.total_cost_us < fixed.total_cost_us * 0.3


def test_fixed_beats_learned_right_after_shift():
    # A sudden shift from long to short runs: the learned window is still
    # large and wastes prefetches; this is the P5 cost the meter exposes.
    learned = ReadaheadSimulator(LearnedReadahead(), waste_us=50)
    learned.replay([100] * 50)
    cost_before = learned.total_cost_us
    learned.replay([2] * 20)
    waste_cost = learned.total_cost_us - cost_before
    fixed = ReadaheadSimulator(FixedReadahead(window=8), waste_us=50)
    fixed.replay([2] * 20)
    assert waste_cost > fixed.total_cost_us


def test_cost_per_run():
    sim = ReadaheadSimulator(FixedReadahead(window=10), decision_us=1)
    assert sim.cost_per_run() == 0.0
    sim.replay([10, 10])
    assert sim.cost_per_run() == 1.0

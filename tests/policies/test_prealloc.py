"""Learned preallocation: extrapolation behavior and the P3 bug."""

import pytest

from repro.kernel.mm import MemoryAllocator
from repro.policies.prealloc import LearnedPreallocPolicy, clamped_prealloc


def test_steady_requests_get_modest_headroom():
    policy = LearnedPreallocPolicy()
    grants = [policy(10, 1000) for _ in range(10)]
    # Flat history -> headroom ~ latest request, no blowup.
    assert all(10 <= g <= 30 for g in grants)


def test_ramp_extrapolates_beyond_latest():
    policy = LearnedPreallocPolicy(horizon=4.0)
    for size in [10, 20, 30, 40]:
        last = policy(size, 10_000)
    # slope 10/request, horizon 4 -> predicted demand 40 + 40 = 80.
    assert last == 40 + 80


def test_burst_can_exceed_available_memory():
    policy = LearnedPreallocPolicy(horizon=8.0)
    for size in [10, 20, 40, 80, 160, 320]:
        grant = policy(size, 500)
    assert grant > 500  # out of bounds: the P3 violation


def test_never_grants_below_request_plus_zero():
    policy = LearnedPreallocPolicy()
    # Decreasing sizes: negative slope could push the headroom negative;
    # the predictor clamps predicted demand at 0.
    for size in [100, 80, 60, 40, 20, 10, 5]:
        grant = policy(size, 10_000)
        assert grant >= size


def test_window_validation():
    with pytest.raises(ValueError):
        LearnedPreallocPolicy(window=1)


def test_clamped_wrapper_respects_bounds():
    policy = LearnedPreallocPolicy(horizon=8.0)
    safe = clamped_prealloc(policy)
    for size in [10, 20, 40, 80, 160, 320]:
        grant = safe(size, 500)
        assert size <= grant <= 500


def test_end_to_end_p3_guardrail_replaces(kernel):
    from repro.core.properties import output_bounds

    alloc = kernel.attach("mm", MemoryAllocator(kernel, total_pages=500))
    learned = LearnedPreallocPolicy(horizon=8.0)
    kernel.functions.register_implementation("mm.learned", learned)
    kernel.functions.register_implementation("mm.safe", clamped_prealloc(learned))
    kernel.functions.replace("mm.prealloc_size", "mm.learned")
    monitor = kernel.guardrails.load(output_bounds(
        "mm", "mm.alloc", "granted <= available && granted >= requested",
        "mm.prealloc_size", "mm.safe",
    ))
    for size in [10, 20, 40, 80, 160]:
        alloc.allocate(size)
        if alloc.used_pages > 400:
            alloc.free(alloc.used_pages)
    assert monitor.violation_count >= 1
    assert kernel.functions.slot("mm.prealloc_size").current is not learned
    # After the swap, the same burst stays in bounds.
    before = alloc.out_of_bounds_grants
    for size in [10, 20, 40, 80, 160]:
        alloc.allocate(size)
        if alloc.used_pages > 400:
            alloc.free(alloc.used_pages)
    assert alloc.out_of_bounds_grants == before

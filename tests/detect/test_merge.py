"""Sketch merging: merge(A, B) must match one sketch fed A ++ B.

Property-based (Hypothesis): Histogram and RateCounter merges are *exact*
(integer counts), SummaryDigest matches to float tolerance (parallel
Welford), and P2Quantile merges are tolerance-bounded against the true
pooled quantile.  Plus the incompatible-sketch error paths: mismatched
bounds/windows/quantiles must raise rather than silently blend.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.histogram import Histogram
from repro.detect.quantiles import P2Quantile
from repro.detect.streaming import RateCounter, SummaryDigest
from repro.detect.windows import SlidingWindow

values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
value_lists = st.lists(values, max_size=200)


# -- Histogram: exact ------------------------------------------------------


@given(a=value_lists, b=value_lists)
def test_histogram_merge_matches_concatenated_stream(a, b):
    left = Histogram(-100.0, 100.0, 16)
    left.update_many(a)
    right = Histogram(-100.0, 100.0, 16)
    right.update_many(b)
    reference = Histogram(-100.0, 100.0, 16)
    reference.update_many(a + b)

    merged = left.merge(right)
    assert merged is left  # chains
    assert merged.counts == reference.counts
    assert merged.underflow == reference.underflow
    assert merged.overflow == reference.overflow
    assert merged.total == reference.total


@given(a=value_lists, b=value_lists,
       q=st.floats(min_value=0.0, max_value=1.0))
def test_histogram_merged_quantile_equals_concatenated_quantile(a, b, q):
    # Quantiles come straight off the counts, so the merged estimate is
    # *identical* to the single-sketch estimate — not just close.
    left = Histogram(0.0, 50.0, 10)
    left.update_many(a)
    right = Histogram(0.0, 50.0, 10)
    right.update_many(b)
    reference = Histogram(0.0, 50.0, 10)
    reference.update_many(a + b)
    merged = left.merge(right)
    got, want = merged.quantile(q), reference.quantile(q)
    assert (math.isnan(got) and math.isnan(want)) or got == want


def test_histogram_incompatible_bounds_raise():
    base = Histogram(0.0, 10.0, 4)
    for other in (Histogram(0.0, 20.0, 4), Histogram(1.0, 10.0, 4),
                  Histogram(0.0, 10.0, 8), object()):
        with pytest.raises(ValueError, match="incompatible|merge"):
            base.merge(other)


# -- RateCounter: exact ----------------------------------------------------

times = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000), st.booleans()),
    max_size=120,
).map(lambda events: sorted(events, key=lambda e: e[0]))


@given(a=times, b=times)
def test_rate_counter_merge_matches_concatenated_stream(a, b):
    window = 1_000
    left = RateCounter(window)
    for t, hit in a:
        left.observe(t, hit)
    right = RateCounter(window)
    for t, hit in b:
        right.observe(t, hit)
    reference = RateCounter(window)
    for t, hit in sorted(a + b, key=lambda e: e[0]):
        reference.observe(t, hit)

    merged = left.merge(right)
    assert merged is left
    now = max([t for t, _ in a + b], default=0)
    assert merged.count(now) == reference.count(now)
    assert merged.rate(now) == reference.rate(now)


def test_rate_counter_window_mismatch_raises():
    with pytest.raises(ValueError, match="window"):
        RateCounter(1000).merge(RateCounter(500))
    with pytest.raises(ValueError):
        RateCounter(1000).merge(object())


# -- SummaryDigest: float-tolerance ----------------------------------------


@given(a=value_lists, b=value_lists)
def test_summary_digest_merge_matches_concatenated_stream(a, b):
    left = SummaryDigest.from_values(a)
    right = SummaryDigest.from_values(b)
    reference = SummaryDigest.from_values(a + b)

    merged = left.merge(right)
    assert merged is left
    assert merged.count == reference.count
    if reference.count:
        assert math.isclose(merged.mean, reference.mean,
                            rel_tol=1e-9, abs_tol=1e-6)
        if reference.count > 1:
            assert math.isclose(merged.variance, reference.variance,
                                rel_tol=1e-6, abs_tol=1e-3)
        else:
            assert math.isnan(merged.variance)
        assert merged.min == reference.min
        assert merged.max == reference.max


def test_summary_digest_merge_rejects_other_types():
    with pytest.raises(ValueError):
        SummaryDigest().merge(object())


def test_sliding_window_summary_feeds_digest():
    window = SlidingWindow(size=4)
    for value in (1.0, 2.0, 3.0, 4.0, 5.0):
        window.update(value)
    summary = window.summary()
    assert summary.count == 4  # only the windowed tail
    assert summary.min == 2.0 and summary.max == 5.0
    assert math.isclose(summary.mean, 3.5)


# -- P2Quantile: tolerance-bounded -----------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       split=st.floats(min_value=0.1, max_value=0.9))
def test_p2_merge_tracks_pooled_quantile(seed, split):
    import random

    rng = random.Random(seed)
    samples = [rng.gauss(100.0, 25.0) for _ in range(600)]
    cut = int(len(samples) * split)

    left = P2Quantile(0.95)
    for value in samples[:cut]:
        left.update(value)
    right = P2Quantile(0.95)
    for value in samples[cut:]:
        right.update(value)
    merged = left.merge(right)

    exact = sorted(samples)[int(0.95 * len(samples))]
    spread = max(samples) - min(samples)
    # P² itself is an approximation; the merge must stay in the same
    # neighbourhood of the true pooled quantile (10% of the sample spread
    # is far tighter than the estimator's own worst case yet loose enough
    # to be seed-stable).
    assert abs(merged.value - exact) <= 0.10 * spread


@given(a=value_lists, b=value_lists)
def test_p2_merge_handles_tiny_sides_exactly(a, b):
    # Below the 5-sample initialization threshold P² stores raw samples, so
    # merging two tiny sketches must be exact: the median of the pooled
    # samples, with no marker interpolation involved.
    left = P2Quantile(0.5)
    for value in a[:3]:
        left.update(value)
    right = P2Quantile(0.5)
    for value in b[:2]:
        right.update(value)
    merged = left.merge(right)
    pooled = sorted(a[:3] + b[:2])
    if len(pooled) < 5:
        reference = P2Quantile(0.5)
        for value in sorted(pooled):
            reference.update(value)
        got, want = merged.value, reference.value
        assert (math.isnan(got) and math.isnan(want)) or \
            math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-9)


def test_p2_quantile_mismatch_raises():
    with pytest.raises(ValueError, match="quantile|q"):
        P2Quantile(0.95).merge(P2Quantile(0.5))
    with pytest.raises(ValueError):
        P2Quantile(0.95).merge(object())

"""Sliding and tumbling windows."""

import math

import pytest

from repro.detect.windows import SlidingWindow, TumblingWindow


class TestSlidingWindow:
    def test_caps_at_size(self):
        w = SlidingWindow(3)
        for v in range(10):
            w.update(v)
        assert w.values() == [7, 8, 9]
        assert w.full

    def test_stats(self):
        w = SlidingWindow(5)
        for v in [1, 2, 3, 4]:
            w.update(v)
        assert w.mean() == 2.5
        assert w.min() == 1
        assert w.max() == 4
        assert w.variance() == pytest.approx(5 / 3)

    def test_empty_stats_are_nan(self):
        w = SlidingWindow(3)
        assert math.isnan(w.mean())
        assert math.isnan(w.min())
        assert math.isnan(w.variance())

    def test_variance_single_sample_nan(self):
        w = SlidingWindow(3)
        w.update(1)
        assert math.isnan(w.variance())

    def test_quartiles(self):
        w = SlidingWindow(5)
        for v in [10, 20, 30, 40, 50]:
            w.update(v)
        assert w.quartiles() == (20, 30, 40)

    def test_quartiles_empty(self):
        q = SlidingWindow(3).quartiles()
        assert all(math.isnan(v) for v in q)

    def test_fraction(self):
        w = SlidingWindow(4)
        for v in [1, 5, 9, 3]:
            w.update(v)
        assert w.fraction(lambda v: v > 4) == 0.5

    def test_fraction_empty_is_zero(self):
        assert SlidingWindow(3).fraction(lambda v: True) == 0.0

    def test_reset(self):
        w = SlidingWindow(3)
        w.update(1)
        w.reset()
        assert len(w) == 0

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestTumblingWindow:
    def test_close_summarizes_and_resets(self):
        w = TumblingWindow()
        for v in [1.0, 2.0, 3.0]:
            w.update(v)
        summary = w.close()
        assert summary == {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert len(w) == 0
        assert w.closed_windows == 1

    def test_close_empty_window(self):
        summary = TumblingWindow().close()
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])

    def test_windows_are_independent(self):
        w = TumblingWindow()
        w.update(10)
        w.close()
        w.update(2)
        assert w.close()["mean"] == 2


class TestRunningMoments:
    """mean()/variance() run off maintained sums, not per-call re-summing."""

    def test_matches_recomputed_stats_over_long_stream(self):
        window = SlidingWindow(64)
        value = 7.0
        for i in range(1000):
            value = (value * 1103515245 + 12345) % 1021 / 10.0
            window.update(value)
            current = window.values()
            assert window.mean() == pytest.approx(sum(current) / len(current))
        n = len(current)
        mean = sum(current) / n
        exact_var = sum((v - mean) ** 2 for v in current) / (n - 1)
        assert window.variance() == pytest.approx(exact_var)

    def test_variance_never_negative_under_cancellation(self):
        # A large-offset constant stream is the classic catastrophic-
        # cancellation case for sum-of-squares variance.
        window = SlidingWindow(8)
        for _ in range(32):
            window.update(1e9 + 0.1)
        assert window.variance() >= 0.0

    def test_reset_clears_running_sums(self):
        window = SlidingWindow(4)
        for v in (10.0, 20.0, 30.0):
            window.update(v)
        window.reset()
        window.update(2.0)
        assert window.mean() == 2.0
        window.update(4.0)
        assert window.variance() == pytest.approx(2.0)

    def test_eviction_updates_moments(self):
        window = SlidingWindow(2)
        for v in (100.0, 1.0, 3.0):
            window.update(v)
        assert window.mean() == 2.0
        assert window.variance() == pytest.approx(2.0)


def test_quartiles_are_ordered_for_denormal_samples():
    # Regression: a*(1-frac) + b*frac is non-monotone at the edge of the
    # float grid — two 5e-324 samples produced q25 > q50.
    window = SlidingWindow(2)
    window.update(5e-324)
    window.update(5e-324)
    q25, q50, q75 = window.quartiles()
    assert q25 <= q50 <= q75
    assert q25 == q50 == q75 == 5e-324


def test_percentile_interpolation_stays_inside_the_samples():
    from repro.detect.windows import _lerp

    assert _lerp(1.0, 2.0, 0.5) == 1.5
    assert _lerp(5e-324, 5e-324, 0.25) == 5e-324
    assert _lerp(-2.0, -1.0, 0.0) == -2.0
    assert _lerp(-2.0, -1.0, 1.0) == -1.0

"""Sliding and tumbling windows."""

import math

import pytest

from repro.detect.windows import SlidingWindow, TumblingWindow


class TestSlidingWindow:
    def test_caps_at_size(self):
        w = SlidingWindow(3)
        for v in range(10):
            w.update(v)
        assert w.values() == [7, 8, 9]
        assert w.full

    def test_stats(self):
        w = SlidingWindow(5)
        for v in [1, 2, 3, 4]:
            w.update(v)
        assert w.mean() == 2.5
        assert w.min() == 1
        assert w.max() == 4
        assert w.variance() == pytest.approx(5 / 3)

    def test_empty_stats_are_nan(self):
        w = SlidingWindow(3)
        assert math.isnan(w.mean())
        assert math.isnan(w.min())
        assert math.isnan(w.variance())

    def test_variance_single_sample_nan(self):
        w = SlidingWindow(3)
        w.update(1)
        assert math.isnan(w.variance())

    def test_quartiles(self):
        w = SlidingWindow(5)
        for v in [10, 20, 30, 40, 50]:
            w.update(v)
        assert w.quartiles() == (20, 30, 40)

    def test_quartiles_empty(self):
        q = SlidingWindow(3).quartiles()
        assert all(math.isnan(v) for v in q)

    def test_fraction(self):
        w = SlidingWindow(4)
        for v in [1, 5, 9, 3]:
            w.update(v)
        assert w.fraction(lambda v: v > 4) == 0.5

    def test_fraction_empty_is_zero(self):
        assert SlidingWindow(3).fraction(lambda v: True) == 0.0

    def test_reset(self):
        w = SlidingWindow(3)
        w.update(1)
        w.reset()
        assert len(w) == 0

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestTumblingWindow:
    def test_close_summarizes_and_resets(self):
        w = TumblingWindow()
        for v in [1.0, 2.0, 3.0]:
            w.update(v)
        summary = w.close()
        assert summary == {"count": 3, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert len(w) == 0
        assert w.closed_windows == 1

    def test_close_empty_window(self):
        summary = TumblingWindow().close()
        assert summary["count"] == 0
        assert math.isnan(summary["mean"])

    def test_windows_are_independent(self):
        w = TumblingWindow()
        w.update(10)
        w.close()
        w.update(2)
        assert w.close()["mean"] == 2

"""Reference (training) distributions."""

import numpy as np
import pytest

from repro.detect.drift import population_stability_index
from repro.detect.reference import ReferenceDistribution


def test_from_samples_pads_range():
    ref = ReferenceDistribution.from_samples("f", [0, 50, 100, 75], margin=0.1)
    assert ref.lo == pytest.approx(-10)
    assert ref.hi == pytest.approx(110)
    assert ref.contains(105)
    assert not ref.contains(120)


def test_quartiles_computed():
    ref = ReferenceDistribution.from_samples("f", range(101))
    q25, q50, q75 = ref.quartiles
    assert q50 == pytest.approx(50)
    assert q25 == pytest.approx(25)
    assert q75 == pytest.approx(75)
    assert ref.iqr == pytest.approx(50)


def test_too_few_samples_raises():
    with pytest.raises(ValueError, match="at least 4"):
        ReferenceDistribution.from_samples("f", [1, 2, 3])


def test_constant_samples_get_nonzero_span():
    ref = ReferenceDistribution.from_samples("f", [5.0, 5.0, 5.0, 5.0])
    assert ref.lo < 5.0 < ref.hi


def test_zero_constant_samples():
    ref = ReferenceDistribution.from_samples("f", [0.0] * 10)
    assert ref.lo < ref.hi


def test_live_histogram_compatible_and_usable():
    rng = np.random.default_rng(0)
    samples = rng.normal(10, 2, 1000)
    ref = ReferenceDistribution.from_samples("f", samples)
    live = ref.new_live_histogram()
    assert ref.histogram.compatible_with(live)
    live.update_many(rng.normal(10, 2, 1000))
    assert population_stability_index(ref.histogram, live) < 0.1


def test_iqr_degenerate_falls_back_positive():
    ref = ReferenceDistribution.from_samples("f", [7.0] * 8)
    assert ref.iqr > 0


def test_repr_mentions_name():
    ref = ReferenceDistribution.from_samples("lat", [1, 2, 3, 4])
    assert "lat" in repr(ref)

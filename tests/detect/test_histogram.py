"""Fixed-bin histograms."""

import pytest

from repro.detect.histogram import Histogram


def test_bin_assignment():
    h = Histogram(0, 10, 5)
    h.update(0.5)
    h.update(9.9)
    assert h.counts == [1, 0, 0, 0, 1]


def test_underflow_overflow():
    h = Histogram(0, 10, 2)
    h.update(-1)
    h.update(10)   # hi edge counts as overflow (half-open range)
    h.update(11)
    assert h.underflow == 1
    assert h.overflow == 2
    assert h.out_of_range_fraction() == 1.0


def test_total_counts_everything():
    h = Histogram(0, 10, 2)
    h.update_many([-5, 5, 15])
    assert h.total == 3


def test_proportions_sum_to_one_ish():
    h = Histogram(0, 10, 4)
    h.update_many(range(10))
    assert sum(h.proportions()) == pytest.approx(1.0, abs=1e-4)


def test_proportions_floor_keeps_positive():
    h = Histogram(0, 10, 4)
    h.update(1)
    assert all(p > 0 for p in h.proportions())


def test_cdf_monotone_ending_at_one():
    h = Histogram(0, 10, 4)
    h.update_many([1, 2, 3, 7, 9])
    cdf = h.cdf()
    assert all(a <= b for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == pytest.approx(1.0)


def test_compatibility():
    a = Histogram(0, 10, 4)
    assert a.compatible_with(Histogram(0, 10, 4))
    assert not a.compatible_with(Histogram(0, 10, 5))
    assert not a.compatible_with(Histogram(0, 11, 4))


def test_reset():
    h = Histogram(0, 10, 2)
    h.update_many([1, 20])
    h.reset()
    assert h.total == 0
    assert h.overflow == 0
    assert h.counts == [0, 0]


def test_invalid_construction():
    with pytest.raises(ValueError):
        Histogram(5, 5, 3)
    with pytest.raises(ValueError):
        Histogram(0, 1, 0)


def test_out_of_range_fraction_empty_is_zero():
    assert Histogram(0, 1, 1).out_of_range_fraction() == 0.0

"""P² streaming quantiles against exact numpy quantiles."""

import math

import numpy as np
import pytest

from repro.detect.quantiles import P2Quantile


def test_bad_q_raises():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_empty_is_nan():
    assert math.isnan(P2Quantile(0.5).value)


def test_fewer_than_five_samples_uses_exact():
    q = P2Quantile(0.5)
    for v in [3.0, 1.0, 2.0]:
        q.update(v)
    assert q.value == 2.0


@pytest.mark.parametrize("quantile", [0.5, 0.9, 0.99])
def test_tracks_uniform_distribution(quantile):
    rng = np.random.default_rng(0)
    estimator = P2Quantile(quantile)
    data = rng.uniform(0, 100, 5000)
    for v in data:
        estimator.update(v)
    exact = np.quantile(data, quantile)
    assert estimator.value == pytest.approx(exact, abs=3.0)


def test_tracks_lognormal_median():
    rng = np.random.default_rng(1)
    estimator = P2Quantile(0.5)
    data = rng.lognormal(3.0, 0.5, 5000)
    for v in data:
        estimator.update(v)
    assert estimator.value == pytest.approx(np.median(data), rel=0.05)


def test_count_increments():
    q = P2Quantile(0.5)
    for v in range(10):
        q.update(v)
    assert q.count == 10


def test_monotone_data():
    q = P2Quantile(0.9)
    for v in range(1000):
        q.update(float(v))
    assert q.value == pytest.approx(900, abs=20)


def test_constant_data():
    q = P2Quantile(0.5)
    for _ in range(100):
        q.update(5.0)
    assert q.value == 5.0


@pytest.mark.parametrize("distribution", ["uniform", "normal", "exponential"])
@pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.99])
def test_randomized_accuracy_vs_exact_quantiles(distribution, q):
    """P² stays close to the exact sorted-sample quantile on random streams."""
    rng = np.random.default_rng(20260805)
    if distribution == "uniform":
        samples = rng.uniform(0.0, 100.0, size=5000)
    elif distribution == "normal":
        samples = rng.normal(50.0, 15.0, size=5000)
    else:
        samples = rng.exponential(10.0, size=5000)

    estimator = P2Quantile(q)
    for value in samples:
        estimator.update(value)

    exact = float(np.quantile(samples, q))
    spread = float(np.quantile(samples, 0.95) - np.quantile(samples, 0.05))
    # Five markers cannot be exact; require the estimate within a modest
    # fraction of the distribution's bulk spread.
    assert abs(estimator.value - exact) < 0.08 * spread
    assert samples.min() <= estimator.value <= samples.max()


def test_pre_marker_estimates_track_exact_small_sample_quantiles():
    rng = np.random.default_rng(7)
    for size in (1, 2, 3, 4):
        values = rng.uniform(0.0, 1.0, size=size)
        estimator = P2Quantile(0.5)
        for v in values:
            estimator.update(v)
        assert estimator.value == pytest.approx(
            float(np.quantile(values, 0.5)))

"""Sketch serialization: ``from_json(to_json(s))`` must be *identity*.

The fleet results store persists digest sketches as JSON and regenerates
reports from them, promising byte-identical output — which only holds if
the round trip is exact, not merely close.  These properties pin that:
after a trip through ``json.dumps``/``json.loads`` (the store's actual
transport), every observable of the restored sketch equals the original
bit-for-bit, and the restored sketch *keeps behaving identically* under
further updates and merges.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.detect.histogram import Histogram
from repro.detect.quantiles import P2Quantile
from repro.detect.streaming import RateCounter, SummaryDigest

values = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
value_lists = st.lists(values, max_size=200)


def round_trip(sketch):
    """The store's transport, verbatim: JSON text in, JSON text out."""
    return type(sketch).from_json(json.loads(json.dumps(sketch.to_json())))


# -- SummaryDigest ---------------------------------------------------------


@given(samples=value_lists)
def test_summary_digest_round_trip_is_identity(samples):
    digest = SummaryDigest.from_values(samples)
    restored = round_trip(digest)
    assert restored.count == digest.count
    assert restored.to_json() == digest.to_json()
    # Exactness is bitwise, not tolerance: derived views match exactly.
    assert restored.to_dict() == digest.to_dict()


@given(samples=value_lists, more=value_lists)
def test_summary_digest_round_trip_behaves_identically(samples, more):
    digest = SummaryDigest.from_values(samples)
    restored = round_trip(digest)
    for value in more:
        digest.update(value)
        restored.update(value)
    assert restored.to_json() == digest.to_json()


# -- RateCounter -----------------------------------------------------------

events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10**12), st.booleans()),
    max_size=100).map(sorted)


@given(log=events)
def test_rate_counter_round_trip_is_identity(log):
    counter = RateCounter(1000)
    for time, hit in log:
        counter.observe(time, hit)
    restored = round_trip(counter)
    assert restored.window == counter.window
    assert list(restored._events) == list(counter._events)
    assert restored._hits == counter._hits


@given(log=events, later=st.integers(min_value=0, max_value=10**12))
def test_rate_counter_round_trip_behaves_identically(log, later):
    counter = RateCounter(1000)
    for time, hit in log:
        counter.observe(time, hit)
    restored = round_trip(counter)
    now = (log[-1][0] if log else 0) + later
    assert restored.rate(now) == counter.rate(now)
    assert restored.count(now) == counter.count(now)


# -- Histogram -------------------------------------------------------------


@given(samples=value_lists)
def test_histogram_round_trip_is_identity(samples):
    histogram = Histogram(-100.0, 100.0, 16)
    histogram.update_many(samples)
    restored = round_trip(histogram)
    assert restored.counts == histogram.counts
    assert restored.underflow == histogram.underflow
    assert restored.overflow == histogram.overflow
    assert restored.total == histogram.total
    assert restored.compatible_with(histogram)


@given(samples=value_lists, q=st.floats(min_value=0.0, max_value=1.0))
def test_histogram_round_trip_quantiles_identical(samples, q):
    histogram = Histogram(-100.0, 100.0, 16)
    histogram.update_many(samples)
    restored = round_trip(histogram)
    value = histogram.quantile(q)
    restored_value = restored.quantile(q)
    assert value == restored_value or (value != value
                                       and restored_value != restored_value)


def test_histogram_from_json_rejects_bad_counts():
    state = Histogram(0.0, 1.0, 4).to_json()
    state["counts"] = [0, 0]
    try:
        Histogram.from_json(state)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError for truncated counts")


# -- P2Quantile ------------------------------------------------------------


@given(samples=value_lists)
def test_p2_round_trip_is_identity(samples):
    sketch = P2Quantile(0.95)
    for value in samples:
        sketch.update(value)
    restored = round_trip(sketch)
    assert restored.to_json() == sketch.to_json()
    value, restored_value = sketch.value, restored.value
    assert value == restored_value or (value != value
                                       and restored_value != restored_value)


@given(samples=value_lists, more=value_lists)
def test_p2_round_trip_behaves_identically(samples, more):
    # Covers both phases: before five samples (buffer replay) and after
    # (marker updates) the restored sketch tracks the original exactly.
    sketch = P2Quantile(0.95)
    for value in samples:
        sketch.update(value)
    restored = round_trip(sketch)
    for value in more:
        sketch.update(value)
        restored.update(value)
    assert restored.to_json() == sketch.to_json()


@given(a=value_lists, b=value_lists)
def test_p2_round_trip_merges_identically(a, b):
    left = P2Quantile(0.95)
    for value in a:
        left.update(value)
    right = P2Quantile(0.95)
    for value in b:
        right.update(value)
    merged_live = P2Quantile.from_json(left.to_json()).merge(right)
    merged_restored = round_trip(left).merge(round_trip(right))
    assert merged_live.to_json() == merged_restored.to_json()

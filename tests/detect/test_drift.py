"""Drift metrics: PSI, KS, quartile shift, reports."""

import numpy as np
import pytest

from repro.detect.drift import (
    DriftReport,
    ks_statistic,
    population_stability_index,
    quartile_shift,
)
from repro.detect.histogram import Histogram


def _hist(values, lo=0, hi=100, bins=20):
    h = Histogram(lo, hi, bins)
    h.update_many(values)
    return h


def test_identical_distributions_score_near_zero():
    rng = np.random.default_rng(0)
    ref = _hist(rng.uniform(0, 100, 5000))
    live = _hist(rng.uniform(0, 100, 5000))
    assert population_stability_index(ref, live) < 0.02
    assert ks_statistic(ref, live) < 0.05


def test_shifted_distribution_scores_high():
    rng = np.random.default_rng(0)
    ref = _hist(rng.normal(30, 5, 5000))
    live = _hist(rng.normal(70, 5, 5000))
    assert population_stability_index(ref, live) > 1.0
    assert ks_statistic(ref, live) > 0.5


def test_psi_is_symmetric_in_magnitude():
    rng = np.random.default_rng(1)
    a = _hist(rng.normal(40, 5, 3000))
    b = _hist(rng.normal(60, 5, 3000))
    assert population_stability_index(a, b) == pytest.approx(
        population_stability_index(b, a), rel=0.3
    )


def test_incompatible_histograms_raise():
    with pytest.raises(ValueError, match="not comparable"):
        ks_statistic(_hist([], bins=10), _hist([], bins=20))


def test_quartile_shift():
    assert quartile_shift((10, 20, 30), (10, 20, 30), scale=10) == 0.0
    assert quartile_shift((10, 20, 30), (15, 20, 30), scale=10) == 0.5


def test_quartile_shift_bad_scale():
    with pytest.raises(ValueError):
        quartile_shift((1, 2, 3), (1, 2, 3), scale=0)


def test_drift_report_verdict():
    rng = np.random.default_rng(2)
    ref = _hist(rng.normal(50, 5, 3000))
    same = _hist(rng.normal(50, 5, 3000))
    moved = _hist(rng.normal(90, 5, 3000))

    ok = DriftReport.from_histograms("f", ref, same)
    assert not ok.drifted
    bad = DriftReport.from_histograms("f", ref, moved)
    assert bad.drifted
    assert "drifted=True" in repr(bad)


def test_drift_report_out_of_range_alone_trips():
    ref = _hist(np.linspace(0, 99, 100))
    live = Histogram(0, 100, 20)
    live.update_many([150] * 10 + [50] * 10)
    report = DriftReport.from_histograms("f", ref, live)
    assert report.out_of_range == 0.5
    assert report.drifted

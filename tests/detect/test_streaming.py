"""Streaming estimators."""

import math

import numpy as np
import pytest

from repro.detect.streaming import Ewma, MeanVariance, MovingAverage, RateCounter


class TestMovingAverage:
    def test_empty_is_nan(self):
        assert math.isnan(MovingAverage(3).value)

    def test_partial_window(self):
        ma = MovingAverage(4)
        assert ma.update(2.0) == 2.0
        assert ma.update(4.0) == 3.0

    def test_full_window_evicts_oldest(self):
        ma = MovingAverage(2)
        ma.update(1.0)
        ma.update(3.0)
        assert ma.update(5.0) == 4.0  # (3 + 5) / 2

    def test_count_caps_at_window(self):
        ma = MovingAverage(3)
        for v in range(10):
            ma.update(v)
        assert ma.count == 3

    def test_matches_numpy_tail_mean(self):
        values = np.arange(50, dtype=float)
        ma = MovingAverage(7)
        for v in values:
            ma.update(v)
        assert ma.value == pytest.approx(values[-7:].mean())

    def test_window_below_one_raises(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_reset(self):
        ma = MovingAverage(3)
        ma.update(5.0)
        ma.reset()
        assert math.isnan(ma.value)
        assert ma.count == 0


class TestEwma:
    def test_first_sample_is_value(self):
        e = Ewma(0.5)
        assert e.update(10.0) == 10.0

    def test_smoothing(self):
        e = Ewma(0.5)
        e.update(0.0)
        assert e.update(10.0) == 5.0
        assert e.update(10.0) == 7.5

    def test_alpha_one_tracks_exactly(self):
        e = Ewma(1.0)
        e.update(1.0)
        assert e.update(9.0) == 9.0

    def test_bad_alpha_raises(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)

    def test_empty_is_nan_and_reset(self):
        e = Ewma(0.3)
        assert math.isnan(e.value)
        e.update(1.0)
        e.reset()
        assert math.isnan(e.value)


class TestMeanVariance:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 2.0, 200)
        mv = MeanVariance()
        for v in data:
            mv.update(v)
        assert mv.mean == pytest.approx(data.mean())
        assert mv.variance == pytest.approx(data.var(ddof=1))
        assert mv.stddev == pytest.approx(data.std(ddof=1))

    def test_variance_needs_two_samples(self):
        mv = MeanVariance()
        mv.update(1.0)
        assert math.isnan(mv.variance)

    def test_empty_mean_is_nan(self):
        assert math.isnan(MeanVariance().mean)

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=50), rng.normal(3.0, 1.0, 70)
        left, right, combined = MeanVariance(), MeanVariance(), MeanVariance()
        for v in a:
            left.update(v)
            combined.update(v)
        for v in b:
            right.update(v)
            combined.update(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_with_empty_sides(self):
        a = MeanVariance()
        a.update(1.0)
        a.merge(MeanVariance())
        assert a.count == 1
        empty = MeanVariance()
        empty.merge(a)
        assert empty.mean == 1.0


class TestRateCounter:
    def test_empty_rate_is_zero(self):
        assert RateCounter(100).rate(0) == 0.0

    def test_simple_fraction(self):
        rc = RateCounter(100)
        rc.observe(1, True)
        rc.observe(2, False)
        rc.observe(3, True)
        assert rc.rate(3) == pytest.approx(2 / 3)

    def test_old_events_evicted(self):
        rc = RateCounter(10)
        rc.observe(0, True)
        rc.observe(11, False)
        assert rc.rate(11) == 0.0
        assert rc.count(11) == 1

    def test_boundary_event_exactly_at_cutoff_evicted(self):
        rc = RateCounter(10)
        rc.observe(0, True)
        assert rc.count(10) == 0

    def test_rate_decays_to_zero_with_no_new_events(self):
        rc = RateCounter(10)
        rc.observe(0, True)
        assert rc.rate(5) == 1.0
        assert rc.rate(100) == 0.0

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            RateCounter(0)

    def test_rate_uses_running_hit_count(self):
        counter = RateCounter(window=100)
        for t in range(0, 1000, 10):
            counter.observe(t, t % 30 == 0)
            expected_hits = sum(1 for tt, hit in counter._events if hit)
            assert counter._hits == expected_hits
            assert counter.rate(t) == pytest.approx(
                expected_hits / len(counter._events))

    def test_eviction_keeps_hit_count_exact(self):
        counter = RateCounter(window=10)
        counter.observe(0, True)
        counter.observe(5, False)
        counter.observe(20, True)  # evicts both earlier events
        assert counter._hits == 1
        assert counter.rate(20) == 1.0
        assert counter.rate(40) == 0.0
        assert counter._hits == 0

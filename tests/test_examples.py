"""Smoke tests: every example script runs to completion.

The fast ones run in the normal suite; the expensive ones are marked slow.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name):
    path = EXAMPLES / name
    assert path.exists(), "missing example {}".format(name)
    # Run as __main__ so the `if __name__ == "__main__":` body executes.
    runpy.run_path(str(path), run_name="__main__")


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "disabled it" in out


def test_scheduler_fairness(capsys):
    run_example("scheduler_fairness.py")
    out = capsys.readouterr().out
    assert "with P6 guardrail" in out
    assert "batch" in out


def test_feedback_loops(capsys):
    run_example("feedback_loops.py")
    out = capsys.readouterr().out
    assert "key-flapping" in out
    assert "dampened by disabling" in out


def test_synthesized_guardrails(capsys):
    run_example("synthesized_guardrails.py")
    out = capsys.readouterr().out
    assert "generated P4 guardrail" in out
    assert "auto-tightening trajectory" in out


def test_fleet_rollout(capsys):
    run_example("fleet_rollout.py")
    out = capsys.readouterr().out
    assert "clean rollout" in out
    assert "rolled back to v1" in out


@pytest.mark.slow
def test_tiered_memory(capsys):
    run_example("tiered_memory.py")
    out = capsys.readouterr().out
    assert "hit rate (skewed)" in out


@pytest.mark.slow
def test_congestion_collapse(capsys):
    run_example("congestion_collapse.py")
    out = capsys.readouterr().out
    assert "utilization @400Mbps" in out


@pytest.mark.slow
def test_linnos_guardrail(capsys):
    run_example("linnos_guardrail.py")
    out = capsys.readouterr().out
    assert "Figure 2 summary" in out
    assert "guardrail triggered" in out


@pytest.mark.slow
def test_closed_loop_example(capsys):
    run_example("closed_loop.py")
    out = capsys.readouterr().out
    assert "RETRAIN_DONE" in out

"""Guardrail manager: incremental deployment and runtime update."""

import pytest

from repro.core.errors import GuardrailError
from repro.core.registry import GuardrailManager
from repro.sim.units import SECOND


def spec(name="g", threshold=10):
    return (
        "guardrail {} {{ trigger: {{ TIMER(start_time, 1s) }}, "
        "rule: {{ LOAD(m) <= {} }}, action: {{ REPORT() }} }}".format(
            name, threshold
        )
    )


@pytest.fixture
def manager(host):
    return GuardrailManager(host)


def test_load_compiles_and_arms(manager, host):
    monitor = manager.load(spec())
    assert monitor.enabled
    assert "g" in manager
    host.store.save("m", 99)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 1


def test_load_without_arming(manager):
    monitor = manager.load(spec(), arm=False)
    assert not monitor.enabled


def test_duplicate_load_rejected(manager):
    manager.load(spec())
    with pytest.raises(GuardrailError, match="already loaded"):
        manager.load(spec())


def test_incremental_deployment_while_running(manager, host):
    manager.load(spec("first"))
    host.engine.run(until=2 * SECOND)
    manager.load(spec("second"))
    host.engine.run(until=4 * SECOND)
    assert manager.get("first").check_count == 4
    assert manager.get("second").check_count == 2


def test_update_replaces_without_gap(manager, host):
    host.store.save("m", 15)
    manager.load(spec(threshold=10))
    host.engine.run(until=1 * SECOND)
    assert manager.get("g").violation_count == 1

    updated = manager.update(spec(threshold=20))  # relax at runtime
    host.engine.run(until=3 * SECOND)
    assert updated.violation_count == 0
    assert manager.update_count == 1


def test_update_disarms_old_monitor(manager, host):
    old = manager.load(spec())
    manager.update(spec())
    assert not old.enabled
    host.engine.run(until=2 * SECOND)
    assert old.check_count == 0


def test_update_unloaded_rejected(manager):
    with pytest.raises(GuardrailError, match="not loaded"):
        manager.update(spec())


def test_unload_disarms_and_removes(manager, host):
    monitor = manager.load(spec())
    manager.unload("g")
    assert "g" not in manager
    host.engine.run(until=2 * SECOND)
    assert monitor.check_count == 0


def test_get_unknown_lists_loaded(manager):
    manager.load(spec("known"))
    with pytest.raises(GuardrailError, match="known"):
        manager.get("ghost")


def test_enable_disable_by_name(manager, host):
    manager.load(spec())
    manager.disable("g")
    host.engine.run(until=2 * SECOND)
    assert manager.get("g").check_count == 0
    manager.enable("g")
    host.engine.run(until=4 * SECOND)
    assert manager.get("g").check_count == 2


def test_load_all_from_one_file(manager):
    text = spec("a") + "\n" + spec("b")
    monitors = manager.load_all(text)
    assert [m.name for m in monitors] == ["a", "b"]
    assert manager.names() == ["a", "b"]


def test_totals_aggregate(manager, host):
    host.store.save("m", 99)
    manager.load(spec("a"))
    manager.load(spec("b"))
    host.engine.run(until=2 * SECOND)
    assert manager.total_violations() == 4
    assert manager.total_overhead_ns() > 0
    stats = manager.stats()
    assert set(stats) == {"a", "b"}


def test_monitors_in_load_order(manager):
    manager.load(spec("zz"))
    manager.load(spec("aa"))
    assert [m.name for m in manager.monitors()] == ["zz", "aa"]
    assert manager.names() == ["aa", "zz"]


def test_update_with_aggregates_keeps_estimator_state(manager, host):
    """Updating a guardrail must not reset a shared derived key's history."""
    agg_spec = (
        "guardrail g {{ trigger: {{ TIMER(start_time, 1s) }}, "
        "rule: {{ AVG(m, 60s) <= {} }}, action: {{ REPORT() }} }}"
    )
    manager.load(agg_spec.format(100))
    for v in (10.0, 20.0, 30.0):
        host.store.save("m", v)
    before = host.store.load("m.avg60000000000")
    manager.update(agg_spec.format(50))
    assert host.store.load("m.avg60000000000") == before == 20.0

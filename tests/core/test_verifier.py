"""The eBPF-style static verifier."""

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.core.errors import VerifierError
from repro.core.verifier import VerifierConfig


def compile_text(text, **config_kwargs):
    compiler = GuardrailCompiler(verifier_config=VerifierConfig(**config_kwargs))
    return compiler.compile(text)


def guardrail(rules, trigger="TIMER(start_time, 1s)", actions="REPORT()"):
    return "guardrail g {{ trigger: {{ {} }}, rule: {{ {} }}, action: {{ {} }} }}".format(
        trigger, rules, actions
    )


def test_simple_guardrail_admitted_with_costs():
    compiled = compile_text(guardrail("LOAD(a) <= 1"))
    assert compiled.verification.total_cost > 0
    assert len(compiled.verification.rule_costs) == 1


def test_rule_over_budget_rejected():
    with pytest.raises(VerifierError, match="budget"):
        compile_text(guardrail("LOAD(a) <= 1"), max_rule_cost=2)


def test_total_budget_rejected():
    rules = ", ".join("LOAD(k{}) <= 1".format(i) for i in range(10))
    with pytest.raises(VerifierError, match="total rule cost"):
        compile_text(guardrail(rules), max_total_cost=20, max_rules=16)


def test_too_many_rules_rejected():
    rules = ", ".join("LOAD(k{}) <= 1".format(i) for i in range(5))
    with pytest.raises(VerifierError, match="rules, max"):
        compile_text(guardrail(rules), max_rules=3)


def test_too_many_actions_rejected():
    actions = ", ".join(["REPORT()"] * 4)
    with pytest.raises(VerifierError, match="actions, max"):
        compile_text(guardrail("LOAD(a) <= 1", actions=actions), max_actions=2)


def test_too_many_triggers_rejected():
    triggers = ", ".join(["TIMER(start_time, 1s)"] * 3)
    with pytest.raises(VerifierError, match="triggers, max"):
        compile_text(guardrail("LOAD(a) <= 1", trigger=triggers), max_triggers=2)


def test_timer_below_minimum_interval_rejected():
    with pytest.raises(VerifierError, match="below the minimum"):
        compile_text(guardrail("LOAD(a) <= 1", trigger="TIMER(start_time, 1us)"))


def test_min_timer_interval_configurable():
    compiled = compile_text(
        guardrail("LOAD(a) <= 1", trigger="TIMER(start_time, 1us)"),
        min_timer_interval=100, max_ops_per_second=10_000_000,
    )
    assert compiled.trigger_params[0][2] == 1000


def test_ops_rate_budget_enforced():
    with pytest.raises(VerifierError, match="ops/s"):
        compile_text(
            guardrail("LOAD(a) <= 1", trigger="TIMER(start_time, 1ms)"),
            max_ops_per_second=100,
        )


def test_function_trigger_gets_stricter_inline_budget():
    big_rule = " + ".join(["LOAD(a)"] * 20) + " <= 100"
    # Admitted under a TIMER...
    compile_text(guardrail(big_rule))
    # ...but rejected when FUNCTION-triggered.
    with pytest.raises(VerifierError, match="inline budget"):
        compile_text(
            "guardrail g { trigger: { FUNCTION(hook) }, "
            "rule: { " + big_rule + " }, action: { REPORT() } }",
            max_inline_rule_cost=32,
        )


def test_expensive_save_action_rejected():
    expression = " + ".join(["LOAD(a)"] * 30)
    with pytest.raises(VerifierError, match="action SAVE"):
        compile_text(
            guardrail("LOAD(a) <= 1",
                      actions="SAVE(k, {})".format(expression)),
            max_rule_cost=50,
        )


def test_verification_result_exposes_rate_estimate():
    compiled = compile_text(guardrail("LOAD(a) <= 1"))
    # cost 5 per check at 1 check/second
    assert compiled.verification.estimated_ops_per_second == pytest.approx(
        compiled.verification.total_cost, rel=0.01
    )
    assert "VerificationResult" in repr(compiled.verification)

"""Monitor runtime: evaluation, violations, dispatch, cooldown, overhead."""


from repro.core.compiler import GuardrailCompiler
from repro.sim.units import SECOND


def load(host, text, cooldown=0, arm=True):
    monitor = GuardrailCompiler().compile(text, cooldown=cooldown).instantiate(host)
    if arm:
        monitor.arm()
    return monitor


SIMPLE = """
guardrail g {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(metric) <= 10 },
  action: { SAVE(flag, true) }
}
"""


def test_satisfied_rule_never_dispatches(host):
    host.store.save("metric", 5)
    monitor = load(host, SIMPLE)
    host.engine.run(until=5 * SECOND)
    assert monitor.check_count == 5
    assert monitor.violation_count == 0
    assert host.store.load("flag") is None


def test_violation_dispatches_actions(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 1
    assert host.store.load("flag") is True


def test_missing_data_is_inconclusive_not_violation(host):
    monitor = load(host, SIMPLE)
    host.engine.run(until=3 * SECOND)
    assert monitor.violation_count == 0
    assert monitor.inconclusive_count == 3


def test_violation_record_fields(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    host.engine.run(until=1 * SECOND)
    violation = monitor.violations[0]
    assert violation.guardrail == "g"
    assert violation.time == 1 * SECOND
    assert "LOAD(metric)" in violation.rule


def test_cooldown_suppresses_repeat_dispatch(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE, cooldown=3 * SECOND)
    host.engine.run(until=5 * SECOND)
    assert monitor.violation_count == 5          # still recorded
    assert monitor.action_dispatch_count == 2    # t=1s and t=4s only


def test_without_cooldown_every_violation_dispatches(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    host.engine.run(until=4 * SECOND)
    assert monitor.action_dispatch_count == 4


def test_multiple_rules_evaluated_independently(host):
    text = """
guardrail multi {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(a) <= 10, LOAD(b) <= 10 },
  action: { REPORT() }
}
"""
    host.store.save("a", 100)
    host.store.save("b", 1)
    monitor = load(host, text)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 1
    assert "LOAD(a)" in monitor.violations[0].rule


def test_function_trigger_payload_visible_to_rule(host):
    host.hooks.declare("mm.alloc")
    text = """
guardrail bounds {
  trigger: { FUNCTION(mm.alloc) },
  rule: { granted <= available },
  action: { REPORT() }
}
"""
    monitor = load(host, text)
    host.hooks.get("mm.alloc").fire(granted=5, available=10)
    host.hooks.get("mm.alloc").fire(granted=50, available=10)
    assert monitor.check_count == 2
    assert monitor.violation_count == 1
    assert monitor.violations[0].payload["granted"] == 50


def test_disarm_stops_checks(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    host.engine.run(until=1 * SECOND)
    monitor.disarm()
    host.engine.run(until=5 * SECOND)
    assert monitor.check_count == 1
    assert not monitor.enabled


def test_arm_disarm_idempotent(host):
    monitor = load(host, SIMPLE, arm=False)
    monitor.arm()
    monitor.arm()
    monitor.disarm()
    monitor.disarm()


def test_overhead_accounting(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    host.engine.run(until=3 * SECOND)
    overhead = monitor.overhead
    assert overhead.checks == 3
    assert overhead.actions == 3
    assert overhead.ops > 0
    assert overhead.simulated_ns > 0


def test_manual_check_outside_triggers(host):
    host.store.save("metric", 99)
    monitor = load(host, SIMPLE, arm=False)
    violations = monitor.check()
    assert len(violations) == 1
    assert monitor.check_count == 1


def test_stats_shape(host):
    monitor = load(host, SIMPLE)
    stats = monitor.stats()
    assert stats["name"] == "g"
    assert set(stats) == {
        "name", "enabled", "checks", "violations", "inconclusive",
        "action_dispatches", "action_errors", "rule_crashes",
        "action_crashes", "overhead",
    }


def test_violation_list_bounded(host):
    host.store.save("metric", 50)
    monitor = load(host, SIMPLE)
    monitor.max_recorded_violations = 2
    host.engine.run(until=5 * SECOND)
    assert monitor.violation_count == 5
    assert len(monitor.violations) == 2


def test_rule_sources_property(host):
    monitor = load(host, SIMPLE, arm=False)
    assert monitor.rule_sources == ["(LOAD(metric) <= 10)"]


def test_broken_action_contained_not_crashing(host):
    # REPLACE names a slot that was never registered: dispatching must not
    # propagate — the violation is recorded and the error reported.
    text = """
guardrail broken {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(metric) <= 10 },
  action: { REPLACE(ghost.slot, ghost.impl), SAVE(flag, true) }
}
"""
    host.store.save("metric", 99)
    monitor = load(host, text)
    host.engine.run(until=2 * SECOND)  # must not raise
    assert monitor.violation_count == 2
    assert monitor.action_error_count == 2
    # Later actions in the list still ran.
    assert host.store.load("flag") is True
    errors = host.reporter.notes_for(kind="ACTION_ERROR")
    assert "ghost.slot" in errors[0]["detail"]
    assert monitor.stats()["action_errors"] == 2


class _BombAction:
    """An action handler with a plain bug: raises a non-GuardrailError."""

    kind = "BOMB"

    def execute(self, ctx):
        raise KeyError("action handler bug")

    def trace_detail(self):
        return ""


def test_crashing_action_contained_and_counted(host):
    # The _maybe_dispatch bugfix: only GuardrailError used to be caught, so
    # a KeyError from one action aborted the whole simulation run.
    host.store.save("metric", 99)
    monitor = load(host, SIMPLE)
    monitor.compiled.actions.insert(0, _BombAction())
    host.engine.run(until=1 * SECOND)  # must not raise
    assert monitor.action_crash_count == 1
    assert monitor.action_error_count == 0   # crash, not misconfiguration
    assert host.store.load("flag") is True   # later actions still ran
    assert monitor.stats()["action_crashes"] == 1
    assert host.supervisor.action_crash_count == 1
    notes = host.reporter.notes_for(kind="ACTION_CRASH")
    assert notes and "KeyError" in notes[0]["detail"]


def test_crashing_action_pre_fix_reproduction(host):
    # With containment off the original crash comes back.
    host.supervisor.contain = False
    host.store.save("metric", 99)
    monitor = load(host, SIMPLE)
    monitor.compiled.actions.insert(0, _BombAction())
    import pytest

    with pytest.raises(KeyError, match="action handler bug"):
        host.engine.run(until=1 * SECOND)


def test_repeated_action_crashes_trip_the_guardrail_breaker(host):
    host.store.save("metric", 99)
    monitor = load(host, SIMPLE)
    monitor.compiled.actions.insert(0, _BombAction())
    host.engine.run(until=5 * SECOND)
    breaker = host.supervisor.breaker("g")
    assert breaker.trip_count >= 1
    assert monitor.action_crash_count >= 3
    assert host.reporter.notes_for(kind="BREAKER_OPEN")

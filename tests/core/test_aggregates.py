"""Declarative aggregates: parsing, lowering, registration, semantics."""

import math

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.core.errors import ParseError
from repro.core.registry import GuardrailManager
from repro.core.spec import ast as A
from repro.core.spec import parse_guardrail
from repro.sim.units import MILLISECOND, SECOND


def guardrail(rule, action="REPORT()"):
    return (
        "guardrail g {{ trigger: {{ TIMER(start_time, 1s) }}, "
        "rule: {{ {} }}, action: {{ {} }} }}".format(rule, action)
    )


class TestParsing:
    def test_avg_with_unit_window(self):
        spec = parse_guardrail(guardrail("AVG(lat, 10s) <= 2"))
        agg = spec.rules[0].expression.left
        assert isinstance(agg, A.Aggregate)
        assert agg.function == "AVG"
        assert agg.key == "lat"
        assert agg.arg == 10 * SECOND

    def test_quantiles_take_no_parameter(self):
        spec = parse_guardrail(guardrail("P99(lat) <= 50"))
        assert spec.rules[0].expression.left.function == "P99"
        with pytest.raises(ParseError, match="no parameter"):
            parse_guardrail(guardrail("P99(lat, 5) <= 50"))

    def test_windowed_aggregates_require_parameter(self):
        with pytest.raises(ParseError, match="needs a parameter"):
            parse_guardrail(guardrail("AVG(lat) <= 2"))

    def test_window_must_be_positive(self):
        with pytest.raises(ParseError, match="positive"):
            parse_guardrail(guardrail("RATE(x, 0) <= 1"))

    def test_ewma_alpha_range(self):
        parse_guardrail(guardrail("EWMA(x, 0.3) <= 1"))
        with pytest.raises(ParseError, match="alpha"):
            parse_guardrail(guardrail("EWMA(x, 1.5) <= 1"))

    def test_parameter_must_be_constant(self):
        with pytest.raises(ParseError, match="numeric constant"):
            parse_guardrail(guardrail("AVG(x, LOAD(y)) <= 1"))

    def test_roundtrip(self):
        spec = parse_guardrail(guardrail("AVG(lat, 10s) <= 2 && P95(lat) <= 9"))
        assert parse_guardrail(spec.to_source()) == spec


class TestDerivedNames:
    def test_names_encode_parameters(self):
        assert A.Aggregate("AVG", "k", 1000).derived_name() == "k.avg1000"
        assert A.Aggregate("RATE", "k", 5).derived_name() == "k.rate5"
        assert A.Aggregate("P95", "k").derived_name() == "k.p95"
        assert A.Aggregate("EWMA", "k", 0.5).derived_name() == "k.ewma0_5"

    def test_names_are_valid_store_keys(self):
        from repro.core.featurestore import FeatureStore

        store = FeatureStore()
        for agg in (A.Aggregate("AVG", "a.b", 10), A.Aggregate("EWMA", "k", 0.25)):
            store._check_key(agg.derived_name())


class TestCompilation:
    def test_aggregates_collected_once_across_rules(self):
        text = (
            "guardrail g { trigger: { TIMER(start_time, 1s) }, "
            "rule: { AVG(lat, 1s) <= 2, AVG(lat, 1s) >= 0 }, "
            "action: { REPORT() } }"
        )
        compiled = GuardrailCompiler().compile(text)
        assert len(compiled.aggregates) == 1

    def test_action_aggregates_also_lowered(self):
        compiled = GuardrailCompiler().compile(guardrail(
            "LOAD(x) <= 1", action="SAVE(out, AVG(lat, 1s))"))
        names = [name for _, _, _, name in compiled.aggregates]
        assert "lat.avg1000000000" in names

    def test_registration_is_idempotent_across_guardrails(self, host):
        manager = GuardrailManager(host)
        manager.load(guardrail("AVG(lat, 1s) <= 2"))
        text2 = (
            "guardrail h { trigger: { TIMER(start_time, 1s) }, "
            "rule: { AVG(lat, 1s) <= 5 }, action: { REPORT() } }"
        )
        manager.load(text2)  # same derived key; must not raise
        assert host.store.keys().count("lat.avg1000000000") == 1


class TestSemantics:
    def test_paper_example_average_over_every_10s(self, host):
        """'The average page fault latency over every 10 seconds is below
        2 ms' — written directly in the DSL (§4.3)."""
        manager = GuardrailManager(host)
        monitor = manager.load(guardrail(
            "AVG(page_fault_latency_ms, 10s) <= 2"))
        for i in range(80):
            host.engine.schedule_at(
                i * 100 * MILLISECOND, host.store.save,
                "page_fault_latency_ms", 0.5)
        host.engine.run(until=8 * SECOND)
        assert monitor.violation_count == 0
        for i in range(80, 160):
            host.engine.schedule_at(
                i * 100 * MILLISECOND, host.store.save,
                "page_fault_latency_ms", 9.0)
        # Run past the last save so the 10 s window holds only 9.0 samples.
        host.engine.run(until=19 * SECOND)
        assert monitor.violation_count >= 1
        value = host.store.load("page_fault_latency_ms.avg10000000000")
        assert value == pytest.approx(9.0, abs=0.01)

    def test_rate_aggregate(self, host):
        manager = GuardrailManager(host)
        monitor = manager.load(guardrail("RATE(err, 1s) <= 0.5"))
        for i in range(10):
            host.engine.schedule_at(i * 50 * MILLISECOND, host.store.save,
                                    "err", 1)
        host.engine.run(until=1 * SECOND)
        assert monitor.violation_count == 1

    def test_quantile_aggregate(self, host):
        manager = GuardrailManager(host)
        monitor = manager.load(guardrail("P95(lat) <= 100"))
        for v in [10.0] * 50 + [500.0] * 50:
            host.store.save("lat", v)
        host.engine.run(until=1 * SECOND)
        assert monitor.violation_count == 1

    def test_no_data_is_inconclusive(self, host):
        manager = GuardrailManager(host)
        monitor = manager.load(guardrail("AVG(never_saved, 1s) <= 2"))
        host.engine.run(until=3 * SECOND)
        assert monitor.violation_count == 0
        assert monitor.inconclusive_count == 3

    def test_dependency_tracking_watches_derived_key(self, host):
        from repro.core.dependency import convert_to_dependency_triggered

        manager = GuardrailManager(host)
        monitor = manager.load(guardrail("AVG(lat, 1s) <= 2"))
        convert_to_dependency_triggered(monitor)
        host.engine.run(until=5 * SECOND)
        assert monitor.check_count == 0
        host.store.save("lat", 50.0)
        assert monitor.check_count == 1
        assert monitor.violation_count == 1


def test_windowed_mean_estimator_directly():
    from repro.detect.streaming import WindowedMean

    wm = WindowedMean(100)
    assert math.isnan(wm.mean(0))
    wm.observe(0, 10.0)
    wm.observe(50, 20.0)
    assert wm.mean(50) == 15.0
    assert wm.mean(120) == 20.0   # first sample aged out
    assert wm.count(500) == 0
    with pytest.raises(ValueError):
        WindowedMean(0)


def test_derive_time_average_store_api(host):
    host.store.derive_time_average("x", window=100, name="x.win")
    seen = []
    host.engine.schedule_at(0, host.store.save, "x", 4.0)
    host.engine.schedule_at(50, host.store.save, "x", 8.0)
    host.engine.schedule_at(60, lambda: seen.append(host.store.load("x.win")))
    host.engine.schedule_at(200, lambda: seen.append(host.store.load("x.win")))
    host.engine.run()
    assert seen[0] == 6.0
    assert math.isnan(seen[1])

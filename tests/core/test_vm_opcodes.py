"""Per-opcode VM checks: static cost = charged ops, verifier, None/NaN.

Every opcode gets a minimal expression proving that the verifier's
``static_cost`` equals the ops both backends actually charge at runtime
(short-circuiting only ever lowers the real cost), plus a golden
missing-data matrix pinning the None/NaN semantics the paper's §4.2
crash-free evaluation requires.
"""

import math

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.core.errors import VerifierError
from repro.core.expr import (
    EvalContext,
    compile_expression,
    compile_to_vm,
    static_cost,
)
from repro.core.expr import vm as vm_mod
from repro.core.featurestore import FeatureStore
from repro.core.spec.lexer import tokenize
from repro.core.spec.parser import _Parser
from repro.core.verifier import VerifierConfig


def parse_expr(text):
    return _Parser(tokenize(text)).parse_expression()


def make_store(**values):
    store = FeatureStore()
    for key, value in values.items():
        store._values[key] = value
        store._valid_keys.add(key)
    return store


def run_lane(program, store, payload=None):
    ctx = EvalContext(store, now=5, payload=payload)
    return program(ctx), ctx.ops


def both_lanes(text, store=None, payload=None):
    expr = parse_expr(text)
    store = store if store is not None else make_store()
    value_c, ops_c = run_lane(compile_expression(expr), store, payload)
    value_v, ops_v = run_lane(compile_to_vm(expr), store, payload)
    assert ops_c == ops_v, text
    if isinstance(value_c, float) and math.isnan(value_c):
        assert isinstance(value_v, float) and math.isnan(value_v)
    else:
        assert value_c == value_v and type(value_c) is type(value_v), text
    return value_c, ops_c, expr


# -- static_cost == runtime charged ops, opcode by opcode --------------------
#
# Inputs are chosen so no short-circuit fires: the static bound is then
# exact, for the closure backend and the VM alike.

OPCODE_CASES = [
    ("CONST(folded)", "1 + 2 * 3", {}),
    ("NAME", "n0 + 1", {}),
    ("LOAD", "LOAD(k) + 0", {"k": 7}),
    ("NEG", "-(LOAD(k))", {"k": 7}),
    ("NOT", "!(LOAD(k))", {"k": 0}),
    ("ARITH(+)", "LOAD(k) + LOAD(j)", {"k": 7, "j": 3}),
    ("ARITH(cmp)", "LOAD(k) <= LOAD(j)", {"k": 7, "j": 3}),
    ("EQ", "LOAD(k) == LOAD(j)", {"k": 7, "j": 3}),
    ("DIV", "LOAD(k) / LOAD(j)", {"k": 7, "j": 2}),
    ("AND", "LOAD(k) > 0 && LOAD(j) > 0", {"k": 7, "j": 3}),
    ("OR", "LOAD(k) > 9 || LOAD(j) > 9", {"k": 7, "j": 3}),
    ("ABS", "abs(LOAD(k))", {"k": -7}),
    ("MINMAX", "min(LOAD(k), LOAD(j), 5)", {"k": 7, "j": 3}),
    ("CLAMP", "clamp(LOAD(k), 0, 10)", {"k": 7}),
    ("FUSED", "LOAD(k) <= 1", {"k": 7}),
    ("FUSED(flipped)", "1 <= LOAD(k)", {"k": 7}),
]


@pytest.mark.parametrize("label,text,values",
                         OPCODE_CASES, ids=[c[0] for c in OPCODE_CASES])
def test_static_cost_equals_runtime_ops(label, text, values):
    _, ops, expr = both_lanes(text, make_store(**values), payload={"n0": 4})
    assert ops == static_cost(expr), label


@pytest.mark.parametrize("text,values,expected_ops", [
    # && short-circuits on literal False: the right arm never runs.
    ("false && LOAD(k) > 0", {"k": 7}, 2),
    ("LOAD(k) > 9 && LOAD(j) > 0", {"k": 7, "j": 3}, 5),
    # || short-circuits on a truthy left arm.
    ("true || LOAD(k) > 0", {"k": 7}, 2),
    ("LOAD(k) > 0 || LOAD(j) > 0", {"k": 7, "j": 3}, 5),
])
def test_short_circuit_ops_below_static_bound(text, values, expected_ops):
    _, ops, expr = both_lanes(text, make_store(**values))
    assert ops == expected_ops
    assert ops < static_cost(expr)


def test_numeric_zero_does_not_short_circuit_and():
    # Scalar && short-circuits only on a literal bool False; a numeric 0
    # left arm still evaluates (and charges) the right arm.
    _, ops, _ = both_lanes("LOAD(k) && LOAD(j) > 0", make_store(k=0, j=3))
    assert ops == 7  # 2 (load) + 1 (&&) + 4 (right arm): nothing skipped


# -- verifier through the VM lane --------------------------------------------


def guardrail(rules):
    return ("guardrail g {{ trigger: {{ TIMER(start_time, 1s) }}, "
            "rule: {{ {} }}, action: {{ REPORT() }} }}").format(rules)


def test_vm_lane_respects_verifier_budget():
    compiler = GuardrailCompiler(
        lane="vm", verifier_config=VerifierConfig(max_rule_cost=2))
    with pytest.raises(VerifierError, match="budget"):
        compiler.compile(guardrail("LOAD(a) <= 1"))


def test_vm_lane_verification_costs_match_closure_lane():
    text = guardrail("LOAD(a) <= 1 && LOAD(b) > 0")
    closure_lane = GuardrailCompiler(lane="closure").compile(text)
    vm_lane = GuardrailCompiler(lane="vm").compile(text)
    assert (vm_lane.verification.rule_costs
            == closure_lane.verification.rule_costs)
    assert (vm_lane.verification.total_cost
            == closure_lane.verification.total_cost)
    assert vm_lane.rule_lanes == ["vm"]
    assert closure_lane.rule_lanes == ["closure"]


def test_vm_program_static_budget_argument_holds():
    # Loop-free bytecode: executed instruction count is bounded by program
    # length, the VM restatement of the verifier's static-cost argument.
    expr = parse_expr("LOAD(a) > 0 && (LOAD(b) + 1) / 2 <= min(LOAD(c), 9)")
    program = compile_to_vm(expr)
    assert len(program) >= 2
    assert program.load_keys == ["a", "b", "c"]
    assert len(program.disasm()) == len(program)


# -- golden None/NaN matrix --------------------------------------------------

NAN = float("nan")

MATRIX = [
    ("LOAD(m) + 1", {}, None),
    ("LOAD(m) + 1", {"m": NAN}, None),
    ("LOAD(m) <= 1", {}, None),
    ("LOAD(m) <= 1", {"m": NAN}, None),
    ("1 <= LOAD(m)", {"m": NAN}, None),
    ("-(LOAD(m))", {}, None),
    ("!(LOAD(m))", {}, None),
    ("LOAD(m) == LOAD(m)", {}, None),
    ("LOAD(m) / 2", {}, None),
    ("2 / LOAD(z)", {"z": 0}, None),   # divide-by-zero reads as no-data
    ("abs(LOAD(m))", {}, None),
    ("min(LOAD(m), 1)", {}, None),
    ("max(1, LOAD(m))", {"m": NAN}, None),
    ("clamp(LOAD(m), 0, 10)", {}, None),
    # Logical operators: False/True dominate missing data; otherwise
    # missing data poisons the result.
    ("LOAD(m) && true", {}, None),
    ("true && LOAD(m)", {}, None),
    ("LOAD(m) && false", {}, False),
    ("false && LOAD(m)", {}, False),
    ("LOAD(m) || true", {}, True),
    ("true || LOAD(m)", {}, True),
    ("LOAD(m) || false", {}, None),
    ("false || LOAD(m)", {}, None),
    # Type confusion reads as missing data (§4.2), not as a TypeError.
    ("LOAD(s) + 1", {"s": "oops"}, None),
    ("LOAD(s) <= 1", {"s": "oops"}, None),
    ("-(LOAD(s))", {"s": "oops"}, None),
    ("abs(LOAD(s))", {"s": "oops"}, None),
    ("min(LOAD(s), 1)", {"s": "oops"}, None),
    ("clamp(5, LOAD(s), 10)", {"s": "oops"}, None),
    ("LOAD(s) / 2", {"s": "oops"}, None),
]


@pytest.mark.parametrize("text,values,expected", MATRIX,
                         ids=["{}#{}".format(i, c[0])
                              for i, c in enumerate(MATRIX)])
def test_golden_none_nan_matrix(text, values, expected):
    value, _, _ = both_lanes(text, make_store(**values))
    if expected is None:
        assert value is None
    else:
        assert value is expected


# -- disassembler sanity ------------------------------------------------------


def test_disasm_names_every_opcode():
    expr = parse_expr(
        "!(LOAD(a)) && -(n0) + abs(1 - 2) / clamp(LOAD(b), 0, max(2, 3)) "
        "<= min(LOAD(c), 4) || LOAD(d) == 1")
    listing = "\n".join(compile_to_vm(expr).disasm())
    for mnemonic in ("AND", "OR", "LOAD", "CONST", "NOT"):
        assert mnemonic in listing


def test_columnar_safe_flags_string_constants():
    assert not compile_to_vm(parse_expr('LOAD(a) == "text"')).columnar_safe
    assert compile_to_vm(parse_expr("LOAD(a) <= 1")).columnar_safe
    with pytest.raises(vm_mod.ColumnarError):
        vm_mod.eval_columns(
            compile_to_vm(parse_expr('LOAD(a) == "text"')), 4)

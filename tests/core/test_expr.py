"""Expression compilation: evaluation, missing-data semantics, cost."""

import pytest

from repro.core.errors import CompileError
from repro.core.expr import EvalContext, compile_expression, static_cost
from repro.core.featurestore import FeatureStore
from repro.core.spec import ast as A
from repro.core.spec.lexer import tokenize
from repro.core.spec.parser import _Parser


def parse_expr(text):
    return _Parser(tokenize(text)).parse_expression()


def evaluate(text, store=None, payload=None, env=None, now=0):
    store = store if store is not None else FeatureStore()
    program = compile_expression(parse_expr(text))
    ctx = EvalContext(store, now=now, payload=payload, env=env)
    return program(ctx), ctx


@pytest.mark.parametrize("text,expected", [
    ("1 + 2", 3),
    ("2 * 3 + 4", 10),
    ("2 + 3 * 4", 14),
    ("10 / 4", 2.5),
    ("-(3)", -3),
    ("1 <= 2", True),
    ("2 < 2", False),
    ("3 >= 3", True),
    ("1 == 1", True),
    ("1 != 1", False),
    ("true && false", False),
    ("true || false", True),
    ("!(true)", False),
    ("abs(0 - 5)", 5),
    ("min(3, 1, 2)", 1),
    ("max(3, 1, 2)", 3),
    ("clamp(15, 0, 10)", 10),
    ("clamp(0 - 5, 0, 10)", 0),
    ("clamp(5, 0, 10)", 5),
])
def test_constant_expressions(text, expected):
    value, _ = evaluate(text)
    assert value == expected


def test_load_reads_store():
    store = FeatureStore()
    store.save("x", 7)
    value, _ = evaluate("LOAD(x) + 1", store)
    assert value == 8


def test_load_missing_key_is_none():
    value, _ = evaluate("LOAD(missing)")
    assert value is None


def test_none_propagates_through_arithmetic():
    value, _ = evaluate("LOAD(missing) + 1")
    assert value is None


def test_none_propagates_through_comparison():
    value, _ = evaluate("LOAD(missing) <= 5")
    assert value is None


def test_nan_treated_as_missing():
    store = FeatureStore()
    store.save("x", float("nan"))
    value, _ = evaluate("LOAD(x) <= 5", store)
    assert value is None


def test_short_circuit_and_with_false():
    value, _ = evaluate("false && LOAD(missing)")
    assert value is False


def test_and_with_none_and_true_is_none():
    value, _ = evaluate("true && LOAD(missing)")
    assert value is None


def test_short_circuit_or_with_true():
    value, _ = evaluate("true || LOAD(missing)")
    assert value is True


def test_or_with_none_and_false_is_none():
    value, _ = evaluate("false || LOAD(missing)")
    assert value is None


def test_division_by_zero_is_none_not_crash():
    value, _ = evaluate("1 / 0")
    assert value is None


def test_payload_name_resolution():
    value, _ = evaluate("granted <= available",
                        payload={"granted": 5, "available": 10})
    assert value is True


def test_env_name_resolution():
    value, _ = evaluate("x + 1", env={"x": 41})
    assert value == 42


def test_payload_shadows_env():
    value, _ = evaluate("x", payload={"x": 1}, env={"x": 2})
    assert value == 1


def test_now_builtin_name():
    value, _ = evaluate("now", now=123)
    assert value == 123


def test_unknown_name_is_none():
    value, _ = evaluate("mystery")
    assert value is None


def test_ops_charged_to_context():
    _, ctx = evaluate("LOAD(a) + 1", FeatureStore())
    assert ctx.ops == static_cost(parse_expr("LOAD(a) + 1"))


def test_short_circuit_costs_less_than_static():
    expr = parse_expr("false && (LOAD(a) + LOAD(b) <= 3)")
    program = compile_expression(expr)
    ctx = EvalContext(FeatureStore())
    program(ctx)
    assert ctx.ops < static_cost(expr)


def test_static_cost_is_positive_and_additive():
    small = static_cost(parse_expr("1"))
    bigger = static_cost(parse_expr("1 + 2"))
    assert 0 < small < bigger


def test_load_costs_more_than_literal():
    assert static_cost(parse_expr("LOAD(a)")) > static_cost(parse_expr("1"))


def test_string_literal_evaluates():
    value, _ = evaluate('"hello"')
    assert value == "hello"


def test_abs_arity_error():
    with pytest.raises(CompileError, match="abs"):
        compile_expression(A.Call("abs", [A.NumberLiteral(1), A.NumberLiteral(2)]))


def test_min_needs_two_args():
    with pytest.raises(CompileError):
        compile_expression(A.Call("min", [A.NumberLiteral(1)]))


def test_unknown_builtin_rejected():
    with pytest.raises(CompileError, match="unknown builtin"):
        compile_expression(A.Call("frobnicate", []))


def test_min_with_none_arg_is_none():
    value, _ = evaluate("min(LOAD(missing), 3)")
    assert value is None


def test_not_of_none_is_none():
    value, _ = evaluate("!(LOAD(missing))")
    assert value is None


class TestConstantFolding:
    """Pure subexpressions fold at compile time, bit-identical in ops."""

    FOLDABLE = [
        "2 * 3 + 4",
        "abs(0 - 5)",
        "clamp(15, 0, 10)",
        "!(true) || false",
        "min(3, 1, 2) + max(1, 2)",
        "10 / 4 - 1",
    ]

    def test_folded_programs_are_marked(self):
        from repro.core.expr.compile import _fold_constant  # noqa: F401

        program = compile_expression(parse_expr("1 + 2"))
        assert "folded" in program.__qualname__

    def test_bare_literals_are_not_wrapped(self):
        program = compile_expression(parse_expr("5"))
        assert "folded" not in program.__qualname__

    @pytest.mark.parametrize("text", FOLDABLE)
    def test_folding_preserves_value_and_ops(self, text):
        from repro.core.expr.compile import _compile_node

        expr = parse_expr(text)
        folded = compile_expression(expr)
        generic = _compile_node(expr)
        ctx_folded, ctx_generic = EvalContext(None), EvalContext(None)
        assert folded(ctx_folded) == generic(ctx_generic)
        assert ctx_folded.ops == ctx_generic.ops

    def test_expressions_with_runtime_inputs_do_not_fold(self):
        for text in ("LOAD(x) + 1", "now * 2", "1 + LOAD(x.rate)"):
            program = compile_expression(parse_expr(text))
            assert "folded" not in program.__qualname__


class TestFusedComparisons:
    """LOAD-vs-constant thresholds fuse into one closure, semantics intact."""

    SHAPES = [
        "LOAD(x) < 500",
        "LOAD(x) <= 500",
        "500 > LOAD(x)",
        "LOAD(x) >= 2",
        "LOAD(x) == 3",
        "3 != LOAD(x)",
        "LOAD(x) < 1 + 2",
        "10 / 4 >= LOAD(x)",
    ]
    VALUES = ["missing", 3, 3.0, 499, 501, float("nan"), "oops", True]

    def _unfused(self, expr, monkeypatch):
        from repro.core.expr import compile as C

        monkeypatch.setattr(C, "_try_fuse_comparison", lambda e: None)
        return C._compile_node(expr)

    def test_fusion_engages_for_threshold_shapes(self):
        for text in self.SHAPES:
            program = compile_expression(parse_expr(text))
            assert "fuse" in program.__qualname__, text

    def test_fusion_skips_non_constant_sides(self):
        for text in ("LOAD(x) < LOAD(y)", "LOAD(x) < now", "x < 5"):
            program = compile_expression(parse_expr(text))
            assert "fuse" not in program.__qualname__, text

    @pytest.mark.parametrize("text", SHAPES)
    @pytest.mark.parametrize("value", VALUES)
    def test_fused_matches_generic_value_and_ops(self, text, value, monkeypatch):
        expr = parse_expr(text)
        fused = compile_expression(expr)
        generic = self._unfused(expr, monkeypatch)
        results = []
        for program in (fused, generic):
            store = FeatureStore()
            if value != "missing":
                store.save("x", value)
            ctx = EvalContext(store)
            results.append((program(ctx), ctx.ops))
        assert results[0] == results[1], text

    @pytest.mark.parametrize("text", SHAPES)
    def test_fused_charge_split_matches_generic_on_load_fault(
            self, text, monkeypatch):
        # Fault injection wraps store.load per instance; a load that raises
        # mid-rule must leave the overhead account exactly where the generic
        # three-program chain would have left it.
        class ExplodingStore:
            def load(self, key):
                raise RuntimeError("injected")

        expr = parse_expr(text)
        fused = compile_expression(expr)
        generic = self._unfused(expr, monkeypatch)
        charged = []
        for program in (fused, generic):
            ctx = EvalContext(ExplodingStore())
            with pytest.raises(RuntimeError):
                program(ctx)
            charged.append(ctx.ops)
        assert charged[0] == charged[1], text

    def test_string_equality_still_works_fused(self):
        store = FeatureStore()
        store.save("x", "open")
        value, _ = evaluate('LOAD(x) == "open"', store)
        assert value is True
        value, _ = evaluate('LOAD(x) != "closed"', store)
        assert value is True

    def test_ordered_compare_with_string_constant_is_missing_data(self):
        store = FeatureStore()
        store.save("x", 5)
        value, _ = evaluate('LOAD(x) < "high"', store)
        assert value is None

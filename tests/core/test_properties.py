"""P1-P6 property templates: generated DSL parses, verifies, and behaves."""

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.core.properties import (
    decision_overhead,
    decision_quality,
    fairness_liveness,
    in_distribution,
    output_bounds,
    robustness,
)
from repro.core.registry import GuardrailManager
from repro.core.spec import parse_guardrail
from repro.sim.units import SECOND

ALL_TEMPLATES = [
    in_distribution("pol"),
    robustness("pol", sensitivity_threshold=0.5),
    output_bounds("mm", "mm.alloc", "granted <= available", "slot", "fb"),
    decision_quality("cache", "cache.hit_rate", "cache.random.hit_rate",
                     fallback_slot="cache.evict", fallback_impl="cache.random"),
    decision_overhead("pol", fallback_slot="slot", fallback_impl="fb"),
    fairness_liveness(),
]


@pytest.mark.parametrize("text", ALL_TEMPLATES,
                         ids=["P1", "P2", "P3", "P4", "P5", "P6"])
def test_templates_parse_and_compile(text):
    spec = parse_guardrail(text)
    compiled = GuardrailCompiler().compile(spec)
    assert compiled.verification.total_cost > 0


def test_p1_trips_on_published_drift(host):
    manager = GuardrailManager(host)
    monitor = manager.load(in_distribution("pol", psi_threshold=0.25))
    host.store.save("pol.input_psi_max", 0.1)
    host.store.save("pol.input_oor_max", 0.0)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 0
    host.store.save("pol.input_psi_max", 0.9)
    host.engine.run(until=2 * SECOND)
    assert monitor.violation_count == 1
    # Default P1 actions: REPORT + RETRAIN.
    assert host.retrain_queue.pending[0]["model"] == "pol"
    assert len(host.reporter.reports) == 1


def test_p2_trips_on_sensitivity(host):
    manager = GuardrailManager(host)
    monitor = manager.load(robustness("pol", sensitivity_threshold=0.5))
    host.store.save("pol.output_sensitivity", 2.0)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 1


def test_p3_checks_at_hook_and_replaces(host):
    host.hooks.declare("mm.alloc")
    host.functions.register("slot", lambda: "learned")
    host.functions.register_implementation("fb", lambda: "safe")
    manager = GuardrailManager(host)
    monitor = manager.load(
        output_bounds("mm", "mm.alloc", "granted <= available", "slot", "fb")
    )
    host.hooks.get("mm.alloc").fire(granted=5, available=10)
    assert monitor.violation_count == 0
    host.hooks.get("mm.alloc").fire(granted=50, available=10)
    assert monitor.violation_count == 1
    assert host.functions.slot("slot")() == "safe"


def test_p4_compares_against_baseline_with_margin(host):
    manager = GuardrailManager(host)
    monitor = manager.load(decision_quality(
        "cache", "cache.hit_rate", "cache.random.hit_rate", margin=0.05
    ))
    host.store.save("cache.hit_rate", 0.58)
    host.store.save("cache.random.hit_rate", 0.60)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 0   # within margin
    host.store.save("cache.hit_rate", 0.40)
    host.engine.run(until=2 * SECOND)
    assert monitor.violation_count == 1


def test_p5_trips_on_negative_net_benefit(host):
    manager = GuardrailManager(host)
    monitor = manager.load(decision_overhead("pol"))
    host.store.save("pol.net_benefit", 100)
    host.engine.run(until=1 * SECOND)
    assert monitor.violation_count == 0
    host.store.save("pol.net_benefit", -5)
    host.engine.run(until=2 * SECOND)
    assert monitor.violation_count == 1


def test_p6_uses_paper_100ms_bound(host):
    manager = GuardrailManager(host)
    host.functions.register("sched.pick_next", lambda s: None)
    host.functions.register_implementation("sched.cfs", lambda s: None)
    monitor = manager.load(fairness_liveness())
    host.store.save("sched.max_wait_ms", 50.0)
    host.engine.run(until=SECOND // 10)
    assert monitor.violation_count == 0
    host.store.save("sched.max_wait_ms", 150.0)
    host.engine.run(until=2 * SECOND // 10)
    assert monitor.violation_count == 1


def test_custom_actions_override_defaults():
    text = in_distribution("pol", actions=["REPORT()"])
    spec = parse_guardrail(text)
    assert len(spec.actions) == 1
    assert spec.actions[0].kind == "REPORT"


def test_p1_missing_instrumentation_is_inconclusive(host):
    manager = GuardrailManager(host)
    monitor = manager.load(in_distribution("ghost"))
    host.engine.run(until=2 * SECOND)
    assert monitor.violation_count == 0
    assert monitor.inconclusive_count > 0

"""Feedback-loop (oscillation) detection and dampening (§6)."""


from repro.core.feedback import FeedbackDetector
from repro.core.registry import GuardrailManager
from repro.sim.units import SECOND

PROTECTOR = """
guardrail protector {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(latency_ms) <= 5 || LOAD(ml_enabled) == false },
  action: { SAVE(ml_enabled, false) }
}
"""

RESTORER = """
guardrail restorer {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(quality) >= 0.8 || LOAD(ml_enabled) == true },
  action: { SAVE(ml_enabled, true) }
}
"""


def coupled_system(host):
    """Two guardrails that undo each other, plus the coupling dynamics."""
    store = host.store
    store.save("ml_enabled", True)

    def publish(step=0):
        if store.load("ml_enabled"):
            store.save("latency_ms", 9.0)
            store.save("quality", 0.9)
        else:
            store.save("latency_ms", 2.0)
            store.save("quality", 0.5)
        if step < 100:
            host.engine.schedule(SECOND // 2, publish, step + 1)

    publish()
    manager = GuardrailManager(host)
    manager.load(PROTECTOR)
    manager.load(RESTORER)
    return manager


def test_coupled_guardrails_oscillate(host):
    coupled_system(host)
    host.engine.run(until=10 * SECOND)
    saves = host.reporter.notes_for(kind="SAVE")
    values = [n["detail"].split(" = ")[1] for n in saves]
    # Strict alternation between enabling and disabling.
    assert len(values) >= 8
    assert all(a != b for a, b in zip(values, values[1:]))


def test_detector_reports_key_flapping(host):
    coupled_system(host)
    host.engine.run(until=10 * SECOND)
    reports = FeedbackDetector(host, window=20 * SECOND).scan()
    flapping = [r for r in reports if r.kind == "key-flapping"]
    assert flapping
    assert "ml_enabled" in flapping[0].subjects
    assert flapping[0].count >= 4


def test_detector_reports_action_ping_pong(host):
    coupled_system(host)
    host.engine.run(until=10 * SECOND)
    reports = FeedbackDetector(host, window=20 * SECOND).scan()
    pingpong = [r for r in reports if r.kind == "action-ping-pong"]
    assert pingpong
    assert set(pingpong[0].subjects) == {"protector", "restorer"}


def test_no_oscillation_no_reports(host):
    manager = GuardrailManager(host)
    manager.load(PROTECTOR)
    host.store.save("ml_enabled", True)
    host.store.save("latency_ms", 1.0)
    host.engine.run(until=10 * SECOND)
    assert FeedbackDetector(host, window=20 * SECOND).scan() == []


def test_single_guardrail_repeated_same_save_not_flapping(host):
    # Writing the same value over and over is not an oscillation.
    manager = GuardrailManager(host)
    manager.load(PROTECTOR)
    host.store.save("ml_enabled", True)

    def keep_bad(step=0):
        host.store.save("latency_ms", 9.0)
        host.store.save("ml_enabled", True)  # external force re-enables
        if step < 20:
            host.engine.schedule(SECOND // 2, keep_bad, step + 1)

    keep_bad()
    host.engine.run(until=10 * SECOND)
    reports = FeedbackDetector(host, window=20 * SECOND).scan()
    assert [r for r in reports if r.kind == "key-flapping"] == []


def test_window_excludes_old_notes(host):
    coupled_system(host)
    host.engine.run(until=10 * SECOND)
    detector = FeedbackDetector(host, window=1 * SECOND)
    # Advance past the activity; nothing recent remains.
    host.engine.run(until=80 * SECOND)
    assert detector.scan() == []


def test_dampen_disables_younger_guardrail(host):
    manager = coupled_system(host)
    host.engine.run(until=10 * SECOND)
    detector = FeedbackDetector(host, window=20 * SECOND)
    report = [r for r in detector.scan() if r.kind == "key-flapping"][0]
    victim = detector.dampen(manager, report)
    assert victim == "restorer"          # loaded after protector
    assert not manager.get("restorer").enabled
    assert manager.get("protector").enabled

    before = len(host.reporter.notes_for(kind="SAVE"))
    host.engine.run(until=20 * SECOND)
    after = len(host.reporter.notes_for(kind="SAVE"))
    assert after - before <= 1           # loop broken


def test_dampen_with_unknown_subjects_is_noop(host):
    manager = GuardrailManager(host)
    detector = FeedbackDetector(host, window=SECOND)
    from repro.core.feedback import OscillationReport

    report = OscillationReport("key-flapping", ("ghost",), 5, SECOND)
    assert detector.dampen(manager, report) is None

"""Overhead accounting and the inference cost/benefit meter."""


from repro.core.featurestore import FeatureStore
from repro.core.overhead import CostModel, InferenceMeter, OverheadAccount


class TestCostModel:
    def test_check_cost_linear_in_ops(self):
        model = CostModel(ns_per_op=2, ns_per_check=10)
        assert model.check_cost(0) == 10
        assert model.check_cost(5) == 20

    def test_action_cost_fixed(self):
        assert CostModel(ns_per_action=7).action_cost() == 7


class TestOverheadAccount:
    def test_charges_accumulate(self):
        account = OverheadAccount(CostModel(ns_per_op=1, ns_per_check=10,
                                            ns_per_action=100))
        account.charge_check(5)
        account.charge_check(5)
        account.charge_action()
        assert account.checks == 2
        assert account.ops == 10
        assert account.actions == 1
        assert account.simulated_ns == 15 + 15 + 100

    def test_overhead_fraction(self):
        account = OverheadAccount(CostModel(ns_per_op=0, ns_per_check=100))
        account.charge_check(0)
        assert account.overhead_fraction(1000) == 0.1
        assert account.overhead_fraction(0) == 0.0

    def test_merge(self):
        a, b = OverheadAccount(), OverheadAccount()
        a.charge_check(3)
        b.charge_check(7)
        b.charge_action()
        a.merge(b)
        assert a.checks == 2
        assert a.ops == 10
        assert a.actions == 1

    def test_snapshot(self):
        account = OverheadAccount()
        account.charge_check(1)
        snap = account.snapshot()
        assert set(snap) == {"checks", "ops", "actions", "simulated_ns"}


class TestInferenceMeter:
    def test_publishes_ledger_keys(self):
        store = FeatureStore()
        meter = InferenceMeter(store, "policy")
        assert store.load("policy.net_benefit") == 0
        meter.record_inference(100)
        meter.record_inference(100)
        meter.record_gain(500)
        assert store.load("policy.inference_ns") == 200
        assert store.load("policy.gain_ns") == 500
        assert store.load("policy.net_benefit") == 300
        assert store.load("policy.inferences") == 2

    def test_negative_net_benefit_possible(self):
        store = FeatureStore()
        meter = InferenceMeter(store, "p")
        meter.record_inference(1000)
        meter.record_gain(10)
        assert store.load("p.net_benefit") == -990
        assert meter.net_benefit == -990

"""Dependency-tracked checking (§6)."""

import pytest

from repro.core.dependency import (
    DependencyTrigger,
    convert_to_dependency_triggered,
    expression_load_keys,
    rule_load_keys,
)
from repro.core.registry import GuardrailManager
from repro.core.spec import parse_guardrail
from repro.core.spec.lexer import tokenize
from repro.core.spec.parser import _Parser
from repro.sim.units import SECOND


def parse_expr(text):
    return _Parser(tokenize(text)).parse_expression()


def test_expression_load_keys_extraction():
    keys = expression_load_keys(
        parse_expr("LOAD(a) + abs(LOAD(b.c)) <= max(LOAD(d), 1) && !(LOAD(a))")
    )
    assert keys == {"a", "b.c", "d"}


def test_expression_without_loads_is_empty():
    assert expression_load_keys(parse_expr("1 + 2 <= x")) == set()


def test_rule_load_keys_unions_rules():
    spec = parse_guardrail("""
guardrail g {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(a) <= 1, LOAD(b) >= 0 },
  action: { REPORT() }
}""")
    assert rule_load_keys(spec) == {"a", "b"}


def test_dependency_trigger_fires_on_watched_key(host):
    fired = []
    trigger = DependencyTrigger({"a"})
    trigger.arm(host, fired.append)
    host.store.save("a", 1)
    host.store.save("unrelated", 2)
    assert fired == [{"changed_key": "a"}]
    assert trigger.change_count == 1


def test_min_spacing_suppresses_bursts(host):
    fired = []
    trigger = DependencyTrigger({"a"}, min_spacing=100)
    trigger.arm(host, fired.append)
    for _ in range(5):
        host.store.save("a", 1)   # all at t=0
    assert len(fired) == 1
    assert trigger.suppressed_count == 4


def test_disarm_unsubscribes(host):
    fired = []
    trigger = DependencyTrigger({"a"})
    trigger.arm(host, fired.append)
    trigger.disarm()
    host.store.save("a", 1)
    assert fired == []
    assert not trigger.armed


def test_double_arm_raises(host):
    trigger = DependencyTrigger({"a"})
    trigger.arm(host, lambda p: None)
    with pytest.raises(RuntimeError):
        trigger.arm(host, lambda p: None)


GUARDRAIL = """
guardrail dep {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(metric) <= 10 },
  action: { REPORT() }
}
"""


def test_convert_checks_only_on_relevant_change(host):
    manager = GuardrailManager(host)
    monitor = manager.load(GUARDRAIL)
    trigger = convert_to_dependency_triggered(monitor)
    assert trigger.keys == {"metric"}

    # Time passes with no change: no checks at all (the periodic TIMER
    # would have checked 10 times here).
    host.engine.run(until=10 * SECOND)
    assert monitor.check_count == 0

    host.store.save("metric", 50)
    assert monitor.check_count == 1
    assert monitor.violation_count == 1
    host.store.save("other", 1)
    assert monitor.check_count == 1


def test_convert_detects_violation_immediately_not_next_tick(host):
    manager = GuardrailManager(host)
    monitor = manager.load(GUARDRAIL)
    convert_to_dependency_triggered(monitor)
    host.engine.run(until=SECOND // 2)
    host.store.save("metric", 99)
    # Violation observed at save time, not at the next 1s boundary.
    assert monitor.violations[0].time == SECOND // 2


def test_convert_works_with_derived_keys(host):
    host.store.derive_rate("event", window=SECOND, name="event_rate")
    manager = GuardrailManager(host)
    monitor = manager.load("""
guardrail r {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(event_rate) <= 0.5 },
  action: { REPORT() }
}""")
    convert_to_dependency_triggered(monitor)
    for _ in range(4):
        host.store.save("event", 1)
    # Derived key bumps on each source save, so checks happen.
    assert monitor.check_count == 4
    assert monitor.violation_count > 0


def test_convert_preserves_disarmed_state(host):
    manager = GuardrailManager(host)
    monitor = manager.load(GUARDRAIL, arm=False)
    convert_to_dependency_triggered(monitor)
    host.store.save("metric", 99)
    assert monitor.check_count == 0

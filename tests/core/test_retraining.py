"""Retraining lifecycle daemon."""

import pytest

from repro.core.retraining import RetrainDaemon
from repro.sim.units import SECOND


def make_daemon(host, **kwargs):
    return RetrainDaemon(host, poll_interval=1 * SECOND, **kwargs)


def test_trains_and_reenables(host):
    daemon = make_daemon(host)
    trained, completed = [], []
    daemon.register(
        "m",
        trainer=lambda request: trained.append(request) or "new-model",
        on_complete=lambda result, request: completed.append(result),
        training_time=3 * SECOND,
    )
    daemon.start()
    host.retrain_queue.request("m", now=0, requested_by="guardrail")
    host.engine.run(until=2 * SECOND)
    # Picked up at the 1s poll, training until 4s: not done yet.
    assert daemon.in_flight == {"m"}
    assert trained == []
    host.engine.run(until=5 * SECOND)
    assert trained[0]["requested_by"] == "guardrail"
    assert completed == ["new-model"]
    assert daemon.completed_count == 1
    assert daemon.in_flight == frozenset()


def test_training_time_elapses_on_virtual_clock(host):
    daemon = make_daemon(host)
    finish_times = []
    daemon.register("m", trainer=lambda r: None,
                    on_complete=lambda *a: finish_times.append(host.engine.now),
                    training_time=10 * SECOND)
    daemon.start()
    host.retrain_queue.request("m", now=0)
    host.engine.run(until=12 * SECOND)
    assert finish_times == [11 * SECOND]  # 1s poll + 10s training


def test_duplicate_requests_collapse_while_in_flight(host):
    daemon = make_daemon(host)
    runs = []
    daemon.register("m", trainer=lambda r: runs.append(1),
                    training_time=5 * SECOND)
    daemon.start()
    for t in range(4):
        host.engine.schedule_at(t * SECOND, host.retrain_queue.request, "m", t)
    host.engine.run(until=10 * SECOND)
    assert len(runs) == 1
    assert daemon.collapsed_count >= 2


def test_unregistered_models_stay_queued(host):
    daemon = make_daemon(host)
    daemon.start()
    host.retrain_queue.request("mystery", now=0)
    host.engine.run(until=3 * SECOND)
    assert len(host.retrain_queue.pending) == 1


def test_notes_record_lifecycle(host):
    daemon = make_daemon(host)
    daemon.register("m", trainer=lambda r: None, training_time=1 * SECOND)
    daemon.start()
    host.retrain_queue.request("m", now=0, requested_by="g")
    host.engine.run(until=4 * SECOND)
    kinds = [n["kind"] for n in host.reporter.notes]
    assert "RETRAIN_START" in kinds
    assert "RETRAIN_DONE" in kinds


def test_stop_halts_polling(host):
    daemon = make_daemon(host)
    runs = []
    daemon.register("m", trainer=lambda r: runs.append(1),
                    training_time=1 * SECOND)
    daemon.start()
    daemon.stop()
    host.retrain_queue.request("m", now=0)
    host.engine.run(until=5 * SECOND)
    assert runs == []


def test_double_start_and_duplicate_register_rejected(host):
    daemon = make_daemon(host)
    daemon.register("m", trainer=lambda r: None)
    with pytest.raises(ValueError):
        daemon.register("m", trainer=lambda r: None)
    daemon.start()
    with pytest.raises(RuntimeError):
        daemon.start()


def test_independent_models_train_concurrently(host):
    daemon = make_daemon(host)
    done = []
    for name in ("a", "b"):
        daemon.register(name, trainer=lambda r, n=name: done.append(n),
                        training_time=2 * SECOND)
    daemon.start()
    host.retrain_queue.request("a", now=0)
    host.retrain_queue.request("b", now=0)
    host.engine.run(until=4 * SECOND)
    assert sorted(done) == ["a", "b"]

"""Runtime triggers: TIMER and FUNCTION."""

import pytest

from repro.core.triggers import FunctionTrigger, TimerTrigger


class TestTimerTrigger:
    def test_fires_every_interval(self, host):
        fired = []
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda payload: fired.append(host.engine.now))
        host.engine.run(until=350)
        assert fired == [100, 200, 300]

    def test_first_check_is_one_interval_after_start(self, host):
        fired = []
        trigger = TimerTrigger(interval=100, start=500)
        trigger.arm(host, lambda payload: fired.append(host.engine.now))
        host.engine.run(until=700)
        assert fired == [600, 700]

    def test_stop_time_respected(self, host):
        fired = []
        trigger = TimerTrigger(interval=100, stop=250)
        trigger.arm(host, lambda payload: fired.append(host.engine.now))
        host.engine.run(until=1000)
        assert fired == [100, 200]

    def test_payload_has_tick_info(self, host):
        payloads = []
        TimerTrigger(interval=100).arm(host, payloads.append)
        host.engine.run(until=200)
        assert payloads[0] == {"tick": 1, "tick_time": 100}
        assert payloads[1]["tick"] == 2

    def test_disarm_stops_firing(self, host):
        fired = []
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda payload: fired.append(1))
        host.engine.run(until=150)
        trigger.disarm()
        host.engine.run(until=500)
        assert len(fired) == 1
        assert not trigger.armed

    def test_disarm_from_inside_callback(self, host):
        trigger = TimerTrigger(interval=100)

        def once(payload):
            trigger.disarm()

        trigger.arm(host, once)
        host.engine.run(until=1000)
        assert trigger.tick_count == 1

    def test_rearm_after_disarm(self, host):
        fired = []
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda p: fired.append(1))
        trigger.disarm()
        trigger.arm(host, lambda p: fired.append(2))
        host.engine.run(until=100)
        assert fired == [2]

    def test_double_arm_raises(self, host):
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda p: None)
        with pytest.raises(RuntimeError):
            trigger.arm(host, lambda p: None)

    def test_bad_interval_raises(self):
        with pytest.raises(ValueError):
            TimerTrigger(interval=0)

    def test_start_in_the_past_clamps_to_now(self, host):
        host.engine.schedule(500, lambda: None)
        host.engine.run()
        fired = []
        trigger = TimerTrigger(interval=100, start=0)
        trigger.arm(host, lambda p: fired.append(host.engine.now))
        host.engine.run(until=700)
        assert fired == [600, 700]


class TestFunctionTrigger:
    def test_fires_on_hook(self, host):
        point = host.hooks.declare("mm.alloc")
        payloads = []
        trigger = FunctionTrigger("mm.alloc")
        trigger.arm(host, payloads.append)
        point.fire(granted=5, available=10)
        assert payloads == [{"granted": 5, "available": 10, "hook": "mm.alloc"}]
        assert trigger.call_count == 1

    def test_unknown_hook_raises_at_arm_time(self, host):
        trigger = FunctionTrigger("nope")
        with pytest.raises(KeyError):
            trigger.arm(host, lambda p: None)

    def test_disarm_detaches(self, host):
        point = host.hooks.declare("h")
        fired = []
        trigger = FunctionTrigger("h")
        trigger.arm(host, lambda p: fired.append(1))
        trigger.disarm()
        point.fire()
        assert fired == []
        assert not trigger.armed

    def test_double_arm_raises(self, host):
        host.hooks.declare("h")
        trigger = FunctionTrigger("h")
        trigger.arm(host, lambda p: None)
        with pytest.raises(RuntimeError):
            trigger.arm(host, lambda p: None)

    def test_payload_hook_name_not_overwritten(self, host):
        point = host.hooks.declare("h")
        payloads = []
        FunctionTrigger("h").arm(host, payloads.append)
        point.fire(hook="custom")
        assert payloads[0]["hook"] == "custom"


class TestTriggerLifecycle:
    """Arm/disarm/re-arm cycles must leave no stale state behind."""

    def test_timer_full_cycle(self, host):
        fired = []
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda p: fired.append(host.engine.now))
        host.engine.run(until=250)
        trigger.disarm()
        assert not trigger.armed
        assert host.engine.pending_events() == 0
        trigger.arm(host, lambda p: fired.append(host.engine.now))
        assert trigger.armed
        host.engine.run(until=500)
        assert fired == [100, 200, 350, 450]

    def test_timer_disarm_and_rearm_inside_callback(self, host):
        fired = []
        trigger = TimerTrigger(interval=100)

        def check(payload):
            fired.append(host.engine.now)
            if len(fired) == 1:
                # A check that re-arms its own trigger must not end up
                # double-scheduled by the tick's re-arm path.
                trigger.disarm()
                trigger.arm(host, check)

        trigger.arm(host, check)
        host.engine.run(until=400)
        assert fired == [100, 200, 300, 400]

    def test_timer_disarm_is_idempotent_and_clears_fire(self, host):
        trigger = TimerTrigger(interval=100)
        trigger.arm(host, lambda p: None)
        trigger.disarm()
        trigger.disarm()
        assert trigger._fire is None
        assert not trigger.armed

    def test_function_full_cycle(self, host):
        point = host.hooks.declare("h")
        fired = []
        trigger = FunctionTrigger("h")
        trigger.arm(host, lambda p: fired.append(1))
        point.fire()
        trigger.disarm()
        point.fire()
        trigger.arm(host, lambda p: fired.append(2))
        point.fire()
        assert fired == [1, 2]
        assert trigger.call_count == 2

    def test_function_disarm_clears_fire_callback(self, host):
        host.hooks.declare("h")
        trigger = FunctionTrigger("h")
        assert trigger._fire is None  # defined from birth, not first arm
        trigger.arm(host, lambda p: None)
        trigger.disarm()
        assert trigger._fire is None

    def test_function_stale_delivery_does_not_reach_disarmed_monitor(self, host):
        host.hooks.declare("h")
        fired = []
        trigger = FunctionTrigger("h")
        trigger.arm(host, fired.append)
        trigger.disarm()
        # A probe delivery racing disarm through the hooks' deferred-removal
        # path must hit the _fire guard, not a stale monitor callback.
        trigger._on_call("h", 0, {})
        assert fired == []
        assert trigger.call_count == 0

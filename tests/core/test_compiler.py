"""Guardrail compilation."""

import pytest

from repro.core.actions import (
    DeprioritizeAction,
    ReplaceAction,
    ReportAction,
    RetrainAction,
    SaveAction,
)
from repro.core.compiler import GuardrailCompiler
from repro.core.errors import CompileError
from repro.core.spec import parse_guardrail

FULL = """
guardrail full {
  trigger: { TIMER(start_time, 1s), FUNCTION(mm.alloc) },
  rule: { LOAD(a) <= 1 },
  action: {
    REPORT(LOAD(a)),
    REPLACE(slot, fallback),
    RETRAIN(model, LOAD(a)),
    DEPRIORITIZE({t}, {3}),
    SAVE(k, 1)
  }
}
"""


@pytest.fixture
def compiler():
    return GuardrailCompiler()


def test_compiles_from_text_or_ast(compiler):
    from_text = compiler.compile(FULL)
    from_ast = compiler.compile(parse_guardrail(FULL))
    assert from_text.name == from_ast.name == "full"


def test_rejects_other_inputs(compiler):
    with pytest.raises(CompileError):
        compiler.compile(42)


def test_trigger_params_lowered(compiler):
    compiled = compiler.compile(FULL)
    timer, function = compiled.trigger_params
    assert timer == ("timer", None, 10 ** 9, None)
    assert function == ("function", "mm.alloc")


def test_timer_stop_lowered(compiler):
    compiled = compiler.compile(
        "guardrail g { trigger: { TIMER(2s, 1s, 9s) }, rule: { true }, "
        "action: { REPORT() } }"
    )
    assert compiled.trigger_params[0] == ("timer", 2 * 10 ** 9, 10 ** 9, 9 * 10 ** 9)


def test_env_constants_usable_in_triggers():
    compiler = GuardrailCompiler(env={"check_interval": 5 * 10 ** 9})
    compiled = compiler.compile(
        "guardrail g { trigger: { TIMER(start_time, check_interval) }, "
        "rule: { true }, action: { REPORT() } }"
    )
    assert compiled.trigger_params[0][2] == 5 * 10 ** 9


def test_unbound_trigger_name_rejected(compiler):
    with pytest.raises(CompileError, match="compile-time constant"):
        compiler.compile(
            "guardrail g { trigger: { TIMER(start_time, mystery) }, "
            "rule: { true }, action: { REPORT() } }"
        )


def test_load_in_trigger_rejected(compiler):
    with pytest.raises(CompileError, match="LOAD"):
        compiler.compile(
            "guardrail g { trigger: { TIMER(start_time, LOAD(x)) }, "
            "rule: { true }, action: { REPORT() } }"
        )


def test_actions_lowered_to_runtime_types(compiler):
    compiled = compiler.compile(FULL)
    types = [type(a) for a in compiled.actions]
    assert types == [ReportAction, ReplaceAction, RetrainAction,
                     DeprioritizeAction, SaveAction]
    replace = compiled.actions[1]
    assert (replace.old_function, replace.new_function) == ("slot", "fallback")
    dep = compiled.actions[3]
    assert dep.targets == ["t"]
    assert dep.priorities == [3]


def test_rules_carry_source_and_cost(compiler):
    compiled = compiler.compile(FULL)
    source, program, cost = compiled.rules[0]
    assert "LOAD(a)" in source
    assert cost > 0
    assert callable(program)


def test_instantiate_binds_to_host(compiler, host):
    host.hooks.declare("mm.alloc")
    monitor = compiler.compile(FULL).instantiate(host)
    assert monitor.host is host
    assert not monitor.enabled


def test_cooldown_carried_through(compiler):
    compiled = compiler.compile(FULL, cooldown=123)
    assert compiled.cooldown == 123

"""Guardrail synthesis from policy manifests."""

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.core.registry import GuardrailManager
from repro.core.synthesis import PolicyManifest, synthesize_guardrails
from repro.sim.units import SECOND


def full_manifest():
    return PolicyManifest(
        name="pol",
        slot="slot",
        fallback="fb",
        model="pol_model",
        reward_key="pol.reward",
        baseline_key="pol.baseline",
        has_input_tracker=True,
        has_sensitivity_probe=True,
        sensitivity_threshold=0.7,
        bounds_hook="pol.decide",
        bounds_rule="output >= 0",
    )


def test_full_manifest_synthesizes_all_properties():
    specs = synthesize_guardrails(full_manifest())
    assert set(specs) == {"P1", "P2", "P3", "P4", "P5"}


def test_all_synthesized_specs_compile():
    compiler = GuardrailCompiler()
    for spec in synthesize_guardrails(full_manifest()).values():
        compiler.compile(spec)


def test_p5_always_present_even_for_minimal_manifest():
    specs = synthesize_guardrails(PolicyManifest(name="tiny"))
    assert set(specs) == {"P5"}


def test_reward_extraction_becomes_p4_rule():
    specs = synthesize_guardrails(full_manifest())
    assert "LOAD(pol.reward) >= LOAD(pol.baseline)" in specs["P4"]


def test_lower_is_better_swaps_operands():
    manifest = PolicyManifest(
        name="lat", reward_key="lat.ms", baseline_key="lat.baseline_ms",
        higher_is_better=False,
    )
    specs = synthesize_guardrails(manifest)
    # lower-is-better: baseline must be >= metric
    assert "LOAD(lat.baseline_ms) >= LOAD(lat.ms)" in specs["P4"]


def test_retrain_targets_declared_model():
    specs = synthesize_guardrails(full_manifest())
    assert "RETRAIN(pol_model)" in specs["P1"]


def test_bounds_without_fallback_rejected():
    manifest = PolicyManifest(name="p", bounds_hook="h", bounds_rule="x >= 0")
    with pytest.raises(ValueError, match="fallback"):
        synthesize_guardrails(manifest)


def test_synthesized_guardrails_run_end_to_end(host):
    host.hooks.declare("pol.decide")
    host.functions.register("slot", lambda: 1)
    host.functions.register_implementation("fb", lambda: 2)
    manager = GuardrailManager(host)
    for spec in synthesize_guardrails(full_manifest()).values():
        manager.load(spec)

    # Feed data that violates P4 (reward below baseline).
    host.store.save("pol.reward", 0.2)
    host.store.save("pol.baseline", 0.8)
    host.store.save("pol.net_benefit", 10)
    host.engine.run(until=1 * SECOND)
    p4 = manager.get("pol-decision-quality")
    assert p4.violation_count == 1
    assert host.functions.slot("slot")() == 2  # replaced with fallback


def test_check_interval_respected():
    manifest = PolicyManifest(name="p", check_interval=5 * SECOND)
    specs = synthesize_guardrails(manifest)
    assert "TIMER(start_time, {})".format(5 * SECOND) in specs["P5"]

"""Monitor host plumbing: retrain queue, reporter, defaults."""

from repro.core.host import MonitorHost, NullTaskController, RetrainQueue


def test_host_builds_consistent_defaults():
    host = MonitorHost()
    assert host.store is not None
    assert host.hooks.engine is host.engine
    # The store clock follows the engine.
    host.engine.schedule(100, host.store.save, "k", 1)
    host.engine.run()
    assert host.store.version("k") == 1


class TestRetrainQueue:
    def test_requests_queue_and_drain(self):
        queue = RetrainQueue()
        trained = []
        queue.register_trainer("m", lambda request: trained.append(request))
        queue.request("m", now=0, data_ref="window")
        completed = queue.drain()
        assert len(completed) == 1
        assert trained[0]["data_ref"] == "window"
        assert queue.pending == []

    def test_drain_without_trainer_still_completes(self):
        queue = RetrainQueue()
        queue.request("m", now=0)
        assert len(queue.drain()) == 1

    def test_rate_limit_per_model(self):
        queue = RetrainQueue(min_interval=100)
        assert queue.request("m", now=0)
        assert not queue.request("m", now=50)
        assert queue.request("m", now=200)
        assert queue.request("other", now=50)  # independent limit
        assert queue.accepted_count == 3
        assert queue.rejected_count == 1

    def test_abuse_protection_counts(self):
        # The paper: retraining "must be protected to prevent abuse from
        # malicious processes intentionally triggering frequent retraining".
        queue = RetrainQueue(min_interval=1000)
        for t in range(0, 100, 10):
            queue.request("m", now=t)
        assert queue.accepted_count == 1
        assert queue.rejected_count == 9


def test_null_task_controller_records():
    controller = NullTaskController()
    controller.deprioritize(["a"], [1])
    assert controller.requests == [(["a"], [1])]


def test_reporter_note_capacity():
    host = MonitorHost()
    host.reporter.capacity = 2
    for i in range(4):
        host.reporter.note("K", "g", i)
    assert len(host.reporter.notes) == 2
    assert host.reporter.dropped == 2
    assert host.reporter.notes[0]["time"] == 2


def test_reports_for_filters_by_guardrail():
    host = MonitorHost()
    host.reporter.report("a", "r", 0, {}, {}, {})
    host.reporter.report("b", "r", 0, {}, {}, {})
    assert len(host.reporter.reports_for("a")) == 1

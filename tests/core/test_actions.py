"""Actions A1-A4 plus SAVE."""

import pytest

from repro.core.actions import (
    ActionContext,
    DeprioritizeAction,
    ReplaceAction,
    ReportAction,
    RetrainAction,
    SaveAction,
)
from repro.core.errors import ActionError
from repro.core.expr import compile_expression
from repro.core.spec import ast as A


def ctx_for(host, payload=None):
    return ActionContext(host, "g", "rule-src", host.engine.now, payload or {})


class TestReport:
    def test_records_context_snapshot(self, host):
        host.store.save("metric", 42)
        ReportAction().execute(ctx_for(host, {"input": 3}))
        report = host.reporter.reports[0]
        assert report["guardrail"] == "g"
        assert report["rule"] == "rule-src"
        assert report["payload"] == {"input": 3}
        assert report["store"]["metric"] == 42

    def test_extra_expressions_evaluated(self, host):
        host.store.save("x", 5)
        program = compile_expression(A.Load("x"))
        action = ReportAction([program], ["LOAD(x)"])
        action.execute(ctx_for(host))
        assert host.reporter.reports[0]["extras"] == {"LOAD(x)": 5}


class TestReplace:
    def test_swaps_and_notes(self, host):
        host.functions.register("slot", lambda: "learned")
        host.functions.register_implementation("safe", lambda: "safe")
        ReplaceAction("slot", "safe").execute(ctx_for(host))
        assert host.functions.slot("slot")() == "safe"
        notes = host.reporter.notes_for(kind="REPLACE")
        assert notes[0]["detail"] == "slot -> safe"

    def test_unknown_slot_raises(self, host):
        with pytest.raises(ActionError):
            ReplaceAction("ghost", "safe").execute(ctx_for(host))


class TestRetrain:
    def test_enqueues_request(self, host):
        RetrainAction("model").execute(ctx_for(host))
        assert host.retrain_queue.pending[0]["model"] == "model"
        assert host.retrain_queue.pending[0]["requested_by"] == "g"

    def test_input_expression_becomes_data_ref(self, host):
        host.store.save("window", 9)
        program = compile_expression(A.Load("window"))
        RetrainAction("model", program, "LOAD(window)").execute(ctx_for(host))
        assert host.retrain_queue.pending[0]["data_ref"] == 9

    def test_rate_limited_requests_noted_as_rejected(self, host):
        host.retrain_queue.min_interval = 1000
        RetrainAction("m").execute(ctx_for(host))
        RetrainAction("m").execute(ctx_for(host))
        assert host.retrain_queue.accepted_count == 1
        assert host.retrain_queue.rejected_count == 1
        notes = host.reporter.notes_for(kind="RETRAIN")
        assert "accepted=False" in notes[1]["detail"]


class TestDeprioritize:
    def test_forwards_to_controller(self, host):
        DeprioritizeAction(["t1", "t2"], [5, 0]).execute(ctx_for(host))
        assert host.task_controller.requests == [(["t1", "t2"], [5, 0])]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ActionError):
            DeprioritizeAction(["a"], [1, 2])


class TestSave:
    def test_writes_expression_value(self, host):
        host.store.save("x", 2)
        program = compile_expression(
            A.BinaryOp("+", A.Load("x"), A.NumberLiteral(1))
        )
        SaveAction("y", program, "LOAD(x) + 1").execute(ctx_for(host))
        assert host.store.load("y") == 3

    def test_listing2_style_disable(self, host):
        host.store.save("ml_enabled", True)
        program = compile_expression(A.BoolLiteral(False))
        SaveAction("ml_enabled", program, "false").execute(ctx_for(host))
        assert host.store.load("ml_enabled") is False


class TestReporterBounds:
    def test_reports_capacity_drops_oldest(self, host):
        host.reporter.capacity = 3
        for i in range(5):
            host.store.save("i", i)
            ReportAction().execute(ctx_for(host))
        assert len(host.reporter.reports) == 3
        assert host.reporter.dropped == 2
        assert host.reporter.reports[0]["store"]["i"] == 2

    def test_notes_filtering(self, host):
        host.functions.register("s", lambda: 1)
        host.functions.register_implementation("f", lambda: 2)
        ReplaceAction("s", "f").execute(ctx_for(host))
        RetrainAction("m").execute(ctx_for(host))
        assert len(host.reporter.notes_for(kind="REPLACE")) == 1
        assert len(host.reporter.notes_for(guardrail="g")) == 2
        assert host.reporter.notes_for(kind="REPLACE", guardrail="other") == []

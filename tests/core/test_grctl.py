"""The grctl command-line tool."""

import io

import pytest

from repro.core.spec import parse_guardrails
from repro.tools.grctl import main

GOOD = """
guardrail a {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(x) <= 1 },
  action: { REPORT() }
}
guardrail b {
  trigger: { FUNCTION(mm.alloc) },
  rule: { granted <= available },
  action: { REPLACE(slot.x, impl.y) }
}
"""

BAD_SYNTAX = "guardrail oops { trigger: }"

OVER_BUDGET = """
guardrail heavy {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(a) + LOAD(b) + LOAD(c) + LOAD(d) <= 1 },
  action: { REPORT() }
}
"""


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.grd"
    path.write_text(GOOD)
    return str(path)


def test_check_good_file(good_file):
    code, output = run(["check", good_file])
    assert code == 0
    assert "OK    a" in output
    assert "OK    b" in output
    assert "2 guardrail(s), 0 failure(s)" in output


def test_check_reports_lanes(good_file):
    code, output = run(["check", good_file])
    assert code == 0
    # auto lane: fused threshold -> closure; composite rule -> vm.
    assert "lanes: closure" in output
    assert "lanes: vm" in output


def test_check_lane_override(good_file):
    code, output = run(["check", "--lane", "vm", good_file])
    assert code == 0
    assert "lanes: closure" not in output
    code, output = run(["check", "--lane", "closure", good_file])
    assert code == 0
    assert "lanes: vm" not in output


def test_inspect_lane_override_json(good_file):
    import json

    code, output = run(["inspect", "--json", "--lane", "vm", good_file])
    assert code == 0
    data = json.loads(output)
    lanes = [rule["lane"] for g in data["guardrails"] for rule in g["rules"]]
    assert lanes == ["vm", "vm"]


def test_check_reports_parse_errors(tmp_path):
    path = tmp_path / "bad.grd"
    path.write_text(BAD_SYNTAX)
    code, output = run(["check", str(path)])
    assert code == 1
    assert "PARSE ERROR" in output


def test_check_empty_file_fails(tmp_path):
    path = tmp_path / "empty.grd"
    path.write_text("// nothing\n")
    code, output = run(["check", str(path)])
    assert code == 1
    assert "no guardrails" in output


def test_check_budget_override(tmp_path):
    path = tmp_path / "heavy.grd"
    path.write_text(OVER_BUDGET)
    code, _ = run(["check", str(path)])
    assert code == 0
    code, output = run(["check", "--budget-ops", "5", str(path)])
    assert code == 1
    assert "FAIL  heavy" in output


def test_inspect_shows_costs_and_read_set(good_file):
    code, output = run(["inspect", good_file])
    assert code == 0
    assert "guardrail a" in output
    assert "[4 ops, closure]" in output  # LOAD(x) <= 1: fused threshold
    assert "reads    x" in output
    assert "reads    <none>" in output   # guardrail b reads payload only
    assert "REPLACE(slot.x, impl.y)" in output


def test_inspect_json_structure(good_file):
    import json

    code, output = run(["inspect", "--json", good_file])
    assert code == 0
    data = json.loads(output)
    names = [g["name"] for g in data["guardrails"]]
    assert names == ["a", "b"]
    first = data["guardrails"][0]
    assert first["reads"] == ["x"]
    assert first["rules"][0]["ops"] == 4
    assert first["rules"][0]["lane"] == "closure"
    assert first["ops_per_check"] == 4
    assert first["actions"] == ["REPORT()"]
    assert data["guardrails"][1]["reads"] == []


def test_inspect_json_parse_error(tmp_path):
    import json

    path = tmp_path / "bad.grd"
    path.write_text(BAD_SYNTAX)
    code, output = run(["inspect", "--json", str(path)])
    assert code == 1
    assert "error" in json.loads(output)


def test_budget_ops_must_be_positive(good_file):
    for sub in ("check", "inspect"):
        code, _ = run([sub, "--budget-ops", "0", good_file])
        assert code == 2


def test_trace_duration_must_be_positive():
    code, _ = run(["trace", "--duration", "0"])
    assert code == 2


def test_faults_duration_must_be_positive():
    code, _ = run(["faults", "--duration", "-1"])
    assert code == 2


def test_fmt_canonical_and_idempotent(good_file, tmp_path):
    code, formatted = run(["fmt", good_file])
    assert code == 0
    # Formatted output parses to the same specs.
    assert [s.name for s in parse_guardrails(formatted)] == ["a", "b"]
    # fmt of the formatted text is a fixed point.
    path = tmp_path / "fmt.grd"
    path.write_text(formatted)
    _, again = run(["fmt", str(path)])
    assert again == formatted


def test_fmt_write_in_place(good_file):
    code, output = run(["fmt", "--write", good_file])
    assert code == 0
    assert output == ""
    with open(good_file) as handle:
        assert handle.read().startswith("guardrail a {")


def test_fmt_parse_error(tmp_path):
    path = tmp_path / "bad.grd"
    path.write_text(BAD_SYNTAX)
    code, output = run(["fmt", str(path)])
    assert code == 1
    assert "PARSE ERROR" in output


AGGREGATED = """
guardrail agg {
  trigger: { TIMER(start_time, 1s) },
  rule: { AVG(fault_ms, 10s) <= 2 && P95(fault_ms) <= 20 },
  action: { REPORT() }
}
"""


def test_inspect_shows_aggregate_read_set(tmp_path):
    path = tmp_path / "agg.grd"
    path.write_text(AGGREGATED)
    code, output = run(["inspect", str(path)])
    assert code == 0
    # The read set names the lowered derived keys.
    assert "fault_ms.avg10000000000" in output
    assert "fault_ms.p95" in output


def test_check_accepts_aggregates(tmp_path):
    path = tmp_path / "agg.grd"
    path.write_text(AGGREGATED)
    code, output = run(["check", str(path)])
    assert code == 0
    assert "OK    agg" in output


def test_fmt_check_passes_on_canonical_file(good_file, tmp_path):
    _, formatted = run(["fmt", good_file])
    path = tmp_path / "canonical.grd"
    path.write_text(formatted)
    code, output = run(["fmt", "--check", str(path)])
    assert code == 0
    assert output == ""


def test_fmt_check_fails_without_writing(good_file):
    with open(good_file) as handle:
        original = handle.read()
    code, output = run(["fmt", "--check", good_file])
    assert code == 1
    assert "would reformat" in output
    with open(good_file) as handle:
        assert handle.read() == original  # --check never writes


def test_fmt_check_with_write_is_usage_error(good_file):
    # Contradictory flags are an operator mistake (exit 2), not a formatting
    # failure (exit 1) — and the file must never be touched.
    with open(good_file) as handle:
        original = handle.read()
    code, _ = run(["fmt", "--check", "--write", good_file])
    assert code == 2
    with open(good_file) as handle:
        assert handle.read() == original


def test_fmt_check_parse_error(tmp_path):
    path = tmp_path / "bad.grd"
    path.write_text(BAD_SYNTAX)
    code, output = run(["fmt", "--check", str(path)])
    assert code == 1
    assert "PARSE ERROR" in output


def test_trace_quick_scenario_summary_and_exports(tmp_path):
    import json

    jsonl = str(tmp_path / "run.jsonl")
    chrome = str(tmp_path / "run.json")
    code, output = run(["trace", "--scenario", "quick", "--duration", "2",
                        "--jsonl", jsonl, "--chrome", chrome])
    assert code == 0
    assert "per-guardrail counters (exact):" in output
    assert "queue-bound" in output and "alloc-bound" in output
    assert "hottest hooks" in output and "mm.alloc" in output

    with open(chrome) as fp:
        data = json.load(fp)
    categories = {r["cat"] for r in data["traceEvents"] if r["ph"] != "M"}
    assert len(categories) >= 4

    code, replay_out = run(["trace", "--replay", jsonl])
    assert code == 0
    assert "per-guardrail counters (from events; lower bound):" in replay_out
    assert "queue-bound" in replay_out


def test_trace_sampling_and_category_flags(tmp_path):
    jsonl = str(tmp_path / "sampled.jsonl")
    code, output = run(["trace", "--scenario", "quick", "--duration", "2",
                        "--categories", "hook,monitor.check,action",
                        "--sample", "hook=8", "--jsonl", jsonl])
    assert code == 0
    from repro.trace import read_jsonl

    events = read_jsonl(jsonl)
    assert events
    assert {e.category for e in events} <= {"hook", "monitor.check", "action"}
    # Counters stay exact even though the event stream is filtered/sampled.
    assert "per-guardrail counters (exact):" in output

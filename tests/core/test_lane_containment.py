"""Rule-crash containment is lane-independent (closure vs bytecode VM).

The monitor's broad ``except Exception`` around ``program(ctx)`` is the
§4.2 crash-only containment site.  Both rule backends charge ``ctx.ops``
incrementally at identical evaluation points, so a store backend that
raises mid-rule must leave *identical* observable state whichever lane
compiled the rule: crash counters, partial overhead charges, breaker
transitions (timing included), and supervisor stats.
"""

from repro.core.compiler import GuardrailCompiler
from repro.core.host import MonitorHost
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.kernel import Kernel
from repro.sim.units import SECOND

CRASHY = """
guardrail crashy {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(metric) <= 10 },
  action: { REPORT() }
}
"""

# The composite form crashes *mid-expression*: the left arm has already
# charged ops when the second LOAD raises, so the partial charge the
# containment site records exercises the interesting path.
COMPOSITE_CRASHY = """
guardrail crashy {
  trigger: { TIMER(start_time, 1s) },
  rule: { n0 == n0 || LOAD(ok) > 0 && LOAD(metric) <= 10 },
  action: { REPORT() }
}
"""


def run_crashing_host(lane, text=CRASHY):
    host = MonitorHost()
    monitor = GuardrailCompiler(lane=lane).compile(text).instantiate(host)
    monitor.arm()
    host.store.save("ok", 1)
    inner_load, backend = host.store.load, {"broken": True}

    def flaky_load(key, default=None):
        if key == "metric" and backend["broken"]:
            raise RuntimeError("store backend failure")
        return inner_load(key, default)

    host.store.load = flaky_load
    host.engine.run(until=3 * SECOND + 1)
    breaker = host.supervisor.breaker("crashy")
    mid = {
        "crashes": monitor.rule_crash_count,
        "overhead_ns": monitor.overhead.simulated_ns,
        "breaker_state": breaker.state,
        "enabled": monitor.enabled,
    }
    # Repair the backend: the next half-open probe closes the breaker.
    backend["broken"] = False
    host.store.save("metric", 5)
    host.engine.run(until=8 * SECOND + 1)
    return {
        "mid": mid,
        "crashes": monitor.rule_crash_count,
        "checks": monitor.check_count,
        "violations": monitor.violation_count,
        "inconclusive": monitor.inconclusive_count,
        "overhead_ns": monitor.overhead.simulated_ns,
        "breaker_state": breaker.state,
        "transitions": [(t["time"], t["from"], t["to"])
                        for t in breaker.transitions],
        "supervisor": host.supervisor.stats(),
        "enabled": monitor.enabled,
    }


def test_breaker_and_charges_agree_across_lanes():
    assert run_crashing_host("closure") == run_crashing_host("vm")


def test_mid_expression_crash_partial_charge_agrees_across_lanes():
    closure = run_crashing_host("closure", COMPOSITE_CRASHY)
    vm = run_crashing_host("vm", COMPOSITE_CRASHY)
    assert closure == vm
    assert closure["mid"]["crashes"] == 3  # the crash path actually ran
    assert closure["mid"]["breaker_state"] == "open"


def run_fault_injected_kernel(lane):
    kernel = Kernel(seed=3)
    kernel.guardrails.compiler = GuardrailCompiler(lane=lane)
    kernel.store.save("metric", 1)
    monitor = kernel.guardrails.load(CRASHY)
    plan = FaultPlan.from_flags(("corrupt@metric",), seed=1)
    injector = FaultInjector(kernel, plan).install()
    kernel.run(until=5 * SECOND)
    return {
        "checks": monitor.check_count,
        "inconclusive": monitor.inconclusive_count,
        "violations": monitor.violation_count,
        "crashes": monitor.rule_crash_count,
        "overhead_ns": monitor.overhead.simulated_ns,
        "injected": injector.injected_count,
    }


def test_corrupt_injection_reads_as_missing_data_on_both_lanes():
    closure = run_fault_injected_kernel("closure")
    vm = run_fault_injected_kernel("vm")
    assert closure == vm
    # NaN telemetry is contained as missing data, never as a crash.
    assert closure["checks"] > 0
    assert closure["inconclusive"] == closure["checks"]
    assert closure["crashes"] == 0

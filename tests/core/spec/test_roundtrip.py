"""AST -> source -> AST round-trips."""

import pytest

from repro.core.spec import parse_guardrail

EXAMPLES = [
    # Listing 2, the paper's own example.
    """
guardrail low-false-submit {
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.05 },
  action: { SAVE(ml_enabled, false) }
}
""",
    # Every action kind.
    """
guardrail kitchen-sink {
  trigger: { TIMER(0, 1s, 60s), FUNCTION(mm.alloc) },
  rule: { LOAD(a) <= 1, LOAD(b) >= 0 && !(LOAD(c) == 3) },
  action: {
    REPORT(LOAD(a)),
    REPLACE(slot.x, impl.y),
    RETRAIN(model, LOAD(b)),
    DEPRIORITIZE({t1, t2}, {3, 0}),
    SAVE(k, LOAD(a) + 1)
  }
}
""",
    # Arithmetic and builtins.
    """
guardrail math {
  trigger: { TIMER(0, 50ms) },
  rule: { abs(LOAD(x) - LOAD(y)) / max(LOAD(y), 1) <= 0.1 },
  action: { REPORT() }
}
""",
]


@pytest.mark.parametrize("source", EXAMPLES)
def test_roundtrip_is_fixed_point(source):
    first = parse_guardrail(source)
    printed = first.to_source()
    second = parse_guardrail(printed)
    assert first == second
    # Printing again must be a fixed point.
    assert second.to_source() == printed


def test_roundtrip_preserves_unit_normalization():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0, 5ms) }, rule: { true }, "
        "action: { REPORT() } }"
    )
    again = parse_guardrail(spec.to_source())
    assert again.triggers[0].interval.value == 5_000_000


def test_equality_and_hash_by_structure():
    a = parse_guardrail(EXAMPLES[0])
    b = parse_guardrail(EXAMPLES[0])
    assert a == b
    assert hash(a) == hash(b)
    c = parse_guardrail(EXAMPLES[1])
    assert a != c

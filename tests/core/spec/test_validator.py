"""Semantic validation beyond syntax."""

import pytest

from repro.core.errors import SpecError
from repro.core.spec import ast as A
from repro.core.spec import parse_guardrail
from repro.core.spec.validator import validate_spec


def _spec(triggers=None, rules=None, actions=None):
    return A.GuardrailSpec(
        "g",
        triggers if triggers is not None else [
            A.TimerTriggerSpec(A.NumberLiteral(0), A.NumberLiteral(1))
        ],
        rules if rules is not None else [A.RuleSpec(A.BoolLiteral(True))],
        actions if actions is not None else [A.ReportSpec()],
    )


def test_valid_spec_passes():
    validate_spec(_spec())


@pytest.mark.parametrize("missing", ["triggers", "rules", "actions"])
def test_empty_sections_rejected(missing):
    kwargs = {missing: []}
    with pytest.raises(SpecError, match="no " + missing[:-1]):
        validate_spec(_spec(**kwargs))


def test_zero_interval_rejected():
    trigger = A.TimerTriggerSpec(A.NumberLiteral(0), A.NumberLiteral(0))
    with pytest.raises(SpecError, match="interval must be positive"):
        validate_spec(_spec(triggers=[trigger]))


def test_negative_start_rejected():
    trigger = A.TimerTriggerSpec(
        A.UnaryOp("-", A.NumberLiteral(5)), A.NumberLiteral(1)
    )
    with pytest.raises(SpecError, match="start must be >= 0"):
        validate_spec(_spec(triggers=[trigger]))


def test_stop_before_start_rejected():
    trigger = A.TimerTriggerSpec(
        A.NumberLiteral(100), A.NumberLiteral(1), A.NumberLiteral(50)
    )
    with pytest.raises(SpecError, match="stop"):
        validate_spec(_spec(triggers=[trigger]))


def test_symbolic_start_time_accepted():
    trigger = A.TimerTriggerSpec(A.Name("start_time"), A.NumberLiteral(1))
    validate_spec(_spec(triggers=[trigger]))


def test_non_boolean_rule_rejected():
    rule = A.RuleSpec(A.BinaryOp("+", A.NumberLiteral(1), A.NumberLiteral(2)))
    with pytest.raises(SpecError, match="not boolean-valued"):
        validate_spec(_spec(rules=[rule]))


def test_bare_load_rule_accepted_as_truthy():
    validate_spec(_spec(rules=[A.RuleSpec(A.Load("flag"))]))


def test_negated_rule_accepted():
    rule = A.RuleSpec(A.UnaryOp("!", A.Load("flag")))
    validate_spec(_spec(rules=[rule]))


def test_deprioritize_length_mismatch_rejected():
    action = A.DeprioritizeSpec(["a", "b"], [A.NumberLiteral(1)])
    with pytest.raises(SpecError, match="2 targets but 1"):
        validate_spec(_spec(actions=[action]))


def test_deprioritize_empty_targets_rejected():
    action = A.DeprioritizeSpec([], [])
    with pytest.raises(SpecError, match="at least one target"):
        validate_spec(_spec(actions=[action]))


def test_replace_with_same_names_rejected():
    action = A.ReplaceSpec("x", "x")
    with pytest.raises(SpecError, match="both"):
        validate_spec(_spec(actions=[action]))


def test_parser_invokes_validator():
    with pytest.raises(SpecError, match="interval must be positive"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(0, 0) }, rule: { true }, "
            "action: { REPORT() } }"
        )

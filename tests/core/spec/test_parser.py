"""DSL parser: the Listing 1 grammar with Listing 2's concrete syntax."""

import pytest

from repro.core.errors import ParseError, SpecError
from repro.core.spec import ast as A
from repro.core.spec import parse_guardrail, parse_guardrails

LISTING2 = """
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    SAVE(ml_enabled, false)
  }
}
"""


def test_parses_listing2_verbatim():
    spec = parse_guardrail(LISTING2)
    assert spec.name == "low-false-submit"
    assert len(spec.triggers) == 1
    assert len(spec.rules) == 1
    assert len(spec.actions) == 1

    trigger = spec.triggers[0]
    assert isinstance(trigger, A.TimerTriggerSpec)
    assert trigger.start == A.Name("start_time")
    assert trigger.interval == A.NumberLiteral(10 ** 9)

    rule = spec.rules[0].expression
    assert isinstance(rule, A.BinaryOp)
    assert rule.op == "<="
    assert rule.left == A.Load("false_submit_rate")
    assert rule.right == A.NumberLiteral(0.05)

    action = spec.actions[0]
    assert isinstance(action, A.SaveSpec)
    assert action.key == "ml_enabled"
    assert action.expression == A.BoolLiteral(False)


def test_hyphenated_guardrail_names():
    spec = parse_guardrail(
        "guardrail a-b-c { trigger: { TIMER(0, 1) }, "
        "rule: { true }, action: { REPORT() } }"
    )
    assert spec.name == "a-b-c"


def test_timer_with_stop_time():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0, 1s, 10s) }, rule: { true }, "
        "action: { REPORT() } }"
    )
    trigger = spec.triggers[0]
    assert trigger.stop == A.NumberLiteral(10 ** 10)


def test_timer_wrong_arity_raises():
    with pytest.raises(ParseError, match="TIMER takes 2 or 3"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(1) }, rule: { true }, "
            "action: { REPORT() } }"
        )


def test_function_trigger():
    spec = parse_guardrail(
        "guardrail g { trigger: { FUNCTION(mm.alloc) }, rule: { true }, "
        "action: { REPORT() } }"
    )
    assert spec.triggers[0] == A.FunctionTriggerSpec("mm.alloc")


def test_multiple_triggers_rules_actions():
    spec = parse_guardrail("""
guardrail g {
  trigger: { TIMER(0, 1s), FUNCTION(sched.pick_next_task) },
  rule: { LOAD(a) <= 1, LOAD(b) >= 0 },
  action: { REPORT(), RETRAIN(model) }
}""")
    assert len(spec.triggers) == 2
    assert len(spec.rules) == 2
    assert len(spec.actions) == 2


def test_all_action_forms():
    spec = parse_guardrail("""
guardrail g {
  trigger: { TIMER(0, 1s) },
  rule: { true },
  action: {
    REPORT(LOAD(x), 5),
    REPLACE(slot.a, impl.b),
    RETRAIN(model, LOAD(x)),
    DEPRIORITIZE({task1, task2}, {5, 0}),
    SAVE(flag, 1 + 2)
  }
}""")
    kinds = [a.kind for a in spec.actions]
    assert kinds == ["REPORT", "REPLACE", "RETRAIN", "DEPRIORITIZE", "SAVE"]
    dep = spec.actions[3]
    assert dep.targets == ["task1", "task2"]
    assert [p.value for p in dep.priorities] == [5, 0]


def test_operator_precedence():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { LOAD(a) + 2 * 3 <= 10 }, action: { REPORT() } }"
    )
    rule = spec.rules[0].expression
    # (a + (2*3)) <= 10
    assert rule.op == "<="
    assert rule.left.op == "+"
    assert rule.left.right.op == "*"


def test_logical_operators_and_keyword_forms():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { LOAD(a) <= 1 && LOAD(b) >= 2 || not (LOAD(c) == 3) }, "
        "action: { REPORT() } }"
    )
    rule = spec.rules[0].expression
    assert rule.op == "||"
    assert rule.left.op == "&&"
    assert rule.right.op == "!"


def test_and_or_words_equivalent_to_symbols():
    a = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { LOAD(a) <= 1 and LOAD(b) >= 2 }, action: { REPORT() } }"
    )
    b = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { LOAD(a) <= 1 && LOAD(b) >= 2 }, action: { REPORT() } }"
    )
    assert a.rules[0] == b.rules[0]


def test_unary_minus():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { LOAD(a) >= -5 }, action: { REPORT() } }"
    )
    rule = spec.rules[0].expression
    assert isinstance(rule.right, A.UnaryOp)
    assert rule.right.op == "-"


def test_builtin_calls():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { abs(LOAD(a) - LOAD(b)) <= max(1, 2) }, action: { REPORT() } }"
    )
    rule = spec.rules[0].expression
    assert rule.left.function == "abs"
    assert rule.right.function == "max"


def test_unknown_function_raises():
    with pytest.raises(ParseError, match="unknown function"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(0,1) }, "
            "rule: { foo(1) <= 2 }, action: { REPORT() } }"
        )


def test_sections_in_any_order():
    spec = parse_guardrail(
        "guardrail g { action: { REPORT() }, rule: { true }, "
        "trigger: { TIMER(0,1) } }"
    )
    assert spec.triggers and spec.rules and spec.actions


def test_duplicate_section_raises():
    with pytest.raises(ParseError, match="duplicate"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(0,1) }, trigger: { TIMER(0,2) }, "
            "rule: { true }, action: { REPORT() } }"
        )


def test_missing_section_raises_spec_error():
    with pytest.raises(SpecError, match="no actions"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true } }"
        )


def test_trailing_comma_allowed():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1), }, rule: { true, }, "
        "action: { REPORT(), } }"
    )
    assert len(spec.actions) == 1


def test_trailing_input_raises():
    with pytest.raises(ParseError, match="trailing input"):
        parse_guardrail(
            "guardrail g { trigger: { TIMER(0,1) }, rule: { true }, "
            "action: { REPORT() } } extra"
        )


def test_parse_guardrails_multiple_blocks():
    specs = parse_guardrails("""
guardrail one { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT() } }
guardrail two { trigger: { TIMER(0,1) }, rule: { true }, action: { REPORT() } }
""")
    assert [s.name for s in specs] == ["one", "two"]


def test_parse_guardrails_empty_input():
    assert parse_guardrails("  // nothing here\n") == []


def test_error_carries_line_number():
    try:
        parse_guardrail("guardrail g {\n  bogus: { }\n}")
    except ParseError as error:
        assert error.line == 2
    else:
        pytest.fail("expected ParseError")


def test_parenthesized_expression():
    spec = parse_guardrail(
        "guardrail g { trigger: { TIMER(0,1) }, "
        "rule: { (LOAD(a) + 1) * 2 <= 10 }, action: { REPORT() } }"
    )
    assert spec.rules[0].expression.left.op == "*"

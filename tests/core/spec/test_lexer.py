"""DSL lexer."""

import pytest

from repro.core.errors import ParseError
from repro.core.spec.lexer import tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_empty_input_yields_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind == "eof"


def test_keywords_vs_identifiers():
    tokens = tokenize("guardrail foo TIMER LOAD bar")
    assert [t.kind for t in tokens[:-1]] == [
        "keyword", "ident", "keyword", "keyword", "ident",
    ]


def test_dotted_identifier_is_one_token():
    assert values("storage.pick_device") == ["storage.pick_device"]


def test_identifier_cannot_end_with_dot():
    with pytest.raises(ParseError, match="ends with a dot"):
        tokenize("foo.")


def test_numbers_plain_and_scientific():
    assert values("42 3.5 1e9 2.5e-3") == [42, 3.5, 1_000_000_000, 0.0025]


def test_integer_valued_floats_become_ints():
    assert values("1e9")[0] == 10 ** 9
    assert isinstance(values("1e9")[0], int)


def test_time_unit_suffixes():
    assert values("50ms 100us 2ns 1s") == [
        50_000_000, 100_000, 2, 1_000_000_000,
    ]


def test_fractional_unit_suffix():
    assert values("1.5ms") == [1_500_000]


def test_unknown_unit_suffix_raises():
    with pytest.raises(ParseError, match="unit suffix"):
        tokenize("5parsecs")


def test_operators_longest_match_first():
    assert values("<= < >= > == != && ||") == [
        "<=", "<", ">=", ">", "==", "!=", "&&", "||",
    ]


def test_line_comment_skipped():
    assert values("1 // the rest is ignored\n2") == [1, 2]


def test_block_comment_skipped():
    assert values("1 /* multi\nline */ 2") == [1, 2]


def test_unterminated_block_comment_raises():
    with pytest.raises(ParseError, match="unterminated block comment"):
        tokenize("/* oops")


def test_string_literals_with_escapes():
    assert values(r'"a\nb" "q\"q"') == ["a\nb", 'q"q']


def test_unterminated_string_raises():
    with pytest.raises(ParseError, match="unterminated string"):
        tokenize('"abc')


def test_bad_escape_raises():
    with pytest.raises(ParseError, match="bad escape"):
        tokenize(r'"\x"')


def test_unexpected_character_raises_with_location():
    with pytest.raises(ParseError, match="line 2"):
        tokenize("ok\n  @")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_true_false_are_keywords():
    assert kinds("true false")[:2] == ["keyword", "keyword"]

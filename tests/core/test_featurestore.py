"""Feature store: SAVE/LOAD, derived keys, versions, subscriptions."""

import math

import pytest

from repro.core.errors import StoreError
from repro.core.featurestore import FeatureStore


@pytest.fixture
def store():
    clock = {"now": 0}
    s = FeatureStore(clock=lambda: clock["now"])
    s._test_clock = clock
    return s


def test_save_load_roundtrip(store):
    store.save("a", 1.5)
    assert store.load("a") == 1.5


def test_load_missing_returns_default(store):
    assert store.load("missing") is None
    assert store.load("missing", default=7) == 7


def test_bool_values_stored_as_is(store):
    store.save("flag", False)
    assert store.load("flag") is False


def test_invalid_keys_rejected(store):
    for bad in ["", "1abc", "a b", "a..b", ".a", "a-", 42]:
        with pytest.raises(StoreError):
            store.save(bad, 1)


def test_dotted_keys_accepted(store):
    store.save("storage.io_latency.p95", 1)
    assert "storage.io_latency.p95" in store


def test_save_and_load_counters(store):
    store.save("a", 1)
    store.load("a")
    store.load("a")
    assert store.save_count == 1
    assert store.load_count == 2


def test_version_increments_per_save(store):
    assert store.version("a") == 0
    store.save("a", 1)
    store.save("a", 2)
    assert store.version("a") == 2


def test_subscription_fires_and_unsubscribes(store):
    seen = []
    unsubscribe = store.subscribe(lambda k, v, now: seen.append((k, v)))
    store.save("a", 1)
    unsubscribe()
    store.save("a", 2)
    assert seen == [("a", 1)]


def test_unsubscribe_twice_is_safe(store):
    unsubscribe = store.subscribe(lambda *a: None)
    unsubscribe()
    unsubscribe()


class TestDerivedKeys:
    def test_moving_average(self, store):
        store.derive_moving_average("x", window=2)
        store.save("x", 2.0)
        store.save("x", 4.0)
        store.save("x", 6.0)
        assert store.load("x.avg") == 5.0

    def test_custom_name(self, store):
        store.derive_moving_average("x", window=4, name="x.mean4")
        store.save("x", 2.0)
        assert store.load("x.mean4") == 2.0

    def test_ewma(self, store):
        store.derive_ewma("x", alpha=0.5)
        store.save("x", 0.0)
        store.save("x", 10.0)
        assert store.load("x.ewma") == 5.0

    def test_quantile(self, store):
        store.derive_quantile("x", 0.5, name="x.p50")
        for v in [1, 2, 3, 4, 100]:
            store.save("x", v)
        assert store.load("x.p50") == pytest.approx(3, abs=1)

    def test_rate_over_window(self, store):
        store.derive_rate("hit", window=100, name="hit_rate")
        clock = store._test_clock
        for t, hit in [(0, 1), (10, 0), (20, 1), (30, 1)]:
            clock["now"] = t
            store.save("hit", hit)
        assert store.load("hit_rate") == pytest.approx(0.75)
        clock["now"] = 500  # all events age out
        assert store.load("hit_rate") == 0.0

    def test_rate_counts_bools(self, store):
        store.derive_rate("ev", window=100)
        store.save("ev", True)
        store.save("ev", False)
        assert store.load("ev.rate") == 0.5

    def test_derived_key_cannot_be_saved(self, store):
        store.derive_moving_average("x", window=2)
        with pytest.raises(StoreError, match="derived"):
            store.save("x.avg", 1)

    def test_duplicate_derived_name_rejected(self, store):
        store.derive_moving_average("x", window=2)
        with pytest.raises(StoreError, match="already exists"):
            store.derive_ewma("y", alpha=0.5, name="x.avg")

    def test_derived_before_any_save_is_nan(self, store):
        store.derive_moving_average("x", window=2)
        assert math.isnan(store.load("x.avg"))

    def test_non_numeric_saves_skip_derived(self, store):
        store.derive_moving_average("x", window=2)
        store.save("x", "a string")
        assert math.isnan(store.load("x.avg"))

    def test_derived_version_bumps_on_source_save(self, store):
        store.derive_moving_average("x", window=2)
        before = store.version("x.avg")
        store.save("x", 1.0)
        assert store.version("x.avg") == before + 1


def test_keys_lists_raw_and_derived(store):
    store.save("a", 1)
    store.derive_moving_average("a", window=2)
    assert store.keys() == ["a", "a.avg"]


def test_snapshot_includes_values_and_skips_nan_derived(store):
    store.derive_moving_average("x", window=2)
    store.save("a", 1)
    snap = store.snapshot()
    assert snap == {"a": 1}
    store.save("x", 3.0)
    assert store.snapshot()["x.avg"] == 3.0


def test_subscriber_mutation_during_bump_is_safe(store):
    unsubscribes = []

    def subscriber(key, value, now):
        # Unsubscribing from inside a notification must not break iteration.
        for u in unsubscribes:
            u()

    unsubscribes.append(store.subscribe(subscriber))
    store.save("a", 1)
    store.save("a", 2)


# -- crash containment in the notify path (the _bump bugfix) ----------------


def test_crashing_subscriber_does_not_starve_the_rest(store):
    seen = []

    def bomb(key, value, now):
        raise KeyError("subscriber bug")

    store.subscribe(bomb)
    store.subscribe(lambda k, v, now: seen.append((k, v)))
    store.save("a", 1)          # must not raise
    assert seen == [("a", 1)]   # the later subscriber still heard about it
    assert store.load("a") == 1  # and the value itself was written
    assert store.subscriber_error_count == 1
    entry = store.subscriber_errors[0]
    assert entry["key"] == "a"
    assert "KeyError" in entry["error"]
    assert "bomb" in entry["subscriber"]


def test_strict_notify_reproduces_the_pre_fix_abort():
    # The escape hatch keeps the original bug demonstrable: with
    # strict_notify a raising subscriber aborts the remaining deliveries.
    store = FeatureStore(strict_notify=True)
    seen = []
    store.subscribe(lambda k, v, now: (_ for _ in ()).throw(KeyError("bug")))
    store.subscribe(lambda k, v, now: seen.append(k))
    with pytest.raises(KeyError):
        store.save("a", 1)
    assert seen == []           # the second subscriber was starved


def test_subscriber_error_log_is_bounded(store):
    store.subscribe(lambda k, v, now: (_ for _ in ()).throw(ValueError("x")))
    for i in range(store.MAX_SUBSCRIBER_ERRORS + 10):
        store.save("a", i)
    assert store.subscriber_error_count == store.MAX_SUBSCRIBER_ERRORS + 10
    assert len(store.subscriber_errors) == store.MAX_SUBSCRIBER_ERRORS


def test_double_subscribe_is_idempotent(store):
    # The dedup bugfix: subscribing the same callback twice must not double
    # every notification.
    seen = []

    def subscriber(key, value, now):
        seen.append(key)

    first = store.subscribe(subscriber)
    second = store.subscribe(subscriber)
    store.save("a", 1)
    assert seen == ["a"]        # one delivery, not two
    second()                    # either handle removes the one registration
    store.save("a", 2)
    assert seen == ["a"]
    first()                     # and the other stays harmlessly idempotent


def test_snapshot_drops_nan_raw_values(store):
    store.save("ok", 1.5)
    store.save("stale", math.nan)
    snap = store.snapshot()
    assert snap == {"ok": 1.5}
    store.save("stale", 2.0)
    assert store.snapshot() == {"ok": 1.5, "stale": 2.0}


def test_unhashable_key_raises_store_error(store):
    with pytest.raises(StoreError):
        store.save(["not", "a", "key"], 1)
    with pytest.raises(StoreError):
        store.load({"also": "bad"})


def test_validated_key_cache_still_rejects_bad_keys(store):
    store.save("good.key", 1)
    assert "good.key" in store._valid_keys
    with pytest.raises(StoreError):
        store.save("still bad", 1)
    with pytest.raises(StoreError):
        store.load("1starts_with_digit")
    # The cached key keeps working after rejected lookups.
    assert store.load("good.key") == 1

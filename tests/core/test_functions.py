"""Function table: slots, replacement, restore."""

import pytest

from repro.core.errors import ActionError
from repro.core.functions import FunctionTable


@pytest.fixture
def table():
    return FunctionTable()


def test_register_and_call_through_slot(table):
    table.register("f", lambda x: x + 1)
    assert table.slot("f")(1) == 2


def test_duplicate_slot_rejected(table):
    table.register("f", lambda: None)
    with pytest.raises(ActionError, match="already registered"):
        table.register("f", lambda: None)


def test_replace_rebinds_slot(table):
    table.register("policy", lambda: "learned")
    table.register_implementation("fallback", lambda: "safe")
    table.replace("policy", "fallback")
    slot = table.slot("policy")
    assert slot() == "safe"
    assert slot.replaced
    assert slot.swap_count == 1


def test_replace_to_another_slots_implementation(table):
    table.register("a", lambda: "A")
    table.register("b", lambda: "B")
    table.replace("a", "b")
    assert table.slot("a")() == "B"


def test_restore_returns_to_original(table):
    table.register("policy", lambda: "learned")
    table.register_implementation("fallback", lambda: "safe")
    table.replace("policy", "fallback")
    table.restore("policy")
    slot = table.slot("policy")
    assert slot() == "learned"
    assert not slot.replaced


def test_unknown_slot_error_lists_known(table):
    table.register("known", lambda: None)
    with pytest.raises(ActionError, match="known"):
        table.slot("unknown")


def test_unknown_implementation_rejected(table):
    table.register("f", lambda: None)
    with pytest.raises(ActionError, match="unknown implementation"):
        table.replace("f", "ghost")


def test_duplicate_implementation_rejected(table):
    table.register_implementation("x", lambda: None)
    with pytest.raises(ActionError):
        table.register_implementation("x", lambda: None)


def test_contains_and_names(table):
    table.register("b", lambda: None)
    table.register("a", lambda: None)
    assert "a" in table
    assert "zz" not in table
    assert table.names() == ["a", "b"]


def test_replace_is_repeatable(table):
    table.register("f", lambda: 1)
    table.register_implementation("g", lambda: 2)
    table.replace("f", "g")
    table.replace("f", "g")
    assert table.slot("f").swap_count == 2

"""Auto-tightening of relaxed thresholds (§3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.host import MonitorHost
from repro.core.registry import GuardrailManager
from repro.core.tightening import AutoTightener
from repro.sim.units import SECOND


def build_spec(threshold):
    return (
        "guardrail tight {{ trigger: {{ TIMER(start_time, 1s) }}, "
        "rule: {{ LOAD(metric) <= {} }}, action: {{ REPORT() }} }}".format(
            threshold
        )
    )


def make_tightener(host, **kwargs):
    manager = GuardrailManager(host)
    defaults = dict(
        manager=manager, guardrail_name="tight", key="metric",
        spec_builder=build_spec, initial_threshold=1000.0,
        interval=1 * SECOND, quantile=0.9, margin=1.5, min_samples=20,
    )
    defaults.update(kwargs)
    return AutoTightener(**defaults), manager


def feed(host, values, spacing=10_000_000):
    def emit(index=0):
        if index < len(values):
            host.store.save("metric", values[index])
            host.engine.schedule(spacing, emit, index + 1)
    emit()


def test_threshold_tightens_toward_observed_quantile(host):
    tightener, manager = make_tightener(host)
    tightener.start()
    feed(host, [10.0] * 200)
    host.engine.run(until=4 * SECOND)
    assert tightener.threshold == pytest.approx(15.0, rel=0.05)  # 10 * 1.5
    assert tightener.tighten_count >= 1
    assert manager.update_count >= 1


def test_tightened_guardrail_catches_regression(host):
    tightener, manager = make_tightener(host)
    tightener.start()
    feed(host, [10.0] * 200)
    host.engine.run(until=4 * SECOND)
    # A regression to 100 would pass the relaxed 1000 threshold but not the
    # tightened one.
    host.store.save("metric", 100.0)
    host.engine.run(until=5 * SECOND)
    assert manager.get("tight").violation_count >= 1


def test_threshold_never_increases(host):
    tightener, _ = make_tightener(host)
    tightener.start()
    feed(host, [10.0] * 100 + [500.0] * 200)
    host.engine.run(until=6 * SECOND)
    thresholds = [t for _, t in tightener.history]
    assert all(b <= a for a, b in zip(thresholds, thresholds[1:]))


def test_respects_min_samples(host):
    tightener, _ = make_tightener(host, min_samples=1000)
    tightener.start()
    feed(host, [10.0] * 50)
    host.engine.run(until=3 * SECOND)
    assert tightener.tighten_count == 0
    assert tightener.threshold == 1000.0


def test_floor_respected(host):
    tightener, _ = make_tightener(host, floor=50.0)
    tightener.start()
    feed(host, [1.0] * 200)
    host.engine.run(until=4 * SECOND)
    assert tightener.threshold == 50.0


def test_ignores_other_keys_and_non_numeric(host):
    tightener, _ = make_tightener(host)
    tightener.start()
    host.store.save("unrelated", 5.0)
    host.store.save("metric", "not a number")
    host.engine.run(until=2 * SECOND)
    assert tightener._sample_count == 0


def test_stop_halts_updates(host):
    tightener, manager = make_tightener(host)
    tightener.start()
    feed(host, [10.0] * 400)
    host.engine.run(until=2 * SECOND)
    tightener.stop()
    count = tightener.tighten_count
    host.engine.run(until=6 * SECOND)
    assert tightener.tighten_count == count


def test_history_starts_with_initial(host):
    tightener, _ = make_tightener(host)
    assert tightener.history == [(0, 1000.0)]


# -- regression pins (each failed before its fix) ---------------------------


def test_boolean_telemetry_is_ignored(host):
    # bool is an int subclass: flag keys fed float(True) into the P2
    # estimator and dragged the envelope toward 1.0.
    tightener, _ = make_tightener(host, min_samples=1)
    tightener.start()
    feed(host, [True, False] * 100)
    host.engine.run(until=4 * SECOND)
    assert tightener._sample_count == 0
    assert tightener.threshold == 1000.0
    assert tightener.tighten_count == 0


def test_history_records_actual_start_time(host):
    # A tightener started at engine time T>0 used to seed its history at
    # t=0, misreporting when observation began in merged timelines.
    tightener, _ = make_tightener(host)
    host.engine.run(until=2 * SECOND)
    tightener.start()
    assert tightener.history[0] == (2 * SECOND, 1000.0)
    feed(host, [10.0] * 200)
    host.engine.run(until=6 * SECOND)
    assert tightener.tighten_count >= 1
    assert tightener.history[0] == (2 * SECOND, 1000.0)
    assert all(t >= 2 * SECOND for t, _ in tightener.history)


def test_stop_during_tick_does_not_rearm(host):
    # stop() called from inside the tick (e.g. manager teardown triggered
    # by a rule/action) used to leave the timer re-armed on a stopped
    # tightener.
    tightener, manager = make_tightener(host)
    original_builder = tightener.spec_builder
    started = []

    def stopping_builder(threshold):
        if started:
            tightener.stop()
        return original_builder(threshold)

    tightener.spec_builder = stopping_builder
    tightener.start()
    started.append(True)
    feed(host, [10.0] * 200)
    host.engine.run(until=2 * SECOND)
    assert tightener.tighten_count == 1
    assert tightener._timer is None
    host.engine.run(until=8 * SECOND)
    assert tightener.tighten_count == 1


# -- invariants under arbitrary interleavings -------------------------------

_OPS = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=2000.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["tick", "tick", True, False, "junk",
                         float("nan")]),
    ),
    max_size=50,
)


@given(ops=_OPS)
@settings(max_examples=40, deadline=None)
def test_tightening_invariants_under_interleavings(ops):
    """Monotone envelope, floor respected, history bookkeeping exact.

    Whatever order samples (numeric, boolean, junk, NaN) and timer ticks
    arrive in: the threshold only ever decreases, never below ``floor``,
    and every tighten appends exactly one history entry at a
    non-decreasing timestamp.
    """
    host = MonitorHost()
    manager = GuardrailManager(host)
    tightener = AutoTightener(
        manager=manager, guardrail_name="tight", key="metric",
        spec_builder=build_spec, initial_threshold=1000.0,
        interval=1 * SECOND, quantile=0.9, margin=1.5, floor=5.0,
        min_samples=5,
    ).start()
    now = host.engine.now
    for op in ops:
        if op == "tick":
            now += 1 * SECOND
            host.engine.run(until=now)
        else:
            host.store.save("metric", op)
    host.engine.run(until=now + 1 * SECOND)

    thresholds = [t for _, t in tightener.history]
    assert all(b <= a for a, b in zip(thresholds, thresholds[1:]))
    assert all(t >= 5.0 for t in thresholds[1:])
    assert tightener.tighten_count == len(tightener.history) - 1
    times = [t for t, _ in tightener.history]
    assert all(b >= a for a, b in zip(times, times[1:]))

"""Cross-host columnar rule sweep: parity with per-host scalar evaluation."""

import math

import pytest

from repro.core.expr import EvalContext
from repro.fleet.scenario import fleet_versions
from repro.fleet.worker import (
    FleetError,
    HostSpec,
    SimulatedHost,
    columnar_fleet_check,
)
from repro.sim.units import SECOND

V1, V2 = fleet_versions()

COMPOSITE_SPEC = """
guardrail composite-health {
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.5 && LOAD(io_latency_us) < 100000 },
  action: { REPORT() }
}
"""


def build_fleet(n=6, corrupt=1, extra_spec=None):
    hosts = []
    for host_id in range(n):
        flags = ("corrupt@false_submit_rate",) if host_id < corrupt else ()
        spec = HostSpec(host_id, seed=100 + host_id, rate_ios=300,
                        fault_flags=flags, fault_seed=host_id)
        host = SimulatedHost(spec, V1, SECOND, total_rounds=2)
        if extra_spec is not None:
            host.kernel.guardrails.load(extra_spec, arm=False)
        host.step(1 * SECOND)
        hosts.append(host)
    return hosts


def scalar_reference(hosts, guardrail):
    """Per-host closure-lane evaluation — the ground truth."""
    expected = []
    compiled = hosts[0].kernel.guardrails.get(guardrail).compiled
    for index in range(len(compiled.rules)):
        verdicts, ops = [], []
        for host in hosts:
            program = (host.kernel.guardrails.get(guardrail)
                       .compiled.closure_programs[index])
            ctx = EvalContext(host.kernel.store,
                              now=host.kernel.engine.now, payload={})
            result = program(ctx)
            ops.append(ctx.ops)
            if result is None:
                verdicts.append("inconclusive")
            elif not result:
                verdicts.append("violation")
            else:
                verdicts.append("ok")
        expected.append({"verdicts": verdicts, "ops": ops})
    return expected


def test_columnar_sweep_matches_scalar_closures():
    hosts = build_fleet()
    results = columnar_fleet_check(hosts)
    assert set(results) == {V1.name}
    (entry,) = results[V1.name]
    assert entry["lane"] == "columnar"
    (expected,) = scalar_reference(hosts, V1.name)
    assert entry["verdicts"] == expected["verdicts"]
    assert entry["ops"] == expected["ops"]
    # The corrupt host's NaN signal reads as missing data on both lanes.
    assert entry["verdicts"][0] == "inconclusive"
    assert "ok" in entry["verdicts"][1:]


def test_composite_rule_short_circuit_ops_match():
    hosts = build_fleet(n=5, corrupt=2, extra_spec=COMPOSITE_SPEC)
    results = columnar_fleet_check(hosts, guardrail="composite-health")
    (entry,) = results["composite-health"]
    assert entry["lane"] == "columnar"
    (expected,) = scalar_reference(hosts, "composite-health")
    assert entry["verdicts"] == expected["verdicts"]
    # Ops include the per-row short-circuit masking of the && right arm.
    assert entry["ops"] == expected["ops"]


def test_non_numeric_store_value_falls_back_to_scalar():
    hosts = build_fleet(n=3, corrupt=0, extra_spec=COMPOSITE_SPEC)
    hosts[1].kernel.store.save("io_latency_us", "garbage")
    results = columnar_fleet_check(hosts, guardrail="composite-health")
    (entry,) = results["composite-health"]
    assert entry["lane"] == "scalar"
    (expected,) = scalar_reference(hosts, "composite-health")
    assert entry["verdicts"] == expected["verdicts"]
    assert entry["ops"] == expected["ops"]


def test_mixed_versions_rejected():
    hosts = build_fleet(n=3, corrupt=0)
    hosts[2].apply(V2)
    with pytest.raises(FleetError):
        columnar_fleet_check(hosts)


def test_empty_fleet_is_empty_result():
    assert columnar_fleet_check([]) == {}


def test_sweep_does_not_perturb_rule_state():
    hosts = build_fleet(n=3, corrupt=0)
    before = [(h.kernel.guardrails.get(V1.name).check_count,
               h.kernel.guardrails.get(V1.name).violation_count,
               h.kernel.store.save_count) for h in hosts]
    columnar_fleet_check(hosts)
    after = [(h.kernel.guardrails.get(V1.name).check_count,
              h.kernel.guardrails.get(V1.name).violation_count,
              h.kernel.store.save_count) for h in hosts]
    assert before == after


def test_verdict_decoding_covers_violation():
    # Force a violating signal on every host: rate above both thresholds.
    hosts = build_fleet(n=2, corrupt=0)
    for host in hosts:
        store = host.kernel.store
        # Rebind the derived key is not allowed; check against v2's rule by
        # applying it, then saturating the rate with false submits.
        host.apply(V2)
        for _ in range(500):
            store.save("false_submit", 1)
    results = columnar_fleet_check(hosts)
    (entry,) = results[V1.name]
    assert entry["verdicts"] == ["violation", "violation"]
    (expected,) = scalar_reference(hosts, V1.name)
    assert entry["verdicts"] == expected["verdicts"]
    assert entry["ops"] == expected["ops"]

"""Multi-policy hosts: spec-driven policy (S1), digest groups, identity.

The S1 regression: ``SimulatedHost`` used to hardcode
``storage.shortest_queue`` regardless of the spec, so a round-robin host
still ran the model.  Pre-fix, ``test_round_robin_host_never_uses_model``
fails with thousands of model submits.
"""

import json

import pytest

from repro.fleet.aggregate import FleetDigest, HostDigest, merge_groups
from repro.fleet.rollout import GuardrailVersion
from repro.fleet.scenario import FLEET_SPEC_V1, GUARDRAIL_NAME
from repro.fleet.worker import FleetRunner, HostSpec, SimulatedHost
from repro.sim.units import SECOND


def _version():
    return GuardrailVersion(GUARDRAIL_NAME, 1, FLEET_SPEC_V1)


def _run_fleet(specs, rounds=3, jobs=1):
    digests = []
    with FleetRunner(specs, _version(), round_ns=1 * SECOND,
                     total_rounds=rounds, jobs=jobs) as runner:
        for index in range(rounds):
            digests.extend(runner.step_round(index, (index + 1) * SECOND))
    return digests


# -- S1: the storage policy comes from the spec ---------------------------

def test_round_robin_host_never_uses_model():
    digests = _run_fleet([HostSpec(0, seed=11,
                                   policy="storage.round_robin")])
    assert sum(d.completed_ios for d in digests) > 0
    assert sum(d.model_submits for d in digests) == 0
    assert sum(d.false_submits for d in digests) == 0


def test_shortest_queue_host_uses_model():
    digests = _run_fleet([HostSpec(0, seed=11,
                                   policy="storage.shortest_queue")])
    assert sum(d.model_submits for d in digests) > 0


def test_default_policy_is_shortest_queue():
    assert HostSpec(0, seed=1).policy == "storage.shortest_queue"


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown storage policy"):
        HostSpec(0, seed=1, policy="storage.psychic")


def test_spec_validates_domains():
    with pytest.raises(ValueError, match="start with 'storage'"):
        HostSpec(0, seed=1, domains=("cache",))
    with pytest.raises(ValueError, match="duplicate"):
        HostSpec(0, seed=1, domains=("storage", "cache", "cache"))


# -- multi-policy hosts and digest groups ---------------------------------

def test_multi_domain_host_populates_groups():
    spec = HostSpec(0, seed=7, domains=("storage", "cache", "sched"),
                    workload="quiet")
    digests = _run_fleet([spec], rounds=2)
    for digest in digests:
        assert set(digest.groups) == {"storage", "cache", "sched"}
        # Top-level counters remain the sum over the per-domain groups.
        for field in ("checks", "violations", "actions", "inconclusive"):
            assert getattr(digest, field) == sum(
                group[field] for group in digest.groups.values())
        # One TIMER(1s) check per guardrail per round.
        assert all(group["checks"] == 1
                   for group in digest.groups.values())


def test_legacy_host_leaves_groups_empty():
    digests = _run_fleet([HostSpec(0, seed=11)], rounds=1)
    digest = digests[0]
    assert digest.groups == {}
    assert "groups" not in digest.to_dict()
    sketches = json.loads(digest.to_row()["sketches"])
    assert "groups" not in sketches  # byte-identical legacy rows


def test_groups_merge_exactly_across_rounds_and_hosts():
    specs = [HostSpec(i, seed=30 + i, domains=("storage", "mm"),
                      workload="quiet") for i in range(3)]
    digests = _run_fleet(specs, rounds=3)
    fleet = FleetDigest()
    for digest in digests:
        fleet.merge_host(digest)
    expected = {}
    for digest in digests:
        merge_groups(expected, digest.groups)
    assert fleet.groups == expected
    assert fleet.to_dict()["groups"] == {
        domain: dict(counters)
        for domain, counters in sorted(expected.items())}
    # 3 hosts x 3 rounds x one check per guardrail per round.
    assert fleet.groups["storage"]["checks"] == 9
    assert fleet.groups["mm"]["checks"] == 9


def test_groups_survive_row_round_trip():
    spec = HostSpec(0, seed=7, domains=("storage", "net"),
                    workload="quiet")
    digest = _run_fleet([spec], rounds=1)[0]
    assert digest.groups
    restored = HostDigest.from_row(digest.to_row())
    assert restored.groups == digest.groups
    assert restored.to_row() == digest.to_row()


def test_multi_domain_digests_identical_across_jobs():
    def run(jobs):
        specs = [HostSpec(i, seed=20 + i, domains=("storage", "cache"),
                          workload="quiet") for i in range(4)]
        return [json.dumps(d.to_row(), sort_keys=True)
                for d in _run_fleet(specs, rounds=3, jobs=jobs)]

    assert run(1) == run(3)


def test_host_digest_merge_round_adds_groups():
    spec = HostSpec(0, seed=7, domains=("storage", "cache"),
                    workload="quiet")
    first, second = _run_fleet([spec], rounds=2)
    merged = HostDigest.from_row(first.to_row())
    merged.merge_round(HostDigest.from_row(second.to_row()))
    for domain in ("storage", "cache"):
        for field in ("checks", "violations", "actions", "inconclusive"):
            assert merged.groups[domain][field] == (
                first.groups[domain][field] + second.groups[domain][field])


def test_apply_retires_counters_into_the_right_group():
    """A guardrail version update on a multi-policy host keeps per-domain
    deltas exact across the monitor swap."""
    spec = HostSpec(0, seed=7, domains=("storage", "cache"),
                    workload="quiet")
    host = SimulatedHost(spec, _version(), round_ns=1 * SECOND,
                         total_rounds=4)
    host.step(2 * SECOND)
    first = host.digest(0)
    host.apply(GuardrailVersion(GUARDRAIL_NAME, 2, FLEET_SPEC_V1))
    host.step(4 * SECOND)
    second = host.digest(1)
    # Two rounds each: storage checks once per second either side of the
    # update; the cache guardrail is untouched by the rollout.
    assert first.groups["storage"]["checks"] == 2
    assert second.groups["storage"]["checks"] == 2
    assert first.groups["cache"]["checks"] == 2
    assert second.groups["cache"]["checks"] == 2

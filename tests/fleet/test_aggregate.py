"""HostDigest/FleetDigest: observation, merging, and fleet-wide rates."""

import math

import pytest

from repro.fleet.aggregate import FleetDigest, HostDigest, latency_histogram
from repro.sim.units import SECOND


def make_digest(host_id, round_index=0, violations=0, inconclusive=0,
                latencies=(), time_ns=1 * SECOND):
    digest = HostDigest(host_id, round_index, time_ns, version=1)
    digest.checks = 1
    digest.violations = violations
    digest.inconclusive = inconclusive
    for index, latency in enumerate(latencies):
        digest.observe_io(time_ns - len(latencies) + index, latency,
                          false_submit=False, predicted_fast=True)
    return digest


def test_observe_io_updates_counters_and_sketches():
    digest = HostDigest(3, 0, 0, version=1)
    digest.observe_io(10, 100.0, false_submit=True, predicted_fast=True)
    digest.observe_io(20, 200.0, false_submit=False, predicted_fast=True)
    digest.observe_io(30, 300.0, false_submit=True, predicted_fast=False)
    assert digest.completed_ios == 3
    assert digest.model_submits == 2
    # false submits only count where the model predicted fast.
    assert digest.false_submits == 1
    assert digest.latency.total == 3
    assert digest.latency_summary.count == 3
    assert digest.latency_summary.min == 100.0


def test_host_digest_to_dict_is_json_friendly():
    import json

    digest = make_digest(1, latencies=[100.0, 200.0])
    out = digest.to_dict()
    json.dumps(out)  # must not raise
    assert out["host_id"] == 1
    assert out["completed_ios"] == 2
    assert out["latency"]["count"] == 2


def test_fleet_digest_merges_hosts_and_rates():
    fleet = FleetDigest(round_ns=1 * SECOND)
    fleet.merge_host(make_digest(0, violations=1, latencies=[100.0]))
    fleet.merge_host(make_digest(1, violations=0, latencies=[300.0]))
    fleet.merge_host(make_digest(0, round_index=1, violations=1,
                                 inconclusive=0, latencies=[200.0],
                                 time_ns=2 * SECOND))
    assert fleet.hosts == {0, 1}
    assert fleet.host_rounds == 3
    assert fleet.host_seconds() == 3.0
    assert fleet.violations == 2
    assert fleet.violation_rate() == pytest.approx(2 / 3)
    assert fleet.completed_ios == 3
    assert fleet.last_time_ns == 2 * SECOND


def test_fleet_digest_merge_fleet_level():
    a = FleetDigest(round_ns=1 * SECOND)
    a.merge_host(make_digest(0, violations=1, latencies=[100.0]))
    b = FleetDigest(round_ns=1 * SECOND)
    b.merge_host(make_digest(1, inconclusive=1, latencies=[200.0, 400.0]))

    reference = FleetDigest(round_ns=1 * SECOND)
    reference.merge_host(make_digest(0, violations=1, latencies=[100.0]))
    reference.merge_host(make_digest(1, inconclusive=1,
                                     latencies=[200.0, 400.0]))

    merged = a.merge(b)
    assert merged is a
    assert merged.to_dict() == reference.to_dict()


def test_fleet_digest_round_mismatch_raises():
    with pytest.raises(ValueError, match="round_ns"):
        FleetDigest(round_ns=1 * SECOND).merge(
            FleetDigest(round_ns=2 * SECOND))


def test_empty_fleet_digest_rates_are_defined():
    fleet = FleetDigest()
    assert fleet.violation_rate() == 0.0
    assert fleet.inconclusive_rate() == 0.0
    assert fleet.false_submit_fraction() == 0.0
    assert math.isnan(fleet.p95_us())
    assert fleet.to_dict()["latency_p95_us"] is None


def test_inconclusive_rate_counts_blind_checks():
    fleet = FleetDigest(round_ns=1 * SECOND)
    fleet.merge_host(make_digest(0, inconclusive=1))
    fleet.merge_host(make_digest(1))
    assert fleet.inconclusive_rate() == pytest.approx(0.5)


def test_latency_histogram_bounds_are_shared():
    # Digest sketches must be mutually mergeable by construction.
    a, b = latency_histogram(), latency_histogram()
    assert a.compatible_with(b)

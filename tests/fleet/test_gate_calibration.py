"""Calibrated gate defaults: pinned values and the seed-7 regression.

Before calibration the gate shipped with ``max_p95_ratio=1.75``, which
false-tripped half the clean 16-host rollouts — seed 7 most visibly —
on latency noise between the old and new guardrail variants.  The
defaults are now derived from the labelled eval dataset (see
``grctl eval calibrate`` and EXPERIMENTS.md); these tests pin both the
numbers and the behaviour.
"""

import pytest

from repro.fleet.rollout import GateConfig
from repro.fleet.scenario import run_fleet_rollout


def test_defaults_are_the_calibrated_values():
    # Changing these requires re-running `grctl eval calibrate` and
    # updating EVAL_baseline.json + EXPERIMENTS.md together.
    assert GateConfig().to_dict() == {
        "max_violation_rate_delta": 0.5,
        "max_inconclusive_rate_delta": 0.5,
        "max_p95_ratio": 16.0,
        "min_checks": 1,
    }


@pytest.mark.slow
def test_seed7_clean_full_rollout_completes():
    # The motivating false trip: a fully clean 16-host rollout at seed 7
    # must reach 100% under the default gate.
    report = run_fleet_rollout(hosts=16, seed=7)
    assert report["status"] == "completed"
    assert report["stages"][-1]["stage"]["label"] == "100%"
    assert all(stage["gate"]["passed"] for stage in report["stages"])


@pytest.mark.slow
def test_calibration_did_not_cost_recall():
    # The loosened p95 threshold still halts a genuinely faulty rollout.
    report = run_fleet_rollout(hosts=4, seed=42, fault_hosts=1,
                               fault_kind="drift", quick=True)
    assert report["status"] == "rolled_back"

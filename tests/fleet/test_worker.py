"""SimulatedHost and FleetRunner: real kernels, inline vs process shards."""

import pytest

from repro.fleet.scenario import fleet_versions, make_fleet_specs
from repro.fleet.worker import FleetRunner, HostSpec, SimulatedHost
from repro.sim.units import SECOND

V1, V2 = fleet_versions()


def digests_as_dicts(digests):
    return [d.to_dict() for d in digests]


def test_simulated_host_serves_ios_and_checks():
    spec = HostSpec(0, seed=7, rate_ios=300)
    host = SimulatedHost(spec, V1, SECOND, total_rounds=3)
    host.step(1 * SECOND)
    digest = host.digest(0)
    assert digest.host_id == 0
    assert digest.version == 1
    assert digest.completed_ios > 0
    assert digest.checks >= 1
    assert digest.latency.total == digest.completed_ios


def test_counter_deltas_survive_guardrail_update():
    # GuardrailManager.update() replaces the monitor and zeroes its
    # counters; per-round deltas must not go negative across an apply().
    spec = HostSpec(0, seed=7, rate_ios=300)
    host = SimulatedHost(spec, V1, SECOND, total_rounds=4)
    host.step(1 * SECOND)
    first = host.digest(0)
    assert first.checks >= 1
    host.apply(V2)
    assert host.version == 2
    host.step(2 * SECOND)
    second = host.digest(1)
    assert second.version == 2
    assert second.checks >= 1  # not negative, not reset-swallowed


def test_apply_same_version_is_a_no_op():
    spec = HostSpec(0, seed=7, rate_ios=300)
    host = SimulatedHost(spec, V1, SECOND, total_rounds=2)
    monitor_before = host.kernel.guardrails.get(V1.name)
    host.apply(V1)
    assert host.kernel.guardrails.get(V1.name) is monitor_before


def test_digest_sketches_are_per_round():
    spec = HostSpec(0, seed=7, rate_ios=300)
    host = SimulatedHost(spec, V1, SECOND, total_rounds=3)
    host.step(1 * SECOND)
    first = host.digest(0)
    host.step(2 * SECOND)
    second = host.digest(1)
    # Fresh sketches each round: totals are per-round, not cumulative.
    assert second.latency.total == second.completed_ios
    assert first.round_index == 0 and second.round_index == 1
    assert second.time_ns == 2 * SECOND


def test_runner_rejects_empty_fleet():
    with pytest.raises(ValueError):
        FleetRunner([], V1, SECOND, 2)


@pytest.mark.slow
def test_inline_and_process_shards_produce_identical_digests():
    specs = make_fleet_specs(4, seed=5, rate_ios=250)
    rounds = 2
    with FleetRunner(specs, V1, SECOND, rounds, jobs=1) as inline, \
            FleetRunner(make_fleet_specs(4, seed=5, rate_ios=250), V1,
                        SECOND, rounds, jobs=3) as sharded:
        for round_index in range(rounds):
            until = (round_index + 1) * SECOND
            a = inline.step_round(round_index, until)
            b = sharded.step_round(round_index, until)
            assert digests_as_dicts(a) == digests_as_dicts(b)
            assert [d.host_id for d in a] == [0, 1, 2, 3]


@pytest.mark.slow
def test_directives_reach_the_right_hosts_across_shards():
    specs = make_fleet_specs(4, seed=5, rate_ios=250)
    with FleetRunner(specs, V1, SECOND, 2, jobs=2) as runner:
        runner.step_round(0, 1 * SECOND)
        digests = runner.step_round(
            1, 2 * SECOND, {1: [V2.to_dict()], 3: [V2.to_dict()]})
        assert [d.version for d in digests] == [1, 2, 1, 2]


def test_runner_close_is_idempotent():
    specs = make_fleet_specs(2, seed=5, rate_ios=250)
    runner = FleetRunner(specs, V1, SECOND, 1, jobs=1)
    runner.close()
    runner.close()

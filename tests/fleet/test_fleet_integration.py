"""End-to-end acceptance: grctl fleet determinism and the rollback story.

These are the ISSUE's acceptance checks:

- ``grctl fleet --hosts 16 --seed 42 --json`` is byte-identical across
  runs and across ``--jobs 1`` vs ``--jobs 4``;
- a fault-injected rollout halts at the canary stage and rolls back via
  ``GuardrailManager.update()``; a clean rollout reaches 100%.
"""

import io
import json

import pytest

from repro.tools.grctl import main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.mark.slow
def test_fleet_json_byte_identical_across_runs_and_jobs():
    argv = ["fleet", "--hosts", "16", "--seed", "42", "--json"]
    code_a, first = run(argv)
    code_b, second = run(argv)
    code_c, sharded = run(argv + ["--jobs", "4"])
    assert code_a == code_b == code_c == 0
    assert first == second            # rerun: byte-identical
    assert first == sharded           # sharding cannot leak into the report
    report = json.loads(first)
    assert report["status"] == "completed"
    assert report["hosts"] == 16


@pytest.mark.slow
def test_faulted_rollout_halts_at_canary_and_rolls_back():
    code, output = run(["fleet", "--hosts", "16", "--seed", "42",
                        "--faults", "1", "--json"])
    assert code == 1  # rolled back: the thing `fleet` exists to detect
    report = json.loads(output)
    assert report["status"] == "rolled_back"
    assert report["rolled_back_at_stage"] == "canary"
    assert len(report["stages"]) == 1
    gate = report["stages"][0]["gate"]
    assert not gate["passed"]
    assert any("inconclusive" in reason for reason in gate["reasons"])
    # Rollback happened through the update path and settled the fleet.
    events = [e["event"] for e in report["timeline"]]
    assert events[-2:] == ["rollback.start", "rollback.done"]
    assert report["stages"][0]["rollback"]["hosts"] == 1


def test_clean_quick_rollout_reaches_full_fleet():
    code, output = run(["fleet", "--hosts", "4", "--quick", "--json"])
    assert code == 0
    report = json.loads(output)
    assert report["status"] == "completed"
    # The last stage took the whole fleet.
    assert report["stages"][-1]["stage"]["target_hosts"] == 4
    assert report["timeline"][-1]["event"] == "rollout.completed"


def test_quick_faulted_rollout_rolls_back():
    code, output = run(["fleet", "--hosts", "4", "--quick",
                        "--faults", "1", "--json"])
    assert code == 1
    report = json.loads(output)
    assert report["status"] == "rolled_back"
    assert report["rolled_back_at_stage"] == "canary"


def test_fleet_human_summary_renders():
    code, output = run(["fleet", "--hosts", "4", "--quick"])
    assert code == 0
    assert "fleet: 4 host(s)" in output
    assert "stage canary" in output
    assert "completed: v2 on all 4 host(s)" in output


def test_fleet_usage_errors_exit_2():
    for argv in (
        ["fleet", "--hosts", "0"],
        ["fleet", "--jobs", "0"],
        ["fleet", "--hosts", "4", "--faults", "5"],
        ["fleet", "--hosts", "4", "--stages", "nope:%"],
        ["fleet", "--hosts", "4", "--stages", ""],
    ):
        code, _ = run(argv)
        assert code == 2, argv


def test_fleet_rollback_uses_guardrail_manager_update():
    # White-box: the host moves v1 -> v2 -> v1 strictly through
    # GuardrailManager.update() (the no-reboot path), never a fresh load().
    from repro.fleet.scenario import fleet_versions
    from repro.fleet.worker import HostSpec, SimulatedHost
    from repro.sim.units import SECOND

    v1, v2 = fleet_versions()
    host = SimulatedHost(HostSpec(0, seed=3, rate_ios=200), v1, SECOND, 3)
    calls = []
    manager = host.kernel.guardrails
    original_update = manager.update

    def spying_update(text, **kwargs):
        calls.append("update")
        return original_update(text, **kwargs)

    manager.update = spying_update
    host.step(1 * SECOND)
    host.apply(v2)
    host.step(2 * SECOND)
    host.apply(v1)
    assert calls == ["update", "update"]
    assert host.version == 1

"""Control plane: stage parsing, health gates, and the rollout state
machine (driven against a scripted in-memory runner — no kernels)."""

import pytest

from repro.fleet.aggregate import FleetDigest, HostDigest
from repro.fleet.rollout import (
    GateConfig,
    GuardrailVersion,
    RolloutController,
    RolloutPlan,
    parse_stages,
)
from repro.sim.units import SECOND

V1 = GuardrailVersion("g", 1, "spec v1")
V2 = GuardrailVersion("g", 2, "spec v2")


# -- parse_stages ----------------------------------------------------------


def test_parse_stages_labels_percents_and_counts():
    stages = parse_stages("canary:1,25%,12,100%", hosts=16)
    assert [(s.label, s.target_hosts) for s in stages] == [
        ("canary", 1), ("25%", 4), ("12", 12), ("100%", 16)]


def test_parse_stages_percent_rounds_up_and_clamps():
    stages = parse_stages("canary:1,10%,100%", hosts=8)
    # 10% of 8 = 0.8 -> ceil -> 1, same as canary -> dropped.
    assert [(s.label, s.target_hosts) for s in stages] == [
        ("canary", 1), ("100%", 8)]


def test_parse_stages_drops_non_growing_entries():
    stages = parse_stages("canary:1,25%,100%", hosts=4)
    assert [(s.label, s.target_hosts) for s in stages] == [
        ("canary", 1), ("100%", 4)]


def test_parse_stages_sets_default_bake():
    stages = parse_stages("canary:1,100%", hosts=4, default_bake=3)
    assert all(s.bake_rounds == 3 for s in stages)


@pytest.mark.parametrize("bad", [
    "", " , ", "canary:", ":3", "canary:zero", "0", "-2", "150%", "0%",
])
def test_parse_stages_rejects_malformed_entries(bad):
    with pytest.raises(ValueError):
        parse_stages(bad, hosts=8)


def test_parse_stages_collapses_duplicate_targets():
    assert [(s.label, s.target_hosts) for s in parse_stages("1,1", hosts=4)] \
        == [("1", 1)]


def test_parse_stages_rejects_empty_fleet():
    with pytest.raises(ValueError):
        parse_stages("canary:1", hosts=0)


# -- GateConfig ------------------------------------------------------------


def fleet_digest(violations=0, inconclusive=0, checks=None, host_rounds=4,
                 latencies=(100.0,) * 50):
    digest = FleetDigest(round_ns=1 * SECOND)
    host = HostDigest(0, 0, 1 * SECOND, version=1)
    host.checks = checks if checks is not None else host_rounds
    host.violations = violations
    host.inconclusive = inconclusive
    for index, latency in enumerate(latencies):
        host.observe_io(index, latency, False, True)
    digest.merge_host(host)
    digest.host_rounds = host_rounds  # host-seconds denominator
    return digest


def test_gate_passes_healthy_cohort():
    gate = GateConfig()
    result = gate.evaluate(fleet_digest(), fleet_digest())
    assert result.passed and result.reasons == []


def test_gate_trips_on_violation_rate_delta():
    gate = GateConfig(max_violation_rate_delta=0.5)
    result = gate.evaluate(fleet_digest(violations=0),
                           fleet_digest(violations=4))  # 1.0/host-s
    assert not result.passed
    assert any("violation rate" in reason for reason in result.reasons)
    assert result.measurements["violation_rate_delta"] == pytest.approx(1.0)


def test_gate_trips_on_inconclusive_rate_delta():
    # NaN/missing telemetry shows up as inconclusive checks, never
    # violations; the gate must treat a blind guardrail as unhealthy.
    gate = GateConfig(max_inconclusive_rate_delta=0.5)
    result = gate.evaluate(fleet_digest(), fleet_digest(inconclusive=4))
    assert not result.passed
    assert any("inconclusive" in reason for reason in result.reasons)


def test_gate_trips_on_p95_ratio():
    gate = GateConfig(max_p95_ratio=1.75)
    result = gate.evaluate(
        fleet_digest(latencies=(100.0,) * 50),
        fleet_digest(latencies=(400.0,) * 50))
    assert not result.passed
    assert any("p95" in reason for reason in result.reasons)


def test_gate_min_checks_floor_passes_with_reason():
    gate = GateConfig(min_checks=10)
    result = gate.evaluate(fleet_digest(),
                           fleet_digest(violations=4, checks=4))
    assert result.passed
    assert any("insufficient" in reason for reason in result.reasons)


# -- RolloutController against a scripted runner ---------------------------


class ScriptedRunner:
    """A fleet stand-in: versions move via directives, digests are scripted.

    ``bad_hosts`` violate once per check *only while running version 2* —
    the canonical "new guardrail version misbehaves on this cohort" shape.
    """

    def __init__(self, hosts, bad_hosts=()):
        self.host_ids = list(range(hosts))
        self.versions = {host_id: 1 for host_id in self.host_ids}
        self.bad_hosts = set(bad_hosts)
        self.directive_log = []

    def step_round(self, round_index, until_ns, directives=None):
        directives = directives or {}
        if directives:
            self.directive_log.append((round_index, {
                host: [v["version"] for v in versions]
                for host, versions in sorted(directives.items())}))
        for host_id, versions in directives.items():
            self.versions[host_id] = versions[-1]["version"]
        digests = []
        for host_id in self.host_ids:
            digest = HostDigest(host_id, round_index, until_ns,
                                self.versions[host_id])
            digest.checks = 1
            if host_id in self.bad_hosts and self.versions[host_id] == 2:
                digest.violations = 1
            digest.observe_io(until_ns, 100.0, False, True)
            digests.append(digest)
        return digests


def controller(runner, stages="canary:1,50%,100%", baseline_rounds=2):
    plan = RolloutPlan(parse_stages(stages, len(runner.host_ids),
                                    default_bake=2),
                       baseline_rounds=baseline_rounds,
                       gate=GateConfig(max_violation_rate_delta=0.5),
                       settle_rounds=1)
    return RolloutController(runner, V1, V2, plan, round_ns=1 * SECOND)


def test_clean_rollout_reaches_full_fleet():
    runner = ScriptedRunner(8)
    report = controller(runner).run()
    assert report["status"] == "completed"
    assert report["rolled_back_at_stage"] is None
    assert [s["gate"]["passed"] for s in report["stages"]] == [True] * 3
    assert runner.versions == {h: 2 for h in range(8)}
    events = [e["event"] for e in report["timeline"]]
    assert events[0] == "baseline.start"
    assert events[-1] == "rollout.completed"
    # Directives: v2 to host 0, then hosts 1-3, then hosts 4-7.
    assert runner.directive_log == [
        (2, {0: [2]}), (4, {1: [2], 2: [2], 3: [2]}),
        (6, {4: [2], 5: [2], 6: [2], 7: [2]})]


def test_bad_canary_halts_and_rolls_back():
    runner = ScriptedRunner(8, bad_hosts={0})
    report = controller(runner).run()
    assert report["status"] == "rolled_back"
    assert report["rolled_back_at_stage"] == "canary"
    assert len(report["stages"]) == 1  # later stages never ran
    # Every updated host is back on v1; the rest never left it.
    assert runner.versions == {h: 1 for h in range(8)}
    events = [e["event"] for e in report["timeline"]]
    assert "gate.trip" in events and "rollback.done" in events
    assert "rollout.completed" not in events
    # The rollback directive re-applied v1 to the canary host: baseline
    # rounds 0-1, canary update at round 2, bake through round 3, trip,
    # rollback directive with the round-4 settle step.
    assert runner.directive_log[-1] == (4, {0: [1]})


def test_mid_stage_trip_rolls_back_whole_updated_cohort():
    # Canary host is fine; most of the 50% cohort misbehaves on v2 (the
    # gate measures the whole cohort, so a lone bad host among four is
    # diluted below the 0.5/host-s bound by design).
    runner = ScriptedRunner(8, bad_hosts={1, 2, 3})
    report = controller(runner).run()
    assert report["status"] == "rolled_back"
    assert report["rolled_back_at_stage"] == "50%"
    # All four updated hosts (0-3) roll back, not just the bad ones.
    assert runner.directive_log[-1] == (6, {0: [1], 1: [1], 2: [1], 3: [1]})
    assert runner.versions == {h: 1 for h in range(8)}
    rollback = report["stages"][-1]["rollback"]
    assert rollback["hosts"] == 4


def test_rollout_report_carries_versions_and_plan():
    report = controller(ScriptedRunner(4), stages="canary:1,100%").run()
    assert report["versions"]["old"]["version"] == 1
    assert report["versions"]["new"]["version"] == 2
    assert report["plan"]["baseline_rounds"] == 2
    assert report["hosts"] == 4
    assert report["rounds"] == 2 + 2 + 2  # baseline + two stage bakes


def test_guardrail_version_round_trips():
    version = GuardrailVersion("g", 3, "text")
    assert GuardrailVersion.from_dict(version.to_dict()).to_dict() == \
        version.to_dict()


def test_rollout_plan_validates():
    with pytest.raises(ValueError):
        RolloutPlan([], baseline_rounds=2)
    with pytest.raises(ValueError):
        RolloutPlan(parse_stages("1", hosts=2), baseline_rounds=0)

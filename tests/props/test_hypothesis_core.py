"""Property-based tests: engine, feature store, expression language."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expr import EvalContext, compile_expression, static_cost
from repro.core.featurestore import FeatureStore
from repro.core.spec import ast as A
from repro.sim.engine import Engine

# -- engine ordering invariants ---------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10 ** 6), min_size=1,
                max_size=50))
@settings(max_examples=60, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert engine.now == max(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=30),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_engine_run_until_is_a_clean_partition(delays, cutoff):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda d=delay: fired.append(d))
    engine.run(until=cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
    engine.run()
    assert sorted(fired) == sorted(delays)


# -- feature store invariants ------------------------------------------------


@given(st.lists(st.tuples(
    st.sampled_from(["a", "b", "c.d"]),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
), max_size=60))
@settings(max_examples=60, deadline=None)
def test_store_load_returns_last_save(writes):
    store = FeatureStore()
    last = {}
    for key, value in writes:
        store.save(key, value)
        last[key] = value
    for key, value in last.items():
        assert store.load(key) == value
        assert store.version(key) == sum(1 for k, _ in writes if k == key)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=100),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_store_moving_average_matches_tail_mean(values, window):
    store = FeatureStore()
    store.derive_moving_average("x", window=window)
    for v in values:
        store.save("x", v)
    tail = values[-window:]
    assert math.isclose(store.load("x.avg"), sum(tail) / len(tail),
                        rel_tol=1e-9, abs_tol=1e-6)


# -- expression language invariants -----------------------------------------


def _expr_strategy():
    leaf = st.one_of(
        st.floats(min_value=-100, max_value=100,
                  allow_nan=False).map(A.NumberLiteral),
        st.booleans().map(A.BoolLiteral),
        st.sampled_from(["k1", "k2"]).map(A.Load),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "<=", "<", ">=", ">",
                                       "&&", "||"]),
                      children, children)
            .map(lambda t: A.BinaryOp(t[0], t[1], t[2])),
            st.tuples(st.sampled_from(["-", "!"]), children)
            .map(lambda t: A.UnaryOp(t[0], t[1])),
        )

    return st.recursive(leaf, extend, max_leaves=12)


@given(_expr_strategy())
@settings(max_examples=120, deadline=None)
def test_runtime_ops_never_exceed_static_cost(expr):
    store = FeatureStore()
    store.save("k1", 3.0)  # k2 stays missing: exercises None paths
    program = compile_expression(expr)
    ctx = EvalContext(store)
    program(ctx)  # must never raise
    assert ctx.ops <= static_cost(expr)


@given(_expr_strategy())
@settings(max_examples=120, deadline=None)
def test_expression_evaluation_is_deterministic(expr):
    store = FeatureStore()
    store.save("k1", 3.0)
    store.save("k2", -7.5)
    program = compile_expression(expr)
    first = program(EvalContext(store))
    second = program(EvalContext(store))
    assert first == second


@given(_expr_strategy())
@settings(max_examples=100, deadline=None)
def test_expression_source_roundtrip(expr):
    from repro.core.spec.lexer import tokenize
    from repro.core.spec.parser import _Parser

    source = expr.to_source()
    reparsed = _Parser(tokenize(source)).parse_expression()
    store = FeatureStore()
    store.save("k1", 1.0)
    store.save("k2", 2.0)
    a = compile_expression(expr)(EvalContext(store))
    b = compile_expression(reparsed)(EvalContext(store))
    if isinstance(a, float) and isinstance(b, float):
        assert math.isclose(a, b, rel_tol=1e-12)
    else:
        assert a == b

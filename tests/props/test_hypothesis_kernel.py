"""Property-based tests: simulated-kernel conservation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Kernel
from repro.kernel.cache import KvCache
from repro.kernel.mm import MemoryAllocator, TieredMemory
from repro.kernel.storage.ssd import DeviceProfile, SsdDevice
from repro.kernel.storage.volume import ReplicatedVolume
from repro.sim.units import SECOND


@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=30, deadline=None)
def test_volume_conserves_requests(io_count, replicas, seed):
    kernel = Kernel(seed=seed)
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("d{}".format(i)),
                  "d{}".format(i), DeviceProfile.pre_drift())
        for i in range(replicas)
    ]
    volume = ReplicatedVolume(kernel, devices)
    for _ in range(io_count):
        volume.submit()
    kernel.run(until=60 * SECOND)
    # Every submitted I/O completes exactly once; none are lost or doubled.
    assert volume.completed == io_count
    assert volume.inflight == 0
    assert sum(d.served_count for d in devices) == io_count
    assert len(kernel.metrics.series("storage.io_latency_us")) == io_count


@given(st.lists(st.tuples(st.booleans(),
                          st.integers(min_value=1, max_value=50)),
                min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_allocator_never_over_commits(operations):
    kernel = Kernel(seed=0)
    alloc = MemoryAllocator(kernel, total_pages=200)
    # An adversarial policy granting wild values; the allocator must stay
    # within bounds regardless.
    wild = iter([10 ** 9, -5, 0, 3] * 40)
    kernel.functions.register_implementation(
        "mm.wild", lambda requested, available: next(wild))
    kernel.functions.replace("mm.prealloc_size", "mm.wild")
    for is_alloc, amount in operations:
        if is_alloc:
            alloc.allocate(amount)
        elif alloc.used_pages:
            alloc.free(min(amount, alloc.used_pages))
        assert 0 <= alloc.used_pages <= alloc.total_pages
        assert alloc.available_pages == alloc.total_pages - alloc.used_pages


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                max_size=300),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_cache_occupancy_and_counts(keys, capacity):
    kernel = Kernel(seed=1)
    cache = KvCache(kernel, capacity=capacity)
    for key in keys:
        cache.access(key)
    assert len(cache) <= capacity
    assert cache.hits + cache.misses == len(keys)
    assert cache.evictions == max(0, cache.misses - min(capacity, cache.misses))
    assert 0.0 <= cache.hit_rate <= 1.0


@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                max_size=200),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=50, deadline=None)
def test_tiered_memory_fast_tier_bounded(pages, capacity):
    kernel = Kernel(seed=2)
    tiered = TieredMemory(kernel, fast_capacity=capacity)
    for page in pages:
        tiered.access(page)
    assert len(tiered._fast) <= capacity
    assert tiered.fast_hits <= tiered.accesses == len(pages)
    assert 0.0 <= tiered.hit_rate <= 1.0

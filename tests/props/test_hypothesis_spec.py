"""Property-based tests: the DSL round-trips arbitrary generated guardrails."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import ast as A
from repro.core.spec import parse_guardrail

# DSL keywords are not expressible as identifiers (the grammar has no
# quoting), so the generator must never emit one as a name.
_KEYWORDS = {"guardrail", "trigger", "rule", "action",
             "true", "false", "and", "or", "not"}
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True) \
    .filter(lambda name: name not in _KEYWORDS)
dotted = st.builds(lambda a, b: "{}.{}".format(a, b), identifiers, identifiers)
keys = st.one_of(identifiers, dotted)
numbers = st.one_of(
    st.integers(min_value=0, max_value=10 ** 12).map(A.NumberLiteral),
    st.floats(min_value=0.001, max_value=1e6,
              allow_nan=False).map(A.NumberLiteral),
)


def expressions():
    leaf = st.one_of(
        numbers,
        st.booleans().map(A.BoolLiteral),
        keys.map(A.Load),
        identifiers.map(A.Name),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*", "/"]),
                      children, children)
            .map(lambda t: A.BinaryOp(t[0], t[1], t[2])),
            st.tuples(children, children)
            .map(lambda t: A.Call("min", [t[0], t[1]])),
        )

    return st.recursive(leaf, extend, max_leaves=6)


def rules():
    return st.tuples(
        st.sampled_from(["<=", "<", ">=", ">", "==", "!="]),
        expressions(), expressions(),
    ).map(lambda t: A.RuleSpec(A.BinaryOp(t[0], t[1], t[2])))


def triggers():
    timer = st.tuples(
        st.integers(min_value=0, max_value=10 ** 10),
        st.integers(min_value=1, max_value=10 ** 10),
    ).map(lambda t: A.TimerTriggerSpec(A.NumberLiteral(t[0]),
                                       A.NumberLiteral(t[1])))
    function = dotted.map(A.FunctionTriggerSpec)
    return st.one_of(timer, function)


def actions():
    report = st.lists(expressions(), max_size=2).map(A.ReportSpec)
    save = st.tuples(keys, expressions()).map(lambda t: A.SaveSpec(t[0], t[1]))
    retrain = st.tuples(identifiers, st.none() | expressions()).map(
        lambda t: A.RetrainSpec(t[0], t[1]))
    replace = st.tuples(dotted, dotted).filter(lambda t: t[0] != t[1]).map(
        lambda t: A.ReplaceSpec(t[0], t[1]))
    deprioritize = st.lists(
        st.tuples(identifiers, st.integers(min_value=0, max_value=19)),
        min_size=1, max_size=3, unique_by=lambda t: t[0],
    ).map(lambda pairs: A.DeprioritizeSpec(
        [name for name, _ in pairs],
        [A.NumberLiteral(p) for _, p in pairs],
    ))
    return st.one_of(report, save, retrain, replace, deprioritize)


guardrails = st.builds(
    A.GuardrailSpec,
    identifiers,
    st.lists(triggers(), min_size=1, max_size=3),
    st.lists(rules(), min_size=1, max_size=3),
    st.lists(actions(), min_size=1, max_size=3),
)


@given(guardrails)
@settings(max_examples=120, deadline=None)
def test_generated_guardrails_roundtrip(spec):
    source = spec.to_source()
    reparsed = parse_guardrail(source)
    assert reparsed == spec
    assert parse_guardrail(reparsed.to_source()) == reparsed


@given(guardrails)
@settings(max_examples=60, deadline=None)
def test_generated_guardrails_compile_or_fail_cleanly(spec):
    from repro.core.compiler import GuardrailCompiler
    from repro.core.errors import GuardrailError

    try:
        compiled = GuardrailCompiler().compile(spec)
    except GuardrailError:
        return  # verifier budgets may legitimately reject; never crash
    assert compiled.verification.total_cost >= 1

"""Property-based tests: streaming estimators vs exact computations."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detect.histogram import Histogram
from repro.detect.quantiles import P2Quantile
from repro.detect.streaming import MeanVariance, MovingAverage, RateCounter
from repro.detect.windows import SlidingWindow

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


@given(st.lists(finite_floats, min_size=1, max_size=200),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=80, deadline=None)
def test_moving_average_equals_tail_mean(values, window):
    ma = MovingAverage(window)
    for v in values:
        ma.update(v)
    tail = values[-window:]
    assert math.isclose(ma.value, sum(tail) / len(tail),
                        rel_tol=1e-9, abs_tol=1e-3)


@given(st.lists(finite_floats, min_size=2, max_size=200))
@settings(max_examples=80, deadline=None)
def test_welford_matches_numpy(values):
    mv = MeanVariance()
    for v in values:
        mv.update(v)
    arr = np.array(values)
    assert math.isclose(mv.mean, arr.mean(), rel_tol=1e-9, abs_tol=1e-6)
    assert math.isclose(mv.variance, arr.var(ddof=1), rel_tol=1e-6,
                        abs_tol=1e-3)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.booleans()), min_size=1, max_size=100))
@settings(max_examples=80, deadline=None)
def test_rate_counter_always_a_valid_fraction(events):
    rc = RateCounter(100)
    events.sort(key=lambda e: e[0])
    for time, hit in events:
        rc.observe(time, hit)
        rate = rc.rate(time)
        assert 0.0 <= rate <= 1.0


@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                min_size=20, max_size=500),
       st.sampled_from([0.25, 0.5, 0.75, 0.9]))
@settings(max_examples=50, deadline=None)
def test_p2_quantile_within_data_range(values, q):
    estimator = P2Quantile(q)
    for v in values:
        estimator.update(v)
    assert min(values) <= estimator.value <= max(values)


@given(st.lists(st.floats(min_value=-50, max_value=150, allow_nan=False),
                min_size=1, max_size=300))
@settings(max_examples=80, deadline=None)
def test_histogram_conserves_mass(values):
    h = Histogram(0, 100, 10)
    h.update_many(values)
    assert sum(h.counts) + h.underflow + h.overflow == len(values)
    cdf = h.cdf()
    assert all(b >= a - 1e-12 for a, b in zip(cdf, cdf[1:]))
    assert math.isclose(cdf[-1], 1.0)


@given(st.lists(finite_floats, min_size=1, max_size=100),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=80, deadline=None)
def test_sliding_window_quartiles_ordered(values, size):
    w = SlidingWindow(size)
    for v in values:
        w.update(v)
    q25, q50, q75 = w.quartiles()
    assert q25 <= q50 <= q75
    assert w.min() <= q25 and q75 <= w.max()

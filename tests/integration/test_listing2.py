"""Listing 2 executes verbatim against the storage substrate."""


from repro.bench.scenarios import LISTING2_SPEC, build_storage_kernel
from repro.kernel.storage.volume import PickDecision
from repro.sim.units import SECOND


def test_listing2_parses_compiles_and_loads():
    kernel, _, _ = build_storage_kernel()
    monitor = kernel.guardrails.load(LISTING2_SPEC)
    assert monitor.name == "low-false-submit"
    assert monitor.enabled
    assert monitor.compiled.verification.total_cost > 0


def test_listing2_disables_misbehaving_model():
    kernel, devices, volume = build_storage_kernel(seed=9)
    kernel.store.save("ml_enabled", True)
    # A policy that always predicts fast while device 0 is pinned slow:
    # every submission is a false submit.
    volume.install_policy(
        "storage.broken",
        lambda vol: PickDecision(0, used_model=True, predicted_fast=True),
    )
    devices[0]._sample_service_us = lambda: 3000.0
    monitor = kernel.guardrails.load(LISTING2_SPEC)

    def submit(step=0):
        if kernel.store.load("ml_enabled"):
            volume.submit()
        if step < 3000:
            kernel.engine.schedule(2_000_000, submit, step + 1)

    submit()
    kernel.run(until=6 * SECOND)
    assert monitor.violation_count >= 1
    assert kernel.store.load("ml_enabled") is False
    # Trigger is a 1s TIMER: the violation lands on a second boundary.
    assert monitor.violations[0].time % SECOND == 0


def test_listing2_does_not_fire_on_healthy_model():
    kernel, _, volume = build_storage_kernel(seed=10)
    kernel.store.save("ml_enabled", True)
    monitor = kernel.guardrails.load(LISTING2_SPEC)

    def submit(step=0):
        volume.submit()  # round-robin: used_model False, no rate events
        if step < 1000:
            kernel.engine.schedule(2_000_000, submit, step + 1)

    submit()
    kernel.run(until=3 * SECOND)
    assert monitor.violation_count == 0
    assert kernel.store.load("ml_enabled") is True


def test_listing2_overhead_is_negligible():
    kernel, _, _ = build_storage_kernel()
    monitor = kernel.guardrails.load(LISTING2_SPEC)
    kernel.run(until=10 * SECOND)
    fraction = monitor.overhead.overhead_fraction(10 * SECOND)
    assert fraction < 1e-4  # a 1 Hz check costs ~nothing

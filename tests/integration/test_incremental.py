"""Cross-cutting integration: incremental deployment, multi-guardrail kernels,
runtime update, dependency conversion — on a live simulated kernel."""


from repro.core.dependency import convert_to_dependency_triggered
from repro.core.properties import decision_quality, fairness_liveness
from repro.kernel import Kernel
from repro.kernel.cache import KvCache, random_evict
from repro.kernel.sched import CpuScheduler
from repro.policies.cachepol import attach_learned_cache_policy
from repro.policies.schedpol import attach_learned_sched_policy
from repro.sim.units import MILLISECOND, SECOND


def test_many_guardrails_on_one_kernel():
    kernel = Kernel(seed=13)
    sched = kernel.attach("sched", CpuScheduler(kernel))
    attach_learned_sched_policy(kernel, sched)
    sched.spawn("batch", burst_ns=50 * MILLISECOND)
    for i in range(3):
        sched.spawn("short{}".format(i), burst_ns=1 * MILLISECOND)

    cache = kernel.attach("cache", KvCache(kernel, capacity=16))
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("sh")))
    attach_learned_cache_policy(kernel, cache)

    kernel.guardrails.load(fairness_liveness())
    kernel.guardrails.load(decision_quality(
        "cache", "cache.hit_rate", "cache.random.hit_rate", margin=0.05))

    def cache_traffic(step=0):
        cache.access(step % 8)
        if step < 2000:
            kernel.engine.schedule(2 * MILLISECOND, cache_traffic, step + 1)

    cache_traffic()
    kernel.run(until=4 * SECOND)

    fairness = kernel.guardrails.get("sched-fairness-liveness")
    quality = kernel.guardrails.get("cache-decision-quality")
    assert fairness.violation_count >= 1          # SJF starved batch
    assert quality.violation_count == 0           # small loop: cache is fine
    assert kernel.guardrails.total_overhead_ns() > 0


def test_runtime_update_tightens_threshold_mid_run():
    kernel = Kernel(seed=14)
    kernel.store.save("metric", 50.0)
    spec = ("guardrail g {{ trigger: {{ TIMER(start_time, 1s) }}, "
            "rule: {{ LOAD(metric) <= {} }}, action: {{ REPORT() }} }}")
    kernel.guardrails.load(spec.format(100))
    kernel.run(until=2 * SECOND)
    assert kernel.guardrails.get("g").violation_count == 0
    kernel.guardrails.update(spec.format(40))
    kernel.run(until=4 * SECOND)
    assert kernel.guardrails.get("g").violation_count == 2


def test_dependency_conversion_on_live_kernel():
    kernel = Kernel(seed=15)
    kernel.guardrails.load("""
guardrail dep {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(errors) <= 3 },
  action: { REPORT() }
}""")
    monitor = kernel.guardrails.get("dep")
    trigger = convert_to_dependency_triggered(monitor)
    kernel.run(until=10 * SECOND)
    assert monitor.check_count == 0  # nothing changed, nothing checked
    kernel.store.save("errors", 10)
    assert monitor.violation_count == 1
    assert trigger.fire_count == 1


def test_unload_and_reload_cycle():
    kernel = Kernel(seed=16)
    spec = ("guardrail cyc { trigger: { TIMER(start_time, 1s) }, "
            "rule: { LOAD(x) <= 1 }, action: { REPORT() } }")
    kernel.guardrails.load(spec)
    kernel.guardrails.unload("cyc")
    monitor = kernel.guardrails.load(spec)
    kernel.store.save("x", 5)
    kernel.run(until=1 * SECOND)
    assert monitor.violation_count == 1


def test_guardrail_file_with_multiple_blocks_on_kernel():
    kernel = Kernel(seed=17)
    kernel.store.save("a", 10)
    kernel.store.save("b", 0)
    monitors = kernel.guardrails.load_all("""
// Two guardrails shipped in one file.
guardrail check-a {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(a) <= 5 },
  action: { SAVE(a_violated, true) }
}
guardrail check-b {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(b) <= 5 },
  action: { SAVE(b_violated, true) }
}
""")
    kernel.run(until=1 * SECOND)
    assert kernel.store.load("a_violated") is True
    assert kernel.store.load("b_violated") is None
    assert len(monitors) == 2

"""Tracing the Figure 2 run end to end.

The Listing-2 guardrail's firing must be *observable* in the trace: the
violation event precedes the action that disables the model, the Chrome
export is valid JSON with at least four live categories, and the tracer's
exact counters agree with the monitor's own totals.

Expensive (trains the model); marked slow like the other Figure 2 tests.
"""

import json

import pytest

from repro.bench.scenarios import run_figure2_scenario, train_default_linnos_model
from repro.sim.units import SECOND
from repro.trace import TRACER, chrome_trace_dict, summarize_tracer, tracing

DRIFT_AT_S = 6
DURATION_S = 16

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def traced_run():
    model = train_default_linnos_model(seed=1, train_seconds=12)
    with tracing(capacity=262144, seed=0) as tracer:
        result = run_figure2_scenario(model, "guarded", seed=2,
                                      drift_at_s=DRIFT_AT_S,
                                      duration_s=DURATION_S)
    assert tracer.buffer.dropped == 0  # the whole run fits; no overwrite
    return tracer, result


def test_trace_covers_at_least_four_categories(traced_run):
    tracer, _result = traced_run
    categories = {e.category for e in tracer.events()}
    assert {"hook", "monitor.check", "rule.eval", "action",
            "featurestore.save"} <= categories


def test_violation_event_precedes_disable_action_event(traced_run):
    tracer, _result = traced_run
    name = "low-false-submit"
    violations = [e for e in tracer.events(category="monitor.check",
                                           guardrail=name)
                  if e.name == "violation"]
    actions = tracer.events(category="action", guardrail=name)
    assert violations, "guardrail never violated in the traced run"
    assert actions, "guardrail never acted in the traced run"
    # The first firing: violation first, then the SAVE that kills the model.
    assert violations[0].seq < actions[0].seq
    assert violations[0].ts == actions[0].ts  # same virtual instant
    assert actions[0].name == "SAVE"
    assert actions[0].args["detail"] == "ml_enabled = false"
    # It fires within a few checks of the drift, like the untraced run.
    assert DRIFT_AT_S * SECOND < violations[0].ts <= (DRIFT_AT_S + 3) * SECOND


def test_chrome_export_parses_with_plain_json(traced_run, tmp_path):
    tracer, _result = traced_run
    path = tmp_path / "fig2.json"
    with open(str(path), "w") as fp:
        json.dump(chrome_trace_dict(tracer.events()), fp)
    with open(str(path)) as fp:
        data = json.load(fp)
    records = data["traceEvents"]
    categories = {r["cat"] for r in records if r["ph"] != "M"}
    assert len(categories) >= 4
    assert any(r["ph"] == "X" for r in records)  # monitor-check spans


def test_exact_counters_match_monitor_totals(traced_run):
    tracer, result = traced_run
    monitor = result.kernel.guardrails.get("low-false-submit")
    stats = monitor.stats()
    table = tracer.stat()["low-false-submit"]
    assert table["checks"] == stats["checks"]
    assert table["violations"] == stats["violations"]
    assert table["actions"] == stats["action_dispatches"]
    # ... which is what the grctl trace summary prints.
    summary = summarize_tracer(tracer)
    assert summary["exact_counters"]
    assert summary["guardrails"]["low-false-submit"]["checks"] == stats["checks"]


def test_hook_events_cover_the_storage_hot_path(traced_run):
    tracer, _result = traced_run
    fires = summarize_tracer(tracer)["hook_fires"]
    assert fires["storage.submit_io"] > 1000
    assert fires["storage.io_complete"] > 1000


def test_global_tracer_left_inactive(traced_run):
    assert not TRACER.active

"""Figure 2 under injected policy crashes: the run completes, the breaker
trips and re-arms at exact virtual times, and the REPLACE fallback engages.

Expensive (trains the model); marked slow like the other fig2 suites.
"""

import pytest

from repro.bench.scenarios import run_figure2_scenario, train_default_linnos_model
from repro.faults.plan import FaultPlan
from repro.faults.supervisor import STATE_CLOSED
from repro.sim.units import SECOND

DRIFT_AT_S = 6
DURATION_S = 16
CRASH_START_S, CRASH_STOP_S = 8, 10

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def model():
    return train_default_linnos_model(seed=1, train_seconds=12)


@pytest.fixture(scope="module")
def plain(model):
    return run_figure2_scenario(model, "guarded", seed=2,
                                drift_at_s=DRIFT_AT_S, duration_s=DURATION_S)


@pytest.fixture(scope="module")
def supervised_clean(model):
    return run_figure2_scenario(model, "guarded", seed=2,
                                drift_at_s=DRIFT_AT_S, duration_s=DURATION_S,
                                supervise=True)


@pytest.fixture(scope="module")
def faulted(model):
    plan = FaultPlan.from_flags(
        ["raise@storage.pick_device:start={},stop={}".format(
            CRASH_START_S, CRASH_STOP_S)],
        seed=11)
    return run_figure2_scenario(model, "guarded", seed=2,
                                drift_at_s=DRIFT_AT_S, duration_s=DURATION_S,
                                fault_plan=plan, supervise=True)


def test_clean_supervision_does_not_perturb_the_run(plain, supervised_clean):
    # The supervisor on a healthy policy must be a pure pass-through: no RNG
    # draws, no scheduled events, bit-identical latency series.
    assert supervised_clean.policy_supervisor.crash_count == 0
    assert supervised_clean.policy_supervisor.replace_count == 0
    assert supervised_clean.series.values == plain.series.values
    assert supervised_clean.false_submits == plain.false_submits
    assert supervised_clean.volume.completed == plain.volume.completed


def test_faulted_run_completes_end_to_end(faulted):
    assert faulted.kernel.now == DURATION_S * SECOND
    # I/O kept completing after the crash window closed.
    post_window = faulted.series.window(
        (CRASH_STOP_S + 1) * SECOND, DURATION_S * SECOND)
    assert post_window
    assert faulted.injector.injected_count >= 3
    assert all(CRASH_START_S * SECOND <= e["time"] < CRASH_STOP_S * SECOND
               for e in faulted.injector.injected)


def test_breaker_trips_and_rearms_at_expected_virtual_times(faulted):
    supervisor = faulted.policy_supervisor
    assert supervisor.crash_count >= 3
    breaker = supervisor.breaker
    transitions = breaker.transitions
    trip, rearm = transitions[0], transitions[1]
    assert (trip["from"], trip["to"]) == ("closed", "open")
    assert CRASH_START_S * SECOND <= trip["time"] < CRASH_STOP_S * SECOND
    # Virtual-time backoff is exact: the half-open probe point is the trip
    # time plus the base backoff, to the nanosecond.
    assert (rearm["from"], rearm["to"]) == ("open", "half_open")
    assert rearm["time"] == trip["time"] + SECOND
    # Once the window closes, a probe succeeds and the breaker closes.
    assert breaker.state == STATE_CLOSED
    assert transitions[-1]["to"] == "closed"
    assert transitions[-1]["time"] >= CRASH_STOP_S * SECOND


def test_replace_fallback_engaged_through_the_a2_path(faulted):
    supervisor = faulted.policy_supervisor
    assert supervisor.replace_count >= 1
    notes = faulted.kernel.reporter.notes_for(kind="REPLACE")
    breaker_notes = [n for n in notes
                     if n["guardrail"] == "supervisor:storage.pick_device"]
    assert breaker_notes
    assert ("storage.pick_device -> storage.round_robin"
            in breaker_notes[0]["detail"])
    # Contained crashes were each served by the fallback in the meantime.
    assert supervisor.fallback_call_count == supervisor.crash_count
    # After the run the probe path is live again: the supervisor holds the
    # slot, with the learned policy back as the inner implementation.
    slot = faulted.kernel.functions.slot("storage.pick_device")
    assert slot.current is supervisor

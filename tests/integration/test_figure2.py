"""Figure 2 regression: the paper's experiment, shape-checked.

Expensive (trains the model, runs three deployments); marked so it can be
deselected with ``-m 'not slow'`` during quick iterations.
"""

import pytest

from repro.bench.scenarios import run_figure2_scenario, train_default_linnos_model

DRIFT_AT_S = 6
DURATION_S = 16

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def model():
    return train_default_linnos_model(seed=1, train_seconds=12)


@pytest.fixture(scope="module")
def results(model):
    return {
        mode: run_figure2_scenario(model, mode, seed=2, drift_at_s=DRIFT_AT_S,
                                   duration_s=DURATION_S)
        for mode in ("baseline", "linnos", "guarded")
    }


def test_pre_drift_model_beats_baseline(results):
    lin = results["linnos"].mean_between(1, DRIFT_AT_S)
    base = results["baseline"].mean_between(1, DRIFT_AT_S)
    assert lin < base * 0.7


def test_post_drift_unguarded_model_is_worst(results):
    lin = results["linnos"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    base = results["baseline"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    assert lin > base * 1.1


def test_guardrail_triggers_shortly_after_drift(results):
    from repro.sim.units import SECOND

    guarded = results["guarded"]
    saves = guarded.kernel.reporter.notes_for(kind="SAVE")
    assert saves, "guardrail never fired"
    trigger_time = saves[0]["time"]
    assert DRIFT_AT_S * SECOND < trigger_time <= (DRIFT_AT_S + 3) * SECOND
    assert guarded.ml_enabled is False


def test_post_trigger_latency_improves_toward_baseline(results):
    lin = results["linnos"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    guarded = results["guarded"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    base = results["baseline"].mean_between(DRIFT_AT_S + 2, DURATION_S)
    assert guarded < lin * 0.92          # visible improvement (Figure 2 drop)
    assert guarded < base * 1.25         # lands near the fallback's level


def test_false_submits_mostly_stopped_after_trigger(results):
    assert results["guarded"].false_submits < results["linnos"].false_submits / 3


def test_curves_identical_before_drift(results):
    # Same seed, same policy: the guarded run only diverges once the
    # guardrail acts.
    lin = results["linnos"].per_second_means()
    guarded = results["guarded"].per_second_means()
    for (b1, v1), (b2, v2) in zip(lin[:DRIFT_AT_S], guarded[:DRIFT_AT_S]):
        assert b1 == b2
        assert v1 == pytest.approx(v2)

"""§1's security concern: "an adversarial application could influence the
learned model to make bad decisions harming the performance of benign
workloads".

The adversary games the learned cache evictor: it touches throwaway keys in
quick pairs, teaching the reuse predictor a tiny gap so the dead keys are
retained forever and the benign workload's hot set is squeezed out.  The P4
quality guardrail bounds the blast radius by falling back to random
eviction, and the retrain rate limit bounds the adversary's ability to
thrash retraining.
"""

import numpy as np
import pytest

from repro.core.properties import decision_quality
from repro.kernel import Kernel
from repro.kernel.cache import KvCache, random_evict
from repro.policies.cachepol import attach_learned_cache_policy
from repro.sim.units import MILLISECOND, SECOND


def run_cache_attack(with_guardrail, seed=61, duration_s=14, attack_at_s=4):
    kernel = Kernel(seed=seed)
    cache = kernel.attach("cache", KvCache(kernel, capacity=32,
                                           window=2 * SECOND))
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("shadow")))
    attach_learned_cache_policy(kernel, cache)
    if with_guardrail:
        kernel.guardrails.load(decision_quality(
            "cache", "cache.hit_rate", "cache.random.hit_rate", margin=0.05,
            fallback_slot="cache.evict", fallback_impl="cache.random"),
            cooldown=2 * SECOND)

    rng = np.random.default_rng(0)
    hot = ["benign{}".format(i) for i in range(16)]
    benign = {"hits": 0, "accesses": 0}
    serial = [0]

    def benign_access():
        key = hot[int(rng.integers(len(hot)))]
        benign["hits"] += 1 if cache.access(key) else 0
        benign["accesses"] += 1

    def adversary_access():
        serial[0] += 1
        key = "attack{}".format(serial[0])
        cache.access(key)
        cache.access(key)  # the quick pair: teaches a tiny reuse gap

    def loop(step=0):
        benign_access()
        if kernel.now >= attack_at_s * SECOND:
            adversary_access()
        if kernel.now < duration_s * SECOND:
            kernel.engine.schedule(2 * MILLISECOND, loop, step + 1)

    loop()
    kernel.run(until=duration_s * SECOND)
    return kernel, cache, benign


@pytest.fixture(scope="module")
def attack_results():
    return {
        guarded: run_cache_attack(guarded) for guarded in (False, True)
    }


def test_adversary_degrades_benign_workload(attack_results):
    kernel, cache, benign = attack_results[False]
    # Unguarded: the learned evictor retains the dead attack keys; benign
    # hit rate collapses well below what random eviction would give.
    assert benign["hits"] / benign["accesses"] < 0.6
    assert cache.hit_rate < cache.shadow("random").hit_rate


def test_guardrail_bounds_the_blast_radius(attack_results):
    unguarded = attack_results[False][2]
    kernel, cache, benign = attack_results[True]
    monitor = kernel.guardrails.get("cache-decision-quality")
    assert monitor.violation_count >= 1
    # Fallback took over: benign workload recovers most of its hit rate.
    guarded_rate = benign["hits"] / benign["accesses"]
    unguarded_rate = unguarded["hits"] / unguarded["accesses"]
    assert guarded_rate > unguarded_rate + 0.1


def test_retrain_rate_limit_resists_thrashing():
    # An adversary that *intentionally* trips a RETRAIN-ing guardrail
    # cannot thrash the training pipeline: the per-model rate limit caps
    # accepted requests no matter how often violations fire (§3.2).
    kernel = Kernel(seed=62, retrain_min_interval=5 * SECOND)
    kernel.store.save("metric", 100)  # permanently violating
    kernel.guardrails.load("""
guardrail retrainer {
  trigger: { TIMER(start_time, 100ms) },
  rule: { LOAD(metric) <= 1 },
  action: { RETRAIN(model) }
}""")
    kernel.run(until=10 * SECOND)
    queue = kernel.retrain_queue
    assert queue.accepted_count <= 3
    assert queue.rejected_count > 90

"""The full lifecycle: misbehave -> detect -> disable -> retrain -> re-enable.

Expensive; marked slow.
"""

import pytest

from repro.bench.scenarios import (
    run_closed_loop_scenario,
    train_default_linnos_model,
)
from repro.policies.linnos import OnlineSampleBuffer
from repro.sim.units import SECOND

pytestmark = pytest.mark.slow

DRIFT_AT_S = 6
DURATION_S = 30


@pytest.fixture(scope="module")
def closed_loop():
    model = train_default_linnos_model(seed=1, train_seconds=12)
    return run_closed_loop_scenario(model, seed=2, drift_at_s=DRIFT_AT_S,
                                    duration_s=DURATION_S)


def test_guardrail_disables_then_retrains(closed_loop):
    result, daemon = closed_loop
    notes = result.kernel.reporter.notes_for()
    kinds = [n["kind"] for n in notes]
    assert "SAVE" in kinds
    assert "RETRAIN_START" in kinds
    assert "RETRAIN_DONE" in kinds
    assert daemon.completed_count >= 1


def test_model_reenabled_and_stays_enabled(closed_loop):
    result, _ = closed_loop
    assert result.ml_enabled is True
    # No disable events in the last 5 simulated seconds: the loop settled.
    late_saves = [
        n for n in result.kernel.reporter.notes_for(kind="SAVE")
        if n["time"] > (DURATION_S - 5) * SECOND
    ]
    assert late_saves == []


def test_recovered_model_beats_fallback_level(closed_loop):
    result, _ = closed_loop
    # Middle window: fallback-dominated; tail window: retrained model active.
    fallback_phase = result.mean_between(8, 14)
    recovered_phase = result.mean_between(DURATION_S - 6, DURATION_S)
    assert recovered_phase < fallback_phase


def test_sample_buffer_collects_under_any_policy():
    from repro.bench.scenarios import build_storage_kernel
    from repro.kernel.storage import PoissonWorkload

    kernel, _, volume = build_storage_kernel(seed=9)
    buffer = OnlineSampleBuffer(volume, capacity=100)
    PoissonWorkload(kernel, volume, [(1 * SECOND, 500)]).start()
    kernel.run(until=1 * SECOND)
    assert len(buffer) == 100  # capacity-capped
    features, labels = buffer.dataset(last=50)
    assert features.shape == (50, 4)
    assert set(labels) <= {0, 1}
    buffer.detach()
    count = len(buffer)
    volume.submit()
    kernel.run(until=kernel.now + SECOND)
    assert len(buffer) == count  # detached: no more samples


def test_sample_buffer_empty_dataset_raises():
    from repro.bench.scenarios import build_storage_kernel

    kernel, _, volume = build_storage_kernel(seed=10)
    buffer = OnlineSampleBuffer(volume)
    with pytest.raises(RuntimeError):
        buffer.dataset()

"""Shared fixtures."""

import pytest

from repro.core.host import MonitorHost
from repro.kernel import Kernel
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine(seed=0)


@pytest.fixture
def host():
    return MonitorHost()


@pytest.fixture
def kernel():
    return Kernel(seed=0)

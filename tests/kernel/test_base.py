"""Kernel base: subsystems, clock, guardrail manager wiring."""

import pytest

from repro.kernel import Kernel
from repro.sim.units import SECOND


def test_kernel_is_a_monitor_host(kernel):
    assert kernel.store is not None
    assert kernel.guardrails.host is kernel


def test_attach_and_lookup(kernel):
    subsystem = object()
    assert kernel.attach("x", subsystem) is subsystem
    assert kernel.subsystem("x") is subsystem
    assert "x" in kernel


def test_duplicate_attach_rejected(kernel):
    kernel.attach("x", object())
    with pytest.raises(ValueError):
        kernel.attach("x", object())


def test_unknown_subsystem_lists_attached(kernel):
    kernel.attach("storage", object())
    with pytest.raises(KeyError, match="storage"):
        kernel.subsystem("net")


def test_run_advances_clock(kernel):
    kernel.run(until=3 * SECOND)
    assert kernel.now == 3 * SECOND


def test_store_clock_follows_engine(kernel):
    kernel.engine.schedule(100, kernel.store.save, "k", 1)
    kernel.run(until=200)
    # RateCounter-style derived keys need engine-time stamps; verify via
    # subscription timestamps.
    seen = []
    kernel.store.subscribe(lambda k, v, now: seen.append(now))
    kernel.engine.schedule(50, kernel.store.save, "k2", 2)
    kernel.run(until=300)
    assert seen == [250]


def test_retrain_min_interval_configurable():
    kernel = Kernel(seed=0, retrain_min_interval=10)
    assert kernel.retrain_queue.min_interval == 10

"""Eviction policies against known access patterns."""

import numpy as np

from repro.kernel.cache.cache import ShadowCache
from repro.kernel.cache.policies import lfu_evict, lru_evict, mru_evict, random_evict


def replay(policy, keys, capacity=4):
    clock = {"t": 0}

    def tick():
        clock["t"] += 1
        return clock["t"]

    cache = ShadowCache(capacity, tick, policy)
    for key in keys:
        cache.access(key)
    return cache


def test_lru_keeps_recent_working_set():
    cache = replay(lru_evict(), ["a", "b", "c", "d", "e"])
    assert "a" not in cache
    assert all(k in cache for k in "bcde")


def test_mru_evicts_most_recent():
    cache = replay(mru_evict(), ["a", "b", "c", "d", "e"])
    assert "d" not in cache
    assert "a" in cache


def test_lfu_keeps_frequent():
    keys = ["hot"] * 5 + ["a", "b", "c", "d"]
    cache = replay(lfu_evict(), keys)
    assert "hot" in cache


def test_random_evicts_resident_key():
    rng = np.random.default_rng(0)
    cache = replay(random_evict(rng), [str(i) for i in range(50)])
    assert len(cache) == 4


def test_mru_beats_lru_on_cyclic_scan():
    # The classic result: LRU gets zero hits on a scan one larger than
    # capacity, MRU retains most of it.
    scan = [str(i) for i in range(5)] * 20
    lru = replay(lru_evict(), scan, capacity=4)
    mru = replay(mru_evict(), scan, capacity=4)
    assert lru.hit_rate == 0.0
    assert mru.hit_rate > 0.5


def test_lru_beats_random_on_skewed_workload():
    rng = np.random.default_rng(1)
    keys = [str(int(rng.zipf(1.5)) % 50) for _ in range(3000)]
    lru = replay(lru_evict(), keys, capacity=10)
    rnd = replay(random_evict(np.random.default_rng(2)), keys, capacity=10)
    assert lru.hit_rate > rnd.hit_rate

"""Cache mechanics, shadows, published hit rates."""

import pytest

from repro.kernel.cache import KvCache, lru_evict, random_evict


@pytest.fixture
def cache(kernel):
    return kernel.attach("cache", KvCache(kernel, capacity=3))


def test_capacity_validated(kernel):
    with pytest.raises(ValueError):
        KvCache(kernel, 0)


def test_hit_miss_accounting(kernel, cache):
    assert cache.access("a") is False
    assert cache.access("a") is True
    assert cache.hits == 1
    assert cache.misses == 1
    assert cache.hit_rate == 0.5


def test_eviction_at_capacity(kernel, cache):
    for key in "abcd":
        cache.access(key)
    assert len(cache) == 3
    assert cache.evictions == 1


def test_lru_policy_evicts_least_recent(kernel, cache):
    kernel.functions.register_implementation("cache.lru", lru_evict())
    kernel.functions.replace("cache.evict", "cache.lru")
    for key in "abc":
        cache.access(key)
        kernel.engine.schedule(1000, lambda: None)
        kernel.run(until=kernel.now + 1000)
    cache.access("a")   # refresh a; b is now LRU
    kernel.run(until=kernel.now + 1000)
    cache.access("d")
    assert "b" not in cache
    assert "a" in cache


def test_policy_returning_bad_key_raises(kernel, cache):
    kernel.functions.register_implementation("cache.bad", lambda view: "ghost")
    kernel.functions.replace("cache.evict", "cache.bad")
    for key in "abc":
        cache.access(key)
    with pytest.raises(ValueError, match="non-resident"):
        cache.access("d")


def test_shadow_replays_same_stream(kernel, cache):
    shadow = cache.add_shadow("lru", lru_evict())
    for key in "abcabc":
        cache.access(key)
    assert shadow.hits + shadow.misses == 6


def test_duplicate_shadow_rejected(kernel, cache):
    cache.add_shadow("s", lru_evict())
    with pytest.raises(ValueError):
        cache.add_shadow("s", lru_evict())


def test_hit_rates_published_to_store(kernel, cache):
    cache.add_shadow("random", random_evict(kernel.engine.rng.get("r")))
    for key in "aabb":
        cache.access(key)
    assert kernel.store.load("cache.hit_rate") == 0.5
    assert kernel.store.load("cache.random.hit_rate") == 0.5


def test_shadow_accessible_by_name(kernel, cache):
    shadow = cache.add_shadow("x", lru_evict())
    assert cache.shadow("x") is shadow


def test_access_hook_fires(kernel, cache):
    events = []
    kernel.hooks.get("cache.access").attach(lambda n, t, p: events.append(p))
    cache.access("k")
    assert events == [{"key": "k", "hit": False}]


def test_view_exposes_bookkeeping(kernel, cache):
    seen = {}

    def spy(view):
        for key in view.keys():
            seen[key] = (view.access_count(key), view.last_access(key),
                         view.insert_time(key))
        return next(iter(view.keys()))

    kernel.functions.register_implementation("cache.spy", spy)
    kernel.functions.replace("cache.evict", "cache.spy")
    cache.access("a")
    cache.access("a")
    cache.access("b")
    cache.access("c")
    cache.access("d")  # triggers eviction, spy runs
    assert seen["a"][0] == 2


def test_metrics_counters(kernel, cache):
    cache.access("a")
    cache.access("a")
    assert kernel.metrics.counter("cache.accesses") == 2
    assert kernel.metrics.counter("cache.hits") == 1

"""Bottleneck link and AIMD baseline."""

import pytest

from repro.kernel.net import BottleneckLink, aimd_controller
from repro.sim.units import MILLISECOND, SECOND


@pytest.fixture
def link(kernel):
    return kernel.attach(
        "net", BottleneckLink(kernel, capacity_mbps=100.0, rtt=20 * MILLISECOND)
    )


def test_capacity_validated(kernel):
    with pytest.raises(ValueError):
        BottleneckLink(kernel, capacity_mbps=0)


def test_aimd_converges_to_high_utilization(kernel, link):
    link.start()
    kernel.run(until=20 * SECOND)
    # Skip the ramp-up; steady state should hover near capacity.
    steady = [v for t, v in kernel.metrics.series("net.utilization")
              if t > 10 * SECOND]
    assert sum(steady) / len(steady) > 0.75


def test_aimd_halves_on_loss():
    controller = aimd_controller(increase_mbps=2.0, decrease_factor=0.5)
    assert controller({"rate_mbps": 100.0, "loss": 0.1}) == 50.0
    assert controller({"rate_mbps": 50.0, "loss": 0.0}) == 52.0


def test_aimd_respects_min_rate():
    controller = aimd_controller(min_rate=5.0)
    assert controller({"rate_mbps": 6.0, "loss": 0.5}) == 5.0


def test_loss_computed_when_over_capacity(kernel, link):
    kernel.functions.register_implementation("net.blast", lambda obs: 200.0)
    kernel.functions.replace("net.cc_update", "net.blast")
    link.rate_mbps = 200.0
    link.start()
    kernel.run(until=1 * SECOND)
    assert kernel.store.load("net.loss") == pytest.approx(0.5)
    assert kernel.store.load("net.utilization") == 1.0


def test_capacity_step_changes_utilization(kernel, link):
    kernel.functions.register_implementation("net.fixed", lambda obs: 50.0)
    kernel.functions.replace("net.cc_update", "net.fixed")
    link.rate_mbps = 50.0
    link.start()
    kernel.run(until=1 * SECOND)
    assert kernel.store.load("net.utilization") == pytest.approx(0.5)
    link.set_capacity(200.0)
    kernel.run(until=2 * SECOND)
    assert kernel.store.load("net.utilization") == pytest.approx(0.25)


def test_invalid_capacity_step(kernel, link):
    with pytest.raises(ValueError):
        link.set_capacity(0)


def test_double_start_rejected(kernel, link):
    link.start()
    with pytest.raises(RuntimeError):
        link.start()


def test_epoch_hook_payload(kernel, link):
    events = []
    kernel.hooks.get("net.cc_update").attach(lambda n, t, p: events.append(p))
    link.start()
    kernel.run(until=100 * MILLISECOND)
    assert len(events) == 5  # one per RTT
    assert set(events[0]) == {
        "rate_mbps", "delivered_mbps", "loss", "utilization", "next_rate_mbps",
    }


def test_noise_applied_only_to_delivered(kernel):
    link = BottleneckLink(kernel, capacity_mbps=100.0, noise_std=0.2,
                          rtt=20 * MILLISECOND)
    observations = []
    kernel.functions.register_implementation(
        "net.spy", lambda obs: observations.append(obs) or obs["rate_mbps"])
    kernel.functions.replace("net.cc_update", "net.spy")
    link.rate_mbps = 50.0
    link.start()
    kernel.run(until=2 * SECOND)
    delivered = [o["delivered_mbps"] for o in observations]
    assert max(delivered) > 51.0 or min(delivered) < 49.0  # noisy
    assert all(o["loss"] == 0.0 for o in observations)      # crisp


def test_derived_utilization_average(kernel, link):
    link.start()
    kernel.run(until=5 * SECOND)
    assert 0.0 <= kernel.store.load("net.utilization.avg") <= 1.0

"""Epoch-loop ordering and determinism paths multi-policy hosts exercise.

The scenario zoo runs a :class:`BottleneckLink` alongside other subsystems
on one engine, swaps its controller slot mid-flight, and reads the
windowed ``net.utilization.avg`` from guardrails — so the ordering of the
epoch pipeline (publish, hook, rate update, reschedule) and its
determinism under a fixed seed are load-bearing here.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.net import BottleneckLink
from repro.sim.units import MILLISECOND, SECOND


@pytest.fixture
def link(kernel):
    return kernel.attach(
        "net", BottleneckLink(kernel, capacity_mbps=100.0,
                              rtt=20 * MILLISECOND))


def _fixed(rate):
    return lambda observation: rate


def test_epoch_publishes_before_hook_fires(kernel, link):
    """Within one epoch the store keys are saved before the hook fires."""
    seen = []

    def on_epoch(hook, now, payload):
        seen.append((payload["rate_mbps"],
                     kernel.store.load("net.rate_mbps"),
                     kernel.store.load("net.utilization")))

    link.update_hook.attach(on_epoch)
    kernel.functions.register_implementation("net.fixed", _fixed(50.0))
    kernel.functions.replace(link.CC_SLOT, "net.fixed")
    link.rate_mbps = 50.0
    link.start()
    kernel.run(until=100 * MILLISECOND)
    assert seen, "hook never fired"
    for rate, stored_rate, utilization in seen:
        assert stored_rate == rate
        assert utilization == pytest.approx(rate / 100.0)


def test_rate_update_lands_after_hook(kernel, link):
    """The hook observes the epoch's rate; the *next* rate applies after."""
    states = []
    kernel.functions.register_implementation("net.fixed", _fixed(70.0))
    kernel.functions.replace(link.CC_SLOT, "net.fixed")
    link.rate_mbps = 10.0
    link.update_hook.attach(
        lambda hook, now, payload: states.append(
            (payload["rate_mbps"], payload["next_rate_mbps"],
             link.rate_mbps)))
    link.start()
    kernel.run(until=50 * MILLISECOND)
    first_rate, next_rate, rate_during_hook = states[0]
    assert first_rate == 10.0
    assert next_rate == 70.0
    assert rate_during_hook == 10.0  # not yet applied inside the hook
    assert states[1][0] == 70.0      # applied by the next epoch


def test_controller_swap_takes_effect_next_epoch(kernel, link):
    """``functions.replace`` mid-run redirects the very next epoch."""
    rates = []
    link.update_hook.attach(
        lambda hook, now, payload: rates.append(payload["next_rate_mbps"]))
    kernel.functions.register_implementation("net.slow", _fixed(20.0))
    kernel.functions.register_implementation("net.fast", _fixed(80.0))
    kernel.functions.replace(link.CC_SLOT, "net.slow")
    link.start()
    kernel.run(until=100 * MILLISECOND)
    kernel.functions.replace(link.CC_SLOT, "net.fast")
    kernel.run(until=200 * MILLISECOND)
    assert rates[:5] == [20.0] * 5
    assert rates[5:] == [80.0] * 5


def test_windowed_average_drains_in_epoch_order(kernel, link):
    """``net.utilization.avg`` is the mean of the last W epoch samples.

    After a capacity step the average must converge monotonically onto the
    new utilization as old-epoch samples drain out of the window — the
    exact signal ``zoo-net-utilization`` trips on.
    """
    kernel.functions.register_implementation("net.fixed", _fixed(60.0))
    kernel.functions.replace(link.CC_SLOT, "net.fixed")
    link.rate_mbps = 60.0
    link.start()
    kernel.run(until=2 * SECOND)  # 100 epochs: window full of 0.6
    assert kernel.store.load("net.utilization.avg") == pytest.approx(0.6)
    link.set_capacity(240.0)
    averages = []
    link.update_hook.attach(
        lambda hook, now, payload: averages.append(
            kernel.store.load("net.utilization.avg")))
    kernel.run(until=4 * SECOND)
    # Monotone non-increasing drain from 0.6 down to 60/240.
    assert all(a >= b for a, b in zip(averages, averages[1:]))
    assert averages[-1] == pytest.approx(0.25)
    # 32-sample window: fully drained after 32 post-step epochs.
    assert averages[32] == pytest.approx(0.25)


def test_noisy_link_is_seed_deterministic():
    """Same seed, same noisy measurement series; different seed diverges.

    The noise rides only on the controller's throughput *measurement*
    (``delivered_mbps`` in the observation), so record what the controller
    actually sees.
    """

    def run(seed):
        kernel = Kernel(seed=seed)
        link = kernel.attach(
            "net", BottleneckLink(kernel, capacity_mbps=100.0,
                                  rtt=20 * MILLISECOND, noise_std=0.1))
        observed = []

        def recording_controller(observation):
            observed.append(observation["delivered_mbps"])
            return 50.0

        kernel.functions.register_implementation("net.recorder",
                                                 recording_controller)
        kernel.functions.replace(link.CC_SLOT, "net.recorder")
        link.rate_mbps = 50.0
        link.start()
        kernel.run(until=2 * SECOND)
        return observed

    first = run(7)
    assert len(first) == 100  # one epoch per 20 ms RTT
    assert first == run(7)
    assert first != run(8)

"""Tiered memory."""

import pytest

from repro.kernel.mm import TieredMemory


@pytest.fixture
def tiered(kernel):
    return kernel.attach("tiered", TieredMemory(kernel, fast_capacity=4))


def test_needs_positive_capacity(kernel):
    with pytest.raises(ValueError):
        TieredMemory(kernel, 0)


def test_first_access_is_slow(kernel, tiered):
    assert tiered.access("p1") == tiered.slow_latency_ns
    assert not tiered.in_fast_tier("p1")


def test_baseline_promotes_on_second_miss(kernel, tiered):
    tiered.access("p1")
    tiered.access("p1")  # second slow access -> promoted (with migration cost)
    assert tiered.in_fast_tier("p1")
    assert tiered.access("p1") == tiered.fast_latency_ns


def test_migration_cost_charged(kernel, tiered):
    tiered.access("p1")
    second = tiered.access("p1")
    assert second == tiered.slow_latency_ns + tiered.migration_cost_ns


def test_eviction_when_fast_tier_full(kernel, tiered):
    for p in ["a", "b", "c", "d", "e"]:
        tiered.access(p)
        tiered.access(p)  # promote each
    assert len(tiered._fast) == 4
    assert not tiered.in_fast_tier("a")  # coldest evicted
    assert tiered.in_fast_tier("e")


def test_lru_order_updated_on_hit(kernel, tiered):
    for p in ["a", "b", "c", "d"]:
        tiered.access(p)
        tiered.access(p)
    tiered.access("a")  # refresh a
    tiered.access("e")
    tiered.access("e")  # promote e, evicting the coldest (b)
    assert tiered.in_fast_tier("a")
    assert not tiered.in_fast_tier("b")


def test_hit_rate_and_metrics(kernel, tiered):
    tiered.access("p")
    tiered.access("p")
    tiered.access("p")
    assert tiered.hit_rate == pytest.approx(1 / 3)
    assert kernel.store.load("mm.tier_hit_rate") is not None
    assert tiered.mean_access_ns() > 0


def test_never_migrate_policy(kernel, tiered):
    kernel.functions.replace("mm.tier_placement", "mm.never_migrate")
    for _ in range(5):
        tiered.access("p")
    assert not tiered.in_fast_tier("p")
    assert tiered.hit_rate == 0.0


def test_access_hook_payload(kernel, tiered):
    events = []
    kernel.hooks.get("mm.tier_access").attach(lambda n, t, p: events.append(p))
    tiered.access("p", is_write=True)
    assert events[0]["page"] == "p"
    assert events[0]["is_write"] is True
    assert events[0]["hit"] is False
    assert events[0]["serial"] == 1

"""Page-fault path with huge-page promotion."""

import pytest

from repro.kernel.mm import PageFaultHandler


@pytest.fixture
def faults(kernel):
    return kernel.attach("mm", PageFaultHandler(kernel))


def test_baseline_never_promotes(kernel, faults):
    for i in range(50):
        faults.fault(address=i)
    assert faults.promotion_count == 0
    assert faults.fault_count == 50


def test_baseline_faults_are_fast(kernel, faults):
    latencies = [faults.fault() for _ in range(100)]
    assert max(latencies) < 1.0  # well under a millisecond


def test_fragmentation_validation(kernel, faults):
    with pytest.raises(ValueError):
        faults.set_fragmentation(1.5)


def test_promotion_cheap_when_defragmented(kernel, faults):
    kernel.functions.register_implementation("mm.always", lambda ctx: True)
    kernel.functions.replace("mm.promote_hugepage", "mm.always")
    faults.set_fragmentation(0.0)
    latency = faults.fault()
    assert latency < 1.0
    assert faults.promotion_count == 1
    assert faults.stalled_promotions == 0


def test_promotion_stalls_under_fragmentation(kernel, faults):
    kernel.functions.register_implementation("mm.always", lambda ctx: True)
    kernel.functions.replace("mm.promote_hugepage", "mm.always")
    faults.set_fragmentation(0.9)
    latencies = [faults.fault() for _ in range(20)]
    # CBMM territory: hundreds of ms at high fragmentation.
    assert max(latencies) > 100.0
    assert faults.stalled_promotions > 0


def test_policy_sees_fragmentation_in_context(kernel, faults):
    contexts = []
    kernel.functions.register_implementation(
        "mm.spy", lambda ctx: contexts.append(ctx) or False)
    kernel.functions.replace("mm.promote_hugepage", "mm.spy")
    faults.set_fragmentation(0.4)
    faults.fault(process="db")
    assert contexts[0]["fragmentation"] == 0.4
    assert contexts[0]["process"] == "db"


def test_latency_published_with_derived_average(kernel, faults):
    for _ in range(10):
        faults.fault()
    assert kernel.store.load("mm.page_fault_latency_ms") > 0
    assert kernel.store.load("mm.page_fault_latency_ms.avg") > 0


def test_hook_fires_per_fault(kernel, faults):
    events = []
    kernel.hooks.get("mm.page_fault").attach(lambda n, t, p: events.append(p))
    faults.fault()
    assert len(events) == 1
    assert events[0]["promote"] is False

"""Memory allocator and the P3 surface."""

import pytest

from repro.kernel.mm import MemoryAllocator


@pytest.fixture
def alloc(kernel):
    return kernel.attach("mm", MemoryAllocator(kernel, total_pages=1000))


def test_needs_positive_total(kernel):
    with pytest.raises(ValueError):
        MemoryAllocator(kernel, 0)


def test_baseline_grants_exact_request(kernel, alloc):
    assert alloc.allocate(10) == 10
    assert alloc.used_pages == 10
    assert alloc.available_pages == 990


def test_invalid_request_rejected(kernel, alloc):
    with pytest.raises(ValueError):
        alloc.allocate(0)


def test_free_returns_pages(kernel, alloc):
    alloc.allocate(100)
    alloc.free(40)
    assert alloc.used_pages == 60


def test_free_validation(kernel, alloc):
    alloc.allocate(10)
    with pytest.raises(ValueError):
        alloc.free(11)
    with pytest.raises(ValueError):
        alloc.free(-1)


def test_hook_sees_raw_policy_output_before_clamp(kernel, alloc):
    kernel.functions.register_implementation(
        "mm.greedy", lambda requested, available: 10_000)
    kernel.functions.replace("mm.prealloc_size", "mm.greedy")
    payloads = []
    kernel.hooks.get("mm.alloc").attach(lambda n, t, p: payloads.append(p))
    alloc.allocate(5)
    assert payloads[0]["granted"] == 10_000
    assert payloads[0]["out_of_bounds"] is True
    assert alloc.out_of_bounds_grants == 1


def test_clamp_keeps_allocator_safe(kernel, alloc):
    kernel.functions.register_implementation(
        "mm.greedy", lambda requested, available: 10_000)
    kernel.functions.replace("mm.prealloc_size", "mm.greedy")
    granted = alloc.allocate(5)
    # Clamped to available, never more.
    assert granted == 1000
    assert alloc.used_pages == 1000


def test_undersized_grant_is_out_of_bounds_but_request_served(kernel, alloc):
    kernel.functions.register_implementation(
        "mm.stingy", lambda requested, available: 0)
    kernel.functions.replace("mm.prealloc_size", "mm.stingy")
    granted = alloc.allocate(5)
    assert granted == 5
    assert alloc.out_of_bounds_grants == 1


def test_allocation_fails_when_no_memory(kernel, alloc):
    alloc.allocate(1000)
    assert alloc.allocate(1) == 0
    assert alloc.failed_allocations == 1
    assert kernel.metrics.counter("mm.failed_allocations") == 1


def test_store_keys_published(kernel, alloc):
    alloc.allocate(10)
    assert kernel.store.load("mm.available_pages") == 990
    assert kernel.store.load("mm.last_grant") == 10
    assert kernel.store.load("mm.grant_out_of_bounds") == 0

"""Workload generation and drift injection."""

import pytest

from repro.kernel.storage.ssd import DeviceProfile, SsdDevice
from repro.kernel.storage.trace import PoissonWorkload, schedule_profile_change
from repro.kernel.storage.volume import ReplicatedVolume
from repro.sim.units import SECOND


def make(kernel):
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("d"), "d",
                  DeviceProfile.pre_drift())
    ]
    return ReplicatedVolume(kernel, devices), devices


def test_phase_validation(kernel):
    volume, _ = make(kernel)
    with pytest.raises(ValueError):
        PoissonWorkload(kernel, volume, [])
    with pytest.raises(ValueError):
        PoissonWorkload(kernel, volume, [(0, 100)])
    with pytest.raises(ValueError):
        PoissonWorkload(kernel, volume, [(SECOND, 0)])


def test_rate_approximately_respected(kernel):
    volume, _ = make(kernel)
    workload = PoissonWorkload(kernel, volume, [(5 * SECOND, 1000)]).start()
    kernel.run(until=5 * SECOND)
    assert workload.submitted == pytest.approx(5000, rel=0.1)


def test_phases_change_rate(kernel):
    volume, _ = make(kernel)
    workload = PoissonWorkload(
        kernel, volume, [(2 * SECOND, 200), (2 * SECOND, 2000)]
    ).start()
    kernel.run(until=2 * SECOND)
    first_phase = workload.submitted
    kernel.run(until=4 * SECOND)
    second_phase = workload.submitted - first_phase
    assert first_phase == pytest.approx(400, rel=0.25)
    assert second_phase == pytest.approx(4000, rel=0.15)


def test_workload_stops_after_phases(kernel):
    volume, _ = make(kernel)
    workload = PoissonWorkload(kernel, volume, [(1 * SECOND, 500)]).start()
    kernel.run(until=10 * SECOND)
    total = workload.submitted
    assert workload.done
    kernel.run(until=20 * SECOND)
    assert workload.submitted == total


def test_write_fraction(kernel):
    volume, _ = make(kernel)
    writes = []
    kernel.hooks.get("storage.submit_io").attach(lambda n, t, p: None)
    original = volume.submit

    def recording(is_write=False, size=4096):
        writes.append(is_write)
        return original(is_write, size)

    volume.submit = recording
    PoissonWorkload(kernel, volume, [(2 * SECOND, 500)],
                    write_fraction=0.3).start()
    kernel.run(until=2 * SECOND)
    fraction = sum(writes) / len(writes)
    assert fraction == pytest.approx(0.3, abs=0.07)


def test_schedule_profile_change_applies_at_time(kernel):
    volume, devices = make(kernel)
    schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                            2 * SECOND)
    kernel.run(until=1 * SECOND)
    assert devices[0].profile.name == "pre_drift"
    kernel.run(until=3 * SECOND)
    assert devices[0].profile.name == "post_drift"
    assert len(kernel.metrics.series("storage.profile_change")) == 1


def test_replay_workload_exact_times(kernel):
    from repro.kernel.storage import ReplayWorkload

    volume, _ = make(kernel)
    submits = []
    kernel.hooks.get("storage.submit_io").attach(
        lambda n, t, p: submits.append(t))
    workload = ReplayWorkload(kernel, volume,
                              [300, 100, (200, True)]).start()
    kernel.run(until=SECOND)
    assert submits == [100, 200, 300]   # sorted, exact
    assert workload.submitted == 3


def test_replay_workload_write_flags(kernel):
    from repro.kernel.storage import ReplayWorkload

    volume, _ = make(kernel)
    flags = []
    original = volume.submit
    volume.submit = lambda is_write=False, size=4096: (
        flags.append(is_write), original(is_write, size))[1]
    ReplayWorkload(kernel, volume, [(10, True), (20, False)]).start()
    kernel.run(until=SECOND)
    assert flags == [True, False]


def test_workloads_deterministic_per_seed():
    from repro.kernel import Kernel

    def run(seed):
        kernel = Kernel(seed=seed)
        volume, _ = make(kernel)
        workload = PoissonWorkload(kernel, volume, [(SECOND, 800)]).start()
        kernel.run(until=SECOND)
        return workload.submitted

    assert run(5) == run(5)

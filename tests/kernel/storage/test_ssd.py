"""SSD device model."""

import pytest

from repro.kernel.storage.ssd import FAST_STATE, SLOW_STATE, DeviceProfile, SsdDevice
from repro.sim.units import MILLISECOND, SECOND


def make_device(engine, profile=None, **kwargs):
    return SsdDevice(engine, engine.rng.get("dev"), "dev0", profile, **kwargs)


class FakeRequest:
    pass


def test_profile_validation():
    with pytest.raises(ValueError):
        DeviceProfile("bad", fast_duration_ns=0)
    with pytest.raises(ValueError):
        DeviceProfile("bad", dwell_jitter=1.5)


def test_stationary_slow_fraction():
    profile = DeviceProfile("p", fast_duration_ns=90, slow_duration_ns=10)
    assert profile.stationary_slow_fraction() == pytest.approx(0.1)


def test_pre_drift_mostly_fast_service(engine):
    device = make_device(engine, DeviceProfile.pre_drift())
    latencies = []

    def submit(n=0):
        device.enqueue(FakeRequest(), lambda req, us: latencies.append(us))
        if n < 2000:
            engine.schedule(500_000, submit, n + 1)  # 2000 IOPS

    submit()
    engine.run(until=1 * SECOND)
    slow = sum(1 for v in latencies if v > 500)
    assert len(latencies) > 1000
    assert slow / len(latencies) < 0.3


def test_post_drift_more_slow_service(engine):
    device = make_device(engine, DeviceProfile.post_drift())
    latencies = []

    def submit(n=0):
        device.enqueue(FakeRequest(), lambda req, us: latencies.append(us))
        if n < 2000:
            engine.schedule(1_000_000, submit, n + 1)

    submit()
    engine.run(until=2 * SECOND)
    slow = sum(1 for v in latencies if v > 500)
    assert slow / len(latencies) > 0.2


def test_fifo_order_preserved(engine):
    device = make_device(engine)
    completed = []
    for i in range(5):
        device.enqueue(i, lambda req, us: completed.append(req))
    engine.run(until=1 * SECOND)
    assert completed == [0, 1, 2, 3, 4]


def test_queue_depth_counts_waiting_and_in_service(engine):
    device = make_device(engine)
    for i in range(3):
        device.enqueue(i, lambda req, us: None)
    assert device.queue_depth == 3
    engine.run(until=1 * SECOND)
    assert device.queue_depth == 0


def test_history_and_counters_update(engine):
    device = make_device(engine)
    device.enqueue(FakeRequest(), lambda req, us: None)
    engine.run(until=1 * SECOND)
    assert device.served_count == 1
    assert len(device.history) == 1
    assert device.last_completion_time is not None


def test_history_ttl_makes_features_fresh(engine):
    device = make_device(engine, history_ttl=10 * MILLISECOND)
    device.history.append(2000.0)  # a slow completion
    device.last_completion_time = 0
    assert device.recent_slow_fraction() == 1.0
    # NB: run with `until` — the device's hidden-state process schedules
    # transitions forever, so an open-ended run() never drains.
    engine.run(until=20 * MILLISECOND)
    assert device.recent_slow_fraction() == 0.0
    assert device.last_latency_us() == 0.0


def test_features_vector_shape_and_range(engine):
    device = make_device(engine)
    features = device.features()
    assert len(features) == 4
    assert all(0.0 <= f <= 1.0 for f in features)


def test_time_since_slow_feature(engine):
    device = make_device(engine)
    assert device.time_since_slow() == 1.0  # never observed slow
    device.last_slow_completion_time = 0
    engine.run(until=device.TIME_SINCE_SLOW_SCALE // 2)
    assert device.time_since_slow() == 0.5
    engine.run(until=device.TIME_SINCE_SLOW_SCALE * 3)
    assert device.time_since_slow() == 1.0  # capped


def test_set_profile_reschedules_transitions(engine):
    device = make_device(engine, DeviceProfile.pre_drift())
    device.set_profile(DeviceProfile.post_drift())
    assert device.profile.name == "post_drift"
    # The state process keeps running under the new profile.
    flips = []
    original = device._flip_state

    def counting_flip():
        flips.append(engine.now)
        original()

    device._flip_state = counting_flip
    engine.run(until=1 * SECOND)
    # post_drift cycles ~8.5ms, so we expect on the order of 100 flips.
    assert len(flips) > 50


def test_no_history_reads_as_fast(engine):
    device = make_device(engine)
    assert device.recent_slow_fraction() == 0.0
    assert device.last_latency_us() == 0.0


def test_state_visible_for_tests(engine):
    device = make_device(engine)
    assert device.state in (FAST_STATE, SLOW_STATE)

"""Batched completion ingest: bit-exact vs the scalar path (satellite 2).

The batched device-model lane buffers per-I/O store saves and metric
records.  Because batching begins strictly after every RNG draw, and the
flush replays exact values at exact timestamps, the *entire observable
state* — counters, series, histograms, percentiles, store versions,
derived estimators — must be bit-identical across batch sizes 1, 64 and
4096 and against the scalar path, on the same seeded fig2-style workload.
"""

import collections

import pytest

from repro.kernel import Kernel
from repro.kernel.storage import (
    BatchedCompletionIngest,
    DeviceProfile,
    PickDecision,
    PoissonWorkload,
    ReplicatedVolume,
    SsdDevice,
    schedule_profile_change,
)
from repro.sim.units import SECOND


def run_fig2_workload(ingest_batch, seed=7, duration_s=2, rate_ios=400):
    """A seeded fig2-style run; returns (kernel, volume, probe_log)."""
    kernel = Kernel(seed=seed)
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("ssd{}".format(i)),
                  "ssd{}".format(i), DeviceProfile.pre_drift())
        for i in range(3)
    ]
    volume = kernel.attach(
        "storage",
        ReplicatedVolume(kernel, devices, ingest_batch=ingest_batch))

    # A deterministic model-ish policy (no RNG): round-robins replicas and
    # alternates fast/slow predictions so both false_submit branches and
    # the no-save branch (used_model=False every 5th I/O) are exercised.
    state = {"n": 0}

    def policy(vol):
        i = state["n"]
        state["n"] += 1
        if i % 5 == 4:
            return PickDecision(i % len(vol.devices), used_model=False)
        return PickDecision(i % len(vol.devices), used_model=True,
                            predicted_fast=(i % 2 == 0))

    volume.install_policy("storage.alternating", policy)

    # Mid-run device drift makes the latency distribution bimodal, so
    # percentiles actually discriminate.
    schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                            duration_s * SECOND // 2)

    # Mid-run store reads exercise the deferred-flush drain: a reader must
    # never observe pre-flush state, whatever the batch size.
    probe_log = []

    def probe():
        probe_log.append((
            kernel.engine.now,
            kernel.store.load("false_submit_rate"),
            kernel.store.load("io_latency_us"),
            kernel.store.version("io_latency_us"),
        ))

    for k in range(1, 8):
        kernel.engine.schedule(k * duration_s * SECOND // 8, probe)

    PoissonWorkload(kernel, volume,
                    [(duration_s * SECOND, rate_ios)]).start()
    kernel.run(until=duration_s * SECOND)
    volume.flush_ingest()
    return kernel, volume, probe_log


def state_fingerprint(kernel, volume, probe_log):
    """Every observable the scalar path produces, exact (no rounding)."""
    series = kernel.metrics.series("storage.io_latency_us")
    return {
        "completed": volume.completed,
        "false_submits": volume.false_submits,
        "model_submits": volume.model_submits,
        "counters": {
            name: kernel.metrics.counter(name)
            for name in ("storage.completed", "storage.slow_ios")
        },
        "series_times": list(series.times),
        "series_values": list(series.values),
        "histogram": collections.Counter(series.values),
        "p50": series.percentile(50),
        "p95": series.percentile(95),
        "p99": series.percentile(99),
        "store_snapshot": kernel.store.snapshot(),
        "store_versions": {
            key: kernel.store.version(key)
            for key in ("io_latency_us", "false_submit", "false_submit_rate")
        },
        "save_count": kernel.store.save_count,
        "probe_log": probe_log,
    }


@pytest.fixture(scope="module")
def scalar_fingerprint():
    return state_fingerprint(*run_fig2_workload(ingest_batch=None))


@pytest.mark.parametrize("batch", [1, 64, 4096])
def test_batched_ingest_bit_identical_to_scalar(batch, scalar_fingerprint):
    batched = state_fingerprint(*run_fig2_workload(ingest_batch=batch))
    assert batched == scalar_fingerprint


def test_workload_is_nontrivial(scalar_fingerprint):
    # Guard against the cross-check silently passing on an empty run.
    assert scalar_fingerprint["completed"] > 400
    assert scalar_fingerprint["counters"]["storage.slow_ios"] > 0
    assert scalar_fingerprint["store_versions"]["false_submit"] > 100
    assert any(rate > 0 for _, rate, _, _ in scalar_fingerprint["probe_log"])


def test_large_batch_actually_batches():
    kernel, volume, _ = run_fig2_workload(ingest_batch=4096)
    # Buffer-full never triggers at 4096 over ~800 events; flushes come
    # only from the probes' store reads and the final flush_ingest().
    assert 1 <= volume._ingest.flush_count <= 10
    assert volume._ingest.flush_count < volume.completed


def test_store_read_drains_buffer(kernel):
    ingest = BatchedCompletionIngest(kernel.store, kernel.metrics,
                                     "storage", batch_size=1000)
    ingest.add(100, 250.0, 1, False)
    ingest.add(200, 300.0, 0, False)
    assert len(ingest) == 2
    # Any store access drains the pending events first.
    assert kernel.store.load("io_latency_us") == 300.0
    assert len(ingest) == 0
    assert kernel.store.version("io_latency_us") == 2
    assert kernel.metrics.counter("storage.completed") == 2
    assert ingest.flush_count == 1


def test_flush_idempotent_and_rearm(kernel):
    ingest = BatchedCompletionIngest(kernel.store, kernel.metrics,
                                     "storage", batch_size=3)
    ingest.flush()  # empty flush is a no-op
    assert ingest.flush_count == 0
    for t in (10, 20, 30):
        ingest.add(t, float(t), None, False)
    assert ingest.flush_count == 1  # buffer-full flush
    assert len(ingest) == 0
    ingest.add(40, 40.0, None, True)
    assert kernel.store.load("io_latency_us") == 40.0  # re-armed hook drains
    assert ingest.flush_count == 2
    assert kernel.metrics.counter("storage.slow_ios") == 1


def test_batch_size_validation(kernel):
    with pytest.raises(ValueError):
        BatchedCompletionIngest(kernel.store, kernel.metrics, "storage", 0)

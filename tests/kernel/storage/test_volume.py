"""Replicated volume: policy slot, metrics, false-submit accounting."""

import pytest

from repro.kernel.storage.ssd import DeviceProfile, SsdDevice
from repro.kernel.storage.volume import PickDecision, ReplicatedVolume, round_robin_policy
from repro.sim.units import SECOND


def make_volume(kernel, replicas=3):
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("d{}".format(i)),
                  "d{}".format(i), DeviceProfile.pre_drift())
        for i in range(replicas)
    ]
    return ReplicatedVolume(kernel, devices), devices


def test_needs_devices(kernel):
    with pytest.raises(ValueError):
        ReplicatedVolume(kernel, [])


def test_round_robin_distributes(kernel):
    volume, devices = make_volume(kernel)
    for _ in range(9):
        volume.submit()
    kernel.run(until=1 * SECOND)
    assert [d.served_count for d in devices] == [3, 3, 3]


def test_completion_updates_metrics_and_store(kernel):
    volume, _ = make_volume(kernel)
    volume.submit()
    kernel.run(until=1 * SECOND)
    assert volume.completed == 1
    assert kernel.store.load("io_latency_us") > 0
    assert len(kernel.metrics.series("storage.io_latency_us")) == 1


def test_hooks_fire_with_payloads(kernel):
    volume, _ = make_volume(kernel)
    submits, completes = [], []
    kernel.hooks.get("storage.submit_io").attach(
        lambda n, t, p: submits.append(p))
    kernel.hooks.get("storage.io_complete").attach(
        lambda n, t, p: completes.append(p))
    volume.submit()
    kernel.run(until=1 * SECOND)
    assert submits[0]["io_id"] == 1
    assert completes[0]["io_id"] == 1
    assert "latency_us" in completes[0]
    assert "service_us" in completes[0]


def test_install_policy_swaps_slot(kernel):
    volume, _ = make_volume(kernel)
    calls = []

    def policy(vol):
        calls.append(1)
        return PickDecision(0)

    volume.install_policy("storage.test_policy", policy)
    volume.submit()
    assert calls == [1]


def test_false_submit_accounting(kernel):
    volume, devices = make_volume(kernel)
    # A policy that always predicts fast on device 0.
    volume.install_policy(
        "storage.always_fast",
        lambda vol: PickDecision(0, used_model=True, predicted_fast=True),
    )
    # Force device 0 slow by replacing its sampler.
    devices[0]._sample_service_us = lambda: 5000.0
    for _ in range(10):
        volume.submit()
    # 10 serial 5ms services finish by t=50ms, inside the 1s rate window.
    kernel.run(until=60_000_000)
    assert volume.false_submits == 10
    assert volume.model_submits == 10
    assert volume.false_submit_fraction() == 1.0
    assert kernel.store.load("false_submit_rate") == 1.0


def test_predicted_slow_submissions_not_false_submits(kernel):
    volume, devices = make_volume(kernel)
    volume.install_policy(
        "storage.predicts_slow",
        lambda vol: PickDecision(0, used_model=True, predicted_fast=False),
    )
    devices[0]._sample_service_us = lambda: 5000.0
    for _ in range(5):
        volume.submit()
    kernel.run(until=1 * SECOND)
    assert volume.false_submits == 0
    assert kernel.store.load("false_submit_rate") == 0.0


def test_false_submit_rate_decays_when_model_disabled(kernel):
    volume, devices = make_volume(kernel)
    volume.install_policy(
        "storage.always_fast",
        lambda vol: PickDecision(0, used_model=True, predicted_fast=True),
    )
    devices[0]._sample_service_us = lambda: 5000.0
    volume.submit()
    kernel.run(until=1 * SECOND)
    assert kernel.store.load("false_submit_rate") == 1.0
    kernel.run(until=5 * SECOND)  # window (1s) passes with no model I/O
    assert kernel.store.load("false_submit_rate") == 0.0


def test_latency_includes_queue_wait(kernel):
    volume, devices = make_volume(kernel, replicas=1)
    devices[0]._sample_service_us = lambda: 100.0
    for _ in range(3):
        volume.submit()
    kernel.run(until=1 * SECOND)
    series = kernel.metrics.series("storage.io_latency_us")
    latencies = series.values
    assert latencies[0] == pytest.approx(100, rel=0.01)
    assert latencies[2] == pytest.approx(300, rel=0.01)


def test_round_robin_policy_standalone_cycles():
    policy = round_robin_policy()

    class FakeVolume:
        devices = [None, None]

    picks = [policy(FakeVolume()).index for _ in range(4)]
    assert picks == [0, 1, 0, 1]


def test_slow_counter_metric(kernel):
    volume, devices = make_volume(kernel, replicas=1)
    devices[0]._sample_service_us = lambda: 5000.0
    volume.submit()
    kernel.run(until=1 * SECOND)
    assert kernel.metrics.counter("storage.slow_ios") == 1

"""CPU scheduler: CFS fairness, hooks, task controller, starvation metric."""

import pytest

from repro.kernel.sched import CpuScheduler
from repro.sim.units import MILLISECOND, SECOND


@pytest.fixture
def sched(kernel):
    return kernel.attach("sched", CpuScheduler(kernel))


def test_cfs_shares_cpu_fairly(kernel, sched):
    for name in ("a", "b", "c"):
        sched.spawn(name, burst_ns=10 * MILLISECOND)
    kernel.run(until=3 * SECOND)
    stats = sched.wait_stats()
    executed = [stats[n]["executed_ms"] for n in ("a", "b", "c")]
    assert max(executed) - min(executed) <= 15  # within a few timeslices


def test_nice_tasks_get_less_cpu(kernel, sched):
    sched.spawn("normal", burst_ns=10 * MILLISECOND, nice=0)
    sched.spawn("nice", burst_ns=10 * MILLISECOND, nice=10)
    kernel.run(until=3 * SECOND)
    stats = sched.wait_stats()
    assert stats["normal"]["executed_ms"] > stats["nice"]["executed_ms"] * 2


def test_finite_task_finishes_and_counts(kernel, sched):
    sched.spawn("short", burst_ns=5 * MILLISECOND, total_work_ns=20 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    assert kernel.metrics.counter("sched.finished") == 1
    assert not sched.find_task("short").alive


def test_duplicate_task_name_rejected(kernel, sched):
    sched.spawn("t")
    with pytest.raises(ValueError):
        sched.spawn("t")


def test_idle_when_no_tasks(kernel, sched):
    kernel.run(until=1 * SECOND)
    assert sched.context_switches == 0


def test_wakeup_after_think_time(kernel, sched):
    sched.spawn("thinker", burst_ns=1 * MILLISECOND, think_ns=10 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    task = sched.find_task("thinker")
    # ~1ms run + 10ms think per cycle -> ~90 dispatches per second.
    assert 60 <= task.dispatch_count <= 120


def test_pick_hook_fires(kernel, sched):
    picks = []
    kernel.hooks.get("sched.pick_next_task").attach(
        lambda n, t, p: picks.append(p["task"]))
    sched.spawn("only", burst_ns=2 * MILLISECOND)
    kernel.run(until=50 * MILLISECOND)
    assert picks and set(picks) == {"only"}


def test_max_wait_published_to_store(kernel, sched):
    sched.spawn("a", burst_ns=50 * MILLISECOND)
    sched.spawn("b", burst_ns=50 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    assert kernel.store.load("sched.max_wait_ms") >= 0.0
    assert kernel.store.load("sched.wait_ms.avg") is not None


def test_kill_removes_from_scheduling(kernel, sched):
    sched.spawn("victim", burst_ns=10 * MILLISECOND)
    sched.spawn("other", burst_ns=10 * MILLISECOND)
    kernel.run(until=100 * MILLISECOND)
    victim = sched.find_task("victim")
    sched.kill(victim)
    executed = victim.executed_ns
    kernel.run(until=1 * SECOND)
    assert victim.executed_ns == executed


class TestTaskController:
    def test_renice(self, kernel, sched):
        sched.spawn("t", burst_ns=10 * MILLISECOND)
        kernel.task_controller.deprioritize(["t"], [10])
        assert sched.find_task("t").nice == 10
        assert kernel.task_controller.renice_count == 1

    def test_kill_below_threshold(self, kernel, sched):
        sched.spawn("t", burst_ns=10 * MILLISECOND)
        kernel.task_controller.deprioritize(["t"], [0])
        assert sched.find_task("t").killed
        assert kernel.task_controller.kill_count == 1

    def test_unknown_target_ignored(self, kernel, sched):
        kernel.task_controller.deprioritize(["ghost"], [1])
        assert kernel.task_controller.renice_count == 0

    def test_wired_as_kernel_task_controller(self, kernel, sched):
        from repro.kernel.sched.scheduler import SchedulerTaskController

        assert isinstance(kernel.task_controller, SchedulerTaskController)


def test_custom_picker_via_slot(kernel, sched):
    sched.spawn("a", burst_ns=5 * MILLISECOND)
    sched.spawn("b", burst_ns=5 * MILLISECOND)

    def favor_b(scheduler):
        runnable = scheduler.runnable_tasks()
        b = [t for t in runnable if t.name == "b"]
        return b[0] if b else (runnable[0] if runnable else None)

    kernel.functions.register_implementation("sched.favor_b", favor_b)
    kernel.functions.replace("sched.pick_next", "sched.favor_b")
    kernel.run(until=1 * SECOND)
    stats = sched.wait_stats()
    assert stats["b"]["executed_ms"] > stats["a"]["executed_ms"] * 3


def test_replace_back_to_cfs_restores_fairness(kernel, sched):
    sched.spawn("a", burst_ns=5 * MILLISECOND)
    sched.spawn("b", burst_ns=5 * MILLISECOND)
    kernel.functions.register_implementation(
        "sched.only_a",
        lambda s: next((t for t in s.runnable_tasks() if t.name == "a"), None),
    )
    kernel.functions.replace("sched.pick_next", "sched.only_a")
    kernel.run(until=1 * SECOND)
    kernel.functions.replace("sched.pick_next", "sched.cfs")
    kernel.run(until=3 * SECOND)
    stats = sched.wait_stats()
    # b catches up under CFS (min vruntime picks it exclusively for a while).
    assert stats["b"]["executed_ms"] > 900

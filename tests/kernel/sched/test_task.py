"""Task accounting."""

import pytest

from repro.kernel.sched.task import Task, nice_to_weight


def test_nice_weight_monotone():
    assert nice_to_weight(-5) > nice_to_weight(0) > nice_to_weight(5)
    assert nice_to_weight(0) == 1024


def test_nice_bounds():
    with pytest.raises(ValueError):
        nice_to_weight(-21)
    with pytest.raises(ValueError):
        nice_to_weight(20)


def test_wait_accounting():
    task = Task("t")
    task.mark_runnable(100)
    assert task.waiting_ns(250) == 150
    task.record_dispatch(250)
    assert task.total_wait_ns == 150
    assert task.max_wait_ns == 150
    assert task.waiting_ns(300) == 0  # no longer waiting while running
    assert task.wait_samples == [150]


def test_dispatch_without_runnable_mark():
    task = Task("t")
    task.record_dispatch(10)
    assert task.total_wait_ns == 0
    assert task.dispatch_count == 1


def test_account_run_vruntime_weighted():
    normal = Task("a", nice=0)
    nice_task = Task("b", nice=5)
    normal.account_run(1000)
    nice_task.account_run(1000)
    # Lower weight (positive nice) accrues vruntime faster.
    assert nice_task.vruntime > normal.vruntime


def test_finite_work_completes():
    task = Task("t", burst_ns=100, total_work_ns=250)
    assert not task.account_run(100)
    assert not task.account_run(100)
    assert task.account_run(100)
    assert task.finished
    assert not task.alive


def test_kill_marks_dead():
    task = Task("t")
    task.killed = True
    assert not task.alive


def test_set_nice_updates_weight():
    task = Task("t")
    before = task.weight
    task.set_nice(10)
    assert task.weight < before


def test_remaining_burst_decrements():
    task = Task("t", burst_ns=1000)
    task.account_run(400)
    assert task.remaining_burst_ns == 600

"""Preemption accounting paths multi-policy hosts exercise.

The scenario zoo's sched rigs depend on exact preemption bookkeeping:
timeslice-sliced bursts, wait accounting for preempted (still-runnable)
tasks, the published ``sched.max_wait_ms`` starvation signal, and idle
accounting between think phases.
"""

import pytest

from repro.kernel import Kernel
from repro.kernel.sched import CpuScheduler
from repro.sim.units import MILLISECOND, SECOND


@pytest.fixture
def sched(kernel):
    return kernel.attach("sched", CpuScheduler(kernel))


def test_burst_sliced_into_timeslices(kernel, sched):
    """A 10 ms burst under a 4 ms timeslice dispatches as 4+4+2."""
    sched.spawn("solo", burst_ns=10 * MILLISECOND,
                total_work_ns=10 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    task = sched.find_task("solo")
    assert task.finished
    assert task.dispatch_count == 3
    assert sched.context_switches == 3
    assert task.executed_ns == 10 * MILLISECOND


def test_preempted_task_stays_runnable_and_accrues_wait(kernel, sched):
    """Mid-burst preemption re-queues the task; its wait clock restarts."""
    sched.spawn("long", burst_ns=20 * MILLISECOND, think_ns=1 * MILLISECOND)
    sched.spawn("rival", burst_ns=20 * MILLISECOND, think_ns=1 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    stats = sched.wait_stats()
    # Both tasks alternate 4 ms slices, so each waits ~one timeslice while
    # the other runs: preemption wait must be accounted, not dropped.
    for name in ("long", "rival"):
        assert stats[name]["dispatches"] > 1
        assert stats[name]["mean_wait_ms"] > 1.0
    assert sched.context_switches == (sched.find_task("long").dispatch_count
                                      + sched.find_task("rival").dispatch_count)


def test_max_wait_counts_still_waiting_task(kernel, sched):
    """``sched.max_wait_ms`` sees a task that has *never* been dispatched.

    This is the starvation signal the ``zoo-sched-starvation`` guardrail
    trips on: it must reflect in-progress waits, not just completed ones.
    """
    waits = []
    kernel.hooks.get("sched.pick_next_task").attach(
        lambda name, now, payload: waits.append(
            kernel.store.load("sched.max_wait_ms")))

    def pick_first_spawned(scheduler):
        runnable = scheduler.runnable_tasks()
        if not runnable:
            return None
        return min(runnable, key=lambda t: t.name)

    kernel.functions.register_implementation("sched.greedy",
                                             pick_first_spawned)
    kernel.functions.replace(sched.PICK_SLOT, "sched.greedy")
    sched.spawn("a-hog", burst_ns=50 * MILLISECOND, think_ns=0)
    sched.spawn("b-starved", burst_ns=1 * MILLISECOND)
    kernel.run(until=200 * MILLISECOND)
    # The hog is always picked; the starved task's wait keeps growing and
    # each dispatch republishes it.
    assert max(waits) > 100.0
    assert sched.find_task("b-starved").dispatch_count == 0


def test_idle_time_accounted_between_bursts(kernel, sched):
    """1 ms run / 9 ms think cycles leave the CPU idle ~90% of the time."""
    sched.spawn("sleeper", burst_ns=1 * MILLISECOND, think_ns=9 * MILLISECOND)
    kernel.run(until=1 * SECOND)
    assert 0.8 * SECOND < sched.idle_ns < SECOND


def test_killed_task_never_redispatched(kernel, sched):
    sched.spawn("victim", burst_ns=4 * MILLISECOND, think_ns=1 * MILLISECOND)
    kernel.run(until=100 * MILLISECOND)
    victim = sched.find_task("victim")
    dispatches = victim.dispatch_count
    sched.kill(victim)
    kernel.run(until=300 * MILLISECOND)
    assert victim.dispatch_count == dispatches
    assert not victim.alive


def test_preemption_accounting_is_seed_deterministic():
    """Same seed, identical dispatch/wait accounting; learned policy armed.

    The learned sched policy's exploration is the only randomness in the
    stack, so this pins the whole scheduler pipeline to the seed.
    """

    def run(seed):
        kernel = Kernel(seed=seed)
        scheduler = kernel.attach("sched", CpuScheduler(kernel))
        from repro.policies.schedpol import attach_learned_sched_policy

        attach_learned_sched_policy(kernel, scheduler)
        for i in range(4):
            scheduler.spawn("short-{}".format(i), burst_ns=1 * MILLISECOND,
                            think_ns=2 * MILLISECOND)
        scheduler.spawn("elephant", burst_ns=30 * MILLISECOND,
                        think_ns=1 * MILLISECOND)
        kernel.run(until=3 * SECOND)
        stats = scheduler.wait_stats()
        return (scheduler.context_switches,
                {name: (row["dispatches"], row["executed_ms"],
                        row["max_wait_ms"]) for name, row in stats.items()})

    assert run(13) == run(13)

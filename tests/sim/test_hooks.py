"""Hook points and probes."""

import pytest

from repro.sim.hooks import HookRegistry, Probe


@pytest.fixture
def hooks(engine):
    return HookRegistry(engine)


def test_declare_creates_and_returns_same_point(hooks):
    a = hooks.declare("x.y")
    b = hooks.declare("x.y")
    assert a is b


def test_get_unknown_raises_with_known_names(hooks):
    hooks.declare("a.b")
    with pytest.raises(KeyError, match="a.b"):
        hooks.get("nope")


def test_fire_delivers_payload_and_time(engine, hooks):
    point = hooks.declare("p")
    seen = []
    point.attach(lambda name, now, payload: seen.append((name, now, payload)))
    engine.schedule(7, lambda: point.fire(value=3))
    engine.run()
    assert seen == [("p", 7, {"value": 3})]


def test_fire_with_no_probes_is_cheap_noop(hooks):
    point = hooks.declare("p")
    point.fire(x=1)
    assert point.fire_count == 1


def test_multiple_probes_all_fire(hooks):
    point = hooks.declare("p")
    seen = []
    point.attach(lambda *a: seen.append(1))
    point.attach(lambda *a: seen.append(2))
    point.fire()
    assert sorted(seen) == [1, 2]


def test_detach_stops_delivery(hooks):
    point = hooks.declare("p")
    seen = []
    probe = point.attach(lambda *a: seen.append(1))
    point.fire()
    probe.detach()
    point.fire()
    assert seen == [1]
    assert not probe.attached


def test_detach_is_idempotent(hooks):
    point = hooks.declare("p")
    probe = point.attach(lambda *a: None)
    probe.detach()
    probe.detach()


def test_probe_can_detach_itself_while_firing(hooks):
    point = hooks.declare("p")
    seen = []

    def once(name, now, payload):
        seen.append(now)
        probe.detach()

    probe = point.attach(once)
    point.fire()
    point.fire()
    assert len(seen) == 1


def test_reattaching_attached_probe_raises(hooks):
    point = hooks.declare("p")
    probe = Probe(lambda *a: None)
    point.attach(probe)
    with pytest.raises(ValueError):
        hooks.declare("q").attach(probe)


def test_probe_count_and_names(hooks):
    point = hooks.declare("b")
    hooks.declare("a")
    point.attach(lambda *a: None)
    assert point.probe_count == 1
    assert hooks.names() == ["a", "b"]
    assert "a" in hooks
    assert "zz" not in hooks


def test_fire_iterates_live_list_without_copying(hooks):
    # The perf contract: a steady-state fire allocates no probe-list copy.
    # Observable proxy: the list object is the same before and after, and
    # steady firing reaches every probe.
    point = hooks.declare("p")
    seen = []
    point.attach(lambda *a: seen.append("a"))
    point.attach(lambda *a: seen.append("b"))
    probes_list = point._probes
    for _ in range(3):
        point.fire()
    assert point._probes is probes_list
    assert seen == ["a", "b"] * 3


def test_probe_attached_during_fire_waits_for_next_fire(hooks):
    point = hooks.declare("p")
    seen = []

    def attacher(name, now, payload):
        seen.append("first")
        if len(seen) == 1:
            point.attach(lambda *a: seen.append("late"))

    point.attach(attacher)
    point.fire()
    assert seen == ["first"]  # late probe not invoked mid-fire
    point.fire()
    assert seen == ["first", "first", "late"]


def test_probe_detaching_a_later_probe_mid_fire_skips_it(hooks):
    point = hooks.declare("p")
    seen = []

    def saboteur(name, now, payload):
        seen.append("saboteur")
        victim.detach()

    point.attach(saboteur)
    victim = point.attach(lambda *a: seen.append("victim"))
    point.fire()
    assert seen == ["saboteur"]
    assert not victim.attached
    assert point.probe_count == 1
    point.fire()
    assert seen == ["saboteur", "saboteur"]


def test_probe_detaching_an_earlier_probe_mid_fire(hooks):
    point = hooks.declare("p")
    seen = []
    early = point.attach(lambda *a: seen.append("early"))

    def saboteur(name, now, payload):
        seen.append("saboteur")
        early.detach()

    point.attach(saboteur)
    tail = point.attach(lambda *a: seen.append("tail"))
    point.fire()
    # early already ran this round; the tail probe must still run even
    # though the list shrank logically mid-iteration.
    assert seen == ["early", "saboteur", "tail"]
    point.fire()
    assert seen == ["early", "saboteur", "tail", "saboteur", "tail"]
    assert point.probe_count == 2
    assert tail.attached


def test_reentrant_fire_from_probe_is_safe(hooks):
    point = hooks.declare("p")
    seen = []

    def reenter(name, now, payload):
        seen.append("outer")
        if len(seen) == 1:
            point.fire()        # nested fire from inside a probe
            other.detach()      # deferred until the outermost fire ends

    point.attach(reenter)
    other = point.attach(lambda *a: seen.append("other"))
    point.fire()
    # Nested fire sees both probes; when it unwinds, the detach takes
    # effect immediately (the outer pass skips `other`) while the physical
    # list removal is deferred until the outermost fire ends.
    assert seen == ["outer", "outer", "other"]
    assert point.probe_count == 1
    point.fire()
    assert seen == ["outer", "outer", "other", "outer"]


def test_crashing_probe_is_contained_and_counted(hooks):
    # Crash-only containment: a raising probe must not abort the firing
    # site (a kernel code path) or starve the probes behind it.
    point = hooks.declare("p")
    seen = []
    point.attach(lambda *a: (_ for _ in ()).throw(RuntimeError("probe bug")),
                 name="bomb")
    point.attach(lambda name, now, payload: seen.append(payload["x"]))
    point.fire(x=1)             # must not raise
    point.fire(x=2)
    assert seen == [1, 2]
    assert point.probe_error_count == 2
    assert point.fire_count == 2


def test_crashing_probe_emits_supervisor_trace_event(hooks):
    from repro.trace.tracer import tracing

    point = hooks.declare("p")
    point.attach(lambda *a: (_ for _ in ()).throw(ValueError("bug")),
                 name="bomb")
    with tracing() as tracer:
        point.fire()
    events = tracer.events(category="supervisor")
    assert [e.name for e in events] == ["probe_crash"]
    assert events[0].args == {"hook": "p", "probe": "bomb",
                              "error": "ValueError"}

"""Time-unit conversions."""

from repro.sim import units


def test_constants_ratios():
    assert units.MICROSECOND == 1000 * units.NANOSECOND
    assert units.MILLISECOND == 1000 * units.MICROSECOND
    assert units.SECOND == 1000 * units.MILLISECOND


def test_roundtrip_us():
    assert units.ns_to_us(units.us(12.5)) == 12.5


def test_roundtrip_ms():
    assert units.ns_to_ms(units.ms(3.25)) == 3.25


def test_roundtrip_seconds():
    assert units.ns_to_s(units.seconds(2)) == 2.0


def test_conversions_return_ints():
    assert isinstance(units.us(1.5), int)
    assert isinstance(units.ms(0.5), int)
    assert isinstance(units.seconds(0.001), int)


def test_fractional_ns_rounds():
    assert units.us(0.0015) == 2  # 1.5 ns rounds to 2

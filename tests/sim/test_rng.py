"""Named RNG streams: determinism and independence."""

from repro.sim.rng import RngStreams, _stable_hash


def test_same_seed_same_stream_reproduces():
    a = RngStreams(7).get("x").random(5)
    b = RngStreams(7).get("x").random(5)
    assert (a == b).all()


def test_different_names_give_different_draws():
    streams = RngStreams(7)
    a = streams.get("x").random(5)
    b = streams.get("y").random(5)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngStreams(1).get("x").random(5)
    b = RngStreams(2).get("x").random(5)
    assert not (a == b).all()


def test_get_returns_same_generator_object():
    streams = RngStreams(0)
    assert streams.get("x") is streams.get("x")


def test_adding_stream_does_not_perturb_existing():
    one = RngStreams(3)
    first = one.get("a").random(3)

    two = RngStreams(3)
    two.get("b")  # interleave creation of an unrelated stream
    second = two.get("a").random(3)
    assert (first == second).all()


def test_reset_recreates_stream():
    streams = RngStreams(5)
    first = streams.get("a").random(3)
    streams.reset("a")
    again = streams.get("a").random(3)
    assert (first == again).all()


def test_reset_all():
    streams = RngStreams(5)
    first = streams.get("a").random(2)
    streams.reset()
    assert (streams.get("a").random(2) == first).all()


def test_stable_hash_is_process_independent_constant():
    # Pinned value: guards against accidental algorithm changes, which
    # would silently change every simulation.
    assert _stable_hash("storage") == _stable_hash("storage")
    assert _stable_hash("a") != _stable_hash("b")
    assert 0 <= _stable_hash("anything") < 2 ** 63


def test_seed_property():
    assert RngStreams(9).seed == 9

"""Metric recorder and time series."""

import math

import pytest

from repro.sim.metrics import MetricRecorder, TimeSeries


@pytest.fixture
def recorder(engine):
    return MetricRecorder(engine)


def test_record_uses_engine_time(engine, recorder):
    engine.schedule(25, recorder.record, "m", 1.0)
    engine.run()
    series = recorder.series("m")
    assert list(series) == [(25, 1.0)]


def test_record_explicit_time(recorder):
    recorder.record("m", 2.0, time=99)
    assert recorder.series("m").times == [99]


def test_counters(recorder):
    recorder.increment("c")
    recorder.increment("c", 4)
    assert recorder.counter("c") == 5
    assert recorder.counter("missing") == 0


def test_series_mean_and_last():
    s = TimeSeries("x")
    assert math.isnan(s.mean())
    assert s.last() is None
    s.append(0, 1.0)
    s.append(1, 3.0)
    assert s.mean() == 2.0
    assert s.last() == 3.0


def test_series_window_half_open():
    s = TimeSeries("x")
    for t in range(5):
        s.append(t * 10, t)
    assert s.window(10, 30) == [(10, 1), (20, 2)]


def test_moving_average_matches_manual():
    s = TimeSeries("x")
    values = [1, 2, 3, 4, 5]
    for i, v in enumerate(values):
        s.append(i, v)
    times, avgs = s.moving_average(window=2)
    assert times == [0, 1, 2, 3, 4]
    assert avgs == [1.0, 1.5, 2.5, 3.5, 4.5]


def test_moving_average_window_larger_than_series():
    s = TimeSeries("x")
    s.append(0, 2)
    s.append(1, 4)
    _, avgs = s.moving_average(window=10)
    assert avgs == [2.0, 3.0]


def test_percentile_interpolates():
    s = TimeSeries("x")
    for i, v in enumerate([10, 20, 30, 40]):
        s.append(i, v)
    assert s.percentile(0) == 10
    assert s.percentile(100) == 40
    assert s.percentile(50) == 25.0


def test_percentile_empty_is_nan():
    assert math.isnan(TimeSeries("x").percentile(50))


def test_percentile_single_value():
    s = TimeSeries("x")
    s.append(0, 7)
    assert s.percentile(99) == 7.0


def test_snapshot_shape(recorder):
    recorder.record("m", 1.0)
    recorder.increment("c")
    snap = recorder.snapshot()
    assert snap["counters"] == {"c": 1}
    assert snap["series"]["m"]["count"] == 1
    assert snap["series"]["m"]["mean"] == 1.0


def test_names_merges_series_and_counters(recorder):
    recorder.record("s", 1)
    recorder.increment("c")
    assert recorder.names() == ["c", "s"]

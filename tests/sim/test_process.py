"""Processes: sleep, conditions, exit values."""

import pytest

from repro.sim.process import Condition, Process, sleep, wait


def test_process_runs_to_completion(engine):
    log = []

    def worker():
        log.append(engine.now)
        yield sleep(10)
        log.append(engine.now)
        yield sleep(5)
        log.append(engine.now)

    Process(engine, worker())
    engine.run()
    assert log == [0, 10, 15]


def test_process_result_from_return(engine):
    def worker():
        yield sleep(1)
        return 42

    process = Process(engine, worker())
    engine.run()
    assert process.finished
    assert process.result == 42


def test_condition_wakes_waiter_with_value(engine):
    condition = Condition()
    seen = []

    def waiter():
        value = yield wait(condition)
        seen.append((engine.now, value))

    def firer():
        yield sleep(20)
        condition.fire("ping")

    Process(engine, waiter())
    Process(engine, firer())
    engine.run()
    assert seen == [(20, "ping")]


def test_condition_wakes_all_waiters(engine):
    condition = Condition()
    woken = []

    def waiter(name):
        yield wait(condition)
        woken.append(name)

    for name in "abc":
        Process(engine, waiter(name))

    def firer():
        yield sleep(1)
        condition.fire()

    Process(engine, firer())
    engine.run()
    assert sorted(woken) == ["a", "b", "c"]


def test_waiter_count_tracks_registrations(engine):
    condition = Condition()

    def waiter():
        yield wait(condition)

    Process(engine, waiter())
    engine.run(until=1)
    assert condition.waiter_count == 1
    condition.fire()
    assert condition.waiter_count == 0


def test_on_exit_condition_fires(engine):
    order = []

    def short():
        yield sleep(5)
        return "done"

    def joiner(process):
        result = yield wait(process.on_exit)
        order.append((engine.now, result))

    p = Process(engine, short())
    Process(engine, joiner(p))
    engine.run()
    assert order == [(5, "done")]


def test_bad_yield_raises_type_error(engine):
    def worker():
        yield "not a command"

    Process(engine, worker(), name="bad")
    with pytest.raises(TypeError, match="bad"):
        engine.run()


def test_process_repr(engine):
    def worker():
        yield sleep(1)

    process = Process(engine, worker(), name="w")
    assert "running" in repr(process)
    engine.run()
    assert "finished" in repr(process)

"""Engine: event ordering, cancellation, stop, run-until semantics."""

import pytest

from repro.sim.engine import SimulationError


def test_starts_at_time_zero(engine):
    assert engine.now == 0


def test_schedule_and_run_fires_callback(engine):
    fired = []
    engine.schedule(10, fired.append, "a")
    engine.run()
    assert fired == ["a"]
    assert engine.now == 10


def test_events_fire_in_time_order(engine):
    order = []
    engine.schedule(30, order.append, 3)
    engine.schedule(10, order.append, 1)
    engine.schedule(20, order.append, 2)
    engine.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_schedule_order(engine):
    order = []
    for i in range(5):
        engine.schedule(10, order.append, i)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time(engine):
    engine.schedule(5, lambda: None)
    engine.run()
    times = []
    engine.schedule_at(12, lambda: times.append(engine.now))
    engine.run()
    assert times == [12]


def test_scheduling_in_the_past_raises(engine):
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_negative_delay_raises(engine):
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_cancelled_event_does_not_fire(engine):
    fired = []
    event = engine.schedule(10, fired.append, "x")
    event.cancel()
    engine.run()
    assert fired == []


def test_cancel_is_idempotent(engine):
    event = engine.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    engine.run()


def test_callback_can_schedule_more_events(engine):
    seen = []

    def chain(n):
        seen.append(engine.now)
        if n > 0:
            engine.schedule(10, chain, n - 1)

    engine.schedule(0, chain, 3)
    engine.run()
    assert seen == [0, 10, 20, 30]


def test_run_until_stops_clock_exactly(engine):
    engine.schedule(10, lambda: None)
    engine.schedule(100, lambda: None)
    engine.run(until=50)
    assert engine.now == 50
    assert engine.pending_events() == 1


def test_run_until_fires_events_at_boundary(engine):
    fired = []
    engine.schedule(50, fired.append, "edge")
    engine.run(until=50)
    assert fired == ["edge"]


def test_run_until_does_not_fire_later_events(engine):
    fired = []
    engine.schedule(51, fired.append, "late")
    engine.run(until=50)
    assert fired == []
    engine.run(until=60)
    assert fired == ["late"]


def test_stop_halts_the_loop(engine):
    fired = []
    engine.schedule(10, fired.append, 1)
    engine.schedule(20, lambda: engine.stop())
    engine.schedule(30, fired.append, 3)
    engine.run()
    assert fired == [1]
    assert engine.pending_events() == 1


def test_reentrant_run_raises(engine):
    def nested():
        with pytest.raises(SimulationError):
            engine.run()

    engine.schedule(1, nested)
    engine.run()


def test_step_returns_false_when_empty(engine):
    assert engine.step() is False


def test_step_fires_one_event(engine):
    fired = []
    engine.schedule(1, fired.append, "a")
    engine.schedule(2, fired.append, "b")
    assert engine.step() is True
    assert fired == ["a"]


def test_peek_skips_cancelled(engine):
    event = engine.schedule(5, lambda: None)
    engine.schedule(9, lambda: None)
    event.cancel()
    assert engine.peek() == 9


def test_peek_empty_returns_none(engine):
    assert engine.peek() is None


def test_pending_events_counts_only_live(engine):
    a = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    a.cancel()
    assert engine.pending_events() == 1


def test_callback_args_passed_through(engine):
    result = []
    engine.schedule(1, lambda a, b: result.append((a, b)), 1, "x")
    engine.run()
    assert result == [(1, "x")]


def test_event_repr_shows_state(engine):
    event = engine.schedule(5, lambda: None)
    assert "pending" in repr(event)
    event.cancel()
    assert "cancelled" in repr(event)


def test_float_times_are_truncated_to_int(engine):
    event = engine.schedule(10.7, lambda: None)
    assert event.time == 10


def test_cancel_decrements_pending_immediately(engine):
    a = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    engine.schedule(3, lambda: None)
    a.cancel()
    # The live-event counter is maintained at cancel time, not lazily at
    # pop time: pending_events() is O(1) and never over-counts.
    assert engine.pending_events() == 2
    assert engine._pending == 2


def test_cancel_then_peek_keeps_pending_consistent(engine):
    fired = []
    a = engine.schedule(5, fired.append, "a")
    engine.schedule(7, fired.append, "b")
    engine.schedule(9, fired.append, "c")
    a.cancel()
    assert engine.pending_events() == 2
    # peek() pops the cancelled head; the count must not be decremented a
    # second time for an event cancel() already accounted for.
    assert engine.peek() == 7
    assert engine.pending_events() == 2
    engine.run()
    assert fired == ["b", "c"]
    assert engine.pending_events() == 0


def test_cancel_removes_dead_heap_head_eagerly(engine):
    a = engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    a.cancel()
    assert len(engine._heap) == 1


def test_cancel_after_fire_is_a_noop(engine):
    event = engine.schedule(1, lambda: None)
    engine.run()
    event.cancel()
    assert "fired" in repr(event)
    assert engine.pending_events() == 0


def test_schedule_at_fractional_time_rounds_up(engine):
    # 0.9 must not truncate to 0: the event would fire before the requested
    # instant.  Fractional absolute times round up to the next nanosecond.
    event = engine.schedule_at(0.9, lambda: None)
    assert event.time == 1
    fired = []
    engine.schedule_at(10.2, lambda: fired.append(engine.now))
    engine.run()
    assert fired == [11]


def test_schedule_at_fraction_of_now_is_coerced_before_validation(engine):
    engine.schedule(10, lambda: None)
    engine.run()
    assert engine.now == 10
    # 9.5 rounds up to exactly now — valid; pre-coercion validation would
    # have rejected it as "in the past".
    event = engine.schedule_at(9.5, lambda: None)
    assert event.time == 10
    with pytest.raises(SimulationError):
        engine.schedule_at(8.9, lambda: None)


def test_reschedule_reuses_the_event_object(engine):
    fired = []
    event = engine.schedule(5, lambda: fired.append(engine.now))
    engine.run()
    again = engine.reschedule(event, 12)
    assert again is event
    assert not event.fired
    engine.run()
    assert fired == [5, 12]


def test_reschedule_orders_like_a_fresh_schedule(engine):
    order = []
    event = engine.schedule(1, order.append, "first")
    engine.run()
    engine.schedule_at(10, order.append, "a")
    engine.reschedule(event, 10)
    engine.schedule_at(10, order.append, "b")
    event.args = ("recycled",)
    engine.run()
    assert order == ["first", "a", "recycled", "b"]


def test_reschedule_rejects_pending_and_cancelled_events(engine):
    pending = engine.schedule(5, lambda: None)
    with pytest.raises(SimulationError):
        engine.reschedule(pending, 10)
    pending.cancel()
    with pytest.raises(SimulationError):
        engine.reschedule(pending, 10)

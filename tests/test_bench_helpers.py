"""Bench harness helpers: formatting and shared scenarios."""


from repro.bench.report import format_series, format_table
from repro.bench.scenarios import (
    LISTING2_SPEC,
    bucket_series,
    build_storage_kernel,
)
from repro.sim.metrics import TimeSeries


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "long-name" in lines[3]

    def test_title_prepended(self):
        text = format_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.12345], [1e9], [1e-9]])
        assert "0.123" in text
        assert "1e+09" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestFormatSeries:
    def test_points_per_line(self):
        pairs = [(i, float(i)) for i in range(10)]
        text = format_series("s", pairs, unit="us", points_per_line=4)
        lines = text.splitlines()
        assert lines[0] == "s (us)"
        assert len(lines) == 1 + 3  # 4 + 4 + 2 points

    def test_empty_series(self):
        assert format_series("s", []) == "s"


def test_bucket_series_means():
    series = TimeSeries("x")
    for t, v in [(0, 2.0), (5, 4.0), (10, 10.0), (19, 20.0), (30, 1.0)]:
        series.append(t, v)
    assert bucket_series(series, 10) == [(0, 3.0), (1, 15.0), (3, 1.0)]


def test_build_storage_kernel_shape():
    kernel, devices, volume = build_storage_kernel(seed=3, replicas=2)
    assert len(devices) == 2
    assert kernel.subsystem("storage") is volume
    assert "false_submit_rate" in kernel.store


def test_listing2_spec_matches_paper_text():
    # The exact constants from the paper's Listing 2.
    assert "TIMER(start_time, 1e9)" in LISTING2_SPEC
    assert "LOAD(false_submit_rate) <= 0.05" in LISTING2_SPEC
    assert "SAVE(ml_enabled, false)" in LISTING2_SPEC
    assert "// Periodically check every 1s." in LISTING2_SPEC

"""Deterministic fault injection against slots and the feature store."""

import math

import pytest

from repro.core.errors import ActionError, FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, InjectedFault
from repro.kernel.storage import PickDecision
from repro.sim.units import SECOND
from repro.trace.tracer import tracing


@pytest.fixture
def slotted_host(host):
    host.functions.register("policy", lambda: PickDecision(0, inference_ns=100))
    return host


def install(host, *flags, seed=0):
    return FaultInjector(host, FaultPlan.from_flags(flags, seed=seed)).install()


def test_raise_fault_only_inside_window(slotted_host):
    injector = install(slotted_host, "raise@policy:start=2,stop=4")
    slot = slotted_host.functions.slot("policy")
    assert slot().index == 0                   # t=0: before the window
    slotted_host.engine.run(until=3 * SECOND)
    with pytest.raises(InjectedFault):
        slot()
    slotted_host.engine.run(until=5 * SECOND)
    assert slot().index == 0                   # window closed again
    assert injector.injected_count == 1


def test_nan_fault_skips_the_inner_policy(slotted_host):
    calls = []
    slotted_host.functions.slot("policy").current = (
        lambda: calls.append(1) or PickDecision(0))
    install(slotted_host, "nan@policy")
    result = slotted_host.functions.slot("policy")()
    assert isinstance(result, float) and math.isnan(result)
    assert not calls


def test_stall_fault_inflates_inference_ns(slotted_host):
    install(slotted_host, "stall@policy:latency_us=900")
    result = slotted_host.functions.slot("policy")()
    assert result.index == 0                   # decision still served
    assert result.inference_ns == 100 + 900_000


def test_count_caps_total_injections(slotted_host):
    injector = install(slotted_host, "raise@policy:count=2")
    slot = slotted_host.functions.slot("policy")
    for _ in range(2):
        with pytest.raises(InjectedFault):
            slot()
    assert slot().index == 0
    assert injector.injected_count == 2


def test_probability_draws_are_reproducible():
    def run(seed):
        from repro.core.host import MonitorHost

        host = MonitorHost()
        host.functions.register("policy", lambda: PickDecision(0))
        injector = install(host, "raise@policy:p=0.4", seed=seed)
        fired = []
        for i in range(50):
            try:
                host.functions.slot("policy")()
            except InjectedFault:
                fired.append(i)
        return fired, injector.injected_count

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_stale_store_fault_freezes_window_start_value(kernel):
    kernel.store.save("metric", 10)
    FaultInjector(kernel, FaultPlan.from_flags(
        ["stale@metric:start=2,stop=5"])).install()
    kernel.engine.schedule_at(1 * SECOND, kernel.store.save, "metric", 20)
    kernel.engine.schedule_at(3 * SECOND, kernel.store.save, "metric", 30)
    kernel.engine.run(until=3 * SECOND)
    assert kernel.store.load("metric") == 20   # frozen at the t=2s snapshot
    kernel.engine.run(until=6 * SECOND)
    assert kernel.store.load("metric") == 30   # live again after the window


def test_corrupt_store_fault_serves_nan(kernel):
    kernel.store.save("metric", 10)
    injector = FaultInjector(kernel, FaultPlan.from_flags(
        ["corrupt@metric:stop=1"])).install()
    assert math.isnan(kernel.store.load("metric"))
    assert kernel.store.load("other", default=4) == 4   # untargeted keys live
    kernel.engine.run(until=2 * SECOND)
    assert kernel.store.load("metric") == 10
    assert injector.injected_by_kind == {"corrupt": 1}


def test_unknown_slot_target_fails_at_install(host):
    with pytest.raises(ActionError, match="unknown function slot"):
        install(host, "raise@no.such.slot")


def test_double_install_rejected(slotted_host):
    injector = FaultInjector(slotted_host,
                             FaultPlan.from_flags(["raise@policy"]))
    injector.install()
    with pytest.raises(FaultError, match="already installed"):
        injector.install()


def test_injections_emit_fault_trace_events(slotted_host):
    install(slotted_host, "raise@policy")
    with tracing() as tracer:
        with pytest.raises(InjectedFault):
            slotted_host.functions.slot("policy")()
    events = tracer.events(category="fault")
    assert [e.name for e in events] == ["raise"]
    assert events[0].args == {"target": "policy"}


def test_stats_shape(slotted_host):
    injector = install(slotted_host, "raise@policy:count=1", "nan@policy")
    slot = slotted_host.functions.slot("policy")
    with pytest.raises(InjectedFault):
        slot()
    slot()
    stats = injector.stats()
    assert stats["injected"] == 2
    assert stats["by_kind"] == {"nan": 1, "raise": 1}
    assert stats["per_fault"] == {"raise@policy": 1, "nan@policy": 1}
    assert stats["log_dropped"] == 0

"""Circuit breakers, monitor supervision, and policy-slot supervision."""

import pytest

from repro.core.compiler import GuardrailCompiler
from repro.faults.supervisor import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
    PolicySupervisor,
    make_pick_validator,
)
from repro.kernel.storage import PickDecision
from repro.sim.units import SECOND

# -- CircuitBreaker ---------------------------------------------------------


def test_breaker_trips_on_consecutive_failures_only():
    breaker = CircuitBreaker("b", BreakerConfig(crash_threshold=3))
    assert not breaker.record_failure(1)
    assert not breaker.record_failure(2)
    breaker.record_success(3)                 # streak broken
    assert not breaker.record_failure(4)
    assert not breaker.record_failure(5)
    assert breaker.record_failure(6)          # third consecutive
    assert breaker.state == STATE_OPEN
    assert breaker.reopen_at == 6 + breaker.config.base_backoff_ns


def test_breaker_half_open_probe_outcomes():
    config = BreakerConfig(crash_threshold=1, base_backoff_ns=100,
                           backoff_factor=2.0, max_backoff_ns=350)
    breaker = CircuitBreaker("b", config)
    breaker.record_failure(0)                 # trip; backoff 100
    breaker.rearm(100)
    assert breaker.state == STATE_HALF_OPEN
    breaker.record_failure(101)               # probe fails: backoff doubles
    assert breaker.state == STATE_OPEN
    assert breaker.backoff_ns == 200
    assert breaker.reopen_at == 301
    breaker.rearm(301)
    breaker.record_failure(302)
    assert breaker.backoff_ns == 350          # capped at max_backoff_ns
    breaker.rearm(652)
    assert breaker.record_success(653)        # probe passes: close + reset
    assert breaker.state == STATE_CLOSED
    assert breaker.backoff_ns == 100
    assert [(t["from"], t["to"]) for t in breaker.transitions] == [
        ("closed", "open"), ("open", "half_open"), ("half_open", "open"),
        ("open", "half_open"), ("half_open", "open"), ("open", "half_open"),
        ("half_open", "closed"),
    ]


def test_breaker_rearm_is_a_noop_unless_open():
    breaker = CircuitBreaker("b")
    breaker.rearm(5)
    assert breaker.state == STATE_CLOSED
    assert breaker.transitions == []


# -- MonitorSupervisor (driven through a real guardrail) --------------------

CRASHY = """
guardrail crashy {
  trigger: { TIMER(start_time, 1s) },
  rule: { LOAD(metric) <= 10 },
  action: { REPORT() }
}
"""


def load_crashy(host):
    # Corrupt *values* already read as missing data in the expression layer;
    # the rule-crash path exists for arbitrary failures underneath a LOAD —
    # here, a store backend that raises on every read until repaired.
    monitor = GuardrailCompiler().compile(CRASHY).instantiate(host)
    monitor.arm()
    inner_load, backend = host.store.load, {"broken": True}

    def flaky_load(key, default=None):
        if backend["broken"]:
            raise RuntimeError("store backend failure")
        return inner_load(key, default)

    host.store.load = flaky_load
    return monitor, backend


def test_monitor_breaker_trips_disarms_and_rearms(host):
    monitor, backend = load_crashy(host)
    host.engine.run(until=3 * SECOND + 1)
    # Crashes at t=1,2,3s: the third consecutive crash trips the breaker.
    breaker = host.supervisor.breaker("crashy")
    assert breaker.state == STATE_OPEN
    assert not monitor.enabled
    assert monitor.rule_crash_count == 3
    # Re-arm at trip + 1s backoff; the next (half-open probe) check is one
    # timer interval later and crashes again, doubling the backoff.
    host.engine.run(until=5 * SECOND + 1)
    assert breaker.state == STATE_OPEN
    assert breaker.backoff_ns == 2 * SECOND
    assert [(t["time"], t["from"], t["to"]) for t in breaker.transitions] == [
        (3 * SECOND, "closed", "open"),
        (4 * SECOND, "open", "half_open"),
        (5 * SECOND, "half_open", "open"),
    ]
    # Repair the backend before the next probe: the crash-free check closes
    # the breaker and the monitor keeps running.
    backend["broken"] = False
    host.store.save("metric", 5)
    host.engine.run(until=8 * SECOND + 1)
    assert breaker.state == STATE_CLOSED
    assert monitor.enabled
    assert host.reporter.notes_for(kind="BREAKER_CLOSE")


def test_monitor_supervisor_accounts_suppressed_crashes(host):
    load_crashy(host)
    host.engine.run(until=2 * SECOND + 1)
    stats = host.supervisor.stats()
    assert stats["rule_crashes"] == 2
    assert stats["suppressed"] == 2
    assert stats["breakers"]["crashy"]["state"] == STATE_CLOSED
    notes = host.reporter.notes_for(kind="RULE_CRASH")
    assert len(notes) == 2
    assert "RuntimeError" in notes[0]["detail"]


def test_contain_false_restores_the_pre_fix_crash(host):
    # The escape hatch reproduces the original bug: without containment a
    # crashing rule evaluation aborts the whole simulation run.
    host.supervisor.contain = False
    load_crashy(host)
    with pytest.raises(RuntimeError, match="store backend failure"):
        host.engine.run(until=2 * SECOND)


# -- make_pick_validator ----------------------------------------------------


def test_pick_validator_accepts_sane_decisions():
    validate = make_pick_validator(3)
    assert validate(PickDecision(0)) is None
    assert validate(PickDecision(2, inference_ns=500)) is None


@pytest.mark.parametrize("decision, fragment", [
    (float("nan"), "bad replica index"),
    (PickDecision(3), "bad replica index"),
    (PickDecision(-1), "bad replica index"),
    (PickDecision(True), "bad replica index"),
    (PickDecision(1, inference_ns=float("nan")), "bad inference_ns"),
    (PickDecision(1, inference_ns=-5), "bad inference_ns"),
])
def test_pick_validator_rejects_garbage(decision, fragment):
    assert fragment in make_pick_validator(3)(decision)


# -- PolicySupervisor -------------------------------------------------------


class FlakyPolicy:
    """Scriptable inner policy: raise / return garbage / stall on demand."""

    def __init__(self):
        self.mode = "ok"
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.mode == "raise":
            raise ValueError("synthetic policy crash")
        if self.mode == "garbage":
            return PickDecision(99)
        if self.mode == "stall":
            return PickDecision(0, inference_ns=5_000_000)
        return PickDecision(0, inference_ns=100)


@pytest.fixture
def supervised(host):
    flaky = FlakyPolicy()
    host.functions.register("pol", flaky)
    host.functions.register_implementation("fallback",
                                           lambda: PickDecision(1))
    supervisor = PolicySupervisor(
        host, "pol", "fallback",
        config=BreakerConfig(crash_threshold=3, base_backoff_ns=1 * SECOND),
        validator=make_pick_validator(3), slow_call_ns=1_000_000)
    return host, flaky, supervisor


def test_crash_served_by_fallback_per_call(supervised):
    host, flaky, supervisor = supervised
    flaky.mode = "raise"
    result = host.functions.slot("pol")()
    assert result.index == 1                   # the fallback's answer
    assert supervisor.crash_count == 1
    assert supervisor.fallback_call_count == 1
    assert supervisor.breaker.state == STATE_CLOSED
    assert host.reporter.notes_for(kind="POLICY_CRASH")


def test_garbage_output_served_by_fallback(supervised):
    host, flaky, supervisor = supervised
    flaky.mode = "garbage"
    assert host.functions.slot("pol")().index == 1
    assert supervisor.invalid_output_count == 1
    assert host.reporter.notes_for(kind="POLICY_GARBAGE")


def test_slow_call_is_served_but_counted(supervised):
    host, flaky, supervisor = supervised
    flaky.mode = "stall"
    result = host.functions.slot("pol")()
    assert result.index == 0                   # stalled decision still used
    assert supervisor.slow_call_count == 1
    assert host.reporter.notes_for(kind="POLICY_STALL")


def test_success_resets_the_failure_streak(supervised):
    host, flaky, supervisor = supervised
    slot = host.functions.slot("pol")
    for _ in range(2):
        flaky.mode = "raise"
        slot()
        flaky.mode = "ok"
        slot()
    assert supervisor.breaker.state == STATE_CLOSED
    assert supervisor.replace_count == 0


def test_trip_replaces_via_the_a2_path_and_rearms(supervised):
    host, flaky, supervisor = supervised
    slot = host.functions.slot("pol")
    flaky.mode = "raise"
    for _ in range(3):
        slot()
    # Tripped: the slot now holds the registered fallback implementation,
    # swapped through ReplaceAction (same REPLACE note a guardrail makes).
    assert supervisor.replace_count == 1
    assert slot.current is host.functions.resolve_implementation("fallback")
    assert slot.swap_count == 1
    replace_notes = host.reporter.notes_for(kind="REPLACE")
    assert replace_notes[0]["guardrail"] == "supervisor:pol"
    assert "pol -> fallback" in replace_notes[0]["detail"]
    inner_calls = flaky.calls
    slot()                                     # served by the fallback only
    assert flaky.calls == inner_calls
    # Virtual-time re-arm: the supervisor rebinds itself as the probe path.
    host.engine.run(until=1 * SECOND + 1)
    assert supervisor.breaker.state == STATE_HALF_OPEN
    assert slot.current is supervisor
    flaky.mode = "ok"
    assert slot().index == 0                   # probe passes
    assert supervisor.breaker.state == STATE_CLOSED
    assert host.reporter.notes_for(kind="BREAKER_CLOSE")


def test_failed_probe_doubles_backoff_and_replaces_again(supervised):
    host, flaky, supervisor = supervised
    slot = host.functions.slot("pol")
    flaky.mode = "raise"
    for _ in range(3):
        slot()
    host.engine.run(until=1 * SECOND + 1)      # half-open
    slot()                                     # probe crashes
    assert supervisor.breaker.state == STATE_OPEN
    assert supervisor.breaker.backoff_ns == 2 * SECOND
    assert supervisor.replace_count == 2
    assert supervisor.breaker.reopen_at == host.engine.now + 2 * SECOND


def test_stats_shape(supervised):
    _, flaky, supervisor = supervised
    stats = supervisor.stats()
    assert set(stats) == {"slot", "crashes", "invalid_outputs", "slow_calls",
                          "fallback_calls", "replaces", "breaker"}
    assert stats["breaker"]["state"] == STATE_CLOSED

"""The chaos matrix: every fault kind, injected into the demo scenario,
leaves the host running; seeded runs are deterministic; the CLI reports
containment."""

import io
import json

import pytest

from repro.bench.scenarios import run_faults_demo_scenario
from repro.faults.plan import FAULT_KINDS, FaultPlan
from repro.sim.units import SECOND
from repro.tools.grctl import main

# One representative plan per fault kind, all aimed at the demo scenario's
# supervised pick slot / the guardrail's LOAD key.
MATRIX = {
    "raise": "raise@storage.pick_device:start=3,stop=5",
    "nan": "nan@storage.pick_device:start=3,stop=5",
    "stall": "stall@storage.pick_device:start=3,stop=5,latency_us=5000",
    "stale": "stale@io_latency_us.tavg:start=4,stop=8",
    "corrupt": "corrupt@io_latency_us.tavg:start=4,stop=8",
}


def test_matrix_covers_every_fault_kind():
    assert set(MATRIX) == set(FAULT_KINDS)


@pytest.mark.parametrize("kind", sorted(MATRIX))
def test_every_fault_kind_is_contained(kind):
    plan = FaultPlan.from_flags([MATRIX[kind]], seed=11)
    result = run_faults_demo_scenario(duration_s=10, fault_plan=plan)
    # The run completed: the workload kept flowing to the end.
    assert result.completed > 1000
    assert result.kernel.now == 10 * SECOND
    assert result.injector.injected_by_kind.get(kind, 0) > 0
    # Policy faults are absorbed by the supervisor; store faults surface as
    # inconclusive/violating checks — either way nothing escaped.
    stats = result.stats()
    if kind in ("raise", "nan", "stall"):
        counter = {"raise": "crashes", "nan": "invalid_outputs",
                   "stall": "slow_calls"}[kind]
        assert stats["policy"][counter] > 0
    else:
        assert stats["guardrail"]["checks"] == 10


def test_crash_plan_trips_and_rearms_deterministically():
    def run():
        plan = FaultPlan.from_flags([MATRIX["raise"]], seed=11)
        result = run_faults_demo_scenario(duration_s=10, fault_plan=plan)
        breaker = result.policy_supervisor.breaker
        return (breaker.snapshot(), result.injector.injected,
                result.completed)

    first, second = run(), run()
    assert first == second
    snapshot, injected, _completed = first
    assert snapshot["trips"] >= 1
    transitions = snapshot["transitions"]
    # The breaker tripped inside the fault window and scheduled its re-arm
    # exactly one base backoff later — virtual time, so exact.
    trip, rearm = transitions[0], transitions[1]
    assert (trip["from"], trip["to"]) == ("closed", "open")
    assert (rearm["from"], rearm["to"]) == ("open", "half_open")
    assert 3 * SECOND <= trip["time"] < 5 * SECOND
    assert rearm["time"] == trip["time"] + 1 * SECOND
    assert all(3 * SECOND <= e["time"] < 5 * SECOND for e in injected)


def test_clean_run_matches_with_and_without_injector_installed():
    # An installed plan whose windows never open must not perturb the run:
    # same seed, same completions, same latency series.
    clean = run_faults_demo_scenario(duration_s=6)
    armed = run_faults_demo_scenario(
        duration_s=6,
        fault_plan=FaultPlan.from_flags(["raise@storage.pick_device:start=99"],
                                        seed=11))
    assert armed.injector.injected_count == 0
    assert armed.completed == clean.completed
    assert (armed.kernel.metrics.series("storage.io_latency_us").values
            == clean.kernel.metrics.series("storage.io_latency_us").values)


# -- the grctl faults CLI ---------------------------------------------------


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_list_names_every_kind():
    code, output = run_cli(["faults", "--list"])
    assert code == 0
    for kind in FAULT_KINDS:
        assert kind in output


def test_cli_contained_run_reports_breaker_timeline(tmp_path):
    accounting = tmp_path / "faults.json"
    code, output = run_cli([
        "faults", "--fault", MATRIX["raise"], "--seed", "11",
        "--duration", "8", "--json", str(accounting)])
    assert code == 0
    assert "injected:" in output
    assert "closed -> open" in output
    assert "contained:" in output
    data = json.loads(accounting.read_text())
    assert data["policy"]["breaker"]["trips"] >= 1
    assert data["injected"]["by_kind"]["raise"] > 0


def test_cli_plan_file_round_trip(tmp_path):
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(
        FaultPlan.from_flags([MATRIX["corrupt"]], seed=3).to_json())
    code, output = run_cli(["faults", "--plan", str(plan_path),
                            "--duration", "9"])
    assert code == 0
    assert "contained:" in output


def test_cli_usage_errors_exit_2(tmp_path):
    assert run_cli(["faults", "--fault", "explode@slot"])[0] == 2
    assert run_cli(["faults", "--fault", "raise@no.such.slot"])[0] == 2
    assert run_cli(["faults", "--plan", str(tmp_path / "missing.json")])[0] == 2
    assert run_cli(["faults", "--fault", "raise@x", "--plan", "y"])[0] == 2
    assert run_cli(["faults", "--threshold", "0"])[0] == 2

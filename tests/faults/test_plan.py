"""Fault plans: spec validation, the --fault grammar, JSON round-trips."""

import pytest

from repro.core.errors import FaultError
from repro.faults.plan import (
    FAULT_KINDS,
    POLICY_KINDS,
    STORE_KINDS,
    FaultPlan,
    FaultSpec,
    parse_fault_flag,
)
from repro.sim.units import SECOND


def test_every_kind_is_policy_or_store():
    assert set(POLICY_KINDS) | set(STORE_KINDS) == set(FAULT_KINDS)
    assert not set(POLICY_KINDS) & set(STORE_KINDS)


def test_unknown_kind_rejected():
    with pytest.raises(FaultError, match="unknown fault kind"):
        FaultSpec("explode", "storage.pick_device")


def test_stall_requires_latency():
    with pytest.raises(FaultError, match="latency_us"):
        FaultSpec("stall", "storage.pick_device")
    spec = FaultSpec("stall", "storage.pick_device", latency_us=500)
    assert spec.latency_ns == 500_000


@pytest.mark.parametrize("probability", [0.0, -0.1, 1.5])
def test_probability_bounds(probability):
    with pytest.raises(FaultError, match="probability"):
        FaultSpec("raise", "slot", probability=probability)


def test_empty_window_rejected():
    with pytest.raises(FaultError, match="window is empty"):
        FaultSpec("raise", "slot", start_s=5, stop_s=5)


def test_active_window_semantics():
    spec = FaultSpec("raise", "slot", start_s=2, stop_s=4)
    assert not spec.active(0)
    assert spec.active(2 * SECOND)
    assert spec.active(4 * SECOND - 1)
    assert not spec.active(4 * SECOND)
    open_ended = FaultSpec("raise", "slot", start_s=1)
    assert open_ended.active(10**15)


def test_parse_fault_flag_full_grammar():
    spec = parse_fault_flag(
        "stall@storage.pick_device:start=3,stop=9,p=0.25,count=7,"
        "latency_us=1500")
    assert spec.kind == "stall"
    assert spec.target == "storage.pick_device"
    assert spec.start_ns == 3 * SECOND
    assert spec.stop_ns == 9 * SECOND
    assert spec.probability == 0.25
    assert spec.count == 7
    assert spec.latency_ns == 1_500_000


def test_parse_fault_flag_bare():
    spec = parse_fault_flag("nan@storage.pick_device")
    assert spec.kind == "nan"
    assert spec.start_ns == 0
    assert spec.stop_ns is None


@pytest.mark.parametrize("text", [
    "raise",                        # no @TARGET
    "raise@slot:bogus=1",           # unknown option key
    "raise@slot:start",             # no value
    "raise@slot:count=many",        # uncoercible value
])
def test_parse_fault_flag_rejects_bad_input(text):
    with pytest.raises(FaultError):
        parse_fault_flag(text)


def test_plan_round_trips_through_json():
    plan = FaultPlan.from_flags(
        ["raise@storage.pick_device:start=6,stop=9",
         "corrupt@false_submit_rate:start=6,p=0.5",
         "stall@storage.pick_device:latency_us=800,count=3"],
        seed=11)
    rebuilt = FaultPlan.from_json(plan.to_json())
    assert rebuilt.to_dict() == plan.to_dict()
    assert rebuilt.seed == 11
    assert [spec.index for spec in rebuilt] == [0, 1, 2]


def test_plan_groups_by_target_kind():
    plan = FaultPlan.from_flags(
        ["raise@slot.a", "nan@slot.a", "stale@key.b", "corrupt@key.c"])
    assert set(plan.policy_faults()) == {"slot.a"}
    assert len(plan.policy_faults()["slot.a"]) == 2
    assert set(plan.store_faults()) == {"key.b", "key.c"}


def test_plan_rejects_unknown_fields():
    with pytest.raises(FaultError, match="unknown fault-plan field"):
        FaultPlan.from_json('{"seed": 1, "surprise": true}')
    with pytest.raises(FaultError, match="unknown fault field"):
        FaultPlan.from_json(
            '{"faults": [{"kind": "raise", "target": "s", "when": 3}]}')

"""Calibration: the committed gate defaults are reproducible arithmetic.

Everything here replays the committed full-tier baseline document —
no simulation — so these tests also pin the baseline itself: if
``EVAL_baseline.json`` is regenerated with different behaviour, the
feasible bands move and the defaults stop being self-reproducing.
"""

import copy
import os

import pytest

from repro.eval.calibrate import (
    AXIS_BY_FAULT_KIND,
    calibrate,
    compare_configs,
    evaluate_config,
)
from repro.eval.episodes import fleet_verdict
from repro.eval.results import load_document
from repro.fleet.rollout import GateConfig

BASELINE = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "EVAL_baseline.json")

#: The pre-calibration default that false-tripped six clean full-fleet
#: rollouts (including seed 7) on p95 latency noise.
OLD_GATE = GateConfig(max_p95_ratio=1.75)


@pytest.fixture(scope="module")
def document():
    return load_document(BASELINE)


def fleet_results(document):
    return [r for r in document["episodes"] if r["kind"] == "fleet"]


class TestCalibrate:
    def test_committed_defaults_are_self_reproducing(self, document):
        report = calibrate(document)
        assert not report["changed"]
        assert report["recommended"] == GateConfig().to_dict()
        for axis, band in report["axes"].items():
            assert band["how"].startswith("kept"), (axis, band["how"])
            # The band is feasible: noise ceiling under signal floor.
            assert band["clean_max"] < band["fault_min"]
        assert report["verification"]["passed"]
        assert report["verification"]["clean_trips"] == 0
        assert report["verification"]["missed_faults"] == 0

    def test_calibrating_the_old_gate_reproduces_the_defaults(self, document):
        # The committed defaults are not hand-tuned: starting from the
        # miscalibrated pre-PR config lands exactly on them.
        report = calibrate(document, current=OLD_GATE)
        assert report["changed"]
        assert report["recommended"] == GateConfig().to_dict()
        assert report["axes"]["p95"]["how"] == \
            "recalibrated to the band log-midpoint"
        assert report["verification"]["passed"]

    def test_operating_curve_is_monotone(self, document):
        report = calibrate(document)
        for band in report["axes"].values():
            curve = band["operating_curve"]
            trips = [point["clean_false_trips"] for point in curve]
            misses = [point["fault_misses"] for point in curve]
            assert trips == sorted(trips, reverse=True)
            assert misses == sorted(misses)
            # Endpoints: the loosest threshold misses every fault, and
            # some threshold separates perfectly (the band is feasible).
            assert misses[-1] == band["fault_episodes"]
            assert any(point["clean_false_trips"] == 0
                       and point["fault_misses"] == 0 for point in curve)

    def test_stripped_stages_fail_loudly(self, document):
        doctored = copy.deepcopy(document)
        for result in fleet_results(doctored):
            result["stages"] = []
        with pytest.raises(ValueError, match="without recorded stage"):
            calibrate(doctored)


class TestSeedSevenRegression:
    """The motivating bug: seed-7 clean full rollout must not trip."""

    def test_seed7_clean_rollout_allows_under_the_defaults(self, document):
        episode = next(r for r in fleet_results(document)
                       if r["id"] == "fleet-full-clean-s07")
        assert episode["expected"] == "allow"
        verdict = fleet_verdict(GateConfig(), episode["stages"])
        assert verdict["verdict"] == "allow"

    def test_seed7_tripped_under_the_old_gate(self, document):
        episode = next(r for r in fleet_results(document)
                       if r["id"] == "fleet-full-clean-s07")
        verdict = fleet_verdict(OLD_GATE, episode["stages"])
        assert verdict["verdict"] == "trip"
        assert verdict["tripped_axes"] == ["p95"]


class TestEvaluateAndCompare:
    def test_defaults_separate_every_labelled_episode(self, document):
        results = fleet_results(document)
        outcome = evaluate_config(GateConfig(), results)
        assert outcome["passed"]
        assert all(entry["correct"] for entry in outcome["per_episode"])

    def test_old_gate_false_trips_half_the_clean_full_seeds(self, document):
        # The EXPERIMENTS.md numbers: 6 of 12 clean full-fleet seeds
        # false-tripped under max_p95_ratio=1.75, zero under 16.0.
        outcome = evaluate_config(OLD_GATE, fleet_results(document))
        assert outcome["clean_trips"] == 6
        assert outcome["missed_faults"] == 0

    def test_compare_configs_is_deterministic_and_significant(self, document):
        diff = compare_configs(document, OLD_GATE, GateConfig())
        again = compare_configs(document, OLD_GATE, GateConfig())
        assert diff == again
        assert diff["b"]["correct"] == diff["n"]
        assert diff["a"]["correct"] == diff["n"] - 6
        assert diff["p_value"] < 0.05

    def test_every_fault_kind_trips_its_constructed_axis(self, document):
        for result in fleet_results(document):
            if not result["fault_hosts"]:
                continue
            verdict = fleet_verdict(GateConfig(), result["stages"])
            assert verdict["verdict"] == "trip", result["id"]
            assert AXIS_BY_FAULT_KIND[result["fault_kind"]] in \
                verdict["tripped_axes"], result["id"]

"""Episode semantics: verdict rules and offline-gate exactness."""

import pytest

from repro.eval.episodes import (
    EXPECTED_BY_REGIME,
    HOST_FAMILIES,
    fleet_verdict,
    gate_trip_axes,
    run_fleet_episode,
    run_host_episode,
)
from repro.fleet.rollout import GateConfig


class TestHostEpisodes:
    def test_clean_regime_allows(self):
        outcome = run_host_episode("P1", "clean", 11)
        assert outcome["verdict"] == "allow"
        assert outcome["violations"] == 0
        assert outcome["inconclusive"] == 0
        assert outcome["checks"] > 0

    def test_faulty_regime_trips_and_dispatches(self):
        outcome = run_host_episode("P1", "faulty", 11)
        assert outcome["verdict"] == "trip"
        assert outcome["violations"] > 0
        assert outcome["actions_dispatched"] > 0

    def test_blinded_regime_is_inconclusive_not_a_trip(self):
        # The corrupt fault NaNs the watched key: the rule runtime must
        # report "cannot evaluate", never a violation.
        outcome = run_host_episode("P3", "blinded", 11)
        assert outcome["verdict"] == "inconclusive"
        assert outcome["violations"] == 0
        assert outcome["inconclusive"] > 0

    def test_a4_family_dispatches_deprioritize_once_under_cooldown(self):
        outcome = run_host_episode("A4", "faulty", 11)
        assert outcome["verdict"] == "trip"
        assert outcome["action"] == "A4"
        assert outcome["actions_dispatched"] == 1

    def test_deterministic_for_a_seed(self):
        assert run_host_episode("P4", "faulty", 11) == \
            run_host_episode("P4", "faulty", 11)

    def test_every_family_meets_its_label(self):
        for family in HOST_FAMILIES:
            for regime, expected in EXPECTED_BY_REGIME.items():
                outcome = run_host_episode(family, regime, 12)
                assert outcome["verdict"] == expected, \
                    (family, regime, outcome)

    def test_unknown_family_and_regime_rejected(self):
        with pytest.raises(ValueError, match="unknown host episode family"):
            run_host_episode("P9", "clean", 1)
        with pytest.raises(ValueError, match="unknown regime"):
            run_host_episode("P1", "spicy", 1)


class TestOfflineGate:
    def test_gate_trip_axes_mirrors_gate_config(self):
        gate = GateConfig(max_violation_rate_delta=0.5,
                          max_inconclusive_rate_delta=0.5,
                          max_p95_ratio=2.0, min_checks=4)
        base = {"violation_rate_delta": 0.0, "inconclusive_rate_delta": 0.0,
                "p95_ratio": 1.0, "checks": 10}
        assert gate_trip_axes(gate, base) == []
        assert gate_trip_axes(gate, dict(base, p95_ratio=2.1)) == ["p95"]
        assert gate_trip_axes(
            gate, dict(base, violation_rate_delta=0.6,
                       inconclusive_rate_delta=0.6)) == \
            ["violation", "inconclusive"]
        # Below the sample floor nothing trips (insufficient data passes).
        assert gate_trip_axes(
            gate, dict(base, p95_ratio=99.0, checks=3)) == []
        # A dark baseline (no p95 ratio) cannot trip the latency axis.
        assert gate_trip_axes(gate, dict(base, p95_ratio=None)) == []

    def test_fleet_verdict_trips_at_the_first_bad_stage(self):
        gate = GateConfig(max_p95_ratio=2.0)
        stages = [
            {"stage": "canary", "measurements": {
                "violation_rate_delta": 0.0, "inconclusive_rate_delta": 0.0,
                "p95_ratio": 1.0, "checks": 10}},
            {"stage": "25%", "measurements": {
                "violation_rate_delta": 0.0, "inconclusive_rate_delta": 0.0,
                "p95_ratio": 3.0, "checks": 10}},
            {"stage": "100%", "measurements": {
                "violation_rate_delta": 9.0, "inconclusive_rate_delta": 0.0,
                "p95_ratio": 1.0, "checks": 10}},
        ]
        verdict = fleet_verdict(gate, stages)
        assert verdict == {"verdict": "trip", "tripped_stage": "25%",
                           "tripped_axes": ["p95"]}
        assert fleet_verdict(GateConfig(max_p95_ratio=99.0,
                                        max_violation_rate_delta=99.0),
                             stages)["verdict"] == "allow"


class TestFleetEpisodes:
    """Offline replay must agree exactly with a live gated rollout.

    A gate only halts a rollout — it never perturbs the simulation — so
    the permissive-gate recording replays any candidate config exactly.
    """

    def test_faulted_episode_matches_live_rollout(self):
        from repro.fleet.scenario import run_fleet_rollout

        live = run_fleet_rollout(hosts=4, seed=42, fault_hosts=1,
                                 fault_kind="corrupt", quick=True)
        episode = run_fleet_episode(4, 42, 1, "corrupt", True)
        assert live["status"] == "rolled_back"
        assert episode["verdict"] == "trip"
        assert episode["tripped_stage"] == live["rolled_back_at_stage"]
        assert episode["tripped_axes"] == ["inconclusive"]
        # The stages the live run executed have byte-identical
        # measurements in the permissive recording.
        for live_stage, recorded in zip(live["stages"], episode["stages"]):
            assert live_stage["gate"]["measurements"] == \
                recorded["measurements"]
            assert live_stage["gate"]["passed"] == \
                (gate_trip_axes(GateConfig(),
                                recorded["measurements"]) == [])

    def test_clean_episode_matches_live_rollout(self):
        from repro.fleet.scenario import run_fleet_rollout

        live = run_fleet_rollout(hosts=4, seed=42, quick=True)
        episode = run_fleet_episode(4, 42, 0, None, True)
        assert live["status"] == "completed"
        assert episode["verdict"] == "allow"
        assert len(episode["stages"]) == len(live["stages"])
        for live_stage, recorded in zip(live["stages"], episode["stages"]):
            assert live_stage["gate"]["measurements"] == \
                recorded["measurements"]

"""Scorer math: Wilson edges, permutation determinism, confusion counts."""

import math

import pytest

from repro.eval.stats import (
    paired_permutation_pvalue,
    precision_recall_f1,
    wilson_interval,
)


class TestWilson:
    def test_n_zero_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_n_one_success(self):
        lo, hi = wilson_interval(1, 1)
        assert 0.0 < lo < 1.0
        assert hi == 1.0

    def test_n_one_failure(self):
        lo, hi = wilson_interval(0, 1)
        assert lo == 0.0
        assert 0.0 < hi < 1.0

    def test_zero_of_twelve_matches_hand_computation(self):
        # The EXPERIMENTS.md cell: 0 false trips on 12 clean seeds.
        lo, hi = wilson_interval(0, 12)
        assert lo == 0.0
        z = 1.96
        expected_hi = (z * z / 12) / (1.0 + z * z / 12)
        assert hi == pytest.approx(expected_hi)
        assert hi == pytest.approx(0.2425, abs=1e-4)

    def test_interval_contains_the_point_estimate(self):
        for successes, n in ((3, 10), (9, 10), (50, 100), (1, 2)):
            lo, hi = wilson_interval(successes, n)
            assert lo < successes / n < hi

    def test_symmetry(self):
        lo_a, hi_a = wilson_interval(3, 10)
        lo_b, hi_b = wilson_interval(7, 10)
        assert lo_a == pytest.approx(1.0 - hi_b)
        assert hi_a == pytest.approx(1.0 - lo_b)

    def test_narrows_with_n(self):
        widths = [hi - lo for lo, hi in
                  (wilson_interval(n // 2, n) for n in (4, 16, 64, 256))]
        assert widths == sorted(widths, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(-1, 5)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)


class TestPermutation:
    def test_deterministic_for_a_seed(self):
        a = [1, 1, 1, 0, 1, 1]
        b = [1, 0, 0, 0, 1, 0]
        p1 = paired_permutation_pvalue(a, b, seed=7)
        p2 = paired_permutation_pvalue(a, b, seed=7)
        assert p1 == p2

    def test_seed_changes_the_draw(self):
        a = [1, 1, 1, 0, 1, 1, 1, 0]
        b = [1, 0, 0, 0, 1, 0, 0, 0]
        assert paired_permutation_pvalue(a, b, seed=1) != \
            paired_permutation_pvalue(a, b, seed=2)

    def test_identical_samples_give_p_one(self):
        assert paired_permutation_pvalue([1, 0, 1], [1, 0, 1]) == 1.0

    def test_never_reports_zero(self):
        # Smoothing: even a maximal difference keeps p >= 1/(rounds+1).
        p = paired_permutation_pvalue([1] * 20, [0] * 20, rounds=100)
        assert p >= 1 / 101

    def test_large_consistent_difference_is_significant(self):
        p = paired_permutation_pvalue([1] * 12, [0] * 12)
        assert p < 0.05

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_permutation_pvalue([1, 0], [1])


class TestPrecisionRecallF1:
    def test_hand_built_confusion(self):
        scores = precision_recall_f1(tp=8, fp=2, fn=4)
        assert scores["precision"] == pytest.approx(0.8)
        assert scores["recall"] == pytest.approx(8 / 12)
        expected_f1 = 2 * 0.8 * (8 / 12) / (0.8 + 8 / 12)
        assert scores["f1"] == pytest.approx(expected_f1)

    def test_zero_denominators(self):
        assert precision_recall_f1(0, 0, 0) == {
            "precision": 0.0, "recall": 0.0, "f1": 0.0}
        assert precision_recall_f1(0, 3, 0)["precision"] == 0.0
        assert precision_recall_f1(0, 0, 3)["recall"] == 0.0

    def test_perfect(self):
        scores = precision_recall_f1(10, 0, 0)
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_f1(-1, 0, 0)

    def test_f1_is_finite(self):
        assert not math.isnan(precision_recall_f1(1, 1, 1)["f1"])

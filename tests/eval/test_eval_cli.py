"""grctl eval: exit codes, JSON byte-identity, baseline gating."""

import io
import json

import pytest

from repro.tools.grctl import main

SUBSET_ARGS = ["--id", "host-P1-clean-s11", "--id", "host-P2-faulty-s11"]


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_check_dataset_passes_on_the_committed_dataset():
    code, stdout = run(["eval", "--check-dataset"])
    assert code == 0
    assert "dataset: ok" in stdout
    assert "episode(s)" in stdout


def test_run_json_is_byte_identical_across_jobs():
    code_a, json_a = run(["eval", "run", "--quick", "--json", "--jobs", "1"]
                         + SUBSET_ARGS)
    code_b, json_b = run(["eval", "run", "--quick", "--json", "--jobs", "2"]
                         + SUBSET_ARGS)
    assert code_a == code_b == 0
    assert json_a == json_b
    document = json.loads(json_a)
    assert document["schema"] == "repro-eval/v1"
    assert "jobs" not in document  # nothing operational in the bytes


def test_run_out_writes_the_same_bytes(tmp_path):
    path = str(tmp_path / "EVAL.json")
    code, stdout = run(["eval", "run", "--quick", "--json", "--out", path]
                       + SUBSET_ARGS)
    assert code == 0
    with open(path) as handle:
        assert handle.read() == stdout


def test_human_rendering_reports_accuracy():
    code, stdout = run(["eval", "run", "--quick"] + SUBSET_ARGS)
    assert code == 0
    assert "accuracy" in stdout
    assert "2/2" in stdout


@pytest.fixture(scope="module")
def subset_document(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("eval") / "EVAL.json")
    code, _ = run(["eval", "run", "--quick", "--json", "--out", path]
                  + SUBSET_ARGS)
    assert code == 0
    return path


def test_diff_against_the_committed_baseline(subset_document):
    code, stdout = run(["eval", "diff", subset_document,
                        "--baseline", "EVAL_baseline.json"])
    assert code == 0
    assert "baseline gate: ok" in stdout
    assert "0 regression(s)" in stdout


def test_diff_fails_on_a_regression(subset_document, tmp_path):
    with open(subset_document) as handle:
        document = json.load(handle)
    document["episodes"][0]["verdict"] = "trip"
    document["episodes"][0]["correct"] = False
    doctored = tmp_path / "doctored.json"
    doctored.write_text(json.dumps(document))
    code, stdout = run(["eval", "diff", str(doctored),
                        "--baseline", "EVAL_baseline.json"])
    assert code == 1
    assert "REGRESSION" in stdout


def test_run_with_baseline_gates_inline(subset_document):
    code, _ = run(["eval", "run", "--quick",
                   "--baseline", "EVAL_baseline.json"] + SUBSET_ARGS)
    assert code == 0


def test_calibrate_from_the_committed_baseline():
    # Offline calibration over the committed document: the shipped
    # defaults must be self-reproducing, which is exit 0.
    code, stdout = run(["eval", "calibrate", "--from", "EVAL_baseline.json"])
    assert code == 0
    assert "matches the current one" in stdout


def test_calibrate_json_shape():
    code, stdout = run(["eval", "calibrate", "--from", "EVAL_baseline.json",
                        "--json"])
    assert code == 0
    report = json.loads(stdout)
    assert not report["changed"]
    assert report["verification"]["passed"]
    assert set(report["axes"]) == {"violation", "inconclusive", "p95"}


class TestUsageErrors:
    def test_bare_eval_is_a_usage_error(self):
        assert run(["eval"])[0] == 2

    def test_unknown_episode_id(self):
        assert run(["eval", "run", "--id", "no-such-episode"])[0] == 2

    def test_bad_jobs(self):
        assert run(["eval", "run", "--jobs", "0"] + SUBSET_ARGS)[0] == 2

    def test_diff_requires_document_and_baseline(self):
        assert run(["eval", "diff"])[0] == 2
        assert run(["eval", "diff", "EVAL_baseline.json"])[0] == 2

    def test_document_positional_only_valid_for_diff(self):
        assert run(["eval", "run", "EVAL_baseline.json"])[0] == 2

    def test_missing_baseline_file(self):
        assert run(["eval", "run", "--quick", "--baseline", "nope.json"]
                   + SUBSET_ARGS)[0] == 2

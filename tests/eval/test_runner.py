"""Eval runner: selection, result merging, jobs-invariant documents."""

import pytest

from repro.eval.dataset import load_dataset
from repro.eval.results import compare_to_baseline, dumps_document
from repro.eval.runner import _merge_outcome, run_eval, select_episodes

# A small mixed subset (4 host + 1 quick fleet episode) keeps the
# byte-identity test fast while exercising both worker kinds.
SUBSET = [
    "host-P1-clean-s11",
    "host-P3-faulty-s11",
    "host-P5-blinded-s12",
    "host-A4-faulty-s12",
    "fleet-quick-corrupt-s42",
]


class TestSelectEpisodes:
    def setup_method(self):
        _, self.episodes = load_dataset()

    def test_quick_tier_keeps_only_quick_episodes(self):
        selected = select_episodes(self.episodes, tier="quick")
        assert selected
        assert all(e["tier"] == "quick" for e in selected)

    def test_full_tier_keeps_everything(self):
        assert select_episodes(self.episodes, tier="full") == self.episodes

    def test_ids_restrict_the_selection(self):
        selected = select_episodes(self.episodes, ids=SUBSET)
        assert sorted(e["id"] for e in selected) == sorted(SUBSET)

    def test_unknown_id_fails_loudly(self):
        with pytest.raises(ValueError, match="host-P1-clean-s99"):
            select_episodes(self.episodes, ids=["host-P1-clean-s99"])

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            select_episodes(self.episodes, tier="smoke")


class TestMergeOutcome:
    EPISODE = {"record": "episode", "id": "host-P1-clean-s11",
               "kind": "host", "tier": "quick", "family": "P1",
               "regime": "clean", "seed": 11, "expected": "allow"}

    def test_worker_failure_becomes_an_error_verdict(self):
        from repro.fleet.rollout import GateConfig

        outcome = {"id": self.EPISODE["id"], "status": "timeout",
                   "payload": None}
        result = _merge_outcome(self.EPISODE, outcome, GateConfig())
        assert result["verdict"] == "error"
        assert result["correct"] is False
        assert result["error"] == "timeout"

    def test_worker_traceback_is_preserved(self):
        from repro.fleet.rollout import GateConfig

        outcome = {"id": self.EPISODE["id"], "status": "error",
                   "payload": {"error": "Traceback: boom"}}
        result = _merge_outcome(self.EPISODE, outcome, GateConfig())
        assert result["verdict"] == "error"
        assert result["error"] == "Traceback: boom"


class TestRunEval:
    @pytest.fixture(scope="class")
    def documents(self):
        # The satellite acceptance check: --jobs must not leak into the
        # document, so jobs=1 and jobs=4 serialize byte-identically.
        return (run_eval(ids=SUBSET, tier="quick", jobs=1),
                run_eval(ids=SUBSET, tier="quick", jobs=4))

    def test_jobs_one_and_four_are_byte_identical(self, documents):
        doc_j1, doc_j4 = documents
        assert dumps_document(doc_j1) == dumps_document(doc_j4)

    def test_document_shape_and_correctness(self, documents):
        document, _ = documents
        assert document["schema"] == "repro-eval/v1"
        assert document["dataset"]["schema_version"]
        assert [r["id"] for r in document["episodes"]] == sorted(SUBSET)
        assert all(r["correct"] for r in document["episodes"])
        assert document["scores"]["accuracy"] == 1.0
        fleet = [r for r in document["episodes"] if r["kind"] == "fleet"][0]
        assert fleet["stages"]  # recorded for offline calibration
        assert fleet["stage_verdicts"][0]["tripped_axes"] == ["inconclusive"]

    def test_document_passes_against_itself_as_baseline(self, documents):
        document, _ = documents
        diff = compare_to_baseline(document, document)
        assert diff["passed"]
        assert diff["regressions"] == []

    def test_doctored_baseline_detects_a_regression(self, documents):
        import copy

        document, _ = documents
        doctored = copy.deepcopy(document)
        doctored["episodes"][0]["verdict"] = "error"
        doctored["episodes"][0]["correct"] = False
        # Current run regressed vs a passing baseline -> gate fails.
        diff = compare_to_baseline(doctored, document)
        assert not diff["passed"]
        assert [r["id"] for r in diff["regressions"]] == \
            [document["episodes"][0]["id"]]
        # The same failure already known in the baseline -> tolerated.
        diff = compare_to_baseline(doctored, doctored)
        assert diff["passed"]
        assert [r["id"] for r in diff["known_failures"]] == \
            [document["episodes"][0]["id"]]

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError, match="no episodes"):
            run_eval(ids=[], tier="quick")

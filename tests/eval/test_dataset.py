"""Dataset discipline: structure, forced labels, version-doc coupling."""

import json

import pytest

from repro.eval.dataset import (
    DatasetError,
    check_dataset,
    default_dataset_path,
    load_dataset,
)

HEADER = {"record": "header", "schema_version": "1.0",
          "dataset_version": "1.0"}
HOST_EPISODE = {"record": "episode", "id": "host-P1-clean-s11",
                "kind": "host", "tier": "quick", "family": "P1",
                "regime": "clean", "seed": 11, "expected": "allow"}
FLEET_EPISODE = {"record": "episode", "id": "fleet-quick-clean-s42",
                 "kind": "fleet", "tier": "quick", "hosts": 4, "seed": 42,
                 "fault_hosts": 0, "fault_kind": None, "expected": "allow"}
SCENARIO_EPISODE = {"record": "episode", "id": "scenario-cs-quiet",
                    "kind": "scenario", "tier": "quick",
                    "scenario": "cache+storage/quiet/clean",
                    "expected": "allow"}


def write(tmp_path, records):
    path = tmp_path / "dataset.jsonl"
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return str(path)


def test_committed_dataset_loads_and_checks():
    header, episodes = load_dataset(default_dataset_path())
    assert header["dataset_version"]
    assert len(episodes) >= 60
    summary = check_dataset()
    assert summary["episodes"] == len(episodes)
    assert sum(summary["by_kind"].values()) == len(episodes)
    # Every family and every fleet fault kind is covered.
    families = {e["family"] for e in episodes if e["kind"] == "host"}
    assert families == {"P1", "P2", "P3", "P4", "P5", "P6", "A4"}
    kinds = {e["fault_kind"] for e in episodes
             if e["kind"] == "fleet" and e["fault_hosts"]}
    assert kinds == {"corrupt", "drift", "stall"}
    # The scenario episodes span all three verdicts (multi-policy zoo).
    scenario_expected = {e["expected"] for e in episodes
                         if e["kind"] == "scenario"}
    assert summary["by_kind"]["scenario"] >= 4
    assert scenario_expected == {"allow", "inconclusive", "trip"}


def test_round_trip(tmp_path):
    path = write(tmp_path, [HEADER, HOST_EPISODE, FLEET_EPISODE])
    header, episodes = load_dataset(path)
    assert header["schema_version"] == "1.0"
    assert [e["id"] for e in episodes] == [HOST_EPISODE["id"],
                                           FLEET_EPISODE["id"]]
    assert episodes[0] == HOST_EPISODE
    assert episodes[1] == FLEET_EPISODE


def test_header_must_come_first(tmp_path):
    path = write(tmp_path, [HOST_EPISODE, HEADER])
    with pytest.raises(DatasetError, match="first record must be the header"):
        load_dataset(path)


def test_incompatible_schema_major_rejected(tmp_path):
    header = dict(HEADER, schema_version="2.0")
    path = write(tmp_path, [header, HOST_EPISODE])
    with pytest.raises(DatasetError, match="incompatible"):
        load_dataset(path)


def test_minor_schema_bump_accepted(tmp_path):
    header = dict(HEADER, schema_version="1.9")
    path = write(tmp_path, [header, HOST_EPISODE])
    load_dataset(path)


def test_duplicate_ids_rejected(tmp_path):
    path = write(tmp_path, [HEADER, HOST_EPISODE, HOST_EPISODE])
    with pytest.raises(DatasetError, match="duplicate episode id"):
        load_dataset(path)


def test_unknown_fields_rejected(tmp_path):
    episode = dict(HOST_EPISODE, extra=1)
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="unknown host-episode field"):
        load_dataset(path)


def test_labels_are_forced_by_construction(tmp_path):
    # A clean host episode labelled "trip" is a load error, not data.
    episode = dict(HOST_EPISODE, expected="trip")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="must expect 'allow'"):
        load_dataset(path)
    # A faulted fleet episode labelled "allow" likewise.
    episode = dict(FLEET_EPISODE, id="x", fault_hosts=1,
                   fault_kind="corrupt")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="must expect 'trip'"):
        load_dataset(path)


def test_scenario_episode_round_trip(tmp_path):
    path = write(tmp_path, [HEADER, SCENARIO_EPISODE])
    _, episodes = load_dataset(path)
    assert episodes == [SCENARIO_EPISODE]


def test_scenario_episode_must_name_a_registered_scenario(tmp_path):
    episode = dict(SCENARIO_EPISODE, scenario="no/such/scenario")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="unknown scenario"):
        load_dataset(path)


def test_scenario_label_is_forced_by_the_registry(tmp_path):
    episode = dict(SCENARIO_EPISODE, expected="trip")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="must expect 'allow'"):
        load_dataset(path)


def test_scenario_tier_is_forced_by_the_registry(tmp_path):
    episode = dict(SCENARIO_EPISODE, tier="full")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="quick-tier in the registry"):
        load_dataset(path)


def test_scenario_episode_rejects_stray_fields(tmp_path):
    # Seed/duration live in the registry spec, not the episode.
    episode = dict(SCENARIO_EPISODE, seed=11)
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="unknown scenario-episode field"):
        load_dataset(path)


def test_clean_fleet_episode_cannot_name_a_fault_kind(tmp_path):
    episode = dict(FLEET_EPISODE, fault_kind="corrupt")
    path = write(tmp_path, [HEADER, episode])
    with pytest.raises(DatasetError, match="fault_kind null"):
        load_dataset(path)


def test_blank_lines_rejected(tmp_path):
    path = tmp_path / "dataset.jsonl"
    path.write_text(json.dumps(HEADER) + "\n\n" + json.dumps(HOST_EPISODE)
                    + "\n")
    with pytest.raises(DatasetError, match="blank"):
        load_dataset(str(path))


def test_empty_and_episodeless_datasets_rejected(tmp_path):
    path = tmp_path / "dataset.jsonl"
    path.write_text("")
    with pytest.raises(DatasetError, match="empty"):
        load_dataset(str(path))
    with pytest.raises(DatasetError, match="no episodes"):
        load_dataset(write(tmp_path, [HEADER]))


def test_error_names_the_line(tmp_path):
    path = write(tmp_path, [HEADER, HOST_EPISODE,
                            dict(HOST_EPISODE, id="x", seed="eleven")])
    with pytest.raises(DatasetError, match="line 3"):
        load_dataset(path)


def test_check_dataset_requires_version_doc(tmp_path):
    path = write(tmp_path, [HEADER, HOST_EPISODE])
    with pytest.raises(DatasetError, match="version doc is required"):
        check_dataset(path)


def test_check_dataset_requires_changelog_entry(tmp_path):
    path = write(tmp_path, [HEADER, HOST_EPISODE])
    (tmp_path / "DATASET_VERSION.md").write_text(
        "# CHANGELOG\n\n- **0.9** — something older\n")
    with pytest.raises(DatasetError, match="no entry for dataset_version"):
        check_dataset(path)
    # Adding the entry satisfies the gate.
    (tmp_path / "DATASET_VERSION.md").write_text(
        "# CHANGELOG\n\n- **1.0** — initial\n")
    summary = check_dataset(path)
    assert summary["dataset_version"] == "1.0"
    assert summary["by_tier"]["quick"] == 1

"""Retention/downsampling edges: bucket boundaries, partial folds, seams.

The invariant under test everywhere: folding raw rounds into buckets
never changes any fleet-level aggregate — counters and histogram mass are
exact under merge, and host-second denominators survive via the bucket's
``rounds`` column.
"""

import pytest

from repro.fleet.aggregate import FleetDigest, HostDigest
from repro.service.query import merged_digest
from repro.service.store import ResultsStore, RetentionPolicy, StoreError

ROUND_NS = 10 ** 9
HOSTS = 2


def make_digest(host_id, round_index):
    digest = HostDigest(host_id, round_index, (round_index + 1) * ROUND_NS, 1)
    for i in range(4 + round_index % 3):
        digest.observe_io(round_index * ROUND_NS + i * 10 ** 7,
                          50.0 + 13.0 * i + host_id, i % 2 == 0, True)
    digest.checks = 1
    digest.violations = round_index % 2
    return digest


def fill(store, run_id, rounds):
    for round_index in range(rounds):
        digests = [make_digest(h, round_index) for h in range(HOSTS)]
        store.commit_round(run_id, round_index,
                           (round_index + 1) * ROUND_NS, digests)


def reference_digest(rounds):
    """What the merged aggregate must equal, raw or downsampled."""
    digest = FleetDigest(ROUND_NS)
    for round_index in range(rounds):
        for host in range(HOSTS):
            digest.merge_host(make_digest(host, round_index))
    return digest


def totals(digest):
    return (digest.host_rounds, digest.completed_ios, digest.violations,
            digest.checks, digest.latency.total, digest.latency.counts)


def test_horizon_exactly_at_bucket_edge(tmp_path):
    # raw_rounds=4, bucket_rounds=4: after committing round 7, rounds 0-3
    # (exactly bucket 0) have expired — the fold lands precisely on the
    # bucket boundary, leaving bucket 0 complete and bucket 1 untouched.
    policy = RetentionPolicy(raw_rounds=4, bucket_rounds=4)
    with ResultsStore(str(tmp_path / "s.sqlite"), retention=policy) as store:
        run_id = store.begin_run("soak", {}, ROUND_NS, HOSTS)
        fill(store, run_id, 8)
        assert store.raw_round_indexes(run_id) == [4, 5, 6, 7]
        buckets = store.bucket_rows(run_id)
        assert [(b["bucket"], b["start_round"], b["end_round"], b["rounds"])
                for b in buckets] == [(0, 0, 4, 4)] * HOSTS
        merged, meta = merged_digest(store, run_id, 0, 8)
        assert meta == {"raw_rounds": 4, "buckets": 2, "approximate": False}
        assert totals(merged) == totals(reference_digest(8))


def test_partially_filled_bucket_folds_incrementally(tmp_path):
    # bucket_rounds=4 but the horizon advances one round at a time, so
    # bucket 0 is written partially full and re-folded on later commits.
    policy = RetentionPolicy(raw_rounds=2, bucket_rounds=4)
    with ResultsStore(str(tmp_path / "s.sqlite"), retention=policy) as store:
        run_id = store.begin_run("soak", {}, ROUND_NS, HOSTS)
        fill(store, run_id, 4)  # rounds 0,1 expired -> bucket 0 partial
        partial = store.bucket_rows(run_id)
        assert [(b["start_round"], b["end_round"], b["rounds"])
                for b in partial] == [(0, 2, 2)] * HOSTS
        for round_index in range(4, 6):  # expire rounds 2,3 one by one
            digests = [make_digest(h, round_index) for h in range(HOSTS)]
            store.commit_round(run_id, round_index,
                               (round_index + 1) * ROUND_NS, digests)
        full = [b for b in store.bucket_rows(run_id) if b["bucket"] == 0]
        assert [(b["start_round"], b["end_round"], b["rounds"])
                for b in full] == [(0, 4, 4)] * HOSTS
        merged, _ = merged_digest(store, run_id, 0, 6)
        assert totals(merged) == totals(reference_digest(6))


def test_query_across_raw_downsampled_seam(tmp_path):
    policy = RetentionPolicy(raw_rounds=3, bucket_rounds=2)
    with ResultsStore(str(tmp_path / "s.sqlite"), retention=policy) as store:
        run_id = store.begin_run("soak", {}, ROUND_NS, HOSTS)
        fill(store, run_id, 9)  # rounds 0-5 bucketed, 6-8 raw
        assert store.raw_round_indexes(run_id) == [6, 7, 8]
        # Full-range query crosses the seam without double counting.
        merged, meta = merged_digest(store, run_id, 0, 9)
        assert meta["approximate"] is False
        assert totals(merged) == totals(reference_digest(9))
        # A range that splits a bucket cannot be exact: the bucket folds
        # in whole and the result is flagged.
        merged_partial, meta_partial = merged_digest(store, run_id, 1, 9)
        assert meta_partial["approximate"] is True
        assert merged_partial.host_rounds == 9 * HOSTS  # whole bucket 0
        # A range aligned to bucket edges stays exact.
        aligned, meta_aligned = merged_digest(store, run_id, 2, 9)
        assert meta_aligned["approximate"] is False
        assert aligned.host_rounds == 7 * HOSTS


def test_retention_disabled_keeps_everything_raw(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("soak", {}, ROUND_NS, HOSTS)
        fill(store, run_id, 6)
        assert store.raw_round_indexes(run_id) == list(range(6))
        assert store.bucket_rows(run_id) == []


def test_resume_after_crash_mid_round_no_dup_no_missing(tmp_path):
    """A crash between rounds leaves the watermark trailing the work the
    service had *started*; the resumed service replays and the store ends
    with each round exactly once."""
    from repro.service.loop import resume, serve_soak

    path = str(tmp_path / "s.sqlite")
    with ResultsStore(path) as store:
        # max_rounds plays the crash: the service dies after committing
        # round 2 of 6, mid-run from the scenario's point of view.
        summary = serve_soak(store, hosts=2, seed=9, rate_ios=60, rounds=6,
                             max_rounds=3)
        assert summary["status"] == "running"
        assert summary["committed_round"] == 2
    with ResultsStore(path) as store:
        summary = resume(store)
        assert summary["status"] == "completed"
        assert summary["committed_round"] == 5
        # Only the uncommitted rounds were ingested by the resume...
        assert summary["rounds_committed_now"] == 3
        run_id = summary["run"]
        # ...and every round appears exactly once, no dups, no gaps.
        assert [r["round_index"] for r in store.round_rows(run_id)] == \
            list(range(6))
        assert [row["host_id"] for row in store.digest_rows(run_id)] == \
            [0, 1] * 6
        with pytest.raises(StoreError, match="out of order"):
            store.commit_round(run_id, 3, 4 * ROUND_NS, [])


def test_resumed_store_matches_uninterrupted_store(tmp_path):
    """Crash + resume must leave byte-identical rows to a clean run."""
    from repro.service.loop import resume, serve_soak

    clean = ResultsStore(str(tmp_path / "clean.sqlite"))
    serve_soak(clean, hosts=2, seed=4, rate_ios=50, rounds=5)

    crashed = ResultsStore(str(tmp_path / "crashed.sqlite"))
    serve_soak(crashed, hosts=2, seed=4, rate_ios=50, rounds=5, max_rounds=2)
    resume(crashed)

    run_a = clean.latest_run_id()
    run_b = crashed.latest_run_id()
    rows_a = [tuple(row)[1:] for row in clean.digest_rows(run_a)]
    rows_b = [tuple(row)[1:] for row in crashed.digest_rows(run_b)]
    assert rows_a == rows_b
    clean.close()
    crashed.close()

"""Dashboard rendering: sparklines, terminal text, static HTML."""

from html.parser import HTMLParser

import pytest

from repro.service.dashboard import render_html, render_terminal, sparkline
from repro.service.loop import serve_rollout, serve_soak
from repro.service.store import ResultsStore, RetentionPolicy


@pytest.fixture
def store(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as opened:
        yield opened


def test_sparkline_levels():
    assert sparkline([0, 1, 2, 3, 4, 5, 6, 7]) == "▁▂▃▄▅▆▇█"
    assert sparkline([5, 5, 5]) == "▁▁▁"  # flat series stays low
    assert sparkline([]) == ""
    assert sparkline([None, 1.0, None]) == " ▁ "
    assert sparkline([None, None]) == "  "


def test_terminal_render_is_deterministic_and_complete(store):
    serve_rollout(store, hosts=4, quick=True, fault_hosts=1, seed=42)
    first = render_terminal(store)
    assert first == render_terminal(store)
    assert "rolled_back" in first
    assert "baseline" in first and "canary" in first
    assert "TRIP" in first
    assert "gate.trip" in first  # rollback timeline
    assert "▁" in first  # sparklines rendered


def test_terminal_render_clean_rollout(store):
    serve_rollout(store, hosts=4, quick=True, seed=7)
    text = render_terminal(store)
    assert "completed" in text
    assert "PASS" in text
    assert "clean — no gate tripped" in text


def test_terminal_render_soak_without_phases(store):
    serve_soak(store, hosts=2, seed=5, rate_ios=50, rounds=3)
    text = render_terminal(store)
    assert "soak" in text
    assert "violation_rate" in text


class _WellFormed(HTMLParser):
    VOID = {"meta", "br", "hr", "img", "input", "link",
            "circle", "rect", "line", "polyline", "path"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []
        self.errors = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append((tag, self.getpos()))
        else:
            self.stack.pop()


def test_html_render_is_wellformed_with_tables_and_charts(store):
    serve_rollout(store, hosts=4, quick=True, fault_hosts=1, seed=42)
    page = render_html(store)
    assert page == render_html(store)  # deterministic
    parser = _WellFormed()
    parser.feed(page)
    assert parser.errors == []
    assert parser.stack == []
    assert page.count("<svg") == 3  # one axis per metric, never dual
    assert "Gate margins" in page
    assert "Rollback timeline" in page
    assert "Per-round data" in page  # table view backs every chart
    assert "<title>" in page  # hover values on markers
    assert "prefers-color-scheme: dark" in page  # selected dark mode


def test_html_escapes_label_text(store):
    serve_rollout(store, hosts=4, quick=True, fault_hosts=1, seed=42)
    page = render_html(store)
    assert "<script" not in page
    # timeline reasons contain `>` characters; they must arrive escaped
    assert "&gt;" in page


def test_html_marks_downsampled_points(tmp_path):
    policy = RetentionPolicy(raw_rounds=2, bucket_rounds=2)
    with ResultsStore(str(tmp_path / "r.sqlite"), retention=policy) as store:
        serve_soak(store, hosts=2, seed=5, rate_ios=50, rounds=8)
        page = render_html(store)
        assert "bucket" in page  # grain column distinguishes the seam
        text = render_terminal(store)
        assert "violation_rate" in text

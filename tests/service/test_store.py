"""ResultsStore basics: schema, run lifecycle, transactional commits."""

import json
import sqlite3

import pytest

from repro.fleet.aggregate import HostDigest
from repro.service.store import (
    ResultsStore,
    RetentionPolicy,
    SCHEMA_VERSION,
    StoreError,
)


def make_digest(host_id, round_index, ios=5, violations=0):
    digest = HostDigest(host_id, round_index, (round_index + 1) * 10 ** 9, 1)
    for i in range(ios):
        digest.observe_io((round_index * 10 + i) * 10 ** 8,
                          100.0 + 7.0 * i + host_id, i % 3 == 0, True)
    digest.checks = 1
    digest.violations = violations
    return digest


def commit(store, run_id, round_index, hosts=2, **kwargs):
    digests = [make_digest(h, round_index) for h in range(hosts)]
    return store.commit_round(run_id, round_index,
                              (round_index + 1) * 10 ** 9, digests, **kwargs)


def test_schema_version_is_stamped_and_checked(tmp_path):
    path = str(tmp_path / "s.sqlite")
    with ResultsStore(path) as store:
        store.begin_run("soak", {}, 10 ** 9, 2)
    db = sqlite3.connect(path)
    db.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
    db.commit()
    db.close()
    with pytest.raises(StoreError, match="schema v999"):
        ResultsStore(path)
    assert SCHEMA_VERSION == 2


def test_proposal_lifecycle(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        provenance = {"prior_threshold": 0.5, "samples": 64,
                      "band": {"observed_max": 0.13}}
        pid = store.record_proposal("tighten", "low-false-submit", 2,
                                    "guardrail ... { }", provenance)
        row = store.proposal_rows()[0]
        assert row["proposal_id"] == pid
        assert row["verdict"] == "proposed"
        assert row["deploy_run"] is None
        assert json.loads(row["provenance"]) == provenance
        store.set_proposal_verdict(pid, "deployed", deploy_run=7)
        row = store.proposal_rows()[0]
        assert row["verdict"] == "deployed"
        assert row["deploy_run"] == 7


def test_proposal_verdict_requires_existing_proposal(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        with pytest.raises(StoreError, match="no proposal 99"):
            store.set_proposal_verdict(99, "deployed")


def test_run_lifecycle_and_watermark(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("soak", {"hosts": 2}, 10 ** 9, 2,
                                 total_rounds=3)
        run = store.run(run_id)
        assert run["status"] == "running"
        assert run["committed_round"] == -1
        assert run["scenario"] == {"hosts": 2}
        for round_index in range(3):
            commit(store, run_id, round_index)
            assert store.run(run_id)["committed_round"] == round_index
        store.finalize_run(run_id, "completed", final_rounds=3)
        run = store.run(run_id)
        assert run["status"] == "completed"
        assert run["final_rounds"] == 3
        assert store.latest_run_id() == run_id
        assert [r["run_id"] for r in store.runs()] == [run_id]


def test_out_of_order_rounds_are_refused(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("soak", {}, 10 ** 9, 2)
        commit(store, run_id, 0)
        with pytest.raises(StoreError, match="out of order"):
            commit(store, run_id, 2)  # gap
        with pytest.raises(StoreError, match="out of order"):
            commit(store, run_id, 0)  # duplicate
        # The failed commits left nothing behind: round 1 still works.
        commit(store, run_id, 1)
        assert store.run(run_id)["committed_round"] == 1


def test_digest_rows_round_trip_exactly(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("soak", {}, 10 ** 9, 3)
        digests = [make_digest(h, 0, ios=11 + h) for h in range(3)]
        store.commit_round(run_id, 0, 10 ** 9, digests)
        rows = store.digest_rows(run_id)
        assert [row["host_id"] for row in rows] == [0, 1, 2]
        for digest, row in zip(digests, rows):
            rebuilt = HostDigest.from_row(row)
            assert rebuilt.to_row() == digest.to_row()
            assert json.dumps(rebuilt.to_dict(), sort_keys=True) == \
                json.dumps(digest.to_dict(), sort_keys=True)


def test_rounds_table_sums_fleet_counters(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("soak", {}, 10 ** 9, 2)
        digests = [make_digest(0, 0, ios=4, violations=2),
                   make_digest(1, 0, ios=6, violations=1)]
        store.commit_round(run_id, 0, 10 ** 9, digests)
        (row,) = store.round_rows(run_id)
        assert row["hosts"] == 2
        assert row["completed_ios"] == 10
        assert row["violations"] == 3


def test_control_records_are_idempotent(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as store:
        run_id = store.begin_run("rollout", {}, 10 ** 9, 2)
        phase = {"kind": "baseline", "label": "baseline", "target_hosts": 2,
                 "start_round": 0, "end_round": 2}
        gate = ("canary", 2, {"passed": True, "reasons": [],
                              "measurements": {"checks": 4}})
        event = (0, {"round": 0, "time_s": 0.0, "event": "baseline.start"})
        commit(store, run_id, 0, events=[event], phases=[phase], gates=[gate])
        # A resume replays the same phase/gate records: REPLACE, not dup.
        commit(store, run_id, 1, phases=[phase], gates=[gate])
        assert len(store.phase_rows(run_id)) == 1
        assert len(store.gate_rows(run_id)) == 1
        assert len(store.event_rows(run_id)) == 1
        assert store.max_event_seq(run_id) == 0
        (entry,) = store.event_rows(run_id)
        assert json.loads(entry["entry"])["event"] == "baseline.start"


def test_retention_policy_validation():
    with pytest.raises(ValueError):
        RetentionPolicy(raw_rounds=0)
    with pytest.raises(ValueError):
        RetentionPolicy(bucket_rounds=0)
    policy = RetentionPolicy(raw_rounds=4, bucket_rounds=2)
    assert (policy.raw_rounds, policy.bucket_rounds) == (4, 2)


def test_unopenable_path_is_store_error(tmp_path):
    with pytest.raises(StoreError, match="cannot open"):
        ResultsStore(str(tmp_path / "no" / "such" / "dir" / "s.sqlite"))

"""grctl serve/query/dash and fleet --out: exit codes and byte-identity.

The headline acceptance check lives here: for a fixed seed, the report
regenerated from the sqlite store via ``grctl query report`` is
byte-identical to the live ``grctl fleet --json`` report.
"""

import io
import json

from repro.tools.grctl import main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_store_regenerated_report_is_byte_identical(tmp_path):
    store = str(tmp_path / "fleet.sqlite")
    args = ["--hosts", "4", "--quick", "--faults", "1", "--seed", "42"]
    code_live, live = run(["fleet", "--json"] + args)
    code_serve, summary = run(["serve", "--store", store] + args)
    code_regen, regen = run(["query", "report", "--store", store])
    assert code_live == 1  # rolled back
    assert code_serve == 1  # same contract through the service
    assert code_regen == 0
    assert regen == live  # byte-identical
    assert json.loads(summary)["status"] == "rolled_back"


def test_fleet_out_writes_the_json_report(tmp_path):
    path = str(tmp_path / "report.json")
    code, stdout = run(["fleet", "--hosts", "4", "--quick", "--seed", "7",
                        "--json", "--out", path])
    assert code == 0
    with open(path) as handle:
        assert handle.read() == stdout  # same bytes both places
    # Human rendering still mentions where the report went.
    code, stdout = run(["fleet", "--hosts", "4", "--quick", "--seed", "7",
                        "--out", path])
    assert code == 0
    assert "wrote report to {}".format(path) in stdout


def test_fleet_out_unwritable_path_is_usage_error(tmp_path):
    code, _ = run(["fleet", "--hosts", "4", "--quick",
                   "--out", str(tmp_path / "no" / "dir" / "x.json")])
    assert code == 2


def test_serve_resume_round_trip(tmp_path):
    store = str(tmp_path / "fleet.sqlite")
    code, out = run(["serve", "--store", store, "--hosts", "4", "--quick",
                     "--seed", "7", "--max-rounds", "2"])
    assert code == 0
    assert json.loads(out)["status"] == "running"
    code, out = run(["serve", "--store", store, "--resume"])
    assert code == 0
    assert json.loads(out)["status"] == "completed"
    # Resumed store regenerates the same bytes as a live run.
    _, live = run(["fleet", "--json", "--hosts", "4", "--quick",
                   "--seed", "7"])
    code, regen = run(["query", "report", "--store", store])
    assert code == 0
    assert regen == live


def test_serve_soak_with_retention(tmp_path):
    store = str(tmp_path / "soak.sqlite")
    code, out = run(["serve", "--store", store, "--soak", "--hosts", "2",
                     "--rounds", "8", "--rate", "60",
                     "--retain-rounds", "2", "--bucket-rounds", "2"])
    assert code == 0
    summary = json.loads(out)
    assert summary["kind"] == "soak"
    assert summary["raw_rows_deleted_now"] > 0  # retention engaged
    code, out = run(["query", "trend", "--store", store])
    assert code == 0
    points = json.loads(out)["points"]
    assert any(p["downsampled"] for p in points)
    assert any(not p["downsampled"] for p in points)


def test_query_usage_errors(tmp_path):
    store = str(tmp_path / "fleet.sqlite")
    code, _ = run(["query", "bogus", "--store", store])
    assert code == 2
    code, _ = run(["query", "status", "--store", store])  # empty store
    assert code == 2
    run(["serve", "--store", store, "--soak", "--hosts", "2",
         "--rounds", "2", "--rate", "40"])
    code, _ = run(["query", "report", "--store", store])  # soak: no report
    assert code == 2
    code, _ = run(["query", "status", "--store", store, "--run", "99"])
    assert code == 2


def test_serve_flag_validation(tmp_path):
    store = str(tmp_path / "fleet.sqlite")
    for argv in (
        ["serve", "--store", store, "--hosts", "0"],
        ["serve", "--store", store, "--run", "1"],  # --run without --resume
        ["serve", "--store", store, "--retain-rounds", "0"],
        ["serve", "--store", store, "--resume"],  # empty store
    ):
        code, _ = run(argv)
        assert code == 2, argv


def test_dash_terminal_and_html(tmp_path):
    store = str(tmp_path / "fleet.sqlite")
    run(["serve", "--store", store, "--hosts", "4", "--quick",
         "--faults", "1", "--seed", "42"])
    code, text = run(["dash", "--store", store])
    assert code == 0
    assert "rolled_back" in text
    page_path = str(tmp_path / "dash.html")
    code, out = run(["dash", "--store", store, "--html", page_path])
    assert code == 0
    with open(page_path) as handle:
        page = handle.read()
    assert page.startswith("<!DOCTYPE html>")
    assert "Fleet health" in page
    code, _ = run(["dash", "--store", store, "--html",
                   str(tmp_path / "no" / "dir" / "x.html")])
    assert code == 2

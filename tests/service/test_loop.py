"""Service loop: streaming ingest, interrupt/resume, error mapping."""

import pytest

from repro.service.loop import (
    ServiceError,
    resume,
    serve_rollout,
    serve_soak,
    summary_json,
)
from repro.service.store import ResultsStore
from repro.trace.tracer import tracing


@pytest.fixture
def store(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as opened:
        yield opened


def test_serve_rollout_streams_everything(store):
    summary = serve_rollout(store, hosts=4, quick=True, fault_hosts=1,
                            seed=42)
    assert summary["status"] == "rolled_back"
    assert summary["kind"] == "rollout"
    run = store.run(summary["run"])
    assert run["status"] == "rolled_back"
    assert run["rolled_back_at"] == "canary"
    assert run["final_rounds"] == run["committed_round"] + 1
    # Every round's digests landed; nothing buffered the whole run.
    assert summary["digests_ingested_now"] == 4 * run["final_rounds"]
    assert len(store.phase_rows(summary["run"])) == 3  # base, stage, rollbk
    assert len(store.gate_rows(summary["run"])) == 1
    assert store.event_rows(summary["run"])  # timeline persisted


def test_serve_rollout_clean_completes(store):
    summary = serve_rollout(store, hosts=4, quick=True, seed=7)
    assert summary["status"] == "completed"
    run = store.run(summary["run"])
    assert run["rolled_back_at"] is None
    # plan and versions round-trip for later regeneration
    assert run["plan"]["stages"]
    assert run["versions"]["new"]["version"] == 2


def test_serve_soak_and_summary_json(store):
    summary = serve_soak(store, hosts=3, seed=5, rate_ios=50, rounds=4)
    assert summary["status"] == "completed"
    assert summary["committed_round"] == 3
    assert summary["totals"]["completed_ios"] > 0
    text = summary_json(summary)
    assert text == summary_json(summary)  # deterministic
    assert '"kind": "soak"' in text


def test_max_rounds_interrupts_without_finalizing(store):
    summary = serve_rollout(store, hosts=4, quick=True, seed=7,
                            max_rounds=2)
    assert summary["status"] == "running"
    assert summary["committed_round"] == 1
    run = store.run(summary["run"])
    assert run["status"] == "running"
    assert run["final_rounds"] is None


def test_resume_requires_an_interrupted_run(store):
    serve_soak(store, hosts=2, seed=1, rate_ios=40, rounds=2)
    with pytest.raises(ServiceError, match="only interrupted"):
        resume(store)


def test_resume_empty_store_is_an_error(store):
    with pytest.raises(ServiceError, match="no runs"):
        resume(store)


def test_resume_rollout_finishes_identically(store):
    serve_rollout(store, hosts=4, quick=True, fault_hosts=1, seed=42,
                  max_rounds=1)
    summary = resume(store)
    assert summary["status"] == "rolled_back"
    run = store.run(summary["run"])
    # The resumed run's stored rows equal an uninterrupted serve's
    # (full byte-identity is asserted via the regenerated report in
    # test_service_cli.py); spot-check the control plane here.
    assert len(store.gate_rows(summary["run"])) == 1
    assert run["rolled_back_at"] == "canary"
    events = [row["event"] for row in store.event_rows(summary["run"])]
    assert events.count("baseline.start") == 1  # no duplicated replay


def test_service_trace_category_emits(store, tmp_path):
    with tracing(categories=["service"]) as tracer:
        serve_soak(store, hosts=2, seed=3, rate_ios=40, rounds=2)
    names = [event.name for event in tracer.events()]
    assert "round.commit" in names
    assert "run.finalized" in names
    assert all(event.category == "service" for event in tracer.events())

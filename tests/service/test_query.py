"""Typed queries: mid-run answers, margins, and regeneration guards."""

import json

import pytest

from repro.fleet.rollout import GateConfig
from repro.service.loop import resume, serve_rollout, serve_soak
from repro.service.query import (
    QUERIES,
    gate_margins,
    latency_trend,
    list_runs,
    regenerate_report,
    rollback_timeline,
    run_status,
    stage_rates,
)
from repro.service.store import ResultsStore, RetentionPolicy, StoreError


@pytest.fixture
def store(tmp_path):
    with ResultsStore(str(tmp_path / "s.sqlite")) as opened:
        yield opened


@pytest.fixture
def faulted(store):
    serve_rollout(store, hosts=4, quick=True, fault_hosts=1, seed=42)
    return store


def test_run_status_reads_live_state(faulted):
    status = run_status(faulted)
    assert status["kind"] == "rollout"
    assert status["status"] == "rolled_back"
    assert status["hosts"] == 4
    assert status["phase"]["kind"] == "rollback"
    assert status["rolled_back_at_stage"] == "canary"
    assert status["inconclusive_rate"] > 0
    assert status["totals"]["completed_ios"] > 0


def test_status_is_answerable_mid_run(store):
    serve_rollout(store, hosts=4, quick=True, seed=7, max_rounds=2)
    status = run_status(store)
    assert status["status"] == "running"
    assert status["committed_round"] == 1
    trend = latency_trend(store)
    assert len(trend["points"]) == 2


def test_stage_rates_per_phase(faulted):
    phases = stage_rates(faulted)["phases"]
    assert [p["kind"] for p in phases] == ["baseline", "stage", "rollback"]
    stage = phases[1]
    assert stage["cohort_hosts"] == 1  # the canary
    assert stage["inconclusive_rate"] > phases[0]["inconclusive_rate"]
    assert stage["coverage"]["approximate"] is False


def test_latency_trend_orders_points(faulted):
    trend = latency_trend(faulted)
    rounds = [tuple(p["rounds"]) for p in trend["points"]]
    assert rounds == sorted(rounds)
    assert all(not p["downsampled"] for p in trend["points"])
    assert all(p["p95_us"] is not None for p in trend["points"])


def test_gate_margins_show_the_tripped_axis(faulted):
    gates = gate_margins(faulted)
    (gate,) = gates["gates"]
    assert gate["stage"] == "canary"
    assert gate["passed"] is False
    assert gate["margins"]["inconclusive_rate_delta"] < 0  # the trip
    assert gate["margins"]["violation_rate_delta"] > 0  # headroom
    assert gates["gate"]["max_p95_ratio"] == GateConfig().max_p95_ratio


def test_rollback_timeline_tells_the_story(faulted):
    timeline = rollback_timeline(faulted)
    events = [entry["event"] for entry in timeline["events"]]
    assert events == ["gate.trip", "rollback.start", "rollback.done"]
    assert timeline["rolled_back_at_stage"] == "canary"


def test_list_runs(store):
    serve_soak(store, hosts=2, seed=1, rate_ios=40, rounds=2)
    serve_rollout(store, hosts=4, quick=True, seed=7)
    runs = list_runs(store)["runs"]
    assert [r["kind"] for r in runs] == ["soak", "rollout"]


def test_queries_registry_is_complete():
    assert sorted(QUERIES) == ["autopilot", "gates", "report", "rollbacks",
                               "runs", "stages", "status", "trend"]


def test_regenerate_report_matches_live(faulted):
    from repro.fleet.scenario import run_fleet_rollout

    live = run_fleet_rollout(hosts=4, quick=True, fault_hosts=1, seed=42)
    regen = regenerate_report(faulted)
    assert json.dumps(regen, indent=2, sort_keys=True) == \
        json.dumps(live, indent=2, sort_keys=True)


def test_regenerate_report_after_resume_matches_live(store):
    from repro.fleet.scenario import run_fleet_rollout

    serve_rollout(store, hosts=4, quick=True, seed=7, max_rounds=2)
    resume(store)
    live = run_fleet_rollout(hosts=4, quick=True, seed=7)
    regen = regenerate_report(store)
    assert json.dumps(regen, indent=2, sort_keys=True) == \
        json.dumps(live, indent=2, sort_keys=True)


def test_regenerate_refuses_running_runs(store):
    serve_rollout(store, hosts=4, quick=True, seed=7, max_rounds=1)
    with pytest.raises(StoreError, match="still running"):
        regenerate_report(store)


def test_regenerate_refuses_soaks(store):
    serve_soak(store, hosts=2, seed=1, rate_ios=40, rounds=2)
    with pytest.raises(StoreError, match="only rollouts"):
        regenerate_report(store)


def test_regenerate_refuses_downsampled_runs(tmp_path):
    policy = RetentionPolicy(raw_rounds=2, bucket_rounds=2)
    with ResultsStore(str(tmp_path / "r.sqlite"), retention=policy) as store:
        serve_rollout(store, hosts=4, quick=True, seed=7)
        with pytest.raises(StoreError, match="downsampled"):
            regenerate_report(store)


def test_empty_store_raises(store):
    with pytest.raises(StoreError, match="no runs"):
        run_status(store)

"""Tracepoint wiring: hooks, monitor, actions, feature store, retraining.

Each test runs a small host/kernel under ``tracing()`` and asserts the
expected events land in the buffer — and that the tracer's exact counters
agree with the monitor's own statistics.
"""

import pytest

from repro.core.host import MonitorHost
from repro.core.retraining import RetrainDaemon
from repro.kernel import Kernel
from repro.sim.units import SECOND
from repro.trace import TRACER, tracing


@pytest.fixture(autouse=True)
def _stop_tracer_after():
    yield
    TRACER.stop()


def test_hook_fire_emits_even_without_probes(host):
    with tracing() as t:
        point = host.hooks.declare("storage.submit_io")
        point.fire(x=1)
    events = t.events(category="hook")
    assert [e.name for e in events] == ["storage.submit_io"]
    assert events[0].args == {"probes": 0}


def test_tracepoints_silent_when_tracer_inactive(host):
    assert not TRACER.active
    before = TRACER.buffer.total
    point = host.hooks.declare("p")
    point.fire(x=1)
    host.store.save("k", 1)
    assert TRACER.buffer.total == before


def test_featurestore_save_traced(host):
    with tracing() as t:
        host.store.save("io_latency_us", 42)
        host.store.save("blob", [1, 2, 3])  # non-scalar: no value arg
    events = t.events(category="featurestore.save")
    assert [e.name for e in events] == ["io_latency_us", "blob"]
    assert events[0].args == {"value": 42}
    assert events[1].args is None


def _load_guardrail(kernel, rule="LOAD(m) <= 1", action="SAVE(flag, true)"):
    spec = ("guardrail g {{ trigger: {{ TIMER(start_time, 1s) }}, "
            "rule: {{ {} }}, action: {{ {} }} }}").format(rule, action)
    return kernel.guardrails.load(spec)


def test_monitor_check_emits_span_rule_eval_violation_and_action():
    kernel = Kernel(seed=0)
    kernel.store.save("m", 5)
    with tracing() as t:
        monitor = _load_guardrail(kernel)
        kernel.run(until=1 * SECOND)

    checks = [e for e in t.events(category="monitor.check") if e.name == "g"]
    assert len(checks) == 1
    assert checks[0].phase == "X"
    assert checks[0].dur > 0  # virtual-clock cost of the check

    evals = t.events(category="rule.eval")
    assert len(evals) == 1
    assert evals[0].args["result"] is False

    violations = [e for e in t.events(category="monitor.check")
                  if e.name == "violation"]
    assert len(violations) == 1
    assert violations[0].guardrail == "g"

    actions = t.events(category="action")
    assert [e.name for e in actions] == ["SAVE"]
    assert actions[0].args["detail"] == "flag = true"

    # Violation precedes its action in emission order.
    assert violations[0].seq < actions[0].seq

    # Exact counters agree with the monitor's own stats.
    stats = monitor.stats()
    assert t.stat()["g"] == {
        "checks": stats["checks"],
        "violations": stats["violations"],
        "actions": stats["action_dispatches"],
        "check_cost_ns": stats["overhead"]["simulated_ns"],
    }


def test_counters_stay_exact_when_events_are_sampled_away():
    kernel = Kernel(seed=0)
    kernel.store.save("m", 5)
    with tracing(sample={"monitor.check": 1000, "rule.eval": 1000,
                         "action": 1000}) as t:
        monitor = _load_guardrail(kernel)
        kernel.run(until=10 * SECOND)
    assert monitor.check_count == 10
    assert len(t.events(category="rule.eval")) <= 1  # stream is sampled...
    stat = t.stat()["g"]                             # ...counters are not
    assert stat["checks"] == 10
    assert stat["violations"] == monitor.violation_count
    assert stat["actions"] == monitor.action_dispatch_count


def test_retrain_request_and_job_span_traced():
    kernel = Kernel(seed=0)
    kernel.store.save("m", 5)
    with tracing() as t:
        _load_guardrail(kernel, action="RETRAIN(mymodel)")
        daemon = RetrainDaemon(kernel, poll_interval=SECOND // 2)
        daemon.register("mymodel", lambda request: "new-model",
                        training_time=2 * SECOND)
        daemon.start()
        kernel.run(until=5 * SECOND)

    retrain = t.events(category="retrain")
    requests = [e for e in retrain if e.name == "request"]
    assert requests and requests[0].args["model"] == "mymodel"
    assert requests[0].guardrail == "g"

    jobs = [e for e in retrain if e.name == "mymodel"]
    assert len(jobs) == daemon.completed_count >= 1
    assert jobs[0].phase == "X"
    assert jobs[0].dur == 2 * SECOND  # virtual begin/end pair


def test_action_error_emits_event_but_not_counter():
    host = MonitorHost()
    host.store.save("m", 5)
    spec = ("guardrail g { trigger: { TIMER(start_time, 1s) }, "
            "rule: { LOAD(m) <= 1 }, "
            "action: { REPLACE(no.such_slot, nowhere) } }")
    from repro.core.registry import GuardrailManager

    manager = GuardrailManager(host)
    with tracing() as t:
        monitor = manager.load(spec)
        host.engine.run(until=1 * SECOND)
    assert monitor.action_error_count == 1
    actions = t.events(category="action")
    assert len(actions) == 1
    assert "error" in actions[0].args
    assert t.stat()["g"]["actions"] == 0  # mirrors action_dispatch_count

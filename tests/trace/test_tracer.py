"""Tracer semantics: gating, category filters, seeded sampling, spans,
exact per-guardrail counters."""

import pytest

from repro.trace.events import CATEGORIES
from repro.trace.tracer import TRACER, Tracer, tracing


@pytest.fixture
def tracer():
    return Tracer(capacity=128).start()


def test_tracer_starts_inactive():
    # The disabled-cost contract: call sites check .active and never reach
    # emit(); a fresh tracer must therefore start inactive.
    assert not Tracer(capacity=8).active
    assert not TRACER.active or True  # global may be toggled by other tests


def test_emit_records_in_order_with_seq(tracer):
    tracer.emit("hook", "a", 10)
    tracer.emit("hook", "b", 20)
    events = tracer.events()
    assert [e.name for e in events] == ["a", "b"]
    assert events[0].seq < events[1].seq


def test_category_filtering(tracer):
    tracer.start(categories=["hook", "action"])
    tracer.emit("hook", "h", 1)
    tracer.emit("rule.eval", "r", 2)
    tracer.emit("action", "SAVE", 3)
    tracer.emit("featurestore.save", "k", 4)
    assert [e.category for e in tracer.events()] == ["hook", "action"]
    assert tracer.category_enabled("hook")
    assert not tracer.category_enabled("rule.eval")


def test_unknown_category_rejected(tracer):
    with pytest.raises(ValueError, match="unknown trace categor"):
        tracer.start(categories=["hook", "nope"])
    with pytest.raises(ValueError, match="unknown trace category"):
        tracer.start(sample={"nope": 4})


def test_sampling_keeps_one_in_n(tracer):
    tracer.start(sample={"hook": 4})
    for i in range(100):
        tracer.emit("hook", "h{}".format(i), i)
    assert len(tracer.events()) == 25


def test_sampling_is_deterministic_for_a_seed():
    def run(seed):
        tracer = Tracer(capacity=1024)
        tracer.start(seed=seed, sample={"hook": 8})
        for i in range(200):
            tracer.emit("hook", "h{}".format(i), i)
        return [e.name for e in tracer.events()]

    assert run(7) == run(7)
    assert run(1) == run(1)
    # Different seeds shift the sampling phase (same 1-in-8 density); any
    # two seeds may collide mod 8, so compare seeds with distinct phases.
    assert len(run(3)) == len(run(4)) == 25
    assert run(3) != run(4)


def test_sampling_never_affects_counters(tracer):
    tracer.start(sample={"monitor.check": 1000})
    for _ in range(30):
        tracer.note_check("g", cost_ns=10)
    tracer.note_violation("g")
    tracer.note_action("g")
    stat = tracer.stat()
    assert stat["g"] == {
        "checks": 30, "violations": 1, "actions": 1, "check_cost_ns": 300,
    }


def test_span_begin_end_produces_complete_event(tracer):
    span = tracer.begin("retrain", "linnos", 100, guardrail="g",
                        args={"queued_at": 90})
    event = tracer.end(span, 350, args={"ok": True})
    assert event.phase == "X"
    assert event.ts == 100
    assert event.dur == 250
    assert event.args == {"queued_at": 90, "ok": True}
    assert tracer.end(None, 400) is None  # sampled-out spans are harmless


def test_span_from_disabled_category_is_none(tracer):
    tracer.start(categories=["hook"])
    assert tracer.begin("retrain", "m", 0) is None


def test_start_resets_buffer_counters_and_sampling_phase(tracer):
    tracer.emit("hook", "a", 1)
    tracer.note_check("g")
    tracer.start()
    assert tracer.events() == []
    assert tracer.stat() == {}


def test_buffer_wraps_and_reports_drops(tracer):
    tracer.start(capacity=16)
    for i in range(50):
        tracer.emit("hook", str(i), i)
    assert len(tracer.events()) == 16
    assert tracer.buffer.dropped == 34
    assert [e.name for e in tracer.events()] == [str(i) for i in range(34, 50)]


def test_set_category_toggles_and_samples(tracer):
    tracer.set_category("hook", enabled=False)
    tracer.emit("hook", "a", 1)
    assert tracer.events() == []
    tracer.set_category("hook", enabled=True, sample_every=2)
    for i in range(10):
        tracer.emit("hook", str(i), i)
    assert len(tracer.events()) == 5


def test_tracing_context_manager_uses_global_tracer():
    with tracing(capacity=32, seed=5) as t:
        assert t is TRACER
        assert TRACER.active
        TRACER.emit("hook", "inside", 1)
    assert not TRACER.active
    # Events stay readable after the block.
    assert [e.name for e in t.events(category="hook")] == ["inside"]


def test_events_filter_by_guardrail(tracer):
    tracer.emit("action", "SAVE", 1, guardrail="g1")
    tracer.emit("action", "SAVE", 2, guardrail="g2")
    assert [e.ts for e in tracer.events(guardrail="g2")] == [2]


def test_all_categories_are_known():
    assert set(CATEGORIES) == {
        "hook", "monitor.check", "rule.eval", "action",
        "featurestore.save", "retrain", "fault", "supervisor", "fleet",
        "service", "autopilot", "scenarios",
    }

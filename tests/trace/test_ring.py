"""Ring buffer: bounded, overwrite-on-full, oldest-first iteration."""

import pytest

from repro.trace.ring import RingBuffer


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingBuffer(0)


def test_append_below_capacity_keeps_everything():
    ring = RingBuffer(4)
    for i in range(3):
        ring.append(i)
    assert len(ring) == 3
    assert ring.snapshot() == [0, 1, 2]
    assert ring.dropped == 0
    assert ring.total == 3


def test_wraparound_overwrites_oldest_first():
    ring = RingBuffer(4)
    for i in range(10):
        ring.append(i)
    assert len(ring) == 4
    assert ring.snapshot() == [6, 7, 8, 9]
    assert ring.dropped == 6
    assert ring.total == 10


def test_wraparound_at_exact_capacity_boundary():
    ring = RingBuffer(3)
    for i in range(3):
        ring.append(i)
    assert ring.snapshot() == [0, 1, 2]
    assert ring.dropped == 0
    ring.append(3)
    assert ring.snapshot() == [1, 2, 3]
    assert ring.dropped == 1


def test_iteration_matches_snapshot():
    ring = RingBuffer(5)
    for i in range(8):
        ring.append(i)
    assert list(ring) == ring.snapshot() == [3, 4, 5, 6, 7]


def test_clear_resets_everything():
    ring = RingBuffer(2)
    ring.append("a")
    ring.append("b")
    ring.append("c")
    ring.clear()
    assert len(ring) == 0
    assert not ring
    assert ring.dropped == 0
    assert ring.snapshot() == []
    ring.append("d")
    assert ring.snapshot() == ["d"]

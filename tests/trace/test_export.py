"""Exporters: JSONL round-trip and Chrome trace_event validity."""

import io
import json

from repro.trace.events import CATEGORIES, TraceEvent
from repro.trace.export import (
    chrome_trace_dict,
    read_jsonl,
    save_chrome_trace,
    save_jsonl,
    write_jsonl,
)


def _events():
    return [
        TraceEvent("hook", "storage.submit_io", 1000, args={"probes": 2},
                   seq=0),
        TraceEvent("monitor.check", "g", 2000, dur=150, phase="X",
                   guardrail="g", args={"violations": 1}, seq=1),
        TraceEvent("action", "SAVE", 2000, guardrail="g",
                   args={"rule": "(x <= 1)", "detail": "k = v"}, seq=2),
        TraceEvent("featurestore.save", "k", 2500,
                   args={"value": object()}, seq=3),
    ]


def test_jsonl_roundtrip():
    buf = io.StringIO()
    count = write_jsonl(_events(), buf)
    assert count == 4
    lines = buf.getvalue().strip().split("\n")
    assert len(lines) == 4
    for line in lines:
        json.loads(line)  # every line is standalone JSON

    back = read_jsonl(io.StringIO(buf.getvalue()))
    assert [e.name for e in back] == [e.name for e in _events()]
    assert back[1].dur == 150
    assert back[1].phase == "X"
    assert back[1].guardrail == "g"
    assert back[2].args["detail"] == "k = v"


def test_jsonl_file_roundtrip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    assert save_jsonl(_events(), path) == 4
    back = read_jsonl(path)
    assert len(back) == 4
    assert back[0].ts == 1000


def test_non_serializable_args_degrade_to_repr():
    buf = io.StringIO()
    write_jsonl(_events(), buf)
    last = json.loads(buf.getvalue().strip().split("\n")[-1])
    assert last["args"]["value"].startswith("<object object")


def test_chrome_trace_is_valid_json_with_expected_phases(tmp_path):
    path = str(tmp_path / "trace.json")
    save_chrome_trace(_events(), path)
    with open(path) as fp:
        data = json.load(fp)  # must parse with plain json.load
    records = data["traceEvents"]

    metadata = [r for r in records if r["ph"] == "M"]
    assert {m["args"]["name"] for m in metadata} >= set(CATEGORIES)

    spans = [r for r in records if r["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["ts"] == 2.0      # 2000 ns -> 2.0 us
    assert spans[0]["dur"] == 0.15    # 150 ns -> 0.15 us

    instants = [r for r in records if r["ph"] == "i"]
    assert len(instants) == 3
    assert all(r["s"] == "t" for r in instants)

    # Every event carries category, thread lane, and JSON-safe args.
    for record in records:
        if record["ph"] == "M":
            continue
        assert record["cat"] in CATEGORIES
        assert isinstance(record["tid"], int)
    action = next(r for r in records if r.get("cat") == "action")
    assert action["args"]["guardrail"] == "g"


def test_chrome_trace_distinct_lanes_per_category():
    data = chrome_trace_dict(_events())
    lanes = {r["cat"]: r["tid"] for r in data["traceEvents"] if r["ph"] != "M"}
    assert len(set(lanes.values())) == len(lanes)

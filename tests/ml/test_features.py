"""Feature normalization and P1 reference generation."""

import numpy as np
import pytest

from repro.ml.features import Normalizer


def test_fit_transform_standardizes():
    rng = np.random.default_rng(0)
    x = rng.normal([5.0, -3.0], [2.0, 0.5], size=(500, 2))
    z = Normalizer().fit_transform(x)
    assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
    assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)


def test_transform_uses_training_stats():
    normalizer = Normalizer().fit(np.array([[0.0], [10.0]]))
    z = normalizer.transform(np.array([[5.0]]))
    assert z[0, 0] == 0.0


def test_constant_feature_does_not_divide_by_zero():
    x = np.array([[1.0, 5.0], [1.0, 7.0]])
    z = Normalizer().fit_transform(x)
    assert np.isfinite(z).all()


def test_unfitted_transform_raises():
    with pytest.raises(RuntimeError):
        Normalizer().transform([[1.0]])


def test_feature_count_mismatch_raises():
    normalizer = Normalizer().fit(np.zeros((4, 2)))
    with pytest.raises(ValueError):
        normalizer.transform(np.zeros((4, 3)))


def test_references_one_per_feature_with_names():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(100, 3))
    refs = Normalizer().fit(x).references(x, names=["a", "b", "c"])
    assert [r.name for r in refs] == ["a", "b", "c"]
    assert all(r.contains(0.0) for r in refs)


def test_references_default_names():
    x = np.random.default_rng(2).normal(size=(50, 2))
    refs = Normalizer().fit(x).references(x)
    assert refs[0].name == "feature_0"


def test_references_name_count_mismatch_raises():
    x = np.zeros((10, 2))
    with pytest.raises(ValueError):
        Normalizer().fit(x).references(x, names=["only_one"])

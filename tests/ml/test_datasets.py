"""Synthetic dataset builders."""

import numpy as np

from repro.ml.datasets import make_classification, make_regression


def test_classification_shapes_and_labels():
    x, y = make_classification(samples=101, features=3)
    assert x.shape == (101, 3)
    assert set(np.unique(y)) == {0, 1}
    assert abs(y.sum() - 50.5) <= 1


def test_classification_separation_increases_distance():
    near, _ = make_classification(class_separation=0.5, seed=0)
    far, labels = make_classification(class_separation=5.0, seed=0)
    gap = np.linalg.norm(
        far[labels == 0].mean(axis=0) - far[labels == 1].mean(axis=0)
    )
    assert gap > 4.0


def test_classification_deterministic_by_seed():
    a, _ = make_classification(seed=7)
    b, _ = make_classification(seed=7)
    assert np.allclose(a, b)


def test_regression_target_matches_weights():
    x, y, w = make_regression(samples=1000, noise=0.0, seed=1)
    assert np.allclose(y, x @ w)


def test_regression_noise_adds_variance():
    _, clean, _ = make_regression(noise=0.0, seed=2)
    _, noisy, _ = make_regression(noise=1.0, seed=2)
    assert noisy.var() > clean.var() * 0.9

"""Tabular Q-learning."""

import pytest

from repro.ml.qlearn import QLearner


def test_requires_positive_actions():
    with pytest.raises(ValueError):
        QLearner(0)


def test_q_values_default_zero():
    learner = QLearner(3)
    assert list(learner.q_values("s")) == [0.0, 0.0, 0.0]


def test_update_moves_toward_target():
    learner = QLearner(2, learning_rate=0.5, discount=0.0)
    learner.update("s", 0, reward=1.0)
    assert learner.q_values("s")[0] == 0.5
    learner.update("s", 0, reward=1.0)
    assert learner.q_values("s")[0] == 0.75


def test_terminal_update_ignores_future():
    learner = QLearner(2, learning_rate=1.0, discount=0.9)
    learner.update("next", 1, reward=10.0)      # make next-state attractive
    learner.update("s", 0, reward=1.0, next_state=None)
    assert learner.q_values("s")[0] == 1.0


def test_discounted_bootstrap():
    learner = QLearner(2, learning_rate=1.0, discount=0.5)
    learner.update("next", 0, reward=4.0)       # Q(next, 0) = 4
    learner.update("s", 1, reward=0.0, next_state="next")
    assert learner.q_values("s")[1] == 2.0


def test_best_action_is_greedy():
    learner = QLearner(3, learning_rate=1.0)
    learner.update("s", 2, reward=5.0)
    assert learner.best_action("s") == 2


def test_epsilon_zero_never_explores():
    learner = QLearner(2, learning_rate=1.0, epsilon=0.0)
    learner.update("s", 1, reward=1.0)
    assert all(learner.choose_action("s") == 1 for _ in range(20))


def test_epsilon_one_explores_uniformly():
    learner = QLearner(4, epsilon=1.0, seed=0)
    actions = {learner.choose_action("s") for _ in range(200)}
    assert actions == {0, 1, 2, 3}


def test_learns_simple_bandit():
    learner = QLearner(2, learning_rate=0.2, epsilon=0.2, seed=1)
    import numpy as np

    rng = np.random.default_rng(0)
    for _ in range(500):
        action = learner.choose_action("s")
        reward = 1.0 if action == 1 else 0.0
        reward += rng.normal(0, 0.1)
        learner.update("s", action, reward)
    assert learner.best_action("s") == 1


def test_state_count_and_reset():
    learner = QLearner(2)
    learner.update("a", 0, 1.0)
    learner.update("b", 0, 1.0)
    assert learner.state_count == 2
    assert learner.update_count == 2
    learner.reset()
    assert learner.state_count == 0

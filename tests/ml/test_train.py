"""Training utilities and metrics."""

import math

import numpy as np
import pytest

from repro.ml.datasets import make_classification
from repro.ml.mlp import Mlp
from repro.ml.train import (
    accuracy,
    binary_cross_entropy,
    confusion_counts,
    mean_squared_error,
    train_classifier,
)


def test_accuracy_basic():
    assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)


def test_accuracy_shape_mismatch_raises():
    with pytest.raises(ValueError):
        accuracy([1, 0], [1])


def test_accuracy_empty_is_nan():
    assert math.isnan(accuracy([], []))


def test_confusion_counts():
    counts = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
    assert counts == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}


def test_binary_cross_entropy_perfect_and_bad():
    good = binary_cross_entropy([0.99, 0.01], [1, 0])
    bad = binary_cross_entropy([0.01, 0.99], [1, 0])
    assert good < 0.05
    assert bad > 2.0


def test_mean_squared_error():
    assert mean_squared_error([1, 2], [1, 4]) == 2.0


def test_train_classifier_validates_lengths():
    with pytest.raises(ValueError):
        train_classifier(Mlp([2, 1]), np.zeros((3, 2)), np.zeros(2))


def test_validation_accuracy_reported():
    x, y = make_classification(samples=200, seed=0)
    mlp = Mlp([x.shape[1], 8, 1], seed=0)
    history = train_classifier(mlp, x, y, epochs=3, validation=(x, y))
    assert all("val_accuracy" in epoch for epoch in history)
    assert history[-1]["val_accuracy"] > 0.5


def test_training_is_seed_deterministic():
    x, y = make_classification(samples=200, seed=1)

    def run():
        mlp = Mlp([x.shape[1], 8, 1], seed=1)
        train_classifier(mlp, x, y, epochs=3, seed=1)
        return mlp.predict(x)

    assert np.allclose(run(), run())


def test_epoch_history_length():
    x, y = make_classification(samples=100, seed=2)
    history = train_classifier(Mlp([x.shape[1], 4, 1], seed=2), x, y, epochs=7)
    assert len(history) == 7
    assert [h["epoch"] for h in history] == list(range(7))

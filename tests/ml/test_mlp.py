"""MLP: forward, gradients, training dynamics, persistence."""

import numpy as np
import pytest

from repro.ml.datasets import make_classification, make_regression
from repro.ml.mlp import Mlp
from repro.ml.train import Adam, Sgd, accuracy, train_classifier


def test_construction_validates():
    with pytest.raises(ValueError):
        Mlp([4])
    with pytest.raises(ValueError):
        Mlp([4, 2], head="tanh")


def test_forward_shapes():
    mlp = Mlp([3, 8, 2], head="softmax")
    out = mlp.predict(np.zeros((5, 3)))
    assert out.shape == (5, 2)


def test_single_example_promoted_to_batch():
    mlp = Mlp([3, 4, 1])
    assert mlp.predict([1.0, 2.0, 3.0]).shape == (1, 1)


def test_sigmoid_outputs_are_probabilities():
    mlp = Mlp([4, 8, 1], head="sigmoid", seed=1)
    out = mlp.predict(np.random.default_rng(0).normal(size=(20, 4)))
    assert ((out > 0) & (out < 1)).all()


def test_softmax_rows_sum_to_one():
    mlp = Mlp([4, 8, 3], head="softmax", seed=1)
    out = mlp.predict(np.random.default_rng(0).normal(size=(10, 4)))
    assert np.allclose(out.sum(axis=1), 1.0)


def test_gradients_match_finite_differences():
    rng = np.random.default_rng(0)
    mlp = Mlp([3, 4, 1], head="sigmoid", seed=2)
    x = rng.normal(size=(8, 3))
    y = rng.integers(0, 2, 8)

    loss, grad_w, grad_b = mlp.loss_and_gradients(x, y)
    eps = 1e-6
    w = mlp.weights[0]
    for index in [(0, 0), (2, 3), (1, 1)]:
        original = w[index]
        w[index] = original + eps
        loss_plus, _, _ = mlp.loss_and_gradients(x, y)
        w[index] = original - eps
        loss_minus, _, _ = mlp.loss_and_gradients(x, y)
        w[index] = original
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert grad_w[0][index] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


def test_training_reduces_loss():
    x, y = make_classification(samples=300, seed=3)
    mlp = Mlp([x.shape[1], 8, 1], head="sigmoid", seed=3)
    history = train_classifier(mlp, x, y, epochs=15, optimizer=Adam(1e-2))
    assert history[-1]["loss"] < history[0]["loss"]


def test_learns_separable_classification():
    x, y = make_classification(samples=500, class_separation=3.0, seed=4)
    mlp = Mlp([x.shape[1], 16, 1], head="sigmoid", seed=4)
    train_classifier(mlp, x, y, epochs=25, optimizer=Adam(1e-2))
    assert accuracy(mlp.predict_class(x), y) > 0.95


def test_multiclass_training():
    rng = np.random.default_rng(5)
    centers = np.array([[0, 0], [4, 0], [0, 4]])
    x = np.vstack([rng.normal(c, 0.5, size=(100, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 100)
    mlp = Mlp([2, 16, 3], head="softmax", seed=5)
    train_classifier(mlp, x, y, epochs=30, optimizer=Adam(1e-2))
    assert accuracy(mlp.predict_class(x), y) > 0.9


def test_regression_fits_linear_target():
    x, y, _ = make_regression(samples=400, noise=0.05, seed=6)
    mlp = Mlp([x.shape[1], 16, 1], head="linear", seed=6)
    optimizer = Adam(5e-3)
    for _ in range(200):
        _, gw, gb = mlp.loss_and_gradients(x, y)
        mlp.apply_gradients(gw, gb, optimizer)
    loss, _, _ = mlp.loss_and_gradients(x, y)
    assert loss < 0.1


def test_predict_class_requires_classifier_head():
    with pytest.raises(ValueError):
        Mlp([2, 1], head="linear").predict_class([[1, 2]])


def test_mac_count():
    assert Mlp([4, 16, 16, 1]).mac_count == 4 * 16 + 16 * 16 + 16 * 1


def test_inference_count_increments():
    mlp = Mlp([2, 2, 1])
    mlp.predict([[0, 0]])
    mlp.predict([[1, 1]])
    assert mlp.inference_count == 2


def test_state_dict_roundtrip_and_clone():
    mlp = Mlp([3, 4, 1], seed=7)
    clone = mlp.clone()
    x = np.random.default_rng(0).normal(size=(5, 3))
    assert np.allclose(mlp.predict(x), clone.predict(x))
    # Mutating the clone does not affect the original.
    clone.weights[0][0, 0] += 1.0
    assert not np.allclose(mlp.predict(x), clone.predict(x))


def test_state_dict_architecture_mismatch_raises():
    state = Mlp([3, 4, 1]).state_dict()
    with pytest.raises(ValueError):
        Mlp([3, 5, 1]).load_state_dict(state)


def test_seed_determinism():
    a = Mlp([3, 4, 1], seed=9)
    b = Mlp([3, 4, 1], seed=9)
    x = np.ones((2, 3))
    assert np.allclose(a.predict(x), b.predict(x))


def test_sgd_momentum_optimizer_works():
    x, y = make_classification(samples=300, seed=8)
    mlp = Mlp([x.shape[1], 8, 1], seed=8)
    history = train_classifier(mlp, x, y, epochs=20,
                               optimizer=Sgd(0.1, momentum=0.9))
    assert history[-1]["loss"] < history[0]["loss"]

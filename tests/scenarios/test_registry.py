"""Registry structure, spec validation, and single-scenario runs."""

import pytest

from repro.scenarios import (
    DOMAINS,
    GUARDRAIL_NAMES,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    run_scenario,
    scenario_names,
    self_check,
)


def test_self_check_is_clean():
    assert self_check() == []


def test_registry_size_and_domain_coverage():
    specs = all_scenarios()
    assert len(specs) >= 24
    covered = {domain for spec in specs for domain in spec.domains}
    assert covered == set(DOMAINS)


def test_names_sorted_and_unique():
    names = scenario_names()
    assert names == sorted(names)
    assert len(names) == len(set(names))


def test_get_scenario_round_trip():
    for name in scenario_names():
        assert get_scenario(name).name == name
    with pytest.raises(KeyError):
        get_scenario("no/such/scenario")


def test_quick_tier_excludes_feedback_pair():
    quick = [spec for spec in all_scenarios() if spec.quick]
    assert len(quick) >= 24
    assert all(spec.kind == "zoo" for spec in quick)
    full_only = [spec for spec in all_scenarios() if not spec.quick]
    assert sorted(spec.name for spec in full_only) == [
        "feedback/coupled/dependency", "feedback/coupled/timer"]


def test_spec_validates_alignment_and_fault():
    with pytest.raises(ValueError):
        ScenarioSpec("bad", ("storage", "cache"), ("quiet",))
    with pytest.raises(ValueError):
        ScenarioSpec("bad", ("storage",), ("quiet",), fault="meteor-strike")


def test_spec_to_dict_is_json_shaped():
    spec = get_scenario("all-five/quiet/clean")
    doc = spec.to_dict()
    assert doc["name"] == "all-five/quiet/clean"
    assert doc["domains"] == list(DOMAINS) or set(doc["domains"]) == set(DOMAINS)
    assert doc["expected"] == spec.expected
    assert doc["quick"] is True


def test_expected_overall_ladder():
    assert get_scenario("storage/drift/clean").expected_overall() == "trip"
    assert get_scenario("storage/quiet/clean").expected_overall() == "allow"
    assert (get_scenario("storage/quiet/corrupt-telemetry")
            .expected_overall() == "inconclusive")
    assert (get_scenario("feedback/coupled/timer")
            .expected_overall() == "trip")
    assert (get_scenario("feedback/coupled/dependency")
            .expected_overall() == "allow")


def test_run_scenario_quiet_host_matches():
    result = run_scenario(get_scenario("storage/quiet/clean"))
    assert result["matched"]
    assert result["overall"] == "allow"
    assert result["verdicts"] == {"zoo-storage-false-submit": "quiet"}
    assert result["domains"]["storage"]["counters"]["completed_ios"] > 0


def test_run_scenario_drift_trips():
    result = run_scenario(get_scenario("storage/drift/clean"))
    assert result["matched"]
    assert result["overall"] == "trip"
    assert result["guardrails"]["zoo-storage-false-submit"]["violations"] > 0


def test_run_scenario_corrupt_goes_inconclusive():
    result = run_scenario(get_scenario("storage/quiet/corrupt-telemetry"))
    assert result["matched"]
    assert result["overall"] == "inconclusive"
    entry = result["guardrails"]["zoo-storage-false-submit"]
    assert entry["violations"] == 0
    assert entry["inconclusive"] == entry["checks"]


def test_run_scenario_cross_product_composes_verdicts():
    result = run_scenario(get_scenario("cache+mm/scan/clean"))
    assert result["matched"]
    assert result["verdicts"] == {"zoo-cache-hit-rate": "trip",
                                  "zoo-mm-tier-hit-rate": "quiet"}
    assert set(result["domains"]) == {"cache", "mm"}


def test_all_five_domains_on_one_kernel():
    result = run_scenario(get_scenario("all-five/quiet/clean"))
    assert result["matched"]
    assert set(result["domains"]) == set(DOMAINS)
    assert set(result["guardrails"]) == set(GUARDRAIL_NAMES.values())
    assert all(v == "quiet" for v in result["verdicts"].values())

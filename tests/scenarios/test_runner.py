"""Pooled scenario runner: determinism across jobs and reruns."""

import json

import pytest

from repro.scenarios import (
    deterministic_document,
    run_scenarios,
    select_scenarios,
)

#: A small but representative selection: single-domain quiet + trip +
#: inconclusive plus one cross-product, cheap enough to run twice per test.
_SELECTION = "storage"


def _dumps(document):
    return json.dumps(deterministic_document(document), sort_keys=True)


def test_select_scenarios_filters_and_sorts():
    specs = select_scenarios(filter_substring=_SELECTION, quick=True)
    assert specs
    names = [spec.name for spec in specs]
    assert names == sorted(names)
    assert all(_SELECTION in name for name in names)
    assert all(spec.quick for spec in specs)


def test_document_identical_across_jobs_and_reruns():
    specs = select_scenarios(filter_substring=_SELECTION, quick=True)
    one = run_scenarios(specs, jobs=1)
    four = run_scenarios(specs, jobs=4)
    again = run_scenarios(specs, jobs=4)
    assert _dumps(one) == _dumps(four) == _dumps(again)
    assert one["matched"] == one["count"] == len(specs)
    assert one["errors"] == []


def test_document_schema_and_ordering():
    specs = select_scenarios(filter_substring=_SELECTION, quick=True)
    document = run_scenarios(specs, jobs=2)
    assert document["schema"] == "repro-scenarios/v1"
    names = [result["name"] for result in document["scenarios"]]
    assert names == sorted(names)
    assert set(document["info"]["wall_time_s"]) == set(names)
    assert "info" not in deterministic_document(document)


def test_runner_reports_scenario_errors():
    """A scenario that cannot complete lands in ``errors``, not a raise."""
    from repro.scenarios import get_scenario

    spec = get_scenario("storage/quiet/clean")
    document = run_scenarios([spec], jobs=1, timeout_s=0.000001)
    assert document["matched"] == 0
    assert [error["name"] for error in document["errors"]] == [spec.name]


def test_runner_rejects_broken_registry(monkeypatch):
    import repro.scenarios.runner as runner_module

    monkeypatch.setattr(runner_module, "self_check",
                        lambda: ["synthetic problem"])
    with pytest.raises(ValueError, match="synthetic problem"):
        run_scenarios(select_scenarios(quick=True), jobs=1)

"""grctl scenarios: the uniform 0/1/2 exit-code contract, pinned (S2).

0 — every selected scenario ran and matched its expected verdicts;
1 — a verdict mismatch or a scenario error (the thing the subcommand
    exists to detect);
2 — usage error: unknown scenario name, bad ``--jobs``, empty selection,
    unwritable ``--out``, ``describe`` without a name.
"""

import io
import json

import pytest

from repro.tools.grctl import main

#: Cheap, representative run selection (4 single-domain storage scenarios).
RUN_ARGS = ["--quick", "--filter", "storage/"]


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_list_enumerates_at_least_24_covering_all_domains():
    code, stdout = run(["scenarios", "list", "--json"])
    assert code == 0
    specs = json.loads(stdout)
    assert len(specs) >= 24
    covered = {domain for spec in specs for domain in spec["domains"]}
    assert covered == {"storage", "cache", "mm", "net", "sched"}


def test_list_human_rendering_counts():
    code, stdout = run(["scenarios", "list"])
    assert code == 0
    assert "scenario(s)" in stdout


def test_describe_prints_the_spec():
    code, stdout = run(["scenarios", "describe", "storage/drift/clean"])
    assert code == 0
    assert "storage/drift/clean" in stdout
    assert "expected:" in stdout
    code, stdout = run(["scenarios", "describe", "storage/drift/clean",
                        "--json"])
    assert code == 0
    assert json.loads(stdout)["name"] == "storage/drift/clean"


def test_run_exit_0_when_all_match():
    code, stdout = run(["scenarios", "run"] + RUN_ARGS)
    assert code == 0
    assert "0 mismatched, 0 error(s)" in stdout


def test_run_json_byte_identical_across_jobs_and_reruns():
    outputs = []
    for jobs in ("1", "4", "4"):
        code, stdout = run(["scenarios", "run", "--json", "--jobs", jobs]
                           + RUN_ARGS)
        assert code == 0
        outputs.append(stdout)
    assert outputs[0] == outputs[1] == outputs[2]
    document = json.loads(outputs[0])
    assert document["schema"] == "repro-scenarios/v1"
    assert "info" not in document  # nothing operational in the bytes


def test_run_out_writes_full_document(tmp_path):
    path = str(tmp_path / "SCENARIOS.json")
    code, _ = run(["scenarios", "run", "--out", path] + RUN_ARGS)
    assert code == 0
    with open(path) as handle:
        document = json.load(handle)
    assert document["matched"] == document["count"]
    assert "info" in document  # the file keeps the timing extras


def test_run_exit_1_on_verdict_mismatch(monkeypatch):
    """A scenario whose verdicts disagree with the registry -> exit 1.

    Pool children rebuild the registry from source, so the disagreement is
    staged at the document layer: the CLI must exit on ``matched`` falling
    short of ``count``, however the mismatch arose.
    """
    import repro.scenarios as scenarios_module

    real = scenarios_module.run_scenarios

    def doctored(specs, **kwargs):
        document = real(specs, **kwargs)
        first = document["scenarios"][0]
        first["matched"] = False
        document["matched"] -= 1
        document["mismatched"] = [first["name"]]
        return document

    monkeypatch.setattr(scenarios_module, "run_scenarios", doctored)
    code, stdout = run(["scenarios", "run", "--quick", "--filter",
                        "storage/quiet/clean"])
    assert code == 1
    assert "MISMATCH" in stdout


def test_run_exit_1_on_scenario_error():
    code, stdout = run(["scenarios", "run", "--timeout", "0.000001",
                        "--quick", "--filter", "storage/quiet/clean"])
    assert code == 1
    assert "ERROR" in stdout


@pytest.mark.parametrize("argv", [
    ["scenarios", "run", "no/such/scenario"],
    ["scenarios", "describe", "no/such/scenario"],
    ["scenarios", "describe"],
    ["scenarios", "run", "--jobs", "0", "--quick"],
    ["scenarios", "run", "--filter", "zzz-matches-nothing"],
    ["scenarios", "list", "--filter", "zzz-matches-nothing"],
])
def test_usage_errors_exit_2(argv):
    assert run(argv)[0] == 2


def test_run_unwritable_out_exits_2_before_running(tmp_path):
    path = str(tmp_path / "no-such-dir" / "SCENARIOS.json")
    code, _ = run(["scenarios", "run", "--out", path] + RUN_ARGS)
    assert code == 2

"""§6 feedback-loop study: oscillation, damping, and idle-check accounting.

Everything here is pinned at the registry's fixed seed (17).  The physics:
each false submit files retry debt onto the bottleneck link; under
timer-driven checking the storage guardrail's detection delay lets the
debt overdrive the link, the loss guardrail re-enables the broken model,
and the pair alternates for the whole run.  Dependency-driven checking
fires the storage check off the feature-store write, catches the drift
within the drain headroom, and the loop damps after a single trip.
"""

import pytest

from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.feedback import (
    A_NAME,
    B_NAME,
    run_feedback_study,
    run_idle_check_study,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def timer_study():
    return run_feedback_study("timer", seed=17, duration_s=40.0)


@pytest.fixture(scope="module")
def dependency_study():
    return run_feedback_study("dependency", seed=17, duration_s=40.0)


def test_timer_mode_oscillates(timer_study):
    study = timer_study
    assert study["alternations"] >= 3
    assert not study["converged"]
    assert study["tail_trips"] > 0  # still thrashing in the final quarter
    # Strict alternation: every trip flips which guardrail fired.
    trips = study["trip_sequence"]
    assert set(trips) == {A_NAME, B_NAME}
    assert all(a != b for a, b in zip(trips, trips[1:]))


def test_dependency_mode_converges(dependency_study):
    study = dependency_study
    assert study["converged"]
    assert study["alternations"] == 0
    assert study["tail_trips"] == 0
    # Exactly one trip: the genuine post-drift detection by the storage
    # guardrail, which turns the model off for good.
    assert study["trip_sequence"] == [A_NAME]
    assert study["ml_enabled_final"] is False


def test_dependency_detection_is_faster(timer_study, dependency_study):
    """Dependency checking catches the drift no later than the timer does,
    and the run files strictly less retry debt onto the link."""
    assert (dependency_study["first_trip_s"]
            <= timer_study["first_trip_s"] + 1.0)
    assert (dependency_study["retry_debt_filed_mbit"]
            < timer_study["retry_debt_filed_mbit"])


def test_idle_check_study_shows_reduction():
    """On a quiet host the timer burns idle checks; dependency burns none.

    ``false_submit_rate`` is never written (model off, no drift), so every
    timer-driven storage check re-reads unchanged keys.  The dependency
    trigger simply never fires for it.
    """
    timer = run_idle_check_study("timer", seed=17, duration_s=40.0)
    dependency = run_idle_check_study("dependency", seed=17, duration_s=40.0)
    assert timer["trips"] == dependency["trips"] == 0
    assert timer["idle_checks"] > 0
    assert dependency["idle_checks"] == 0
    assert dependency["checks_total"] < timer["checks_total"]


def test_feedback_scenarios_match_registry():
    timer = run_scenario(get_scenario("feedback/coupled/timer"))
    dependency = run_scenario(get_scenario("feedback/coupled/dependency"))
    assert timer["matched"]
    assert timer["verdicts"] == {"behavior": "oscillates"}
    assert timer["overall"] == "trip"
    assert dependency["matched"]
    assert dependency["verdicts"] == {"behavior": "converges"}
    assert dependency["overall"] == "allow"
    # The study payload rides along for benchmarks and docs.
    assert timer["study"]["alternations"] >= 3
    assert dependency["study"]["tail_trips"] == 0

"""Declarative scenario specs and the single-scenario runner.

A :class:`ScenarioSpec` names one reproducible experiment: which policy
domains to compose on one kernel, which workload and policy variant each
runs, an optional fault plan, a seed, and the *expected* per-guardrail
verdict.  Running one returns a deterministic JSON-friendly result dict;
``matched`` records whether reality agreed with the registry's
expectations, which is what ``grctl scenarios run`` exits on.

Verdict vocabulary per guardrail:

- ``trip`` — at least one rule violation was dispatched;
- ``inconclusive`` — no violation, but at least half the checks could not
  evaluate (missing/NaN telemetry, e.g. under ``corrupt-telemetry``);
- ``quiet`` — checks ran and passed.

The scenario's ``overall`` verdict collapses those for the eval harness:
any trip → ``trip``, else any inconclusive → ``inconclusive``, else
``allow`` — the same ladder :mod:`repro.eval` uses for host episodes.
"""

from repro.sim.units import SECOND
from repro.trace.tracer import TRACER

FAULT_CLEAN = "clean"
FAULT_CORRUPT = "corrupt-telemetry"


class ScenarioSpec:
    """One named, seeded, expectation-carrying scenario (immutable-ish)."""

    __slots__ = ("name", "kind", "domains", "workloads", "policies", "fault",
                 "seed", "duration_s", "expected", "description", "quick")

    def __init__(self, name, domains, workloads, fault=FAULT_CLEAN,
                 policies=None, seed=1, duration_s=8.0, expected=None,
                 kind="zoo", description="", quick=True):
        self.name = str(name)
        self.kind = str(kind)
        self.domains = tuple(domains)
        self.workloads = tuple(workloads)
        self.policies = (tuple(policies) if policies is not None
                         else ("learned",) * len(self.domains))
        if not (len(self.domains) == len(self.workloads)
                == len(self.policies)):
            raise ValueError(
                "scenario {!r}: domains/workloads/policies must align"
                .format(name))
        if fault not in (FAULT_CLEAN, FAULT_CORRUPT):
            raise ValueError("scenario {!r}: unknown fault {!r}"
                             .format(name, fault))
        self.fault = fault
        self.seed = int(seed)
        self.duration_s = float(duration_s)
        self.expected = dict(expected or {})
        self.description = str(description)
        self.quick = bool(quick)

    def to_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "domains": list(self.domains),
            "workloads": list(self.workloads),
            "policies": list(self.policies),
            "fault": self.fault,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "expected": dict(self.expected),
            "description": self.description,
            "quick": self.quick,
        }

    def expected_overall(self):
        """Collapse per-guardrail expectations to the eval ladder."""
        values = set(self.expected.values())
        if self.kind == "feedback":
            return "trip" if self.expected.get("behavior") == "oscillates" \
                else "allow"
        if "trip" in values:
            return "trip"
        if "inconclusive" in values:
            return "inconclusive"
        return "allow"

    def __repr__(self):
        return "ScenarioSpec({!r})".format(self.name)


def monitor_verdict(monitor):
    """Collapse one monitor's counters to trip/inconclusive/quiet."""
    if monitor.violation_count > 0:
        return "trip"
    if monitor.check_count == 0 \
            or 2 * monitor.inconclusive_count >= monitor.check_count:
        return "inconclusive"
    return "quiet"


def run_scenario(spec):
    """Run one scenario to completion; returns its deterministic result."""
    if spec.kind == "feedback":
        from repro.scenarios.feedback import run_feedback_scenario

        return run_feedback_scenario(spec)

    from repro.kernel import Kernel
    from repro.scenarios.domains import attach_domain

    duration_ns = int(spec.duration_s * SECOND)
    kernel = Kernel(seed=spec.seed)
    if TRACER.active:
        TRACER.emit("scenarios", "run.begin", 0,
                    args={"name": spec.name, "fault": spec.fault})
    rigs = [
        attach_domain(kernel, domain, workload=workload, policy=policy,
                      duration_ns=duration_ns)
        for domain, workload, policy
        in zip(spec.domains, spec.workloads, spec.policies)
    ]
    if spec.fault == FAULT_CORRUPT:
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultPlan

        flags = tuple("corrupt@{}".format(key)
                      for rig in rigs for key in rig.watched_keys)
        plan = FaultPlan.from_flags(flags, seed=spec.seed)
        FaultInjector(kernel, plan).install()
    kernel.run(until=duration_ns)

    guardrails, verdicts = {}, {}
    for rig in rigs:
        for monitor in rig.monitors:
            verdict = monitor_verdict(monitor)
            verdicts[monitor.name] = verdict
            guardrails[monitor.name] = {
                "domain": rig.domain,
                "checks": monitor.check_count,
                "violations": monitor.violation_count,
                "inconclusive": monitor.inconclusive_count,
                "actions": monitor.action_dispatch_count,
                "verdict": verdict,
            }
    if "trip" in verdicts.values():
        overall = "trip"
    elif "inconclusive" in verdicts.values():
        overall = "inconclusive"
    else:
        overall = "allow"
    result = {
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "duration_s": spec.duration_s,
        "fault": spec.fault,
        "domains": {
            rig.domain: {"workload": rig.workload, "policy": rig.policy,
                         "counters": rig.counters()}
            for rig in rigs
        },
        "guardrails": guardrails,
        "expected": dict(spec.expected),
        "verdicts": verdicts,
        "overall": overall,
        "matched": verdicts == spec.expected,
    }
    if TRACER.active:
        TRACER.emit("scenarios", "run.end", kernel.engine.now,
                    args={"name": spec.name, "overall": overall,
                          "matched": result["matched"]})
    return result

"""repro.scenarios: the cross-policy scenario zoo and the §6 study.

Three pillars over the kernel/policies tree:

- **domains** — per-domain composition builders (storage, cache, tiered
  memory, congestion control, scheduling) that stack several learned
  policies, baselines, and guardrails on one kernel;
- **registry/spec/runner** — ≥24 named, seeded scenarios with expected
  verdicts, runnable deterministically under the bench pool
  (``grctl scenarios list|describe|run``);
- **feedback** — the §6 guardrail-feedback study: coupled storage/net
  guardrails that oscillate under timer-driven checking and damp under
  dependency-driven checking, plus the idle-check accounting.
"""

from repro.scenarios.domains import DOMAINS, DomainRig, attach_domain
from repro.scenarios.feedback import (
    IdleCheckAuditor,
    RetryDebtBridge,
    build_feedback_kernel,
    run_feedback_study,
    run_idle_check_study,
)
from repro.scenarios.registry import (
    GUARDRAIL_NAMES,
    all_scenarios,
    get_scenario,
    scenario_names,
    self_check,
)
from repro.scenarios.runner import (
    deterministic_document,
    run_scenarios,
    select_scenarios,
)
from repro.scenarios.spec import ScenarioSpec, monitor_verdict, run_scenario

__all__ = [
    "DOMAINS",
    "DomainRig",
    "GUARDRAIL_NAMES",
    "IdleCheckAuditor",
    "RetryDebtBridge",
    "ScenarioSpec",
    "all_scenarios",
    "attach_domain",
    "build_feedback_kernel",
    "deterministic_document",
    "get_scenario",
    "monitor_verdict",
    "run_feedback_study",
    "run_idle_check_study",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
    "select_scenarios",
    "self_check",
]

"""The named scenario registry: the cross-policy zoo plus the §6 pair.

Names follow ``<domains>/<workload>/<fault>`` (``cc`` is the net domain's
congestion-control alias in cross-product names, matching the paper's
vocabulary).  Every entry carries a fixed seed and the expected
per-guardrail verdict, so ``grctl scenarios run`` is a regression test:
exit 0 means reality still matches the registry.
"""

from repro.scenarios.spec import FAULT_CLEAN, FAULT_CORRUPT, ScenarioSpec

#: domain -> the guardrail its rig loads (see ``domains.py`` spec texts).
GUARDRAIL_NAMES = {
    "storage": "zoo-storage-false-submit",
    "cache": "zoo-cache-hit-rate",
    "mm": "zoo-mm-tier-hit-rate",
    "net": "zoo-net-utilization",
    "sched": "zoo-sched-starvation",
}

#: each domain's "misbehaving workload" token (see ``domains.py``).
STRESS_WORKLOADS = {
    "storage": "drift",
    "cache": "scan",
    "mm": "random-write",
    "net": "drift",
    "sched": "flood",
}

_ZOO_DOMAINS = ("storage", "cache", "mm", "net", "sched")


def _zoo(name, domains, workloads, fault, seed, expected, description,
         quick=True):
    return ScenarioSpec(
        name, domains, workloads, fault=fault, seed=seed,
        expected={GUARDRAIL_NAMES[domain]: verdict
                  for domain, verdict in zip(domains, expected)},
        kind="zoo", description=description, quick=quick)


def _build_registry():
    specs = []

    # -- one domain at a time: quiet / stress / blinded-telemetry ----------
    for index, domain in enumerate(_ZOO_DOMAINS):
        stress = STRESS_WORKLOADS[domain]
        seed = 100 + index
        specs.append(_zoo(
            "{}/quiet/clean".format(domain), (domain,), ("quiet",),
            FAULT_CLEAN, seed, ("quiet",),
            "Healthy {} host: learned policy within its envelope, the "
            "guardrail stays quiet.".format(domain)))
        specs.append(_zoo(
            "{}/{}/clean".format(domain, stress), (domain,), (stress,),
            FAULT_CLEAN, seed + 10, ("trip",),
            "The {} workload pushes the learned {} policy out of its "
            "envelope; the guardrail trips.".format(stress, domain)))
        specs.append(_zoo(
            "{}/quiet/corrupt-telemetry".format(domain), (domain,),
            ("quiet",), FAULT_CORRUPT, seed + 20, ("inconclusive",),
            "Healthy {} host with its watched telemetry corrupted to NaN: "
            "checks come back inconclusive, not quiet.".format(domain)))

    # -- the extra storage burst lane: load is not model failure -----------
    specs.append(_zoo(
        "storage/burst/clean", ("storage",), ("burst",), FAULT_CLEAN, 140,
        ("quiet",),
        "A 900 IOPS burst deepens queues but the device slow fraction is "
        "time-driven, so decision quality holds: the guardrail correctly "
        "refuses to confuse load with model failure."))

    # -- cross-products: several domains on one kernel ---------------------
    specs.append(_zoo(
        "cache+storage/quiet/clean", ("cache", "storage"),
        ("quiet", "quiet"), FAULT_CLEAN, 150, ("quiet", "quiet"),
        "Cache and storage policies coexist on one feature store; both "
        "guardrails stay quiet."))
    specs.append(_zoo(
        "cache+storage/burst/corrupt-telemetry", ("cache", "storage"),
        ("burst", "burst"), FAULT_CORRUPT, 151,
        ("inconclusive", "inconclusive"),
        "Bursty cache scans and GC storms under corrupted telemetry: both "
        "guardrails go inconclusive instead of tripping."))
    specs.append(_zoo(
        "sched+cc/drift/clean", ("sched", "net"), ("quiet", "drift"),
        FAULT_CLEAN, 152, ("quiet", "trip"),
        "Scheduler stays healthy while the link capacity drifts under the "
        "stubborn congestion controller; only the net guardrail trips."))
    specs.append(_zoo(
        "storage+net/drift/clean", ("storage", "net"), ("drift", "drift"),
        FAULT_CLEAN, 153, ("trip", "trip"),
        "Device drift and link-capacity drift land together; both "
        "guardrails trip independently on one kernel."))
    specs.append(_zoo(
        "cache+mm/scan/clean", ("cache", "mm"), ("scan", "quiet"),
        FAULT_CLEAN, 154, ("trip", "quiet"),
        "A one-shot scan wrecks the cache hit rate while the tiered-memory "
        "hot set stays healthy: one trip, one quiet."))
    specs.append(_zoo(
        "mm+sched/quiet/clean", ("mm", "sched"), ("quiet", "quiet"),
        FAULT_CLEAN, 155, ("quiet", "quiet"),
        "Tiered memory and the scheduler coexist quietly."))
    specs.append(_zoo(
        "all-five/quiet/clean", _ZOO_DOMAINS, ("quiet",) * 5, FAULT_CLEAN,
        160, ("quiet",) * 5,
        "All five policy domains on one kernel, all healthy: the full "
        "multi-policy host, every guardrail quiet."))
    specs.append(_zoo(
        "all-five/stress/clean", _ZOO_DOMAINS,
        tuple(STRESS_WORKLOADS[d] for d in _ZOO_DOMAINS), FAULT_CLEAN,
        161, ("trip",) * 5,
        "Every domain pushed out of its envelope at once; all five "
        "guardrails trip concurrently."))

    # -- the §6 feedback-loop pair -----------------------------------------
    specs.append(ScenarioSpec(
        "feedback/coupled/timer", ("storage", "net"), ("timer", "timer"),
        fault=FAULT_CLEAN, seed=17, duration_s=40.0,
        expected={"behavior": "oscillates"}, kind="feedback",
        description="Coupled storage/net guardrails under timer-driven "
                    "checking: detection delay converts retry debt into "
                    "loss, and the pair oscillates for the whole run.",
        quick=False))
    specs.append(ScenarioSpec(
        "feedback/coupled/dependency", ("storage", "net"),
        ("dependency", "dependency"), fault=FAULT_CLEAN, seed=17,
        duration_s=40.0, expected={"behavior": "converges"},
        kind="feedback",
        description="The same coupled rig under dependency-driven "
                    "checking: the storage guardrail fires off the "
                    "feature-store write, debt stays under the drain "
                    "headroom, and the loop damps after one trip.",
        quick=False))
    return specs


_REGISTRY = None


def all_scenarios():
    """Every registered :class:`ScenarioSpec`, sorted by name."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = sorted(_build_registry(), key=lambda spec: spec.name)
    return list(_REGISTRY)


def scenario_names():
    return [spec.name for spec in all_scenarios()]


def get_scenario(name):
    for spec in all_scenarios():
        if spec.name == name:
            return spec
    raise KeyError("no scenario named {!r}".format(name))


def self_check():
    """Structural invariants of the registry; returns a list of problems."""
    problems = []
    specs = all_scenarios()
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        problems.append("duplicate scenario names")
    if len(specs) < 24:
        problems.append("registry has {} scenarios, needs >= 24"
                        .format(len(specs)))
    covered = {domain for spec in specs for domain in spec.domains}
    missing = set(_ZOO_DOMAINS) - covered
    if missing:
        problems.append("domains never exercised: {}"
                        .format(", ".join(sorted(missing))))
    for spec in specs:
        if spec.kind == "feedback":
            if spec.expected.get("behavior") not in ("oscillates",
                                                     "converges"):
                problems.append("{}: feedback scenarios expect a "
                                "behavior".format(spec.name))
            continue
        expected_names = {GUARDRAIL_NAMES[domain]
                          for domain in spec.domains}
        if set(spec.expected) != expected_names:
            problems.append("{}: expected verdicts do not cover its "
                            "guardrails".format(spec.name))
        bad = [verdict for verdict in spec.expected.values()
               if verdict not in ("quiet", "trip", "inconclusive")]
        if bad:
            problems.append("{}: unknown verdicts {}"
                            .format(spec.name, sorted(set(bad))))
    return problems

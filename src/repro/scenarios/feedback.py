"""The §6 feedback-loop study: coupled guardrails, timer vs. dependency.

Two guardrails watch *coupled* metrics on one kernel:

- **feedback-storage-false-submit** (guardrail A) watches the storage
  stand-in's ``false_submit_rate``; on a violation it SAVEs
  ``ml_enabled = false``, disabling the model.
- **feedback-net-retry-loss** (guardrail B) watches the bottleneck link's
  smoothed loss; on a violation it SAVEs ``ml_enabled = true``, restoring
  the model ("the fallback is hurting throughput, put the model back").

The coupling is physical: every false submit files retry debt, and the
link's controller drains that debt over a fixed horizon, so the *size* of
the loss spike scales with how much debt piled up — i.e. with guardrail
A's detection delay.  After the Figure-2 device drift breaks the model:

- under **timer-driven** checking A detects up to a full period late, the
  accumulated debt overdrives the link past capacity, B sees the loss and
  re-enables the broken model, and the pair oscillates for the rest of
  the run (≥3 alternating trips);
- under **dependency-driven** checking (:class:`DependencyTrigger` armed
  on the rules' exact read sets) A fires within milliseconds of the rate
  crossing its bound, the debt stays under the drain headroom, B never
  trips, and the loop damps after A's single trip.

Dependency checking is also the §6 perf win: once the model is off,
``false_submit_rate`` stops changing and A performs *zero* further
checks, where the timer burns one wasted check per period forever.
:class:`IdleCheckAuditor` counts those wasted checks (a check whose
watched-key versions did not change since the previous check completed);
``bench_scenarios.py`` gates on the reduction.
"""

from repro.core.dependency import convert_to_dependency_triggered, rule_load_keys
from repro.sim.units import SECOND

GUARDRAIL_A = """
guardrail feedback-storage-false-submit {
  // Listing-2 shape plus the guard clause: once the model is off the rule
  // passes, so the guardrail does not re-trip on its own remedy.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.2 || LOAD(ml_enabled) == false },
  action: {
    SAVE(ml_enabled, false),
    REPORT()
  }
}
"""

GUARDRAIL_B = """
guardrail feedback-net-retry-loss {
  // The coupled loop: sustained loss while the fallback is active reads
  // as "the remedy is hurting the network", so put the model back.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(net.loss.avg) <= 0.05 || LOAD(ml_enabled) == true },
  action: {
    SAVE(ml_enabled, true),
    REPORT()
  }
}
"""

A_NAME = "feedback-storage-false-submit"
B_NAME = "feedback-net-retry-loss"


def guarded_standin_policy(kernel, inference_ns=2_000):
    """The stand-in learned policy, gated on the ``ml_enabled`` flag.

    Enabled: shortest-queue with ``predicted_fast=True`` on every submit
    (so false submits happen at the volume's slow fraction).  Disabled:
    plain round-robin, ``used_model=False`` — no false-submit accounting,
    which is what lets ``false_submit_rate`` go quiet after A's remedy.
    """
    from repro.kernel.storage import PickDecision

    state = {"rr": 0}

    def pick(volume):
        if bool(kernel.store.load("ml_enabled", default=True)):
            index = min(range(len(volume.devices)),
                        key=lambda i: volume.devices[i].queue_depth)
            return PickDecision(index, used_model=True, predicted_fast=True,
                                inference_ns=inference_ns)
        index = state["rr"] % len(volume.devices)
        state["rr"] += 1
        return PickDecision(index)

    return pick


class RetryDebtBridge:
    """The physical coupling between the two guardrails' metrics.

    Every false submit files ``per_submit_mbit`` of retry traffic into a
    backlog; the link controller offers ``base_mbps`` plus enough extra to
    drain the backlog over ``drain_horizon_s``.  Headroom above base is
    finite, so a backlog larger than
    ``(capacity - base) * drain_horizon`` overdrives the link and shows
    up as loss — detection delay converts directly into spike size.
    """

    def __init__(self, kernel, link, base_mbps=60.0, per_submit_mbit=0.5,
                 drain_horizon_s=2.0):
        self.kernel = kernel
        self.link = link
        self.base_mbps = float(base_mbps)
        self.per_submit_mbit = float(per_submit_mbit)
        self.drain_horizon_s = float(drain_horizon_s)
        self.backlog_mbit = 0.0
        self.filed_mbit = 0.0
        kernel.store.subscribe(self._on_save)

    def _on_save(self, key, value, now):
        if key == "false_submit" and value:
            self.backlog_mbit += self.per_submit_mbit
            self.filed_mbit += self.per_submit_mbit

    def controller(self, observation):
        """CC slot implementation: base rate plus backlog drain."""
        extra = self.backlog_mbit / self.drain_horizon_s
        epoch_s = self.link.rtt / SECOND
        self.backlog_mbit = max(0.0, self.backlog_mbit - extra * epoch_s)
        return self.base_mbps + extra


class IdleCheckAuditor:
    """Counts checks whose watched keys did not change between checks.

    The stamp is taken *after* each check completes (including any action
    the check dispatched), so a check is "idle" exactly when the state it
    consumed is the state the previous check left behind — §6's wasted
    periodic check on an idle metric.
    """

    def __init__(self, kernel):
        self.store = kernel.store
        self.stats = {}

    def watch(self, monitor):
        keys = sorted(rule_load_keys(monitor.compiled.spec))
        entry = {"keys": keys, "checks": 0, "idle": 0}
        self.stats[monitor.name] = entry
        inner = monitor.check
        state = {"stamp": None}

        def audited_check(payload=None):
            stamp = tuple(self.store.version(key) for key in keys)
            entry["checks"] += 1
            if stamp == state["stamp"]:
                entry["idle"] += 1
            result = inner(payload)
            state["stamp"] = tuple(self.store.version(key) for key in keys)
            return result

        monitor.check = audited_check

    def total(self, field):
        return sum(entry[field] for entry in self.stats.values())


def build_feedback_kernel(mode, seed=17, duration_s=40.0, drift_at_s=3.0,
                          rate_ios=800, capacity_mbps=100.0, ml_start=True,
                          a_spacing_ns=int(0.1 * SECOND),
                          b_spacing_ns=1 * SECOND):
    """Compose the coupled rig; returns (kernel, monitors, bridge, auditor)."""
    if mode not in ("timer", "dependency"):
        raise ValueError("mode must be 'timer' or 'dependency', got {!r}"
                         .format(mode))
    from repro.kernel import Kernel
    from repro.kernel.net import BottleneckLink
    from repro.kernel.storage import (
        DeviceProfile,
        PoissonWorkload,
        ReplicatedVolume,
        SsdDevice,
        schedule_profile_change,
    )

    duration_ns = int(duration_s * SECOND)
    kernel = Kernel(seed=seed)
    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("ssd{}".format(i)),
                  "ssd{}".format(i), DeviceProfile.pre_drift())
        for i in range(3)
    ]
    volume = kernel.attach("storage", ReplicatedVolume(kernel, devices))
    # Both rules LOAD(ml_enabled); seed it so the guard clauses evaluate
    # (a missing key reads as missing data -> inconclusive checks).
    kernel.store.save("ml_enabled", bool(ml_start))
    volume.install_policy("storage.guarded_standin",
                          guarded_standin_policy(kernel))
    if drift_at_s is not None:
        schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                                int(drift_at_s * SECOND))
    PoissonWorkload(kernel, volume, [(duration_ns, rate_ios)]).start()

    link = kernel.attach("net", BottleneckLink(kernel,
                                               capacity_mbps=capacity_mbps))
    kernel.store.derive_moving_average("net.loss", window=8)
    bridge = RetryDebtBridge(kernel, link)
    kernel.functions.register_implementation("net.retry_drain",
                                             bridge.controller)
    kernel.functions.replace(link.CC_SLOT, "net.retry_drain")
    link.start()

    monitor_a = kernel.guardrails.load(GUARDRAIL_A)
    monitor_b = kernel.guardrails.load(GUARDRAIL_B)
    if mode == "dependency":
        # Convert after one full rate window: a dependency trigger fires on
        # the very first source save, when the 1 s window holds a handful
        # of samples and one slow I/O reads as a >0.2 "rate" — a
        # hair-trigger trip on sparse data, not a real detection.  The
        # timer mode's first check is at 1 s anyway, so warm-up is
        # symmetric across modes.
        def convert():
            convert_to_dependency_triggered(monitor_a,
                                            min_spacing=a_spacing_ns)
            convert_to_dependency_triggered(monitor_b,
                                            min_spacing=b_spacing_ns)

        kernel.engine.schedule(1 * SECOND, convert)
    auditor = IdleCheckAuditor(kernel)
    auditor.watch(monitor_a)
    auditor.watch(monitor_b)
    return kernel, (monitor_a, monitor_b), bridge, auditor


def run_feedback_study(mode, seed=17, duration_s=40.0, **kwargs):
    """Run one checking mode to completion; returns the §6 measurements.

    ``trip_sequence`` is the time-ordered list of guardrail names that
    dispatched their SAVE remedy; ``alternations`` counts adjacent pairs
    where control bounced between the two guardrails — the §6 oscillation
    signature.  ``converged`` means the run's damping held: at most one
    trip, or nothing tripped in the final quarter of the run.
    """
    kernel, monitors, bridge, auditor = build_feedback_kernel(
        mode, seed=seed, duration_s=duration_s, **kwargs)
    duration_ns = int(duration_s * SECOND)
    kernel.run(until=duration_ns)

    saves = kernel.reporter.notes_for(kind="SAVE")
    trip_sequence = [note["guardrail"] for note in saves]
    trip_times = [note["time"] for note in saves]
    alternations = sum(
        1 for previous, current in zip(trip_sequence, trip_sequence[1:])
        if previous != current
    )
    tail_start = duration_ns - duration_ns // 4
    tail_trips = sum(1 for time in trip_times if time >= tail_start)
    converged = len(trip_sequence) <= 1 or tail_trips == 0

    monitor_a, monitor_b = monitors
    result = {
        "mode": mode,
        "seed": seed,
        "duration_s": duration_s,
        "trips": len(trip_sequence),
        "trip_sequence": trip_sequence,
        "first_trip_s": (trip_times[0] / SECOND) if trip_times else None,
        "trips_a": trip_sequence.count(A_NAME),
        "trips_b": trip_sequence.count(B_NAME),
        "alternations": alternations,
        "tail_trips": tail_trips,
        "converged": converged,
        "checks_total": auditor.total("checks"),
        "idle_checks": auditor.total("idle"),
        "per_guardrail": {
            name: {
                "checks": auditor.stats[name]["checks"],
                "idle_checks": auditor.stats[name]["idle"],
                "violations": monitor.violation_count,
            }
            for name, monitor in ((monitor_a.name, monitor_a),
                                  (monitor_b.name, monitor_b))
        },
        "retry_debt_filed_mbit": round(bridge.filed_mbit, 3),
        "ml_enabled_final": bool(kernel.store.load("ml_enabled",
                                                   default=True)),
    }
    return result


def run_idle_check_study(mode, seed=17, duration_s=40.0, rate_ios=800):
    """§6's perf claim on a quiet host: checks on a metric that never moves.

    Same rig, model disabled from the start, no drift: the storage
    guardrail's ``false_submit_rate`` is never written, so every periodic
    check of it is wasted work.  Timer mode performs one wasted check per
    period for the whole run; dependency mode performs none (nothing ever
    fires the trigger).  Returns per-mode check/idle counts.
    """
    kernel, monitors, _bridge, auditor = build_feedback_kernel(
        mode, seed=seed, duration_s=duration_s, rate_ios=rate_ios,
        drift_at_s=None, ml_start=False)
    kernel.run(until=int(duration_s * SECOND))
    monitor_a, monitor_b = monitors
    return {
        "mode": mode,
        "checks_total": auditor.total("checks"),
        "idle_checks": auditor.total("idle"),
        "checks_a": auditor.stats[monitor_a.name]["checks"],
        "idle_a": auditor.stats[monitor_a.name]["idle"],
        "checks_b": auditor.stats[monitor_b.name]["checks"],
        "idle_b": auditor.stats[monitor_b.name]["idle"],
        "trips": (monitor_a.action_dispatch_count
                  + monitor_b.action_dispatch_count),
    }


def run_feedback_scenario(spec):
    """Adapter: run a registry ``feedback`` spec through the study."""
    mode = spec.workloads[0]
    study = run_feedback_study(mode, seed=spec.seed,
                               duration_s=spec.duration_s)
    behavior = "oscillates" if (study["alternations"] >= 3
                                and not study["converged"]) else "converges"
    verdicts = {"behavior": behavior}
    overall = "trip" if behavior == "oscillates" else "allow"
    return {
        "name": spec.name,
        "kind": spec.kind,
        "seed": spec.seed,
        "duration_s": spec.duration_s,
        "fault": spec.fault,
        "domains": {
            "storage+net": {"workload": mode, "policy": "learned",
                            "counters": {"trips": study["trips"],
                                         "checks": study["checks_total"],
                                         "idle_checks": study["idle_checks"]}}
        },
        "guardrails": {
            name: {
                "domain": "storage+net",
                "checks": stats["checks"],
                "violations": stats["violations"],
                "inconclusive": 0,
                "actions": stats["violations"],
                "verdict": "trip" if stats["violations"] else "quiet",
            }
            for name, stats in study["per_guardrail"].items()
        },
        "expected": dict(spec.expected),
        "verdicts": verdicts,
        "overall": overall,
        "matched": verdicts == spec.expected,
        "study": {
            "mode": mode,
            "trips": study["trips"],
            "alternations": study["alternations"],
            "tail_trips": study["tail_trips"],
            "converged": study["converged"],
            "checks_total": study["checks_total"],
            "idle_checks": study["idle_checks"],
        },
    }

"""The scenario-zoo runner: registry selection, pooled execution, one doc.

Scenarios run on :func:`repro.bench.pool.run_pool` (one process per
scenario, retry-once supervision) and results merge sorted by name, so
the deterministic part of the document is byte-identical across reruns
and ``--jobs`` values — the same contract the bench and fleet runners
pin.  Wall-clock times live under the ``info`` key, which deterministic
consumers drop.
"""

import time

from repro.bench.pool import PoolTask, run_pool
from repro.scenarios.registry import all_scenarios, self_check
from repro.scenarios.spec import run_scenario


def select_scenarios(filter_substring=None, quick=False):
    """Registry subset for one run, sorted by name."""
    specs = all_scenarios()
    if quick:
        specs = [spec for spec in specs if spec.quick]
    if filter_substring:
        specs = [spec for spec in specs if filter_substring in spec.name]
    return specs


def _scenario_worker(name, conn):
    """Pool child: run one named scenario, ship its result dict."""
    from repro.scenarios.registry import get_scenario

    start = time.perf_counter()
    try:
        result = run_scenario(get_scenario(name))
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        import traceback

        conn.send(("error", {
            "error": "{}: {}".format(type(exc).__name__, exc),
            "traceback": traceback.format_exc(),
            "wall_time_s": time.perf_counter() - start,
        }))
        return
    conn.send(("ok", {
        "result": result,
        "wall_time_s": time.perf_counter() - start,
    }))


def run_scenarios(specs, jobs=1, timeout_s=300.0, progress=None):
    """Run ``specs`` under the pool; returns the scenarios document.

    The document's ``scenarios`` list is sorted by name with purely
    deterministic content; ``matched``/``mismatched``/``errors`` count
    the run's outcome and ``info`` carries the nondeterministic extras.
    """
    problems = self_check()
    if problems:
        raise ValueError("registry self-check failed: {}"
                         .format("; ".join(problems)))
    specs = sorted(specs, key=lambda spec: spec.name)
    # Longest-first packs the pool; ties broken by name for determinism.
    ordered = sorted(specs, key=lambda spec: (-spec.duration_s, spec.name))
    tasks = [PoolTask(spec.name, _scenario_worker, (spec.name,),
                      cost=spec.duration_s)
             for spec in ordered]
    outcomes = run_pool(tasks, jobs=jobs, timeout_s=timeout_s,
                        progress=progress)

    scenarios, errors, wall_times = [], [], {}
    for outcome in outcomes:
        payload = outcome["payload"] or {}
        if outcome["status"] == "ok":
            scenarios.append(payload["result"])
            wall_times[outcome["id"]] = round(
                payload.get("wall_time_s", 0.0), 3)
        else:
            errors.append({"name": outcome["id"],
                           "status": outcome["status"],
                           "error": payload.get("error", "")})
    matched = sum(1 for result in scenarios if result["matched"])
    mismatched = [result["name"] for result in scenarios
                  if not result["matched"]]
    return {
        "schema": "repro-scenarios/v1",
        "count": len(specs),
        "matched": matched,
        "mismatched": mismatched,
        "errors": errors,
        "scenarios": scenarios,
        "info": {"wall_time_s": wall_times},
    }


def deterministic_document(document):
    """The byte-stable projection: everything except ``info``."""
    return {key: value for key, value in document.items() if key != "info"}

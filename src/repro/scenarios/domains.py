"""Per-domain composition builders for the scenario zoo.

Each ``attach_<domain>`` function wires one policy domain — subsystem,
learned policy (or heuristic baseline), deterministic workload driver, and
a zoo guardrail — onto an *existing* kernel, so several domains can share
one feature store and virtual clock.  That composition is the point: the
paper's §6 hazards (guardrail feedback, wasted idle checks) only exist
when multiple control loops observe the same system.

Every builder returns a :class:`DomainRig` carrying the armed monitors,
the store keys its guardrail watches (the corrupt-telemetry fault
targets), and a ``counters()`` thunk of integer activity counters that
merge exactly across fleet shards (see ``fleet.aggregate.HostDigest``).

Workload tokens per domain (``quiet`` is always valid):

==========  =======================================================
domain      tokens
==========  =======================================================
storage     ``quiet`` | ``burst`` | ``drift`` (Fig-2 device drift)
cache       ``quiet`` (loop) | ``scan`` | ``burst`` (loop/scan mix)
mm          ``quiet`` (hot set) | ``random-write``
net         ``quiet`` | ``drift`` (capacity step the stubborn
            controller never follows)
sched       ``quiet`` (mixed) | ``flood`` (short-job flood starving
            one long task under SJF)
==========  =======================================================
"""

from repro.sim.units import MILLISECOND, SECOND


class DomainRig:
    """One attached domain: subsystem + policy + workload + guardrails."""

    __slots__ = ("domain", "workload", "policy", "subsystem", "monitors",
                 "watched_keys", "counters")

    def __init__(self, domain, workload, policy, subsystem, monitors,
                 watched_keys, counters):
        self.domain = domain
        self.workload = workload
        self.policy = policy
        self.subsystem = subsystem
        self.monitors = list(monitors)
        self.watched_keys = tuple(watched_keys)
        self.counters = counters  # () -> {name: int}, cumulative


# ---------------------------------------------------------------------------
# storage (LinnOS-style false-submit accounting)

STORAGE_GUARDRAIL = """
guardrail zoo-storage-false-submit {
  // The shortest-queue stand-in predicts "fast" on every submit, so its
  // false-submit rate tracks the volume's slow fraction: ~9% pre-drift
  // (quiet under 0.2), ~50% post-drift (loud).
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.2 },
  action: { REPORT() }
}
"""


def attach_storage(kernel, workload="quiet", policy="learned",
                   duration_ns=8 * SECOND, replicas=3):
    from repro.bench.scenarios import shortest_queue_policy
    from repro.kernel.storage import (
        DeviceProfile,
        PoissonWorkload,
        ReplicatedVolume,
        SsdDevice,
        schedule_profile_change,
    )

    devices = [
        SsdDevice(kernel.engine, kernel.engine.rng.get("ssd{}".format(i)),
                  "ssd{}".format(i), DeviceProfile.pre_drift())
        for i in range(replicas)
    ]
    volume = kernel.attach("storage", ReplicatedVolume(kernel, devices))
    if policy == "learned":
        volume.install_policy("storage.shortest_queue",
                              shortest_queue_policy())
    elif policy != "baseline":
        raise ValueError("unknown storage policy {!r}".format(policy))

    if workload == "quiet":
        segments = [(duration_ns, 400)]
    elif workload == "burst":
        third = duration_ns // 3
        segments = [(third, 250), (third, 900),
                    (duration_ns - 2 * third, 250)]
    elif workload == "drift":
        segments = [(duration_ns, 500)]
        schedule_profile_change(kernel, devices, DeviceProfile.post_drift(),
                                int(duration_ns * 0.4))
    else:
        raise ValueError("unknown storage workload {!r}".format(workload))
    PoissonWorkload(kernel, volume, segments).start()

    monitor = kernel.guardrails.load(STORAGE_GUARDRAIL)

    def counters():
        return {"completed_ios": volume.completed,
                "false_submits": volume.false_submits,
                "model_submits": volume.model_submits}

    return DomainRig("storage", workload, policy, volume, [monitor],
                     ("false_submit_rate",), counters)


# ---------------------------------------------------------------------------
# cache (reuse-distance eviction vs. scans)

CACHE_GUARDRAIL = """
guardrail zoo-cache-hit-rate {
  // A looping working set inside capacity sits near 0.9; a one-shot scan
  // pins the windowed hit rate at 0.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(cache.hit_rate) >= 0.2 },
  action: { REPORT() }
}
"""

_CACHE_PERIOD = 2 * MILLISECOND
_CACHE_LOOP_KEYS = 48


def attach_cache(kernel, workload="quiet", policy="learned",
                 duration_ns=8 * SECOND, capacity=64):
    from repro.kernel.cache import KvCache
    from repro.policies.cachepol import attach_learned_cache_policy

    cache = kernel.attach("cache", KvCache(kernel, capacity))
    if policy == "learned":
        attach_learned_cache_policy(kernel, cache)
    elif policy != "baseline":
        raise ValueError("unknown cache policy {!r}".format(policy))

    if workload not in ("quiet", "scan", "burst"):
        raise ValueError("unknown cache workload {!r}".format(workload))
    totals = {"accesses": 0, "hits": 0}
    state = {"i": 0}

    def tick():
        i = state["i"]
        state["i"] = i + 1
        if workload == "quiet":
            key = i % _CACHE_LOOP_KEYS
        elif workload == "scan":
            key = i
        else:  # burst: alternate one-second loop and scan phases
            if (kernel.engine.now // SECOND) % 2 == 0:
                key = i % _CACHE_LOOP_KEYS
            else:
                key = 1_000_000 + i
        hit = cache.access("k{}".format(key))
        totals["accesses"] += 1
        totals["hits"] += int(bool(hit))
        kernel.engine.schedule(_CACHE_PERIOD, tick)

    kernel.engine.schedule(_CACHE_PERIOD, tick)
    monitor = kernel.guardrails.load(CACHE_GUARDRAIL)
    return DomainRig("cache", workload, policy, cache, [monitor],
                     ("cache.hit_rate",), lambda: dict(totals))


# ---------------------------------------------------------------------------
# tiered memory (promotion policy vs. random writes)

MM_GUARDRAIL = """
guardrail zoo-mm-tier-hit-rate {
  // A 32-page hot set fits the fast tier (~1.0); uniform random writes
  // over 4096 pages cannot (~capacity/4096).
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(mm.tier_hit_rate) >= 0.25 },
  action: { REPORT() }
}
"""

_MM_PERIOD = 2 * MILLISECOND
_MM_HOT_PAGES = 32
_MM_COLD_PAGES = 4096


def attach_mm(kernel, workload="quiet", policy="learned",
              duration_ns=8 * SECOND, fast_capacity=64):
    from repro.kernel.mm import TieredMemory
    from repro.policies.placement import attach_learned_placement

    tiered = kernel.attach("mm", TieredMemory(kernel, fast_capacity))
    if policy == "learned":
        attach_learned_placement(kernel, tiered)
    elif policy != "baseline":
        raise ValueError("unknown mm policy {!r}".format(policy))

    if workload not in ("quiet", "random-write"):
        raise ValueError("unknown mm workload {!r}".format(workload))
    totals = {"accesses": 0, "hits": 0}
    rng = kernel.engine.rng.get("zoo.mm")
    state = {"i": 0}

    def tick():
        i = state["i"]
        state["i"] = i + 1
        if workload == "quiet":
            page, is_write = i % _MM_HOT_PAGES, False
        else:
            page, is_write = int(rng.integers(0, _MM_COLD_PAGES)), True
        tiered.access(page, is_write=is_write)
        kernel.engine.schedule(_MM_PERIOD, tick)

    def on_access(hook, now, payload):
        totals["accesses"] += 1
        totals["hits"] += int(bool(payload["hit"]))

    tiered.access_hook.attach(on_access, name="zoo.mm.counters")
    kernel.engine.schedule(_MM_PERIOD, tick)
    monitor = kernel.guardrails.load(MM_GUARDRAIL)
    return DomainRig("mm", workload, policy, tiered, [monitor],
                     ("mm.tier_hit_rate",), lambda: dict(totals))


# ---------------------------------------------------------------------------
# net (congestion control on the bottleneck link)


def stubborn_cc(rate_mbps=60.0):
    """The zoo's confidently-wrong learned controller: a fixed-rate model.

    It "predicts" the same sending rate every epoch regardless of the
    observation — fine while the prediction happens to fit the path,
    unable to follow a capacity change (the P2/P4 failure the utilization
    guardrail watches for).
    """

    def controller(observation):
        return rate_mbps

    return controller


NET_GUARDRAIL = """
guardrail zoo-net-utilization {
  // The stubborn 60 Mbps controller sits at 0.6 utilization on a 100 Mbps
  // path; after the capacity steps to 240 Mbps it strands the link at 0.25.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(net.utilization.avg) >= 0.35 },
  action: { REPORT() }
}
"""

STUBBORN_CC_NAME = "net.stubborn_cc"


def attach_net(kernel, workload="quiet", policy="learned",
               duration_ns=8 * SECOND, capacity_mbps=100.0):
    from repro.kernel.net import BottleneckLink

    link = kernel.attach("net", BottleneckLink(kernel,
                                               capacity_mbps=capacity_mbps))
    if policy == "learned":
        kernel.functions.register_implementation(STUBBORN_CC_NAME,
                                                 stubborn_cc())
        kernel.functions.replace(link.CC_SLOT, STUBBORN_CC_NAME)
    elif policy != "baseline":
        raise ValueError("unknown net policy {!r}".format(policy))

    if workload == "drift":
        kernel.engine.schedule(int(duration_ns * 0.4), link.set_capacity,
                               240.0)
    elif workload != "quiet":
        raise ValueError("unknown net workload {!r}".format(workload))
    link.start()

    totals = {"epochs": 0, "loss_epochs": 0}

    def on_epoch(hook, now, payload):
        totals["epochs"] += 1
        totals["loss_epochs"] += int(payload["loss"] > 0)

    link.update_hook.attach(on_epoch, name="zoo.net.counters")
    monitor = kernel.guardrails.load(NET_GUARDRAIL)
    return DomainRig("net", workload, policy, link, [monitor],
                     ("net.utilization.avg",), lambda: dict(totals))


# ---------------------------------------------------------------------------
# sched (shortest-predicted-job-first vs. starvation)

SCHED_GUARDRAIL = """
guardrail zoo-sched-starvation {
  // The P6 liveness bound: no runnable task waits more than 200 ms.  SJF
  // starves the long task whenever a short-job flood keeps arriving.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(sched.max_wait_ms) <= 200 },
  action: { REPORT() }
}
"""


def attach_sched(kernel, workload="quiet", policy="learned",
                 duration_ns=8 * SECOND):
    from repro.kernel.sched import CpuScheduler
    from repro.policies.schedpol import attach_learned_sched_policy

    scheduler = kernel.attach("sched", CpuScheduler(kernel))
    if policy == "learned":
        attach_learned_sched_policy(kernel, scheduler)
    elif policy != "baseline":
        raise ValueError("unknown sched policy {!r}".format(policy))

    if workload == "quiet":
        scheduler.spawn("interactive-0", burst_ns=2 * MILLISECOND,
                        think_ns=8 * MILLISECOND)
        scheduler.spawn("interactive-1", burst_ns=2 * MILLISECOND,
                        think_ns=8 * MILLISECOND)
        scheduler.spawn("batch", burst_ns=6 * MILLISECOND,
                        think_ns=12 * MILLISECOND)
    elif workload == "flood":
        for i in range(6):
            scheduler.spawn("short-{}".format(i), burst_ns=1 * MILLISECOND,
                            think_ns=1 * MILLISECOND)
        scheduler.spawn("elephant", burst_ns=40 * MILLISECOND,
                        think_ns=1 * MILLISECOND)
    else:
        raise ValueError("unknown sched workload {!r}".format(workload))

    monitor = kernel.guardrails.load(SCHED_GUARDRAIL)

    def counters():
        return {"dispatches": scheduler.context_switches,
                "finished": sum(1 for t in scheduler.tasks if t.finished)}

    return DomainRig("sched", workload, policy, scheduler, [monitor],
                     ("sched.max_wait_ms",), counters)


DOMAIN_BUILDERS = {
    "storage": attach_storage,
    "cache": attach_cache,
    "mm": attach_mm,
    "net": attach_net,
    "sched": attach_sched,
}

DOMAINS = tuple(sorted(DOMAIN_BUILDERS))


def attach_domain(kernel, domain, workload="quiet", policy="learned",
                  duration_ns=8 * SECOND):
    """Attach one named domain to ``kernel``; returns its :class:`DomainRig`."""
    try:
        builder = DOMAIN_BUILDERS[domain]
    except KeyError:
        raise ValueError("unknown domain {!r}; known: {}".format(
            domain, ", ".join(DOMAINS))) from None
    return builder(kernel, workload=workload, policy=policy,
                   duration_ns=duration_ns)

"""``grctl`` — check, inspect, and format guardrail files.

A guardrail file holds one or more ``guardrail { ... }`` blocks (the DSL of
Listing 1).  Subcommands:

- ``check``   — parse, validate, compile, and verify every guardrail;
  exit 0 when all are loadable, 1 otherwise (CI gate for guardrail repos);
- ``inspect`` — print each guardrail's triggers, rules with verified cost,
  read set (the feature-store keys its rules LOAD), and actions;
- ``fmt``     — canonically reformat the file via the AST printer.

Usage::

    python -m repro.tools.grctl check mygardrails.grd
    python -m repro.tools.grctl inspect --budget-ops 128 mygardrails.grd
    python -m repro.tools.grctl fmt --write mygardrails.grd
"""

import argparse
import sys

from repro.core.compiler import GuardrailCompiler
from repro.core.dependency import rule_load_keys
from repro.core.errors import GuardrailError
from repro.core.spec import parse_guardrails
from repro.core.verifier import VerifierConfig


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="grctl", description="check/inspect/format guardrail files")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("check", "parse + validate + compile + verify; exit 1 on failure"),
        ("inspect", "print structure, costs, and read sets"),
        ("fmt", "canonically reformat"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", help="guardrail file (use '-' for stdin)")
        if name in ("check", "inspect"):
            cmd.add_argument("--budget-ops", type=int, default=None,
                             help="override the per-rule instruction budget")
        if name == "fmt":
            cmd.add_argument("--write", action="store_true",
                             help="rewrite the file in place")
    return parser


def _read(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _compiler(args):
    config = VerifierConfig()
    if getattr(args, "budget_ops", None) is not None:
        config.max_rule_cost = args.budget_ops
    return GuardrailCompiler(verifier_config=config)


def cmd_check(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    if not specs:
        out.write("no guardrails found\n")
        return 1
    compiler = _compiler(args)
    failures = 0
    for spec in specs:
        try:
            compiled = compiler.compile(spec)
        except GuardrailError as error:
            out.write("FAIL  {}: {}\n".format(spec.name, error))
            failures += 1
            continue
        out.write("OK    {} ({} ops/check, ~{:.0f} ops/s)\n".format(
            spec.name, compiled.verification.total_cost,
            compiled.verification.estimated_ops_per_second))
    out.write("{} guardrail(s), {} failure(s)\n".format(len(specs), failures))
    return 1 if failures else 0


def cmd_inspect(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    compiler = _compiler(args)
    for spec in specs:
        out.write("guardrail {}\n".format(spec.name))
        for trigger in spec.triggers:
            out.write("  trigger  {}\n".format(trigger.to_source()))
        try:
            compiled = compiler.compile(spec)
            costs = compiled.verification.rule_costs
        except GuardrailError as error:
            out.write("  VERIFIER: {}\n".format(error))
            costs = [None] * len(spec.rules)
        for rule, cost in zip(spec.rules, costs):
            suffix = "" if cost is None else "  [{} ops]".format(cost)
            out.write("  rule     {}{}\n".format(rule.to_source(), suffix))
        keys = sorted(rule_load_keys(spec))
        out.write("  reads    {}\n".format(", ".join(keys) if keys else "<none>"))
        for action in spec.actions:
            out.write("  action   {}\n".format(action.to_source()))
        out.write("\n")
    return 0


def cmd_fmt(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    formatted = "\n".join(spec.to_source() for spec in specs) + "\n"
    if args.write and args.file != "-":
        with open(args.file, "w") as handle:
            handle.write(formatted)
    else:
        out.write(formatted)
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handler = {"check": cmd_check, "inspect": cmd_inspect, "fmt": cmd_fmt}
    return handler[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())

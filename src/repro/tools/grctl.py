"""``grctl`` — check, inspect, and format guardrail files.

A guardrail file holds one or more ``guardrail { ... }`` blocks (the DSL of
Listing 1).  Subcommands:

- ``check``   — parse, validate, compile, and verify every guardrail;
  exit 0 when all are loadable, 1 otherwise (CI gate for guardrail repos);
- ``inspect`` — print each guardrail's triggers, rules with verified cost,
  read set (the feature-store keys its rules LOAD), and actions;
- ``fmt``     — canonically reformat the file via the AST printer
  (``--check`` exits 1 without writing when the file is not canonical,
  the CI gate counterpart to ``--write``);
- ``trace``   — run a traced scenario (or replay a saved JSONL trace) and
  print a human summary: hottest hooks, per-guardrail check/violation/
  action counters, and the violation/action timeline.  ``--jsonl`` and
  ``--chrome`` export the event stream (the latter loads in Perfetto or
  ``chrome://tracing``);
- ``bench``   — run the ``benchmarks/bench_*.py`` scenario suite on a
  process pool, write machine-readable ``BENCH.json``, and optionally
  gate the numbers against a committed baseline (the CI perf gate; see
  ``docs/benchmarking.md``);
- ``faults``  — run a chaos scenario under a declarative fault plan
  (``--plan faults.json`` or repeatable ``--fault KIND@TARGET[:...]``
  flags) and print the containment story: injections, contained
  crashes, circuit-breaker timeline, REPLACE fallbacks.  Exit 0 when
  every fault was contained, 1 when one escaped (see ``docs/faults.md``);
- ``fleet``   — stage a guardrail rollout across a sharded multi-host
  fleet simulation with health gates and automatic rollback (see
  ``docs/fleet.md``).  Exit 0 when the rollout completes, 1 when a gate
  tripped and the fleet rolled back.  ``--out FILE`` saves the
  deterministic JSON report alongside either rendering;
- ``serve``   — run a rollout or steady-state soak as a *service*,
  streaming every round's host digests into an append-only sqlite
  results store with per-round checkpointing (``--resume`` continues an
  interrupted run from its last committed round; see
  ``docs/service.md``).  Exit codes mirror ``fleet``: 1 when the served
  rollout rolled back;
- ``query``   — typed queries over a results store (``status``,
  ``stages``, ``trend``, ``gates``, ``rollbacks``, ``runs``,
  ``report``, ``autopilot``), answerable mid-run; ``report``
  regenerates the exact ``fleet --json`` report from stored rows and
  ``autopilot`` answers "what did the autopilot change and why";
- ``autopilot`` — the §3.3 closed loop: mine fleet digest history for a
  tightened false-submit threshold, record the proposal (with
  machine-readable provenance) in the results store, and deploy it
  through the staged-rollout control plane (``propose`` records one
  proposal without deploying, ``apply`` runs one observe→propose→deploy
  iteration, ``loop`` iterates to convergence; see
  ``docs/autopilot.md``).  Exit 0 when every deployed proposal
  completed, 1 when a proposal tripped its health gates and was rolled
  back;
- ``dash``    — the fleet-health dashboard rendered from store queries
  alone: terminal sparklines by default, a self-contained static HTML
  page with ``--html``;
- ``eval``    — guardrail-quality evaluation over the labelled episode
  dataset (``eval/dataset.jsonl``): ``run`` executes episodes on a
  process pool and scores verdicts against labels (optionally gated on
  a committed baseline, the CI quality gate), ``calibrate`` sweeps
  :class:`GateConfig` thresholds over recorded rollout measurements and
  must reproduce the shipped defaults, ``diff`` compares a saved
  results document to a baseline, and ``--check-dataset`` is the
  dataset-integrity gate (see ``docs/eval.md``);
- ``scenarios`` — the cross-policy scenario zoo (see
  ``docs/scenarios.md``): ``list`` enumerates the registry, ``describe``
  prints one spec, ``run`` executes a selection on a process pool and
  compares every guardrail verdict against the registry's expectations.
  Exit 0 when reality matches the registry, 1 on any mismatch or
  scenario error.

Exit codes are uniform across subcommands: **0** success, **1** a check,
gate, or scenario failed (the thing the subcommand exists to detect),
**2** usage error (bad flags, unreadable input, unknown names).

Usage::

    python -m repro.tools.grctl check mygardrails.grd
    python -m repro.tools.grctl inspect --budget-ops 128 mygardrails.grd
    python -m repro.tools.grctl inspect --json mygardrails.grd
    python -m repro.tools.grctl fmt --write mygardrails.grd
    python -m repro.tools.grctl fmt --check mygardrails.grd
    python -m repro.tools.grctl trace --scenario quick --chrome trace.json
    python -m repro.tools.grctl trace --replay run.jsonl --top 5
    python -m repro.tools.grctl bench --jobs 4 --out BENCH.json
    python -m repro.tools.grctl bench --quick --baseline \
        benchmarks/BENCH_baseline.json --gate 0.15
    python -m repro.tools.grctl faults --list
    python -m repro.tools.grctl faults \
        --fault raise@storage.pick_device:start=3,stop=5 --seed 11
    python -m repro.tools.grctl fleet --hosts 16 --seed 42 --json
    python -m repro.tools.grctl fleet --hosts 16 --faults 2 --jobs 4
    python -m repro.tools.grctl serve --store fleet.sqlite --hosts 16
    python -m repro.tools.grctl serve --store fleet.sqlite --resume
    python -m repro.tools.grctl query report --store fleet.sqlite
    python -m repro.tools.grctl autopilot loop --store fleet.sqlite --quick
    python -m repro.tools.grctl autopilot apply --store fleet.sqlite \
        --corrupt-at 0 --json
    python -m repro.tools.grctl query autopilot --store fleet.sqlite
    python -m repro.tools.grctl dash --store fleet.sqlite --html dash.html
    python -m repro.tools.grctl eval run --quick --jobs 2 \
        --baseline EVAL_baseline.json --out EVAL.json
    python -m repro.tools.grctl eval calibrate --from EVAL_baseline.json
    python -m repro.tools.grctl eval diff EVAL.json \
        --baseline EVAL_baseline.json
    python -m repro.tools.grctl eval --check-dataset
    python -m repro.tools.grctl scenarios list
    python -m repro.tools.grctl scenarios describe feedback/coupled/timer
    python -m repro.tools.grctl scenarios run --quick --jobs 4 --json
    python -m repro.tools.grctl scenarios run --filter storage
"""

import argparse
import sys

from repro.core.compiler import GuardrailCompiler
from repro.core.dependency import rule_load_keys
from repro.core.errors import GuardrailError
from repro.core.spec import parse_guardrails
from repro.core.verifier import VerifierConfig


class UsageError(Exception):
    """Operator mistake (bad flag value, unreadable input): exit code 2."""


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="grctl", description="check/inspect/format guardrail files")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("check", "parse + validate + compile + verify; exit 1 on failure"),
        ("inspect", "print structure, costs, and read sets"),
        ("fmt", "canonically reformat"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", help="guardrail file (use '-' for stdin)")
        if name in ("check", "inspect"):
            cmd.add_argument("--budget-ops", type=int, default=None,
                             help="override the per-rule instruction budget")
            cmd.add_argument("--lane", choices=("auto", "closure", "vm"),
                             default="auto",
                             help="rule execution backend: auto picks per "
                                  "rule shape (default), closure/vm force "
                                  "one lane for every rule")
        if name == "inspect":
            cmd.add_argument("--json", action="store_true", dest="json_out",
                             help="print the structure as JSON instead of "
                                  "the human table")
        if name == "fmt":
            cmd.add_argument("--write", action="store_true",
                             help="rewrite the file in place")
            cmd.add_argument("--check", action="store_true",
                             help="exit 1 if not canonically formatted; "
                                  "never writes")

    trace = sub.add_parser(
        "trace", help="run a traced scenario or replay a JSONL trace")
    trace.add_argument("--scenario", choices=("quick", "fig2"),
                       default="quick",
                       help="quick: synthetic demo run (default); "
                            "fig2: the Listing-2 LinnOS guardrail run "
                            "(trains the model first — slower)")
    trace.add_argument("--replay", metavar="FILE", default=None,
                       help="summarize a saved JSONL trace instead of "
                            "running a scenario")
    trace.add_argument("--duration", type=float, default=None,
                       help="scenario duration in simulated seconds")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="export the event stream as JSONL")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="export Chrome trace_event JSON "
                            "(Perfetto / chrome://tracing)")
    trace.add_argument("--capacity", type=int, default=262144,
                       help="ring-buffer capacity in events")
    trace.add_argument("--seed", type=int, default=0,
                       help="sampling-phase seed")
    trace.add_argument("--categories", default=None,
                       help="comma-separated categories to enable "
                            "(default: all)")
    trace.add_argument("--sample", default=None, metavar="CAT=N[,CAT=N...]",
                       help="1-in-N sampling per category, e.g. "
                            "hook=16,featurestore.save=8")
    trace.add_argument("--top", type=int, default=10,
                       help="rows per top-N table")

    bench = sub.add_parser(
        "bench", help="run the benchmark suite sharded across processes")
    bench.add_argument("--quick", action="store_true",
                       help="smoke tier: skip the model-training scenarios")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1)")
    bench.add_argument("--filter", default=None, metavar="SUBSTR",
                       help="only scenarios whose id or module contains "
                            "SUBSTR")
    bench.add_argument("--bench-dir", default="benchmarks",
                       help="directory holding bench_*.py "
                            "(default: benchmarks)")
    bench.add_argument("--out", default="BENCH.json", metavar="PATH",
                       help="merged results file (default: BENCH.json)")
    bench.add_argument("--report-dir", default=None, metavar="DIR",
                       help="where per-scenario text artifacts go "
                            "(default: <bench-dir>/out)")
    bench.add_argument("--timeout", type=float, default=300.0, metavar="S",
                       help="per-scenario timeout in seconds (default 300)")
    bench.add_argument("--baseline", default=None, metavar="BENCH.json",
                       help="gate results against this baseline file")
    bench.add_argument("--gate", type=float, default=None, metavar="TOL",
                       help="relative tolerance for the baseline gate "
                            "(default 0.0 = exact; needs --baseline)")
    bench.add_argument("--list", action="store_true", dest="list_only",
                       help="list discovered scenarios and exit")

    faults = sub.add_parser(
        "faults", help="run a chaos scenario under a declarative fault plan")
    faults.add_argument("--list", action="store_true", dest="list_only",
                        help="list fault kinds and the --fault grammar, "
                             "then exit")
    faults.add_argument("--scenario", choices=("demo", "fig2"),
                        default="demo",
                        help="demo: synthetic storage run with a supervised "
                             "stand-in policy (default); fig2: the guarded "
                             "LinnOS run with a supervised pick slot "
                             "(trains the model first — slower)")
    faults.add_argument("--plan", metavar="FILE", default=None,
                        help="JSON fault plan (see docs/faults.md)")
    faults.add_argument("--fault", action="append", default=[],
                        metavar="SPEC",
                        help="one fault as KIND@TARGET[:key=value,...]; "
                             "repeatable (mutually exclusive with --plan)")
    faults.add_argument("--seed", type=int, default=None,
                        help="fault-plan RNG seed (default: the plan "
                             "file's seed, else 0)")
    faults.add_argument("--duration", type=float, default=None,
                        help="scenario duration in simulated seconds")
    faults.add_argument("--threshold", type=int, default=3, metavar="K",
                        help="breaker trips after K consecutive crashes "
                             "(default 3)")
    faults.add_argument("--backoff", type=float, default=1.0, metavar="S",
                        help="base breaker re-arm backoff in virtual "
                             "seconds (default 1.0)")
    faults.add_argument("--json", metavar="PATH", default=None,
                        dest="json_out",
                        help="write the run's full accounting as JSON")

    fleet = sub.add_parser(
        "fleet", help="staged guardrail rollout across a simulated fleet")
    fleet.add_argument("--hosts", type=int, default=8, metavar="N",
                       help="fleet size (default 8)")
    fleet.add_argument("--stages", default="canary:1,25%,100%",
                       metavar="PLAN",
                       help="rollout stages as label:size, P%%, or host "
                            "counts (default canary:1,25%%,100%%)")
    fleet.add_argument("--seed", type=int, default=42,
                       help="fleet seed; every host derives its own "
                            "stream from it (default 42)")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes; the report is identical "
                            "for any value (default 1)")
    fleet.add_argument("--faults", type=int, default=0, metavar="N",
                       help="corrupt the false-submit signal on the "
                            "first N hosts from the baseline boundary on "
                            "(they land in the canary cohort)")
    fleet.add_argument("--quick", action="store_true",
                       help="smoke tier: fewer rounds, lighter workload")
    fleet.add_argument("--json", action="store_true", dest="json_out",
                       help="print the full rollout report as "
                            "deterministic JSON")
    fleet.add_argument("--out", metavar="FILE", default=None,
                       help="also write the deterministic JSON report "
                            "to FILE (unwritable path: exit 2, before "
                            "the run starts)")

    serve = sub.add_parser(
        "serve", help="run a fleet scenario into a sqlite results store")
    serve.add_argument("--store", required=True, metavar="PATH",
                       help="sqlite results store (created if absent)")
    serve.add_argument("--soak", action="store_true",
                       help="steady-state soak (no rollout): every host "
                            "bakes on v1 for --rounds rounds")
    serve.add_argument("--resume", action="store_true",
                       help="resume the latest interrupted run in the "
                            "store (or --run) from its last committed "
                            "round")
    serve.add_argument("--run", type=int, default=None, metavar="ID",
                       help="run id for --resume (default: latest)")
    serve.add_argument("--hosts", type=int, default=8, metavar="N",
                       help="fleet size (default 8)")
    serve.add_argument("--stages", default="canary:1,25%,100%",
                       metavar="PLAN",
                       help="rollout stages (default canary:1,25%%,100%%)")
    serve.add_argument("--seed", type=int, default=42,
                       help="fleet seed (default 42)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes (default 1)")
    serve.add_argument("--faults", type=int, default=0, metavar="N",
                       help="corrupt the false-submit signal on the "
                            "first N hosts (rollout mode)")
    serve.add_argument("--quick", action="store_true",
                       help="smoke tier: fewer rounds, lighter workload")
    serve.add_argument("--rounds", type=int, default=30, metavar="N",
                       help="soak length in lockstep rounds (default 30)")
    serve.add_argument("--rate", type=int, default=400, metavar="IOS",
                       help="soak per-host I/O arrival rate per round "
                            "(default 400)")
    serve.add_argument("--max-rounds", type=int, default=None, metavar="N",
                       help="commit at most N rounds then stop without "
                            "finalizing (the run stays resumable)")
    serve.add_argument("--retain-rounds", type=int, default=None,
                       metavar="N",
                       help="retention horizon: keep the most recent N "
                            "rounds raw, fold older rounds into time "
                            "buckets (default: keep everything raw)")
    serve.add_argument("--bucket-rounds", type=int, default=8, metavar="N",
                       help="downsampling bucket width in rounds "
                            "(default 8)")

    query = sub.add_parser(
        "query", help="typed queries over a results store")
    query.add_argument("name",
                       help="one of: status, stages, trend, gates, "
                            "rollbacks, runs, report, autopilot")
    query.add_argument("--store", required=True, metavar="PATH",
                       help="sqlite results store")
    query.add_argument("--run", type=int, default=None, metavar="ID",
                       help="run id (default: latest)")

    dash = sub.add_parser(
        "dash", help="fleet-health dashboard rendered from a results store")
    dash.add_argument("--store", required=True, metavar="PATH",
                      help="sqlite results store")
    dash.add_argument("--run", type=int, default=None, metavar="ID",
                      help="run id (default: latest)")
    dash.add_argument("--html", metavar="FILE", default=None,
                      help="write the static HTML page to FILE instead "
                           "of printing the terminal summary")

    ap = sub.add_parser(
        "autopilot",
        help="closed-loop guardrail tightening through the rollout gates")
    ap.add_argument("mode", choices=("propose", "apply", "loop"),
                    help="propose: observe and record one proposal "
                         "without deploying; apply: one observe->propose"
                         "->deploy iteration; loop: iterate to "
                         "convergence")
    ap.add_argument("--store", required=True, metavar="PATH",
                    help="sqlite results store (created if absent); "
                         "observe/deploy runs and proposals land here")
    ap.add_argument("--hosts", type=int, default=8, metavar="N",
                    help="fleet size (default 8)")
    ap.add_argument("--stages", default="canary:1,25%,100%", metavar="PLAN",
                    help="deploy stages (default canary:1,25%%,100%%)")
    ap.add_argument("--seed", type=int, default=42,
                    help="fleet seed; each iteration derives its own "
                         "streams from it (default 42)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes; the report is identical for "
                         "any value (default 1)")
    ap.add_argument("--iterations", type=int, default=3, metavar="N",
                    help="loop iteration cap (default 3; apply/propose "
                         "always run one)")
    ap.add_argument("--quick", action="store_true",
                    help="smoke tier: fewer rounds, lighter workload")
    ap.add_argument("--corrupt-at", type=int, default=None, metavar="I",
                    dest="corrupt_at",
                    help="inject the corrupt-telemetry fault into the "
                         "canary during iteration I's deploy bake (the "
                         "deliberately bad proposal the gates must "
                         "catch)")
    ap.add_argument("--quantile", type=float, default=None,
                    help="observed quantile the envelope tracks "
                         "(default 0.99)")
    ap.add_argument("--margin", type=float, default=None,
                    help="envelope margin over the quantile "
                         "(default 1.5; widened by backoff after a "
                         "rollback)")
    ap.add_argument("--no-synthesize", action="store_true",
                    dest="no_synthesize",
                    help="skip recording synthesized property-metric "
                         "proposals from the policy manifest")
    ap.add_argument("--json", action="store_true", dest="json_out",
                    help="print the full autopilot report as "
                         "deterministic JSON")
    ap.add_argument("--out", metavar="FILE", default=None,
                    help="also write the deterministic JSON report to "
                         "FILE (unwritable path: exit 2, before the "
                         "run starts)")

    ev = sub.add_parser(
        "eval", help="guardrail-quality eval over the labelled dataset")
    ev.add_argument("mode", nargs="?", choices=("run", "calibrate", "diff"),
                    help="run: execute episodes and score them; "
                         "calibrate: sweep gate thresholds over recorded "
                         "measurements; diff: compare a saved results "
                         "document to a baseline")
    ev.add_argument("document", nargs="?", metavar="EVAL.json",
                    help="for diff: the results document to compare")
    ev.add_argument("--check-dataset", action="store_true",
                    dest="check_dataset",
                    help="validate the dataset and its version doc, "
                         "print the summary, and exit (1 on any problem)")
    ev.add_argument("--dataset", metavar="PATH", default=None,
                    help="episode dataset "
                         "(default: the in-repo eval/dataset.jsonl)")
    ev.add_argument("--quick", action="store_true",
                    help="run only quick-tier episodes (the CI smoke set)")
    ev.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes; the document is identical "
                         "for any value (default 1)")
    ev.add_argument("--timeout", type=float, default=300.0, metavar="S",
                    help="per-episode timeout in seconds (default 300)")
    ev.add_argument("--id", action="append", default=[], dest="ids",
                    metavar="EPISODE",
                    help="run only this episode id; repeatable")
    ev.add_argument("--json", action="store_true", dest="json_out",
                    help="print the deterministic results document as JSON")
    ev.add_argument("--out", metavar="FILE", default=None,
                    help="also write the document to FILE")
    ev.add_argument("--baseline", metavar="FILE", default=None,
                    help="for run/diff: gate per-episode correctness "
                         "against this committed results document")
    ev.add_argument("--from", dest="from_doc", metavar="FILE", default=None,
                    help="for calibrate: recorded results document to "
                         "calibrate from (default: run the full tier now)")

    sc = sub.add_parser(
        "scenarios",
        help="the cross-policy scenario zoo: list, describe, run")
    sc.add_argument("mode", choices=("list", "run", "describe"),
                    help="list: enumerate registered scenarios; describe: "
                         "print one scenario's full spec; run: execute a "
                         "selection and compare verdicts to the registry")
    sc.add_argument("name", nargs="?", metavar="SCENARIO",
                    help="scenario name (required for describe; for run, "
                         "restricts the selection to that one scenario)")
    sc.add_argument("--filter", default=None, metavar="SUBSTR",
                    help="only scenarios whose name contains SUBSTR")
    sc.add_argument("--quick", action="store_true",
                    help="only quick-tier scenarios (drops the long "
                         "feedback pair; the CI smoke set)")
    sc.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes; the document is identical "
                         "for any value (default 1)")
    sc.add_argument("--timeout", type=float, default=300.0, metavar="S",
                    help="per-scenario timeout in seconds (default 300)")
    sc.add_argument("--json", action="store_true", dest="json_out",
                    help="print the deterministic results document as JSON")
    sc.add_argument("--out", metavar="FILE", default=None,
                    help="also write the full document (including timing "
                         "info) to FILE")
    return parser


def _read(path):
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise UsageError("cannot read {!r}: {}".format(
            path, exc.strerror or exc))


def _compiler(args):
    config = VerifierConfig()
    budget = getattr(args, "budget_ops", None)
    if budget is not None:
        if budget < 1:
            raise UsageError("--budget-ops must be >= 1")
        config.max_rule_cost = budget
    return GuardrailCompiler(verifier_config=config,
                             lane=getattr(args, "lane", "auto"))


def cmd_check(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    if not specs:
        out.write("no guardrails found\n")
        return 1
    compiler = _compiler(args)
    failures = 0
    for spec in specs:
        try:
            compiled = compiler.compile(spec)
        except GuardrailError as error:
            out.write("FAIL  {}: {}\n".format(spec.name, error))
            failures += 1
            continue
        out.write("OK    {} ({} ops/check, ~{:.0f} ops/s, lanes: {})\n".format(
            spec.name, compiled.verification.total_cost,
            compiled.verification.estimated_ops_per_second,
            ",".join(compiled.rule_lanes)))
    out.write("{} guardrail(s), {} failure(s)\n".format(len(specs), failures))
    return 1 if failures else 0


def _inspect_json(args, out, specs, compiler):
    """``inspect --json``: the same structure, machine-readable."""
    import json as _json

    guardrails = []
    for spec in specs:
        entry = {
            "name": spec.name,
            "triggers": [t.to_source() for t in spec.triggers],
            "reads": sorted(rule_load_keys(spec)),
            "actions": [a.to_source() for a in spec.actions],
        }
        try:
            compiled = compiler.compile(spec)
            costs = list(compiled.verification.rule_costs)
            lanes = list(compiled.rule_lanes)
            entry["ops_per_check"] = compiled.verification.total_cost
        except GuardrailError as error:
            entry["verifier_error"] = str(error)
            costs = [None] * len(spec.rules)
            lanes = [None] * len(spec.rules)
        entry["rules"] = [
            {"source": rule.to_source(), "ops": cost, "lane": lane}
            for rule, cost, lane in zip(spec.rules, costs, lanes)
        ]
        guardrails.append(entry)
    _json.dump({"guardrails": guardrails}, out, indent=2, sort_keys=True)
    out.write("\n")
    return 0


def cmd_inspect(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        if args.json_out:
            import json as _json

            _json.dump({"error": str(error)}, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            out.write("PARSE ERROR: {}\n".format(error))
        return 1
    compiler = _compiler(args)
    if args.json_out:
        return _inspect_json(args, out, specs, compiler)
    for spec in specs:
        out.write("guardrail {}\n".format(spec.name))
        for trigger in spec.triggers:
            out.write("  trigger  {}\n".format(trigger.to_source()))
        try:
            compiled = compiler.compile(spec)
            costs = compiled.verification.rule_costs
            lanes = compiled.rule_lanes
        except GuardrailError as error:
            out.write("  VERIFIER: {}\n".format(error))
            costs = [None] * len(spec.rules)
            lanes = [None] * len(spec.rules)
        for rule, cost, lane in zip(spec.rules, costs, lanes):
            suffix = "" if cost is None else "  [{} ops, {}]".format(cost, lane)
            out.write("  rule     {}{}\n".format(rule.to_source(), suffix))
        keys = sorted(rule_load_keys(spec))
        out.write("  reads    {}\n".format(", ".join(keys) if keys else "<none>"))
        for action in spec.actions:
            out.write("  action   {}\n".format(action.to_source()))
        out.write("\n")
    return 0


def cmd_fmt(args, out):
    if args.check and args.write:
        raise UsageError("--check and --write are mutually exclusive")
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    formatted = "\n".join(spec.to_source() for spec in specs) + "\n"
    if args.check:
        if text == formatted:
            return 0
        out.write("would reformat {}\n".format(args.file))
        return 1
    if args.write and args.file != "-":
        with open(args.file, "w") as handle:
            handle.write(formatted)
    else:
        out.write(formatted)
    return 0


def _parse_sample(spec):
    out = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        category, _, every = part.partition("=")
        try:
            out[category.strip()] = int(every)
        except ValueError:
            raise UsageError(
                "bad --sample entry {!r}; expected CAT=N".format(part))
    return out


def cmd_trace(args, out):
    # Scenario imports are deferred: `check`/`fmt` must stay fast and free
    # of kernel/policy (numpy) imports.
    from repro.trace import (
        read_jsonl,
        render_summary,
        save_chrome_trace,
        save_jsonl,
        summarize_events,
        summarize_tracer,
        tracing,
    )

    if args.duration is not None and args.duration <= 0:
        raise UsageError("--duration must be positive")
    if args.replay is not None:
        try:
            events = read_jsonl(args.replay)
        except OSError as exc:
            raise UsageError("cannot read trace {!r}: {}".format(
                args.replay, exc.strerror or exc))
        summary = summarize_events(events)
    else:
        from repro.trace import CATEGORIES

        categories = None
        if args.categories:
            categories = [c.strip() for c in args.categories.split(",") if c.strip()]
        sample = _parse_sample(args.sample) if args.sample else None
        for name in tuple(categories or ()) + tuple(sample or ()):
            if name not in CATEGORIES:
                raise UsageError(
                    "unknown trace category {!r}; known: {}".format(
                        name, ", ".join(CATEGORIES)))
        with tracing(capacity=args.capacity, seed=args.seed,
                     categories=categories, sample=sample) as tracer:
            if args.scenario == "fig2":
                from repro.bench.scenarios import (
                    run_figure2_scenario,
                    train_default_linnos_model,
                )

                out.write("training the LinnOS model (fig2 scenario)...\n")
                model = train_default_linnos_model(seed=1, train_seconds=12)
                run_figure2_scenario(
                    model, "guarded", seed=2,
                    duration_s=int(args.duration or 16))
            else:
                from repro.bench.scenarios import run_trace_demo_scenario

                run_trace_demo_scenario(duration_s=int(args.duration or 4))
        events = tracer.events()
        summary = summarize_tracer(tracer)
    if args.jsonl:
        count = save_jsonl(events, args.jsonl)
        out.write("wrote {} event(s) to {}\n".format(count, args.jsonl))
    if args.chrome:
        save_chrome_trace(events, args.chrome)
        out.write("wrote Chrome trace to {} "
                  "(open in Perfetto or chrome://tracing)\n".format(args.chrome))
    out.write(render_summary(summary, top=args.top))
    out.write("\n")
    return 0


def cmd_bench(args, out):
    # Deferred: keep `check`/`fmt` startup free of bench-module imports.
    import pathlib

    from repro.bench import results as bench_results
    from repro.bench import runner as bench_runner

    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    if args.gate is not None and args.baseline is None:
        raise UsageError("--gate requires --baseline")
    if args.timeout <= 0:
        raise UsageError("--timeout must be positive")

    try:
        specs = bench_runner.select(
            bench_runner.discover(args.bench_dir),
            quick=args.quick, filter_expr=args.filter)
    except bench_runner.DiscoveryError as exc:
        raise UsageError(str(exc))
    if not specs:
        raise UsageError(
            "no scenarios match filter {!r}".format(args.filter))

    if args.list_only:
        for spec in sorted(specs, key=lambda s: s.id):
            out.write("{:<28} {:<26} tier={:<5} cost={:<4g} seed={}\n".format(
                spec.id, spec.module, "quick" if spec.quick else "full",
                spec.cost, spec.seed))
        out.write("{} scenario(s)\n".format(len(specs)))
        return 0

    baseline = None
    if args.baseline is not None:
        try:
            baseline = bench_results.load_document(args.baseline)
        except OSError as exc:
            raise UsageError("cannot read baseline {!r}: {}".format(
                args.baseline, exc.strerror or exc))
        except ValueError as exc:
            raise UsageError("bad baseline {!r}: {}".format(
                args.baseline, exc))

    report_dir = args.report_dir
    if report_dir is None:
        report_dir = str(pathlib.Path(args.bench_dir) / "out")

    import time as _time

    started = _time.time()
    scenario_results = bench_runner.run_scenarios(
        specs, jobs=args.jobs, timeout_s=args.timeout, out_dir=report_dir,
        progress=lambda message: out.write("  " + message + "\n"))
    document = bench_results.make_document(
        scenario_results, tier="quick" if args.quick else "full",
        jobs=args.jobs, filter_expr=args.filter,
        sha=bench_results.git_sha(), created_unix=started)
    bench_results.save_document(document, args.out)

    failed = [r for r in scenario_results if r["status"] != "ok"]
    out.write("{} scenario(s), {} failure(s), {:.1f}s wall, "
              "jobs={} -> {}\n".format(
                  len(scenario_results), len(failed),
                  _time.time() - started, args.jobs, args.out))
    for result in failed:
        tail = (result.get("error") or "").strip().splitlines()
        out.write("FAIL  {} [{}]: {}\n".format(
            result["id"], result["status"],
            tail[-1] if tail else "no detail"))

    exit_code = 1 if failed else 0
    if baseline is not None:
        tolerance = args.gate if args.gate is not None else 0.0
        # A deliberately restricted run only gates what it selected; an
        # unrestricted run also catches baseline scenarios that vanished.
        selected_ids = ({s.id for s in specs}
                        if (args.quick or args.filter) else None)
        regressions = bench_results.compare_to_baseline(
            document, baseline, tolerance, selected_ids=selected_ids)
        for regression in regressions:
            out.write(regression.render() + "\n")
        gated = [b for b in baseline["scenarios"]
                 if selected_ids is None or b["id"] in selected_ids]
        if regressions:
            out.write("gate: {} regression(s) beyond {:.0%} tolerance "
                      "vs {}\n".format(len(regressions), tolerance,
                                       args.baseline))
            exit_code = 1
        else:
            out.write("gate: ok ({} scenario(s) within {:.0%} of {})\n"
                      .format(len(gated), tolerance, args.baseline))
    return exit_code


def _faults_plan(args):
    """Build the FaultPlan (or None for a clean run) from the CLI flags."""
    from repro.core.errors import FaultError
    from repro.faults.plan import FaultPlan

    if args.plan and args.fault:
        raise UsageError("--plan and --fault are mutually exclusive")
    try:
        if args.plan:
            try:
                plan = FaultPlan.from_file(args.plan)
            except OSError as exc:
                raise UsageError("cannot read plan {!r}: {}".format(
                    args.plan, exc.strerror or exc))
            if args.seed is not None:
                plan.seed = args.seed
            return plan
        if args.fault:
            return FaultPlan.from_flags(args.fault, seed=args.seed or 0)
    except FaultError as error:
        raise UsageError(str(error))
    return None


def _render_faults_summary(out, stats):
    from repro.sim.units import SECOND

    plan = stats["plan"]
    if plan is None:
        out.write("plan: <none> (clean run)\n")
    else:
        out.write("plan: {} fault(s), seed={}\n".format(
            len(plan["faults"]), plan["seed"]))
    injected = stats["injected"]
    if injected is not None:
        kinds = "  ".join("{}={}".format(kind, count) for kind, count
                          in injected["by_kind"].items())
        out.write("injected: {} fault(s){}\n".format(
            injected["injected"], "  [" + kinds + "]" if kinds else ""))
    policy = stats["policy"]
    if policy is not None:
        breaker = policy["breaker"]
        out.write("policy {}: crashes={} garbage={} slow={} "
                  "fallback_calls={} replaces={}\n".format(
                      policy["slot"], policy["crashes"],
                      policy["invalid_outputs"], policy["slow_calls"],
                      policy["fallback_calls"], policy["replaces"]))
        out.write("  breaker: {} (trips={}, backoff={:.3f}s)\n".format(
            breaker["state"], breaker["trips"],
            breaker["backoff_ns"] / SECOND))
        for move in breaker["transitions"]:
            out.write("  t={:>8.3f}s  {} -> {}\n".format(
                move["time"] / SECOND, move["from"], move["to"]))
    monitors = stats["monitors"]
    out.write("monitor supervisor: rule_crashes={} action_crashes={} "
              "suppressed={}\n".format(
                  monitors["rule_crashes"], monitors["action_crashes"],
                  monitors["suppressed"]))
    for name, breaker in monitors["breakers"].items():
        out.write("  guardrail {}: {} (failures={}, trips={})\n".format(
            name, breaker["state"], breaker["failures"], breaker["trips"]))
        for move in breaker["transitions"]:
            out.write("    t={:>8.3f}s  {} -> {}\n".format(
                move["time"] / SECOND, move["from"], move["to"]))


def cmd_faults(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    from repro.faults.plan import FAULT_KINDS

    if args.list_only:
        out.write("fault kinds (--fault KIND@TARGET[:key=value,...]):\n")
        for kind in sorted(FAULT_KINDS):
            out.write("  {:<8} {}\n".format(kind, FAULT_KINDS[kind]))
        out.write("options: start=S stop=S (virtual seconds), "
                  "p=P (per-opportunity probability),\n"
                  "         count=N (max injections), "
                  "latency_us=U (stall latency)\n")
        out.write("example: --fault raise@storage.pick_device:start=3,stop=5"
                  " \\\n         --fault corrupt@false_submit_rate:start=6,"
                  "p=0.5 --seed 11\n")
        return 0

    import json as _json

    from repro.core.errors import GuardrailError
    from repro.faults.supervisor import BreakerConfig
    from repro.sim.units import SECOND

    if args.threshold < 1:
        raise UsageError("--threshold must be >= 1")
    if args.backoff <= 0:
        raise UsageError("--backoff must be positive")
    if args.duration is not None and args.duration <= 0:
        raise UsageError("--duration must be positive")
    plan = _faults_plan(args)
    config = BreakerConfig(crash_threshold=args.threshold,
                           base_backoff_ns=int(args.backoff * SECOND))
    try:
        if args.scenario == "fig2":
            from repro.bench.scenarios import (
                run_figure2_scenario,
                train_default_linnos_model,
            )

            out.write("training the LinnOS model (fig2 scenario)...\n")
            model = train_default_linnos_model(seed=1, train_seconds=12)
            result = run_figure2_scenario(
                model, "guarded", seed=2,
                duration_s=int(args.duration or 16),
                fault_plan=plan, supervise=True, breaker_config=config)
            kernel = result.kernel
            injector, supervisor = result.injector, result.policy_supervisor
        else:
            from repro.bench.scenarios import run_faults_demo_scenario

            result = run_faults_demo_scenario(
                duration_s=int(args.duration or 12),
                fault_plan=plan, breaker_config=config)
            kernel = result.kernel
            injector, supervisor = result.injector, result.policy_supervisor
    except GuardrailError as error:
        # Misconfigured plan (unknown slot name and friends) surfaces at
        # install time as a typed error: operator mistake, exit 2.
        raise UsageError(str(error))
    except Exception as error:
        # The thing `faults` exists to detect: a fault that escaped
        # containment and took the run down.
        out.write("ESCAPED: {}: {}\n".format(type(error).__name__, error))
        return 1

    stats = {
        "scenario": args.scenario,
        "duration_s": args.duration or (16 if args.scenario == "fig2" else 12),
        "plan": plan.to_dict() if plan is not None else None,
        "injected": injector.stats() if injector is not None else None,
        "policy": supervisor.stats() if supervisor is not None else None,
        "monitors": kernel.supervisor.stats(),
    }
    _render_faults_summary(out, stats)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            _json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        out.write("wrote accounting to {}\n".format(args.json_out))
    out.write("contained: every injected fault was absorbed; "
              "the run completed\n")
    return 0


def _render_fleet_summary(out, report):
    scenario = report["scenario"]
    out.write("fleet: {} host(s), seed {}, stages {}{}{}\n".format(
        report["hosts"], scenario["seed"], scenario["stages"],
        ", {} faulted".format(scenario["fault_hosts"])
        if scenario["fault_hosts"] else "",
        " [quick]" if scenario["quick"] else ""))
    baseline = report["baseline"]
    out.write("baseline: {} round(s), violation_rate={:.3f}/host-s, "
              "p95={}\n".format(
                  report["plan"]["baseline_rounds"],
                  baseline["violation_rate"],
                  "{:.0f}us".format(baseline["latency_p95_us"])
                  if baseline["latency_p95_us"] is not None else "n/a"))
    for stage_report in report["stages"]:
        stage = stage_report["stage"]
        gate = stage_report["gate"]
        out.write("stage {:<10} -> {:>3} host(s): {}\n".format(
            stage["label"], stage["target_hosts"],
            "PASS" if gate["passed"] else
            "TRIP  [" + "; ".join(gate["reasons"]) + "]"))
        if "rollback" in stage_report:
            out.write("  rollback: {} host(s) returned to v{}\n".format(
                stage_report["rollback"]["hosts"],
                report["versions"]["old"]["version"]))
    for entry in report["timeline"]:
        detail = {k: v for k, v in entry.items()
                  if k not in ("round", "time_s", "event")}
        out.write("  t={:>5.1f}s  {:<18}{}\n".format(
            entry["time_s"], entry["event"],
            "  " + ", ".join("{}={}".format(k, detail[k])
                             for k in sorted(detail)) if detail else ""))
    if report["status"] == "completed":
        out.write("completed: v{} on all {} host(s) after {} round(s)\n"
                  .format(report["versions"]["new"]["version"],
                          report["hosts"], report["rounds"]))
    else:
        out.write("ROLLED BACK at stage {!r}: fleet restored to v{}\n"
                  .format(report["rolled_back_at_stage"],
                          report["versions"]["old"]["version"]))


def cmd_fleet(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    import json as _json

    if args.hosts < 1:
        raise UsageError("--hosts must be >= 1")
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    if args.faults < 0 or args.faults > args.hosts:
        raise UsageError("--faults must be between 0 and --hosts")

    from repro.fleet.rollout import parse_stages
    from repro.fleet.scenario import run_fleet_rollout

    try:
        parse_stages(args.stages, args.hosts)
    except ValueError as error:
        raise UsageError(str(error))

    # Fail on an unwritable --out path *before* the run, not after it.
    out_handle = None
    if args.out is not None:
        try:
            out_handle = open(args.out, "w")
        except OSError as exc:
            raise UsageError("cannot write {!r}: {}".format(
                args.out, exc.strerror or exc))

    try:
        report = run_fleet_rollout(
            hosts=args.hosts, stages=args.stages, seed=args.seed,
            jobs=args.jobs, fault_hosts=args.faults, quick=args.quick)
        if out_handle is not None:
            _json.dump(report, out_handle, indent=2, sort_keys=True)
            out_handle.write("\n")
    finally:
        if out_handle is not None:
            out_handle.close()
    if args.json_out:
        _json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _render_fleet_summary(out, report)
        if args.out is not None:
            out.write("wrote report to {}\n".format(args.out))
    return 0 if report["status"] == "completed" else 1


def _open_store(args, retention=None):
    from repro.service.store import ResultsStore, StoreError

    try:
        return ResultsStore(args.store, retention=retention)
    except StoreError as error:
        raise UsageError(str(error))


def cmd_serve(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    from repro.fleet.rollout import parse_stages
    from repro.service.loop import (
        ServiceError,
        resume,
        serve_rollout,
        serve_soak,
        summary_json,
    )
    from repro.service.store import RetentionPolicy

    if args.hosts < 1:
        raise UsageError("--hosts must be >= 1")
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    if args.faults < 0 or args.faults > args.hosts:
        raise UsageError("--faults must be between 0 and --hosts")
    if args.rounds < 1:
        raise UsageError("--rounds must be >= 1")
    if args.rate < 1:
        raise UsageError("--rate must be >= 1")
    if args.max_rounds is not None and args.max_rounds < 1:
        raise UsageError("--max-rounds must be >= 1")
    if args.run is not None and not args.resume:
        raise UsageError("--run only makes sense with --resume")
    try:
        retention = RetentionPolicy(raw_rounds=args.retain_rounds,
                                    bucket_rounds=args.bucket_rounds)
    except ValueError as error:
        raise UsageError(str(error))
    if not args.resume and not args.soak:
        try:
            parse_stages(args.stages, args.hosts)
        except ValueError as error:
            raise UsageError(str(error))

    with _open_store(args, retention=retention) as store:
        try:
            if args.resume:
                summary = resume(store, run_id=args.run, jobs=args.jobs,
                                 max_rounds=args.max_rounds)
            elif args.soak:
                summary = serve_soak(
                    store, hosts=args.hosts, seed=args.seed,
                    rate_ios=args.rate, rounds=args.rounds, jobs=args.jobs,
                    max_rounds=args.max_rounds)
            else:
                summary = serve_rollout(
                    store, hosts=args.hosts, stages=args.stages,
                    seed=args.seed, fault_hosts=args.faults,
                    quick=args.quick, jobs=args.jobs,
                    max_rounds=args.max_rounds)
        except ServiceError as error:
            raise UsageError(str(error))
    out.write(summary_json(summary))
    out.write("\n")
    # Same contract as `fleet`: a gate trip the service detected is 1.
    return 1 if summary["status"] == "rolled_back" else 0


def cmd_query(args, out):
    import json as _json

    from repro.service.query import QUERIES
    from repro.service.store import StoreError

    if args.name not in QUERIES:
        raise UsageError("unknown query {!r}; known: {}".format(
            args.name, ", ".join(sorted(QUERIES))))
    with _open_store(args) as store:
        try:
            result = QUERIES[args.name](store, args.run)
        except StoreError as error:
            raise UsageError(str(error))
    _json.dump(result, out, indent=2, sort_keys=True)
    out.write("\n")
    return 0


def cmd_dash(args, out):
    from repro.service.dashboard import render_html, render_terminal
    from repro.service.store import StoreError

    with _open_store(args) as store:
        try:
            if args.html is not None:
                page = render_html(store, args.run)
            else:
                text = render_terminal(store, args.run)
        except StoreError as error:
            raise UsageError(str(error))
    if args.html is not None:
        try:
            with open(args.html, "w") as handle:
                handle.write(page)
        except OSError as exc:
            raise UsageError("cannot write {!r}: {}".format(
                args.html, exc.strerror or exc))
        out.write("wrote dashboard to {}\n".format(args.html))
    else:
        out.write(text)
    return 0


def _render_autopilot_summary(out, result):
    final = result["final"]
    out.write("autopilot: {} from threshold {:g}\n".format(
        result["guardrail"], result["initial"]["threshold"]))
    for proposal in result["synthesis"]:
        out.write("  synthesized {} ({}) recorded as proposal {}\n".format(
            proposal["guardrail"], proposal["provenance"]["property"],
            proposal["proposal_id"]))
    for entry in result["iterations"]:
        line = "  iter {}: {}".format(entry["iteration"], entry["action"])
        proposal = entry.get("proposal")
        if proposal is not None:
            line += " v{} threshold {:g}".format(
                proposal["version"], proposal["provenance"]["threshold"])
        if entry["action"] == "rolled_back":
            line += " at {} ({})".format(
                entry["rolled_back_at_stage"],
                "; ".join(entry["gate_reasons"]) or "no reasons recorded")
        out.write(line + "\n")
    out.write("final: threshold {:g} v{} ({} deployed, {} rolled back{})\n"
              .format(final["threshold"], final["version"],
                      final["deployed"], final["rolled_back"],
                      ", converged" if final["converged"] else ""))


def cmd_autopilot(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    import json as _json

    if args.hosts < 1:
        raise UsageError("--hosts must be >= 1")
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    if args.iterations < 1:
        raise UsageError("--iterations must be >= 1")
    if args.corrupt_at is not None and args.corrupt_at < 0:
        raise UsageError("--corrupt-at must be >= 0")
    if args.quantile is not None and not 0.0 <= args.quantile <= 1.0:
        raise UsageError("--quantile must be in [0, 1]")
    if args.margin is not None and args.margin <= 0:
        raise UsageError("--margin must be > 0")

    from repro.autopilot.loop import AutopilotError, run_autopilot
    from repro.autopilot.propose import TIGHTEN_MARGIN, TIGHTEN_QUANTILE
    from repro.fleet.rollout import parse_stages

    try:
        parse_stages(args.stages, args.hosts)
    except ValueError as error:
        raise UsageError(str(error))

    # Fail on an unwritable --out path *before* the run, not after it.
    out_handle = None
    if args.out is not None:
        try:
            out_handle = open(args.out, "w")
        except OSError as exc:
            raise UsageError("cannot write {!r}: {}".format(
                args.out, exc.strerror or exc))

    iterations = 1 if args.mode in ("propose", "apply") else args.iterations
    try:
        with _open_store(args) as store:
            try:
                result = run_autopilot(
                    store, hosts=args.hosts, stages=args.stages,
                    seed=args.seed, jobs=args.jobs, iterations=iterations,
                    quick=args.quick, corrupt_at=args.corrupt_at,
                    quantile=(TIGHTEN_QUANTILE if args.quantile is None
                              else args.quantile),
                    margin=(TIGHTEN_MARGIN if args.margin is None
                            else args.margin),
                    deploy=args.mode != "propose",
                    synthesize=not args.no_synthesize)
            except AutopilotError as error:
                raise UsageError(str(error))
        if out_handle is not None:
            _json.dump(result, out_handle, indent=2, sort_keys=True)
            out_handle.write("\n")
    finally:
        if out_handle is not None:
            out_handle.close()
    if args.json_out:
        _json.dump(result, out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        _render_autopilot_summary(out, result)
        if args.out is not None:
            out.write("wrote report to {}\n".format(args.out))
    # Same contract as `fleet`: a gate trip the autopilot provoked is 1.
    return 1 if result["final"]["rolled_back"] else 0


def _render_eval_scores(out, document):
    scores = document["scores"]
    lo, hi = scores["accuracy_ci"]
    out.write("accuracy {}/{} ({:.1%}, CI {:.1%}-{:.1%})\n".format(
        scores["correct"], scores["n"], scores["accuracy"], lo, hi))
    trip = scores["trip_detection"]
    out.write("trip detection: precision {:.3f}  recall {:.3f}  f1 {:.3f}  "
              "false trips {}/{}\n".format(
                  trip["precision"], trip["recall"], trip["f1"],
                  trip["fp"], trip["fp"] + trip["tn"]))
    for axis, cell in sorted(scores["fleet_axis_false_trips"].items()):
        lo, hi = cell["ci"]
        out.write("  gate axis {:<12} false-trip rate {}/{} "
                  "(CI {:.1%}-{:.1%})\n".format(
                      axis, cell["false_trips"], cell["clean_episodes"],
                      lo, hi))
    for result in document["episodes"]:
        if not result["correct"]:
            out.write("WRONG  {}: expected {}, got {}{}\n".format(
                result["id"], result["expected"], result["verdict"],
                "  [" + result["error"].strip().splitlines()[-1] + "]"
                if result.get("error") else ""))


def _render_eval_diff(out, diff):
    for entry in diff["regressions"]:
        out.write("REGRESSION  {}: expected {}, got {} "
                  "(baseline: {})\n".format(
                      entry["id"], entry["expected"], entry["verdict"],
                      entry["baseline_verdict"] or "absent"))
    for entry in diff["improvements"]:
        out.write("improved    {}: now {} (baseline: {})\n".format(
            entry["id"], entry["verdict"], entry["baseline_verdict"]))
    for entry in diff["known_failures"]:
        out.write("known fail  {}: expected {}, got {}\n".format(
            entry["id"], entry["expected"], entry["verdict"]))
    if diff["dataset_version_changed"]:
        out.write("note: dataset version changed "
                  "(baseline {})\n".format(
                      diff["baseline"]["dataset_version"]))
    out.write("baseline gate: {} ({} episode(s) compared, "
              "{} regression(s))\n".format(
                  "ok" if diff["passed"] else "FAIL",
                  diff["compared"], len(diff["regressions"])))


def _render_calibration(out, calibration):
    for axis, band in sorted(calibration["axes"].items()):
        band_text = ("band ({:.4g}, {:.4g})".format(
            band["clean_max"], band["fault_min"])
            if band["clean_max"] is not None and band["fault_min"] is not None
            else "band <incomplete data>")
        out.write("axis {:<12} {}  current {:g} -> {:g}\n"
                  "  {}\n".format(axis, band_text, band["current"],
                                  band["recommended"], band["how"]))
    verification = calibration["verification"]
    out.write("verification: {} (clean trips {}, missed faults {}) over "
              "{} fleet episode(s)\n".format(
                  "ok" if verification["passed"] else "FAIL",
                  verification["clean_trips"], verification["missed_faults"],
                  calibration["fleet_episodes"]))
    out.write("recommended config {} the current one\n".format(
        "differs from" if calibration["changed"] else "matches"))


def _eval_document(args):
    """Run the eval (progress to stderr, never into the document)."""
    from repro.eval.dataset import DatasetError
    from repro.eval.runner import run_eval

    try:
        return run_eval(
            dataset_path=args.dataset,
            tier="quick" if args.quick else "full",
            jobs=args.jobs, ids=args.ids or None, timeout_s=args.timeout,
            progress=lambda message: sys.stderr.write(
                "  " + message + "\n"))
    except (DatasetError, ValueError) as error:
        raise UsageError(str(error))


def cmd_eval(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    from repro.eval.calibrate import calibrate
    from repro.eval.dataset import DatasetError, check_dataset
    from repro.eval.results import (
        compare_to_baseline,
        dumps_document,
        load_document,
    )

    if args.check_dataset:
        try:
            summary = check_dataset(args.dataset)
        except DatasetError as error:
            out.write("dataset: FAIL: {}\n".format(error))
            return 1
        out.write("dataset: ok — version {} ({} episode(s): "
                  "{} host / {} fleet / {} scenario, "
                  "{} quick-tier)\n".format(
                      summary["dataset_version"], summary["episodes"],
                      summary["by_kind"]["host"], summary["by_kind"]["fleet"],
                      summary["by_kind"]["scenario"],
                      summary["by_tier"]["quick"]))
        return 0
    if args.mode is None:
        raise UsageError("expected a mode (run, calibrate, diff) "
                         "or --check-dataset")
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    if args.timeout <= 0:
        raise UsageError("--timeout must be positive")
    if args.document is not None and args.mode != "diff":
        raise UsageError("a document argument only makes sense with diff")

    def load(path, what):
        try:
            return load_document(path)
        except OSError as exc:
            raise UsageError("cannot read {} {!r}: {}".format(
                what, path, exc.strerror or exc))
        except ValueError as exc:
            raise UsageError(str(exc))

    baseline = (load(args.baseline, "baseline")
                if args.baseline is not None else None)

    if args.mode == "diff":
        if args.document is None:
            raise UsageError("diff needs a results document argument")
        if baseline is None:
            raise UsageError("diff needs --baseline")
        diff = compare_to_baseline(load(args.document, "document"), baseline)
        if args.json_out:
            out.write(dumps_document(diff))
        else:
            _render_eval_diff(out, diff)
        return 0 if diff["passed"] else 1

    if args.mode == "calibrate":
        document = (load(args.from_doc, "document")
                    if args.from_doc is not None else _eval_document(args))
        try:
            calibration = calibrate(document)
        except ValueError as error:
            raise UsageError(str(error))
        if args.out is not None:
            with open(args.out, "w") as handle:
                handle.write(dumps_document(calibration))
        if args.json_out:
            out.write(dumps_document(calibration))
        else:
            _render_calibration(out, calibration)
        # The thing calibrate gates on: the shipped defaults must be
        # exactly what the data reproduces, and must separate every
        # labelled episode.
        passed = calibration["verification"]["passed"] and \
            not calibration["changed"]
        return 0 if passed else 1

    document = _eval_document(args)
    if args.out is not None:
        with open(args.out, "w") as handle:
            handle.write(dumps_document(document))
    diff = (compare_to_baseline(document, baseline)
            if baseline is not None else None)
    if args.json_out:
        out.write(dumps_document(document))
    else:
        out.write("eval: {} episode(s), tier {}, dataset v{}\n".format(
            len(document["episodes"]), document["tier"],
            document["dataset"]["dataset_version"]))
        _render_eval_scores(out, document)
        if args.out is not None:
            out.write("wrote document to {}\n".format(args.out))
    if diff is not None:
        if not args.json_out:
            _render_eval_diff(out, diff)
        return 0 if diff["passed"] else 1
    incorrect = sum(1 for result in document["episodes"]
                    if not result["correct"])
    return 1 if incorrect else 0


def _select_scenarios(args):
    """Resolve the run/list selection; UsageError on unknown/empty."""
    from repro.scenarios import get_scenario, select_scenarios

    if args.name is not None:
        try:
            selection = [get_scenario(args.name)]
        except KeyError:
            raise UsageError("unknown scenario {!r}; see "
                             "'grctl scenarios list'".format(args.name))
        if args.filter and args.filter not in args.name:
            selection = []
        if args.quick:
            selection = [spec for spec in selection if spec.quick]
    else:
        selection = select_scenarios(filter_substring=args.filter,
                                     quick=args.quick)
    if not selection:
        raise UsageError("selection matches no scenarios")
    return selection


def cmd_scenarios(args, out):
    # Deferred imports, same policy as trace/bench: `check`/`fmt` stay fast.
    import json as _json

    if args.mode == "describe":
        if args.name is None:
            raise UsageError("describe needs a scenario name")
        from repro.scenarios import get_scenario

        try:
            spec = get_scenario(args.name)
        except KeyError:
            raise UsageError("unknown scenario {!r}; see "
                             "'grctl scenarios list'".format(args.name))
        if args.json_out:
            _json.dump(spec.to_dict(), out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            out.write("{}\n".format(spec.name))
            out.write("  kind:      {}\n".format(spec.kind))
            out.write("  domains:   {}\n".format(", ".join(
                "{}({})".format(domain, workload) for domain, workload
                in zip(spec.domains, spec.workloads))))
            out.write("  policies:  {}\n".format(", ".join(spec.policies)))
            out.write("  fault:     {}\n".format(spec.fault))
            out.write("  seed:      {}\n".format(spec.seed))
            out.write("  duration:  {:g}s\n".format(spec.duration_s))
            out.write("  tier:      {}\n".format(
                "quick" if spec.quick else "full"))
            out.write("  expected:  {}\n".format(", ".join(
                "{}={}".format(key, value) for key, value
                in sorted(spec.expected.items()))))
            out.write("  {}\n".format(spec.description))
        return 0

    selection = _select_scenarios(args)

    if args.mode == "list":
        if args.json_out:
            _json.dump([spec.to_dict() for spec in selection], out,
                       indent=2, sort_keys=True)
            out.write("\n")
        else:
            width = max(len(spec.name) for spec in selection)
            for spec in selection:
                out.write("{:<{width}}  {:<8}  {:<5}  {}\n".format(
                    spec.name, spec.kind,
                    "quick" if spec.quick else "full",
                    spec.expected_overall(), width=width))
            out.write("{} scenario(s)\n".format(len(selection)))
        return 0

    # mode == "run"
    if args.jobs < 1:
        raise UsageError("--jobs must be >= 1")
    from repro.scenarios import deterministic_document, run_scenarios

    # Fail on an unwritable --out path *before* the run, not after it.
    out_handle = None
    if args.out is not None:
        try:
            out_handle = open(args.out, "w")
        except OSError as exc:
            raise UsageError("cannot write {!r}: {}".format(
                args.out, exc.strerror or exc))
    try:
        document = run_scenarios(selection, jobs=args.jobs,
                                 timeout_s=args.timeout)
        if out_handle is not None:
            _json.dump(document, out_handle, indent=2, sort_keys=True)
            out_handle.write("\n")
    finally:
        if out_handle is not None:
            out_handle.close()

    passed = (document["matched"] == document["count"]
              and not document["errors"])
    if args.json_out:
        _json.dump(deterministic_document(document), out, indent=2,
                   sort_keys=True)
        out.write("\n")
        return 0 if passed else 1
    for result in document["scenarios"]:
        if result["matched"]:
            out.write("ok       {}  ({})\n".format(
                result["name"], result["overall"]))
        else:
            out.write("MISMATCH {}  expected {} got {}\n".format(
                result["name"], result["expected"], result["verdicts"]))
    for error in document["errors"]:
        out.write("ERROR    {}  {}\n".format(error["name"], error["error"]))
    out.write("scenarios: {} run, {} matched, {} mismatched, "
              "{} error(s)\n".format(
                  document["count"], document["matched"],
                  len(document["mismatched"]), len(document["errors"])))
    if args.out is not None:
        out.write("wrote document to {}\n".format(args.out))
    return 0 if passed else 1


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handler = {"check": cmd_check, "inspect": cmd_inspect, "fmt": cmd_fmt,
               "trace": cmd_trace, "bench": cmd_bench, "faults": cmd_faults,
               "fleet": cmd_fleet, "serve": cmd_serve, "query": cmd_query,
               "dash": cmd_dash, "autopilot": cmd_autopilot,
               "eval": cmd_eval, "scenarios": cmd_scenarios}
    try:
        return handler[args.command](args, out)
    except UsageError as error:
        sys.stderr.write("grctl {}: error: {}\n".format(args.command, error))
        return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools.  Swap stdout for devnull so the
        # interpreter's exit-time flush does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)

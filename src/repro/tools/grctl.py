"""``grctl`` — check, inspect, and format guardrail files.

A guardrail file holds one or more ``guardrail { ... }`` blocks (the DSL of
Listing 1).  Subcommands:

- ``check``   — parse, validate, compile, and verify every guardrail;
  exit 0 when all are loadable, 1 otherwise (CI gate for guardrail repos);
- ``inspect`` — print each guardrail's triggers, rules with verified cost,
  read set (the feature-store keys its rules LOAD), and actions;
- ``fmt``     — canonically reformat the file via the AST printer
  (``--check`` exits 1 without writing when the file is not canonical,
  the CI gate counterpart to ``--write``);
- ``trace``   — run a traced scenario (or replay a saved JSONL trace) and
  print a human summary: hottest hooks, per-guardrail check/violation/
  action counters, and the violation/action timeline.  ``--jsonl`` and
  ``--chrome`` export the event stream (the latter loads in Perfetto or
  ``chrome://tracing``).

Usage::

    python -m repro.tools.grctl check mygardrails.grd
    python -m repro.tools.grctl inspect --budget-ops 128 mygardrails.grd
    python -m repro.tools.grctl fmt --write mygardrails.grd
    python -m repro.tools.grctl fmt --check mygardrails.grd
    python -m repro.tools.grctl trace --scenario quick --chrome trace.json
    python -m repro.tools.grctl trace --replay run.jsonl --top 5
"""

import argparse
import sys

from repro.core.compiler import GuardrailCompiler
from repro.core.dependency import rule_load_keys
from repro.core.errors import GuardrailError
from repro.core.spec import parse_guardrails
from repro.core.verifier import VerifierConfig


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="grctl", description="check/inspect/format guardrail files")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("check", "parse + validate + compile + verify; exit 1 on failure"),
        ("inspect", "print structure, costs, and read sets"),
        ("fmt", "canonically reformat"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("file", help="guardrail file (use '-' for stdin)")
        if name in ("check", "inspect"):
            cmd.add_argument("--budget-ops", type=int, default=None,
                             help="override the per-rule instruction budget")
        if name == "fmt":
            cmd.add_argument("--write", action="store_true",
                             help="rewrite the file in place")
            cmd.add_argument("--check", action="store_true",
                             help="exit 1 if not canonically formatted; "
                                  "never writes")

    trace = sub.add_parser(
        "trace", help="run a traced scenario or replay a JSONL trace")
    trace.add_argument("--scenario", choices=("quick", "fig2"),
                       default="quick",
                       help="quick: synthetic demo run (default); "
                            "fig2: the Listing-2 LinnOS guardrail run "
                            "(trains the model first — slower)")
    trace.add_argument("--replay", metavar="FILE", default=None,
                       help="summarize a saved JSONL trace instead of "
                            "running a scenario")
    trace.add_argument("--duration", type=float, default=None,
                       help="scenario duration in simulated seconds")
    trace.add_argument("--jsonl", metavar="PATH", default=None,
                       help="export the event stream as JSONL")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="export Chrome trace_event JSON "
                            "(Perfetto / chrome://tracing)")
    trace.add_argument("--capacity", type=int, default=262144,
                       help="ring-buffer capacity in events")
    trace.add_argument("--seed", type=int, default=0,
                       help="sampling-phase seed")
    trace.add_argument("--categories", default=None,
                       help="comma-separated categories to enable "
                            "(default: all)")
    trace.add_argument("--sample", default=None, metavar="CAT=N[,CAT=N...]",
                       help="1-in-N sampling per category, e.g. "
                            "hook=16,featurestore.save=8")
    trace.add_argument("--top", type=int, default=10,
                       help="rows per top-N table")
    return parser


def _read(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _compiler(args):
    config = VerifierConfig()
    if getattr(args, "budget_ops", None) is not None:
        config.max_rule_cost = args.budget_ops
    return GuardrailCompiler(verifier_config=config)


def cmd_check(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    if not specs:
        out.write("no guardrails found\n")
        return 1
    compiler = _compiler(args)
    failures = 0
    for spec in specs:
        try:
            compiled = compiler.compile(spec)
        except GuardrailError as error:
            out.write("FAIL  {}: {}\n".format(spec.name, error))
            failures += 1
            continue
        out.write("OK    {} ({} ops/check, ~{:.0f} ops/s)\n".format(
            spec.name, compiled.verification.total_cost,
            compiled.verification.estimated_ops_per_second))
    out.write("{} guardrail(s), {} failure(s)\n".format(len(specs), failures))
    return 1 if failures else 0


def cmd_inspect(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    compiler = _compiler(args)
    for spec in specs:
        out.write("guardrail {}\n".format(spec.name))
        for trigger in spec.triggers:
            out.write("  trigger  {}\n".format(trigger.to_source()))
        try:
            compiled = compiler.compile(spec)
            costs = compiled.verification.rule_costs
        except GuardrailError as error:
            out.write("  VERIFIER: {}\n".format(error))
            costs = [None] * len(spec.rules)
        for rule, cost in zip(spec.rules, costs):
            suffix = "" if cost is None else "  [{} ops]".format(cost)
            out.write("  rule     {}{}\n".format(rule.to_source(), suffix))
        keys = sorted(rule_load_keys(spec))
        out.write("  reads    {}\n".format(", ".join(keys) if keys else "<none>"))
        for action in spec.actions:
            out.write("  action   {}\n".format(action.to_source()))
        out.write("\n")
    return 0


def cmd_fmt(args, out):
    text = _read(args.file)
    try:
        specs = parse_guardrails(text)
    except GuardrailError as error:
        out.write("PARSE ERROR: {}\n".format(error))
        return 1
    formatted = "\n".join(spec.to_source() for spec in specs) + "\n"
    if args.check:
        if text == formatted:
            return 0
        out.write("would reformat {}\n".format(args.file))
        return 1
    if args.write and args.file != "-":
        with open(args.file, "w") as handle:
            handle.write(formatted)
    else:
        out.write(formatted)
    return 0


def _parse_sample(spec):
    out = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        category, _, every = part.partition("=")
        try:
            out[category.strip()] = int(every)
        except ValueError:
            raise SystemExit(
                "bad --sample entry {!r}; expected CAT=N".format(part))
    return out


def cmd_trace(args, out):
    # Scenario imports are deferred: `check`/`fmt` must stay fast and free
    # of kernel/policy (numpy) imports.
    from repro.trace import (
        read_jsonl,
        render_summary,
        save_chrome_trace,
        save_jsonl,
        summarize_events,
        summarize_tracer,
        tracing,
    )

    if args.replay is not None:
        try:
            events = read_jsonl(args.replay)
        except OSError as exc:
            raise SystemExit("cannot read trace {!r}: {}".format(
                args.replay, exc.strerror or exc))
        summary = summarize_events(events)
    else:
        from repro.trace import CATEGORIES

        categories = None
        if args.categories:
            categories = [c.strip() for c in args.categories.split(",") if c.strip()]
        sample = _parse_sample(args.sample) if args.sample else None
        for name in tuple(categories or ()) + tuple(sample or ()):
            if name not in CATEGORIES:
                raise SystemExit(
                    "unknown trace category {!r}; known: {}".format(
                        name, ", ".join(CATEGORIES)))
        with tracing(capacity=args.capacity, seed=args.seed,
                     categories=categories, sample=sample) as tracer:
            if args.scenario == "fig2":
                from repro.bench.scenarios import (
                    run_figure2_scenario,
                    train_default_linnos_model,
                )

                out.write("training the LinnOS model (fig2 scenario)...\n")
                model = train_default_linnos_model(seed=1, train_seconds=12)
                run_figure2_scenario(
                    model, "guarded", seed=2,
                    duration_s=int(args.duration or 16))
            else:
                from repro.bench.scenarios import run_trace_demo_scenario

                run_trace_demo_scenario(duration_s=int(args.duration or 4))
        events = tracer.events()
        summary = summarize_tracer(tracer)
    if args.jsonl:
        count = save_jsonl(events, args.jsonl)
        out.write("wrote {} event(s) to {}\n".format(count, args.jsonl))
    if args.chrome:
        save_chrome_trace(events, args.chrome)
        out.write("wrote Chrome trace to {} "
                  "(open in Perfetto or chrome://tracing)\n".format(args.chrome))
    out.write(render_summary(summary, top=args.top))
    out.write("\n")
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handler = {"check": cmd_check, "inspect": cmd_inspect, "fmt": cmd_fmt,
               "trace": cmd_trace}
    return handler[args.command](args, out)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like other
        # well-behaved CLI tools.  Swap stdout for devnull so the
        # interpreter's exit-time flush does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)

"""Developer tools: the ``grctl`` guardrail-file utility."""

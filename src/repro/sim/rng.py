"""Named, independently seeded random streams.

Every stochastic component (device latency, trace generation, policy
exploration) draws from its own named stream so that adding a new component
never perturbs the draws of existing ones — the classic trick for keeping
discrete-event simulations comparable across configurations.
"""

import numpy as np


class RngStreams:
    """A family of :class:`numpy.random.Generator` objects keyed by name."""

    def __init__(self, seed=0):
        self._seed = int(seed)
        self._streams = {}

    @property
    def seed(self):
        """The base seed all named streams are derived from."""
        return self._seed

    def get(self, name):
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            child = np.random.default_rng([self._seed, _stable_hash(name)])
            self._streams[name] = child
        return self._streams[name]

    def reset(self, name=None):
        """Forget one stream (or all) so the next ``get`` re-creates it fresh."""
        if name is None:
            self._streams.clear()
        else:
            self._streams.pop(name, None)


def _stable_hash(name):
    """A process-independent 63-bit hash of a string (``hash()`` is salted)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return h

"""Coroutine-style processes on top of the event engine.

A process is a generator that yields *commands*:

- ``yield sleep(delay)`` — suspend for ``delay`` virtual nanoseconds.
- ``yield wait(condition)`` — suspend until ``condition.fire(value)`` is
  called by someone else; the yielded expression evaluates to ``value``.

This gives kernel subsystems (an SSD servicing a queue, a scheduler loop) a
readable sequential style while everything still runs on one event heap.
"""


class _Sleep:
    __slots__ = ("delay",)

    def __init__(self, delay):
        self.delay = delay


class Condition:
    """A one-shot or repeating wakeup channel between processes."""

    def __init__(self):
        self._waiters = []

    def fire(self, value=None):
        """Wake every process currently waiting on this condition."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)

    def _register(self, process):
        self._waiters.append(process)

    @property
    def waiter_count(self):
        return len(self._waiters)


def sleep(delay):
    """Command: suspend the yielding process for ``delay`` nanoseconds."""
    return _Sleep(delay)


def wait(condition):
    """Command: suspend until ``condition.fire(value)``; yields ``value``."""
    return condition


class Process:
    """Drives a generator over the engine's event loop."""

    def __init__(self, engine, generator, name="process"):
        self.engine = engine
        self.name = name
        self._gen = generator
        self.finished = False
        self.result = None
        self.on_exit = Condition()
        engine.schedule(0, self._resume, None)

    def _resume(self, value):
        if self.finished:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            self.on_exit.fire(self.result)
            return
        if isinstance(command, _Sleep):
            self.engine.schedule(command.delay, self._resume, None)
        elif isinstance(command, Condition):
            command._register(self)
        else:
            raise TypeError(
                "process {!r} yielded {!r}; expected sleep() or a Condition".format(
                    self.name, command
                )
            )

    def __repr__(self):
        state = "finished" if self.finished else "running"
        return "Process({!r}, {})".format(self.name, state)

"""Discrete-event simulation engine.

The engine owns a virtual clock (integer nanoseconds) and a priority queue of
events.  Events scheduled for the same timestamp fire in the order they were
scheduled (a monotonically increasing sequence number breaks ties), which
keeps whole simulations bit-for-bit reproducible.

The engine deliberately has no knowledge of kernels, policies, or guardrails;
those are layered on top through callbacks, :mod:`repro.sim.hooks`, and
:mod:`repro.sim.process`.
"""

import heapq
import itertools


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are handed back from :meth:`Engine.schedule` so callers can cancel
    them.  Cancellation is lazy: the event stays in the heap but is skipped
    when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self):
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return "Event(t={}, seq={}, {})".format(self.time, self.seq, state)


class Engine:
    """Event loop with a virtual nanosecond clock.

    Usage::

        engine = Engine()
        engine.schedule_at(10, my_callback, arg1)
        engine.run(until=1_000_000)
    """

    def __init__(self, seed=0):
        self._heap = []
        self._seq = itertools.count()
        self._now = 0
        self._running = False
        self._stopped = False
        from repro.sim.rng import RngStreams

        self.rng = RngStreams(seed)
        self._pending = 0

    @property
    def now(self):
        """Current virtual time in integer nanoseconds."""
        return self._now

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule event at t={} before now={}".format(time, self._now)
            )
        event = Event(int(time), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("negative delay: {}".format(delay))
        return self.schedule_at(self._now + int(delay), callback, *args)

    def stop(self):
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self):
        """Timestamp of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._pending -= 1
        if not self._heap:
            return None
        return self._heap[0].time

    def step(self):
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self._pending -= 1
            if event.cancelled:
                continue
            self._now = event.time
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run(self, until=None):
        """Run until the queue drains, ``stop()`` is called, or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = int(until)

    def pending_events(self):
        """Number of pending (not cancelled, not fired) events."""
        return sum(1 for e in self._heap if not e.cancelled)

"""Discrete-event simulation engine.

The engine owns a virtual clock (integer nanoseconds) and a priority queue of
events.  Events scheduled for the same timestamp fire in the order they were
scheduled (a monotonically increasing sequence number breaks ties), which
keeps whole simulations bit-for-bit reproducible.

Fractional timestamps are rounded *up* to the next nanosecond: an event may
fire later than requested by under a nanosecond, never earlier.  (Truncating
instead would let ``schedule_at(now + 0.9)`` fire at ``now`` — in the past
relative to the request.)

The engine deliberately has no knowledge of kernels, policies, or guardrails;
those are layered on top through callbacks, :mod:`repro.sim.hooks`, and
:mod:`repro.sim.process`.
"""

import heapq
import math


class SimulationError(RuntimeError):
    """Raised for invalid engine usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are handed back from :meth:`Engine.schedule` so callers can cancel
    them.  Cancellation removes the event from the top of the heap when it is
    cheap to do so; entries buried deeper stay until popped, but the engine's
    live-event counter is updated immediately (``pending_events()`` is O(1)).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired",
                 "_engine")

    def __init__(self, time, seq, callback, args, engine=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self):
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._pending -= 1
            # Eager removal: drop cancelled entries while they sit at the top
            # of the heap, so cancel-heavy workloads (periodic triggers being
            # re-armed, supervisor backoffs) don't accrete dead entries.
            heap = engine._heap
            while heap and heap[0].cancelled:
                heapq.heappop(heap)

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return "Event(t={}, seq={}, {})".format(self.time, self.seq, state)


class Engine:
    """Event loop with a virtual nanosecond clock.

    Usage::

        engine = Engine()
        engine.schedule_at(10, my_callback, arg1)
        engine.run(until=1_000_000)
    """

    def __init__(self, seed=0):
        self._heap = []
        self._seq = 0
        self._now = 0
        self._running = False
        self._stopped = False
        from repro.sim.rng import RngStreams

        self.rng = RngStreams(seed)
        self._pending = 0  # live (not cancelled, not fired) events

    @property
    def now(self):
        """Current virtual time in integer nanoseconds."""
        return self._now

    def _coerce_time(self, time):
        """Absolute time as an int ns, validated *after* coercion.

        Rounds fractional times up so an event never fires earlier than the
        requested instant.
        """
        if type(time) is not int:
            time = math.ceil(time)
        if time < self._now:
            raise SimulationError(
                "cannot schedule event at t={} before now={}".format(time, self._now)
            )
        return time

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        time = self._coerce_time(time)
        self._seq += 1
        event = Event(time, self._seq, callback, args, self)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("negative delay: {}".format(delay))
        return self.schedule_at(self._now + int(delay), callback, *args)

    def reschedule(self, event, time):
        """Re-arm a fired event at a new absolute time, reusing the object.

        This is the allocation-free lane for periodic work (timer triggers):
        the event must have fired — it is out of the heap — and keeps its
        callback and args.  Ordering is identical to a fresh
        :meth:`schedule_at` (a new sequence number is drawn).
        """
        if not event.fired or event.cancelled:
            raise SimulationError(
                "can only reschedule a fired, uncancelled event, got {!r}"
                .format(event)
            )
        time = self._coerce_time(time)
        self._seq += 1
        event.time = time
        event.seq = self._seq
        event.fired = False
        heapq.heappush(self._heap, event)
        self._pending += 1
        return event

    def stop(self):
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self):
        """Timestamp of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def step(self):
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._pending -= 1
            self._now = event.time
            event.fired = True
            event.callback(*event.args)
            return True
        return False

    def run(self, until=None):
        """Run until the queue drains, ``stop()`` is called, or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly ``until`` at
        the end of the run, even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = int(until)

    def pending_events(self):
        """Number of pending (not cancelled, not fired) events.  O(1)."""
        return self._pending

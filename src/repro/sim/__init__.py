"""Discrete-event simulation substrate.

The paper's guardrail monitors run inside a real kernel (eBPF / kernel
modules).  This package provides the substitute substrate: a deterministic
discrete-event engine with a virtual nanosecond clock, coroutine-style
processes, kprobe-like function hooks, seeded RNG streams, and a metric
recorder.  Every simulated kernel subsystem (storage, memory, scheduler,
cache, network) is built on top of it.
"""

from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.hooks import HookPoint, HookRegistry, Probe
from repro.sim.metrics import MetricRecorder, TimeSeries
from repro.sim.process import Process, sleep, wait
from repro.sim.rng import RngStreams
from repro.sim.units import MICROSECOND, MILLISECOND, NANOSECOND, SECOND

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "HookPoint",
    "HookRegistry",
    "Probe",
    "MetricRecorder",
    "TimeSeries",
    "Process",
    "sleep",
    "wait",
    "RngStreams",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
]

"""Simulation metric recording.

A :class:`MetricRecorder` collects named time series of ``(time, value)``
samples and named counters.  It is the raw data layer the benchmarks read;
the guardrail feature store (:mod:`repro.core.featurestore`) is a separate,
deliberately kernel-facing abstraction.
"""

import math


class TimeSeries:
    """An append-only series of ``(time, value)`` samples."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name):
        self.name = name
        self.times = []
        self.values = []

    def append(self, time, value):
        self.times.append(time)
        self.values.append(value)

    def extend(self, times, values):
        """Append many samples at once; equivalent to append() per pair."""
        self.times.extend(times)
        self.values.extend(values)

    def __len__(self):
        return len(self.values)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def mean(self):
        if not self.values:
            return math.nan
        return sum(self.values) / len(self.values)

    def last(self):
        if not self.values:
            return None
        return self.values[-1]

    def window(self, start_time, end_time):
        """Samples with ``start_time <= t < end_time`` as a list of pairs."""
        return [
            (t, v) for t, v in zip(self.times, self.values) if start_time <= t < end_time
        ]

    def moving_average(self, window):
        """Simple trailing moving average over ``window`` samples.

        Returns parallel lists ``(times, averages)``, one output point per
        input sample — the series plotted in the paper's Figure 2.
        """
        out_t, out_v = [], []
        acc = 0.0
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            acc += v
            if i >= window:
                acc -= self.values[i - window]
                count = window
            else:
                count = i + 1
            out_t.append(t)
            out_v.append(acc / count)
        return out_t, out_v

    def percentile(self, q):
        """The ``q``-th percentile (0..100) of all values, NaN when empty."""
        if not self.values:
            return math.nan
        from repro.detect.windows import _percentile

        return _percentile(sorted(self.values), q)


class MetricRecorder:
    """Named counters and time series for one simulation run."""

    def __init__(self, engine):
        self.engine = engine
        self._series = {}
        self._counters = {}

    def record(self, name, value, time=None):
        """Append a sample to series ``name`` at ``time`` (default: now)."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        when = self.engine.now if time is None else time
        self._series[name].append(when, value)

    def record_batch(self, name, times, values):
        """Append many samples to series ``name`` with explicit times.

        The batched ingest lane's counterpart to per-event record():
        series content is identical, list growth is one extend.
        """
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        self._series[name].extend(times, values)

    def increment(self, name, amount=1):
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name):
        return self._counters.get(name, 0)

    def series(self, name):
        """The series called ``name``; an empty one if never recorded."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def names(self):
        return sorted(set(self._series) | set(self._counters))

    def snapshot(self):
        """Counters plus series summary stats, for reports and tests."""
        out = {"counters": dict(self._counters), "series": {}}
        for name, series in self._series.items():
            out["series"][name] = {
                "count": len(series),
                "mean": series.mean(),
                "p50": series.percentile(50),
                "p99": series.percentile(99),
            }
        return out

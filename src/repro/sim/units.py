"""Time units for the virtual clock.

All simulation timestamps are integers in nanoseconds.  Using integers keeps
event ordering exact and reproducible; these constants make call sites
readable (``engine.schedule(5 * MILLISECOND, ...)``).
"""

NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


def ns_to_us(ns):
    """Convert integer nanoseconds to float microseconds."""
    return ns / MICROSECOND


def ns_to_ms(ns):
    """Convert integer nanoseconds to float milliseconds."""
    return ns / MILLISECOND


def ns_to_s(ns):
    """Convert integer nanoseconds to float seconds."""
    return ns / SECOND


def us(value):
    """Microseconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * MICROSECOND))


def ms(value):
    """Milliseconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * MILLISECOND))


def seconds(value):
    """Seconds (possibly fractional) to integer nanoseconds."""
    return int(round(value * SECOND))

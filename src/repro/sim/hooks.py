"""Kprobe-like function hooks.

The paper's FUNCTION trigger attaches a guardrail check to a kernel function
(like a kprobe).  In the simulator, subsystems declare named
:class:`HookPoint` objects and call ``hook.fire(...)`` at the corresponding
code location; guardrail monitors (and anything else) attach :class:`Probe`
callbacks to those points through a :class:`HookRegistry`.
"""

from repro.trace.tracer import TRACER


class Probe:
    """A callback attached to a hook point.

    ``callback`` receives ``(hook_name, now, payload)`` where ``payload`` is
    whatever dict the firing site passed.  Probes can be detached; detaching
    is idempotent.
    """

    __slots__ = ("callback", "name", "_attached_to")

    def __init__(self, callback, name="probe"):
        self.callback = callback
        self.name = name
        self._attached_to = None

    def detach(self):
        if self._attached_to is not None:
            self._attached_to._remove(self)
            self._attached_to = None

    @property
    def attached(self):
        return self._attached_to is not None


class HookPoint:
    """A named location in simulated kernel code where probes may fire."""

    def __init__(self, name, engine):
        self.name = name
        self.engine = engine
        self._probes = []
        self.fire_count = 0
        self.probe_error_count = 0
        self._fire_depth = 0
        self._deferred_removals = []

    def attach(self, callback, name="probe"):
        """Attach ``callback`` and return the created :class:`Probe`."""
        probe = callback if isinstance(callback, Probe) else Probe(callback, name)
        if probe._attached_to is not None:
            raise ValueError("probe {!r} is already attached".format(probe.name))
        probe._attached_to = self
        self._probes.append(probe)
        return probe

    def _remove(self, probe):
        # Removing from the live list mid-fire would shift indices under the
        # iteration; defer until the outermost fire() unwinds.
        if self._fire_depth:
            self._deferred_removals.append(probe)
            return
        try:
            self._probes.remove(probe)
        except ValueError:
            pass

    def fire(self, **payload):
        """Invoke every attached probe with the call-site payload.

        ``fire`` is the hottest call in every benchmark, so it iterates the
        live probe list by index instead of copying it per fire.  The bound
        is captured first (probes attached during a fire wait for the next
        one) and detach-during-fire is handled by deferring list removal —
        detached probes are skipped via their ``_attached_to`` marker, same
        semantics as the old copy-then-check loop without the allocation.
        """
        self.fire_count += 1
        if TRACER.active:
            TRACER.emit("hook", self.name, self.engine.now,
                        args={"probes": len(self._probes)})
        probes = self._probes
        if not probes:
            return
        now = self.engine.now
        self._fire_depth += 1
        try:
            count = len(probes)
            for i in range(count):
                probe = probes[i]
                if probe._attached_to is self:
                    try:
                        probe.callback(self.name, now, payload)
                    except Exception as error:
                        # Crash-only: one raising probe (a sample buffer, a
                        # collector) must not abort the firing site or starve
                        # the probes behind it.  Guardrail probes contain
                        # their own crashes in the monitor; anything that
                        # reaches here is counted and traced instead of
                        # tearing the run down.
                        self.probe_error_count += 1
                        if TRACER.active:
                            TRACER.emit(
                                "supervisor", "probe_crash", now,
                                args={"hook": self.name, "probe": probe.name,
                                      "error": type(error).__name__})
        finally:
            self._fire_depth -= 1
            if not self._fire_depth and self._deferred_removals:
                for probe in self._deferred_removals:
                    try:
                        probes.remove(probe)
                    except ValueError:
                        pass
                del self._deferred_removals[:]

    @property
    def probe_count(self):
        return len(self._probes)


class HookRegistry:
    """All hook points of a simulated kernel, keyed by dotted name.

    Names follow a ``subsystem.function`` convention, e.g.
    ``storage.submit_io`` or ``sched.pick_next_task``, standing in for the
    kernel symbols a FUNCTION trigger would name.
    """

    def __init__(self, engine):
        self.engine = engine
        self._points = {}

    def declare(self, name):
        """Create (or return the existing) hook point called ``name``."""
        if name not in self._points:
            self._points[name] = HookPoint(name, self.engine)
        return self._points[name]

    def get(self, name):
        """Look up a hook point; raises ``KeyError`` with a helpful message."""
        try:
            return self._points[name]
        except KeyError:
            known = ", ".join(sorted(self._points)) or "<none>"
            raise KeyError(
                "unknown hook point {!r}; declared points: {}".format(name, known)
            ) from None

    def __contains__(self, name):
        return name in self._points

    def names(self):
        return sorted(self._points)

"""Feature normalization fit at train time, reapplied at inference.

Also the natural place to expose training-distribution summaries: the P1
in-distribution guardrail compares live inputs against
:class:`~repro.detect.reference.ReferenceDistribution` objects built from
the same samples the normalizer was fit on.
"""

import numpy as np

from repro.detect.reference import ReferenceDistribution


class Normalizer:
    """Per-feature standardization: ``(x - mean) / std``."""

    def __init__(self):
        self.mean = None
        self.std = None
        self.feature_count = None

    def fit(self, x):
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0] = 1.0
        self.std = std
        self.feature_count = x.shape[1]
        return self

    @property
    def fitted(self):
        return self.mean is not None

    def transform(self, x):
        if not self.fitted:
            raise RuntimeError("normalizer is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.feature_count:
            raise ValueError(
                "expected {} features, got {}".format(self.feature_count, x.shape[1])
            )
        return (x - self.mean) / self.std

    def fit_transform(self, x):
        return self.fit(x).transform(x)

    def references(self, x, names=None, bins=32):
        """Build a P1 reference distribution per feature from samples ``x``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if names is None:
            names = ["feature_{}".format(i) for i in range(x.shape[1])]
        if len(names) != x.shape[1]:
            raise ValueError(
                "{} names for {} features".format(len(names), x.shape[1])
            )
        return [
            ReferenceDistribution.from_samples(name, x[:, i], bins=bins)
            for i, name in enumerate(names)
        ]

"""A small fully-connected network with manual backprop.

Sized for in-kernel deployment the way LinnOS's model is: a few small dense
layers, ReLU activations, and a task-specific head.  Heads:

- ``"sigmoid"`` — binary classification, trained with BCE;
- ``"softmax"`` — multiclass, trained with cross-entropy;
- ``"linear"`` — regression, trained with MSE.

``forward`` keeps the per-layer activations needed by ``backward``;
``predict`` is the inference-only path and also counts multiply-accumulate
operations so policies can report realistic inference cost.
"""

import numpy as np


class Mlp:
    def __init__(self, layer_sizes, head="sigmoid", seed=0):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if head not in ("sigmoid", "softmax", "linear"):
            raise ValueError("unknown head {!r}".format(head))
        self.layer_sizes = list(layer_sizes)
        self.head = head
        rng = np.random.default_rng(seed)
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(layer_sizes, layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU hidden layers
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self.inference_count = 0

    # -- inference -----------------------------------------------------------

    def forward(self, x):
        """Forward pass keeping intermediates; ``x`` is (batch, features)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        activations = [x]
        pre_activations = []
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            pre_activations.append(z)
            if i < last:
                h = np.maximum(z, 0.0)
            else:
                h = self._apply_head(z)
            activations.append(h)
        return h, activations, pre_activations

    def _apply_head(self, z):
        if self.head == "sigmoid":
            return 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
        if self.head == "softmax":
            shifted = z - z.max(axis=1, keepdims=True)
            e = np.exp(shifted)
            return e / e.sum(axis=1, keepdims=True)
        return z

    def predict(self, x):
        """Inference-only forward pass; returns the head output."""
        self.inference_count += 1
        out, _, _ = self.forward(x)
        return out

    def predict_class(self, x, threshold=0.5):
        """Hard decisions: 0/1 for sigmoid, argmax for softmax."""
        out = self.predict(x)
        if self.head == "sigmoid":
            return (out[:, 0] >= threshold).astype(int)
        if self.head == "softmax":
            return out.argmax(axis=1)
        raise ValueError("predict_class needs a classifier head")

    @property
    def mac_count(self):
        """Multiply-accumulates per single-example inference."""
        return sum(a * b for a, b in zip(self.layer_sizes, self.layer_sizes[1:]))

    # -- training --------------------------------------------------------------

    def loss_and_gradients(self, x, y):
        """Loss plus gradients for one minibatch.

        ``y`` is (batch,) 0/1 for sigmoid, (batch,) class ids for softmax,
        or (batch,) / (batch, out) values for linear.  For all three heads
        the output-layer error simplifies to ``(prediction - target) / n``.
        """
        out, activations, pre_activations = self.forward(x)
        n = out.shape[0]
        y = np.asarray(y)

        if self.head == "sigmoid":
            target = y.reshape(-1, 1).astype(float)
            eps = 1e-12
            loss = -np.mean(
                target * np.log(out + eps) + (1 - target) * np.log(1 - out + eps)
            )
            delta = (out - target) / n
        elif self.head == "softmax":
            target = np.zeros_like(out)
            target[np.arange(n), y.astype(int)] = 1.0
            eps = 1e-12
            loss = -np.mean(np.log(out[np.arange(n), y.astype(int)] + eps))
            delta = (out - target) / n
        else:
            target = y.reshape(out.shape).astype(float)
            diff = out - target
            loss = float(np.mean(diff ** 2))
            delta = 2.0 * diff / diff.size

        grad_w = [None] * len(self.weights)
        grad_b = [None] * len(self.biases)
        for i in range(len(self.weights) - 1, -1, -1):
            grad_w[i] = activations[i].T @ delta
            grad_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights[i].T) * (pre_activations[i - 1] > 0)
        return float(loss), grad_w, grad_b

    def parameters(self):
        """Flat list of (array, gradient-slot-index) for optimizers."""
        return self.weights + self.biases

    def apply_gradients(self, grad_w, grad_b, updater):
        """Apply one optimizer step; ``updater(param_index, param, grad)``."""
        for i, (w, g) in enumerate(zip(self.weights, grad_w)):
            updater(i, w, g)
        offset = len(self.weights)
        for i, (b, g) in enumerate(zip(self.biases, grad_b)):
            updater(offset + i, b, g)

    # -- persistence ---------------------------------------------------------

    def state_dict(self):
        return {
            "layer_sizes": list(self.layer_sizes),
            "head": self.head,
            "weights": [w.copy() for w in self.weights],
            "biases": [b.copy() for b in self.biases],
        }

    def load_state_dict(self, state):
        if state["layer_sizes"] != self.layer_sizes or state["head"] != self.head:
            raise ValueError("state_dict architecture mismatch")
        self.weights = [w.copy() for w in state["weights"]]
        self.biases = [b.copy() for b in state["biases"]]

    def clone(self):
        other = Mlp(self.layer_sizes, head=self.head)
        other.load_state_dict(self.state_dict())
        return other

"""Tabular Q-learning.

Used by the tiered-memory placement policy (the paper's background cites
RL-based data placement, e.g. Kleio and Sibyl).  States are hashable
discretized feature tuples; actions are small integer ranges.
"""

import numpy as np


class QLearner:
    def __init__(self, action_count, learning_rate=0.2, discount=0.9,
                 epsilon=0.1, seed=0):
        if action_count < 1:
            raise ValueError("need at least one action")
        self.action_count = action_count
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self._q = {}
        self._rng = np.random.default_rng(seed)
        self.update_count = 0

    def q_values(self, state):
        values = self._q.get(state)
        if values is None:
            values = np.zeros(self.action_count)
            self._q[state] = values
        return values

    def best_action(self, state):
        """Greedy action (no exploration) — the deployment-time decision."""
        return int(np.argmax(self.q_values(state)))

    def choose_action(self, state):
        """Epsilon-greedy action — the training-time decision."""
        if self._rng.random() < self.epsilon:
            return int(self._rng.integers(self.action_count))
        return self.best_action(state)

    def update(self, state, action, reward, next_state=None):
        """One Q-learning backup; ``next_state=None`` marks a terminal step."""
        values = self.q_values(state)
        future = 0.0 if next_state is None else float(np.max(self.q_values(next_state)))
        target = reward + self.discount * future
        values[action] += self.learning_rate * (target - values[action])
        self.update_count += 1

    @property
    def state_count(self):
        return len(self._q)

    def reset(self):
        self._q.clear()
        self.update_count = 0

"""From-scratch ML substrate (numpy only).

LinnOS ships a "light neural network" in the kernel; other learned OS
policies in the paper's background use small MLPs, regressions, or RL.  This
package implements those model families from scratch so the reproduction
has no opaque dependencies:

- :class:`~repro.ml.mlp.Mlp` — fully-connected network with ReLU hidden
  layers, sigmoid/softmax/linear heads, manual backprop;
- :mod:`~repro.ml.train` — SGD and Adam, minibatch training loops,
  classification/regression metrics;
- :class:`~repro.ml.qlearn.QLearner` — tabular Q-learning for the
  tiered-memory placement policy;
- :class:`~repro.ml.features.Normalizer` — train-time feature scaling
  reapplied at inference;
- :mod:`~repro.ml.datasets` — synthetic dataset builders used by tests.
"""

from repro.ml.datasets import make_classification, make_regression
from repro.ml.features import Normalizer
from repro.ml.mlp import Mlp
from repro.ml.qlearn import QLearner
from repro.ml.train import (
    Adam,
    Sgd,
    accuracy,
    binary_cross_entropy,
    confusion_counts,
    mean_squared_error,
    train_classifier,
)

__all__ = [
    "make_classification",
    "make_regression",
    "Normalizer",
    "Mlp",
    "QLearner",
    "Adam",
    "Sgd",
    "accuracy",
    "binary_cross_entropy",
    "confusion_counts",
    "mean_squared_error",
    "train_classifier",
]

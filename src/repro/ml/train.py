"""Optimizers, training loops, and metrics."""

import numpy as np


class Sgd:
    """Plain SGD with optional momentum."""

    def __init__(self, learning_rate=0.05, momentum=0.0):
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = {}

    def __call__(self, index, param, grad):
        if self.momentum:
            v = self._velocity.get(index)
            if v is None:
                v = np.zeros_like(param)
            v = self.momentum * v - self.learning_rate * grad
            self._velocity[index] = v
            param += v
        else:
            param -= self.learning_rate * grad


class Adam:
    """Adam optimizer (Kingma & Ba)."""

    def __init__(self, learning_rate=1e-3, beta1=0.9, beta2=0.999, eps=1e-8):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = {}
        self._v = {}
        self._t = {}

    def __call__(self, index, param, grad):
        m = self._m.get(index)
        if m is None:
            m = np.zeros_like(param)
            self._v[index] = np.zeros_like(param)
            self._t[index] = 0
        v = self._v[index]
        self._t[index] += 1
        t = self._t[index]
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[index] = m
        self._v[index] = v
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


def train_classifier(model, x, y, epochs=20, batch_size=64, optimizer=None,
                     seed=0, validation=None):
    """Minibatch-train ``model``; returns per-epoch history.

    ``validation`` is an optional ``(x_val, y_val)`` pair; when given, each
    epoch records validation accuracy too.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError("x and y lengths differ: {} vs {}".format(len(x), len(y)))
    optimizer = optimizer if optimizer is not None else Adam()
    rng = np.random.default_rng(seed)
    history = []
    for epoch in range(epochs):
        order = rng.permutation(len(x))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(x), batch_size):
            batch = order[start:start + batch_size]
            loss, grad_w, grad_b = model.loss_and_gradients(x[batch], y[batch])
            model.apply_gradients(grad_w, grad_b, optimizer)
            epoch_loss += loss
            batches += 1
        record = {"epoch": epoch, "loss": epoch_loss / max(batches, 1)}
        if validation is not None:
            x_val, y_val = validation
            record["val_accuracy"] = accuracy(model.predict_class(x_val), y_val)
        history.append(record)
    return history


def accuracy(predicted, actual):
    predicted = np.asarray(predicted)
    actual = np.asarray(actual)
    if predicted.shape != actual.shape:
        raise ValueError("shape mismatch: {} vs {}".format(predicted.shape, actual.shape))
    if predicted.size == 0:
        return float("nan")
    return float(np.mean(predicted == actual))


def confusion_counts(predicted, actual):
    """Binary confusion counts as a dict (tp, fp, tn, fn)."""
    predicted = np.asarray(predicted).astype(bool)
    actual = np.asarray(actual).astype(bool)
    return {
        "tp": int(np.sum(predicted & actual)),
        "fp": int(np.sum(predicted & ~actual)),
        "tn": int(np.sum(~predicted & ~actual)),
        "fn": int(np.sum(~predicted & actual)),
    }


def binary_cross_entropy(probabilities, actual):
    probabilities = np.asarray(probabilities, dtype=float).reshape(-1)
    actual = np.asarray(actual, dtype=float).reshape(-1)
    eps = 1e-12
    return float(-np.mean(
        actual * np.log(probabilities + eps)
        + (1 - actual) * np.log(1 - probabilities + eps)
    ))


def mean_squared_error(predicted, actual):
    predicted = np.asarray(predicted, dtype=float)
    actual = np.asarray(actual, dtype=float)
    return float(np.mean((predicted - actual) ** 2))

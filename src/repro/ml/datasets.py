"""Synthetic dataset builders for tests and training smoke runs."""

import numpy as np


def make_classification(samples=500, features=4, class_separation=2.0, seed=0):
    """Two Gaussian blobs; returns ``(x, y)`` with y in {0, 1}."""
    rng = np.random.default_rng(seed)
    half = samples // 2
    center = np.full(features, class_separation / 2.0)
    x0 = rng.normal(-center, 1.0, size=(half, features))
    x1 = rng.normal(center, 1.0, size=(samples - half, features))
    x = np.vstack([x0, x1])
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(samples - half, dtype=int)])
    order = rng.permutation(samples)
    return x[order], y[order]


def make_regression(samples=500, features=4, noise=0.1, seed=0):
    """Linear target with Gaussian noise; returns ``(x, y, true_weights)``."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(samples, features))
    weights = rng.normal(size=features)
    y = x @ weights + rng.normal(0.0, noise, size=samples)
    return x, y, weights

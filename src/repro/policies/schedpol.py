"""Learned scheduling (P6 substrate).

A shortest-predicted-job-first picker: per task, an online EWMA predictor of
the next CPU burst; the picker always dispatches the task with the smallest
prediction.  Mean turnaround improves (SJF is optimal for it), but long
tasks starve whenever short tasks keep arriving — the liveness violation the
P6 guardrail ("no ready task should be starved for more than 100 ms")
exists to catch, answered by REPLACE(sched.pick_next, sched.cfs) or by
DEPRIORITIZE.
"""


class BurstPredictor:
    """EWMA of each task's observed bursts."""

    def __init__(self, alpha=0.4, initial_ns=1_000_000):
        self.alpha = alpha
        self.initial_ns = initial_ns
        self._estimates = {}

    def observe(self, task_name, burst_ns):
        previous = self._estimates.get(task_name)
        self._estimates[task_name] = (
            burst_ns if previous is None
            else self.alpha * burst_ns + (1 - self.alpha) * previous
        )

    def predict(self, task_name):
        return self._estimates.get(task_name, self.initial_ns)


class LearnedShortestJobPolicy:
    """``policy(scheduler) -> task`` picking the smallest predicted burst."""

    def __init__(self, predictor=None):
        self.predictor = predictor if predictor is not None else BurstPredictor()

    def __call__(self, scheduler):
        runnable = scheduler.runnable_tasks()
        if not runnable:
            return None
        # Ties (equal predictions) go to the longest-waiting task, so equal
        # short tasks share the CPU; the starvation this policy causes is of
        # *long* tasks, not an artifact of tie-breaking.
        return min(
            runnable,
            key=lambda t: (self.predictor.predict(t.name), t.runnable_since, t.name),
        )


def attach_learned_sched_policy(kernel, scheduler, name="sched.learned_sjf",
                                activate=True):
    """Install the learned picker and its online trainer on ``scheduler``."""
    policy = LearnedShortestJobPolicy()

    def on_dispatch(hook, now, payload):
        # Online training: learn each task's characteristic burst from what
        # it actually consumed last time around.
        task = scheduler.find_task(payload["task"])
        if task is not None:
            policy.predictor.observe(task.name, task.burst_ns)

    scheduler.pick_hook.attach(on_dispatch, name=name + ".trainer")
    kernel.functions.register_implementation(name, policy)
    if activate:
        kernel.functions.replace(scheduler.PICK_SLOT, name)
    return policy

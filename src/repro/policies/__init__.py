"""Learned OS policies and their heuristic baselines.

One module per exemplar the paper names, each with (a) the learned policy,
(b) the hand-coded fallback the A2 REPLACE action swaps in, and (c) the
instrumentation that publishes the policy's inputs, outputs, and costs to
the feature store — the surface guardrail properties are written against.
"""

from repro.policies.base import (
    InputDistributionTracker,
    PolicyInstrumentation,
    SensitivityProbe,
)

__all__ = [
    "InputDistributionTracker",
    "PolicyInstrumentation",
    "SensitivityProbe",
]

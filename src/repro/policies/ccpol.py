"""Learned congestion control (P2 substrate; background: Orca).

A small MLP regressor imitates an AIMD teacher on *clean* traces around a
training capacity, then runs as the live controller.  Two failure modes the
guardrails catch:

- **noise sensitivity (P2)** — the model's rate delta swings with
  measurement noise that AIMD's sign-based logic shrugs off; the
  SensitivityProbe publishes ``<name>.output_sensitivity``;
- **underutilization** — when the link's capacity moves far outside the
  training range the model keeps operating around its training equilibrium,
  leaving the link idle (the "sudden drop in bandwidth utilization and fail
  to recover" misbehavior of §2).  A behavioral guardrail on
  ``net.utilization.avg`` REPLACEs it with AIMD.
"""

import numpy as np

from repro.kernel.net.link import aimd_controller
from repro.ml.features import Normalizer
from repro.ml.mlp import Mlp
from repro.ml.train import Adam
from repro.policies.base import PolicyInstrumentation

NS_PER_MAC = 2


def generate_teacher_trace(capacity_mbps=100.0, epochs=2000, seed=0,
                           initial_rate=10.0):
    """Roll out AIMD on a clean link; returns (observations, rate deltas)."""
    rng = np.random.default_rng(seed)
    teacher = aimd_controller()
    rate = initial_rate
    observations, deltas = [], []
    for _ in range(epochs):
        delivered = min(rate, capacity_mbps)
        loss = 0.0 if rate <= 0 else max(rate - capacity_mbps, 0.0) / rate
        obs = {"rate_mbps": rate, "delivered_mbps": delivered, "loss": loss}
        next_rate = teacher(obs)
        observations.append([rate, delivered, loss])
        deltas.append(next_rate - rate)
        rate = next_rate
        # Occasional random restarts so the teacher visits diverse states.
        if rng.random() < 0.01:
            rate = float(rng.uniform(5.0, capacity_mbps * 1.2))
    return np.array(observations), np.array(deltas)


def train_cc_model(observations, deltas, hidden=(16,), epochs=200, seed=0,
                   backoff_oversample=10):
    """Fit the imitation regressor; returns (mlp, normalizer).

    Loss events are rare in AIMD traces (a few percent of epochs), so a
    plain MSE fit underweights the backoff behavior that matters most;
    ``backoff_oversample`` replicates loss-epoch samples to balance it.
    """
    observations = np.asarray(observations, dtype=float)
    deltas = np.asarray(deltas, dtype=float)
    loss_rows = observations[:, 2] > 0
    if backoff_oversample > 1 and loss_rows.any():
        extra = np.repeat(np.flatnonzero(loss_rows), backoff_oversample - 1)
        observations = np.vstack([observations, observations[extra]])
        deltas = np.concatenate([deltas, deltas[extra]])
    normalizer = Normalizer().fit(observations)
    x = normalizer.transform(observations)
    mlp = Mlp([observations.shape[1], *hidden, 1], head="linear", seed=seed)
    optimizer = Adam(5e-3)
    rng = np.random.default_rng(seed)
    y = deltas.reshape(-1, 1)
    for _ in range(epochs):
        order = rng.permutation(len(x))
        for start in range(0, len(x), 64):
            batch = order[start:start + 64]
            _, grad_w, grad_b = mlp.loss_and_gradients(x[batch], y[batch])
            mlp.apply_gradients(grad_w, grad_b, optimizer)
    return mlp, normalizer


class LearnedCcController:
    """``controller(observation) -> next rate`` backed by the imitation MLP."""

    def __init__(self, kernel, mlp, normalizer, name="learned_cc",
                 min_rate=1.0):
        self.kernel = kernel
        self.mlp = mlp
        self.normalizer = normalizer
        self.name = name
        self.min_rate = min_rate
        self.instrumentation = PolicyInstrumentation(
            kernel.store, name,
            predict=lambda row: self._delta(np.atleast_2d(row)),
        )
        self.decisions = 0

    def _delta(self, features):
        x = self.normalizer.transform(features)
        return self.mlp.predict(x)[:, 0]

    def __call__(self, observation):
        features = np.array([[
            observation["rate_mbps"],
            observation["delivered_mbps"],
            observation["loss"],
        ]])
        delta = float(self._delta(features)[0])
        inference_ns = self.mlp.mac_count * NS_PER_MAC
        self.instrumentation.observe_inference(
            features[0], output=delta, inference_ns=inference_ns
        )
        self.decisions += 1
        return max(observation["rate_mbps"] + delta, self.min_rate)


def install_learned_cc(kernel, link, train_capacity=100.0, seed=0,
                       name="net.learned_cc", activate=True):
    """Train the imitation controller and install it on ``link``."""
    observations, deltas = generate_teacher_trace(train_capacity, seed=seed)
    mlp, normalizer = train_cc_model(observations, deltas, seed=seed)
    controller = LearnedCcController(kernel, mlp, normalizer, name="learned_cc")
    kernel.functions.register_implementation(name, controller)
    if activate:
        kernel.functions.replace(link.CC_SLOT, name)
    return controller

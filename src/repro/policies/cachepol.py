"""Learned cache eviction (P4 substrate).

An online-learned reuse-distance predictor: per key, an EWMA of observed
inter-access gaps.  Eviction picks the key with the largest predicted time
until next access (learned LRU-K flavor).  On loopy/skewed workloads it
beats LRU and random; on scan-heavy workloads its history is useless and it
can do *worse* than random — the P4 quality failure the paper's cache
example names.
"""


class LearnedReusePolicy:
    """Evicts the key with the largest predicted next-access distance."""

    def __init__(self, clock, alpha=0.3, default_gap=1_000_000_000):
        self._clock = clock
        self.alpha = alpha
        # Predicted gap for a key never seen twice: pessimistic, so one-hit
        # wonders get evicted first.
        self.default_gap = default_gap
        self._gap_ewma = {}
        self._last_seen = {}
        self.observations = 0

    def observe(self, key):
        """Online training signal: call on every cache access."""
        now = self._clock()
        last = self._last_seen.get(key)
        if last is not None:
            gap = now - last
            previous = self._gap_ewma.get(key)
            self._gap_ewma[key] = (
                gap if previous is None
                else self.alpha * gap + (1 - self.alpha) * previous
            )
            self.observations += 1
        self._last_seen[key] = now

    def predicted_next_access(self, key, last_access):
        """Predicted absolute time of the key's next access."""
        gap = self._gap_ewma.get(key, self.default_gap)
        return last_access + gap

    def __call__(self, view):
        return max(
            view.keys(),
            key=lambda k: (self.predicted_next_access(k, view.last_access(k)), str(k)),
        )


def attach_learned_cache_policy(kernel, cache, name="cache.learned",
                                activate=True):
    """Install a :class:`LearnedReusePolicy` on ``cache``.

    Wires the online-training observation into the cache's access hook and
    registers the policy as implementation ``name`` (the REPLACE target /
    source).  Returns the policy.
    """
    policy = LearnedReusePolicy(lambda: kernel.engine.now)

    def on_access(hook, now, payload):
        policy.observe(payload["key"])

    cache.access_hook.attach(on_access, name=name + ".trainer")
    kernel.functions.register_implementation(name, policy)
    if activate:
        kernel.functions.replace(cache.EVICT_SLOT, name)
    return policy

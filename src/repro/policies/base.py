"""Policy instrumentation: the data guardrail properties read.

§3.3 argues that for learned policies, much of a guardrail's plumbing "can
be determined automatically".  The framework's half of that bargain is
here: wrap a learned policy in :class:`PolicyInstrumentation` and it will
publish to the feature store, under ``<name>.*`` keys,

- inference cost and accumulated benefit (P5, via
  :class:`~repro.core.overhead.InferenceMeter`);
- input-distribution drift versus the training references (P1, via
  :class:`InputDistributionTracker`);
- output sensitivity to small input perturbations (P2, via
  :class:`SensitivityProbe`).

Property templates (:mod:`repro.core.properties`) generate guardrail specs
whose rules LOAD exactly these keys.
"""

import numpy as np

from repro.core.overhead import InferenceMeter
from repro.detect.drift import ks_statistic, population_stability_index


class InputDistributionTracker:
    """Compares live model inputs against training references (P1).

    ``references`` are per-feature
    :class:`~repro.detect.reference.ReferenceDistribution` objects.  Live
    samples accumulate into matching histograms; every ``publish_every``
    observations the tracker publishes.  PSI carries a small-sample bias of
    roughly ``bins / window``, so very small windows read as drifted even on
    clean data — hence the 512-sample default.  Published per window:

    - ``<prefix>.input_psi_max`` — worst-feature PSI,
    - ``<prefix>.input_ks_max`` — worst-feature KS statistic,
    - ``<prefix>.input_oor_max`` — worst-feature out-of-range fraction.

    Live histograms then reset, so the published values describe the most
    recent window rather than the whole run.
    """

    def __init__(self, store, prefix, references, publish_every=512):
        self.store = store
        self.prefix = prefix
        self.references = list(references)
        self.publish_every = publish_every
        self._live = [ref.new_live_histogram() for ref in self.references]
        self._pending = 0
        self.published_windows = 0

    def observe(self, features):
        """Record one model input (iterable of per-feature values)."""
        features = np.atleast_1d(np.asarray(features, dtype=float))
        if features.shape[-1] != len(self.references):
            raise ValueError(
                "expected {} features, got {}".format(
                    len(self.references), features.shape[-1]
                )
            )
        rows = np.atleast_2d(features)
        for row in rows:
            for live, value in zip(self._live, row):
                live.update(float(value))
            self._pending += 1
        if self._pending >= self.publish_every:
            self.publish()

    def publish(self):
        """Compute drift metrics for the current window and reset it."""
        if self._pending == 0:
            return
        psi_max = ks_max = oor_max = 0.0
        for ref, live in zip(self.references, self._live):
            psi_max = max(psi_max, population_stability_index(ref.histogram, live))
            ks_max = max(ks_max, ks_statistic(ref.histogram, live))
            oor_max = max(oor_max, live.out_of_range_fraction())
            live.reset()
        self._pending = 0
        self.published_windows += 1
        self.store.save(self.prefix + ".input_psi_max", psi_max)
        self.store.save(self.prefix + ".input_ks_max", ks_max)
        self.store.save(self.prefix + ".input_oor_max", oor_max)


class SensitivityProbe:
    """Measures output robustness to input noise (P2).

    Every ``probe_every`` inferences, re-runs the model on a noise-perturbed
    copy of the input and records ``|output(x + eps) - output(x)|``.  The
    EWMA of that delta is published as ``<prefix>.output_sensitivity``: a
    model whose decisions swing on measurement noise scores high.
    """

    def __init__(self, store, prefix, predict, noise_scale=0.01,
                 probe_every=16, seed=0, alpha=0.2):
        self.store = store
        self.prefix = prefix
        self.predict = predict
        self.noise_scale = noise_scale
        self.probe_every = probe_every
        self._rng = np.random.default_rng(seed)
        self._count = 0
        self._ewma = None
        self.alpha = alpha
        self.probe_count = 0

    def maybe_probe(self, features, output):
        """Call after each real inference with its input and scalar output."""
        self._count += 1
        if self._count % self.probe_every:
            return None
        features = np.asarray(features, dtype=float)
        scale = self.noise_scale * (np.abs(features) + 1.0)
        noisy = features + self._rng.normal(0.0, 1.0, size=features.shape) * scale
        perturbed = float(np.asarray(self.predict(noisy)).reshape(-1)[0])
        delta = abs(perturbed - float(output))
        self._ewma = (
            delta if self._ewma is None
            else self.alpha * delta + (1 - self.alpha) * self._ewma
        )
        self.probe_count += 1
        self.store.save(self.prefix + ".output_sensitivity", self._ewma)
        return delta


class PolicyInstrumentation:
    """Bundle of the per-policy trackers, created from one call.

    ``references`` enables the P1 tracker; ``predict`` (a single-output
    callable over one feature vector) enables the P2 probe.  The P5 meter is
    always on.
    """

    def __init__(self, store, name, references=None, predict=None,
                 publish_every=512, probe_every=16, noise_scale=0.01, seed=0):
        self.name = name
        self.meter = InferenceMeter(store, name)
        self.inputs = None
        if references:
            self.inputs = InputDistributionTracker(
                store, name, references, publish_every=publish_every
            )
        self.sensitivity = None
        if predict is not None:
            self.sensitivity = SensitivityProbe(
                store, name, predict, noise_scale=noise_scale,
                probe_every=probe_every, seed=seed,
            )

    def observe_inference(self, features, output=None, inference_ns=0):
        """Record one inference: inputs, cost, and (optionally) sensitivity."""
        self.meter.record_inference(inference_ns)
        if self.inputs is not None:
            self.inputs.observe(features)
        if self.sensitivity is not None and output is not None:
            rows = np.atleast_2d(np.asarray(features, dtype=float))
            self.sensitivity.maybe_probe(rows[0], output)

    def record_gain(self, ns):
        self.meter.record_gain(ns)

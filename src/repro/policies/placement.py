"""Learned tiered-memory placement (background: Kleio / IDT / Sibyl).

A tabular Q-learner decides, on each slow-tier access, whether to migrate
the page up.  State discretizes (access-count bucket, is_write, fast-tier
pressure); the delayed reward arrives at the page's *next* access: +1 if it
hits the fast tier, minus a migration cost when we moved it.

On skewed read-heavy workloads the learner converges to "promote the hot
set" and beats the static heuristic.  §2 notes such engines "may perform
poorly if the workload is write-intensive and has random access patterns" —
under that shift rewards are pure noise and the policy churns migrations, a
P4 decision-quality failure.
"""

import collections

from repro.ml.qlearn import QLearner


class LearnedPlacementPolicy:
    """``policy(page, context) -> bool`` (migrate up?) with online Q-learning."""

    MIGRATE = 1
    STAY = 0

    def __init__(self, migration_penalty=0.3, epsilon=0.1, seed=0):
        self.learner = QLearner(action_count=2, epsilon=epsilon, seed=seed)
        self.migration_penalty = migration_penalty
        self._access_counts = collections.Counter()
        self._pending = {}  # page -> (state, action, decision serial)
        self.decisions = 0

    def _state(self, page, context):
        count = self._access_counts[page]
        count_bucket = min(count, 4)
        pressure = 0
        if context["fast_capacity"]:
            pressure = min(int(4 * context["fast_used"] / context["fast_capacity"]), 3)
        return (count_bucket, bool(context["is_write"]), pressure)

    def _resolve(self, page, hit, serial):
        """Reward the pending decision, if it came from an earlier access.

        The decision made during access N is rewarded by access N+k of the
        same page, so a pending entry created by *this* access (same serial)
        must not be resolved.
        """
        pending = self._pending.get(page)
        if pending is None or pending[2] >= serial:
            return
        del self._pending[page]
        state, action, _ = pending
        reward = (1.0 if hit else 0.0)
        if action == self.MIGRATE:
            reward -= self.migration_penalty
        self.learner.update(state, action, reward)

    def on_access(self, page, hit, is_write, serial):
        """Online training hook: fires on every tiered-memory access."""
        self._resolve(page, hit, serial)
        self._access_counts[page] += 1

    def __call__(self, page, context):
        # The policy runs on the miss path *before* the access hook fires,
        # so resolve the previous pending decision here (this access was a
        # miss) rather than letting the new decision clobber it.
        self._resolve(page, hit=False, serial=context["serial"])
        state = self._state(page, context)
        action = self.learner.choose_action(state)
        self._pending[page] = (state, action, context["serial"])
        self.decisions += 1
        return action == self.MIGRATE


def attach_learned_placement(kernel, tiered, name="mm.learned_placement",
                             activate=True, seed=0):
    """Install the Q-learning placement policy on ``tiered`` memory."""
    policy = LearnedPlacementPolicy(seed=seed)

    def on_access(hook, now, payload):
        policy.on_access(payload["page"], payload["hit"], payload["is_write"],
                         payload["serial"])

    tiered.access_hook.attach(on_access, name=name + ".trainer")
    kernel.functions.register_implementation(name, policy)
    if activate:
        kernel.functions.replace(tiered.PLACEMENT_SLOT, name)
    return policy

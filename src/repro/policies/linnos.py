"""LinnOS-style learned I/O latency prediction (§5 / Figure 2).

LinnOS trains a light neural network to predict, from recent device
behavior, whether an I/O submitted now will be slow; predicted-slow I/O is
revoked and re-issued to a replica.  Here:

- :func:`collect_training_data` runs a round-robin data-collection phase on
  a simulated volume and returns ``(features, labels)`` pairs;
- :func:`train_linnos_model` fits the small MLP classifier;
- :class:`LinnosPolicy` is the deployable pick policy: it scores every
  replica's slow probability and submits to the least-slow-looking one,
  honoring the ``ml_enabled`` feature-store switch that the paper's
  Listing 2 guardrail flips off.
"""

import numpy as np

from repro.kernel.storage.volume import PickDecision, round_robin_policy
from repro.ml.features import Normalizer
from repro.ml.mlp import Mlp
from repro.ml.train import Adam, train_classifier
from repro.policies.base import PolicyInstrumentation

FEATURE_NAMES = ["slow_frac_4", "slow_frac_8", "last_is_slow", "time_since_slow"]

# Simulated per-MAC inference cost; a light in-kernel NN runs a few
# nanoseconds per multiply-accumulate on a modern core.
NS_PER_MAC = 2


class LinnosModel:
    """Normalizer + small MLP predicting P(next I/O on this device is slow)."""

    def __init__(self, mlp, normalizer):
        self.mlp = mlp
        self.normalizer = normalizer
        self.train_count = 0

    def slow_probabilities(self, features_matrix):
        """P(slow) for each row of raw (unnormalized) device features."""
        x = self.normalizer.transform(features_matrix)
        return self.mlp.predict(x)[:, 0]

    @property
    def inference_ns(self):
        """Simulated cost of scoring one device."""
        return self.mlp.mac_count * NS_PER_MAC


class _CollectingPolicy:
    """Round-robin picker that remembers the chosen device's features."""

    def __init__(self):
        self._fallback = round_robin_policy()
        self.pending = {}
        self.samples = []

    def __call__(self, volume):
        decision = self._fallback(volume)
        features = volume.devices[decision.index].features()
        # submit() bumps _io_counter before consulting the policy, so the
        # counter currently holds this very request's id.
        self.pending[volume._io_counter] = features
        return decision


def collect_training_data(kernel, volume, workload_starter, duration):
    """Run a data-collection phase; returns ``(features, labels)`` arrays.

    ``workload_starter()`` must start the I/O generator (so callers control
    rate/phases).  Labels are 1 when the sampled I/O completed slow.
    """
    collector = _CollectingPolicy()
    slot = kernel.functions.slot(volume.PICK_SLOT)
    previous = slot.current
    slot.current = collector

    def on_complete(hook, now, payload):
        features = collector.pending.pop(payload["io_id"], None)
        if features is not None:
            collector.samples.append((features, 1 if payload["slow"] else 0))

    probe = volume.complete_hook.attach(on_complete, name="linnos-collector")
    workload_starter()
    kernel.run(until=kernel.engine.now + duration)
    probe.detach()
    slot.current = previous

    if not collector.samples:
        raise RuntimeError("data collection produced no samples")
    features = np.array([f for f, _ in collector.samples], dtype=float)
    labels = np.array([label for _, label in collector.samples], dtype=int)
    return features, labels


def train_linnos_model(features, labels, hidden=(16, 16), epochs=30,
                       seed=0):
    """Fit the light NN on collected (features, labels)."""
    normalizer = Normalizer().fit(features)
    x = normalizer.transform(features)
    mlp = Mlp([features.shape[1], *hidden, 1], head="sigmoid", seed=seed)
    train_classifier(mlp, x, labels, epochs=epochs, optimizer=Adam(1e-2),
                     seed=seed)
    return LinnosModel(mlp, normalizer)


class OnlineSampleBuffer:
    """Continuously collects labeled (features, slow) samples from a volume.

    Unlike the one-shot collection phase, this rides along with *any* active
    pick policy: at submit time it snapshots the chosen device's features,
    and at completion it labels them.  The retraining daemon trains on the
    most recent window — which, right after a guardrail disabled the model,
    is exactly the fresh post-drift data the paper says retraining needs.
    """

    def __init__(self, volume, capacity=20_000):
        import collections

        self.volume = volume
        self.capacity = capacity
        self._pending = {}
        self._samples = collections.deque(maxlen=capacity)
        self._submit_probe = volume.submit_hook.attach(
            self._on_submit, name="sample-buffer:submit")
        self._complete_probe = volume.complete_hook.attach(
            self._on_complete, name="sample-buffer:complete")

    def _on_submit(self, hook, now, payload):
        device = self.volume.devices[payload["device"]]
        self._pending[payload["io_id"]] = device.features()

    def _on_complete(self, hook, now, payload):
        features = self._pending.pop(payload["io_id"], None)
        if features is not None:
            self._samples.append((features, 1 if payload["slow"] else 0))

    def __len__(self):
        return len(self._samples)

    def dataset(self, last=None):
        """The most recent ``last`` samples as (features, labels) arrays."""
        samples = list(self._samples)
        if last is not None:
            samples = samples[-last:]
        if not samples:
            raise RuntimeError("sample buffer is empty")
        features = np.array([f for f, _ in samples], dtype=float)
        labels = np.array([label for _, label in samples], dtype=int)
        return features, labels

    def detach(self):
        self._submit_probe.detach()
        self._complete_probe.detach()


class LinnosPolicy:
    """Replica picker driven by the learned latency classifier.

    Decision rule (the revoke/re-issue failover, folded into one choice):
    score every replica, pick the lowest P(slow).  ``predicted_fast`` is
    whether that winning score clears the classification threshold — a
    fast-predicted submission that completes slow is a *false submit*.

    The policy consults ``LOAD(ml_enabled)`` before using the model; the
    Listing 2 guardrail disables it by saving ``ml_enabled = false``.
    """

    def __init__(self, kernel, model, threshold=0.5, enable_key="ml_enabled",
                 name="linnos", references=None, selection="argmin"):
        if selection not in ("argmin", "failover"):
            raise ValueError("selection must be 'argmin' or 'failover'")
        self.kernel = kernel
        self.model = model
        self.threshold = threshold
        self.enable_key = enable_key
        self.name = name
        self.selection = selection
        self._fallback = round_robin_policy()
        self.instrumentation = PolicyInstrumentation(
            kernel.store, name,
            references=references,
            predict=lambda row: self.model.slow_probabilities(
                np.atleast_2d(row)
            ),
        )
        self.model_picks = 0
        self.fallback_picks = 0
        if enable_key not in kernel.store:
            kernel.store.save(enable_key, True)

    def __call__(self, volume):
        if not self.kernel.store.load(self.enable_key, default=True):
            self.fallback_picks += 1
            return self._fallback(volume)

        # LinnOS failover, folded into one decision.  Two selection modes:
        # - "failover": the striping choice is the round-robin primary; a
        #   predicted-slow submission is revoked and re-issued to the next
        #   replica, stopping at the first predicted-fast one.
        # - "argmin": submit to the replica with the lowest predicted slow
        #   probability (prediction-greedy routing).
        # If every replica looks slow, stay on the primary
        # (predicted_fast=False, so no false-submit accounting).
        primary = self._fallback(volume).index
        count = len(volume.devices)
        order = [(primary + offset) % count for offset in range(count)]
        features = np.array(
            [volume.devices[i].features() for i in order], dtype=float
        )
        probabilities = self.model.slow_probabilities(features)
        index = order[0]
        predicted_fast = False
        if self.selection == "argmin":
            best = int(np.argmin(probabilities))
            if probabilities[best] < self.threshold:
                index = order[best]
                predicted_fast = True
        else:
            for position, device_index in enumerate(order):
                if probabilities[position] < self.threshold:
                    index = device_index
                    predicted_fast = True
                    break
        inference_ns = self.model.inference_ns * count
        self.instrumentation.observe_inference(
            features, output=float(probabilities[0]),
            inference_ns=inference_ns,
        )
        self.model_picks += 1
        return PickDecision(index, used_model=True,
                            predicted_fast=predicted_fast,
                            inference_ns=inference_ns)

"""Learned file readahead (background: the KML readahead work).

Per file stream, predicts the next access run length from the recent run
lengths (online EWMA) and prefetches that many pages; the baseline
prefetches a fixed window.  The interesting guardrail angle is P5: each
prefetch decision has a cost (wasted I/O for unused pages) and a gain
(avoided misses) — the policy's ``net_benefit`` must stay positive.

The module is self-contained: :class:`ReadaheadSimulator` replays an access
stream of sequential runs and random jumps, charging misses and wasted
prefetches.
"""


class FixedReadahead:
    """Baseline: always prefetch ``window`` pages ahead."""

    def __init__(self, window=8):
        self.window = window

    def predict_run(self, stream_state):
        return self.window


class LearnedReadahead:
    """EWMA of this stream's recent sequential run lengths."""

    def __init__(self, alpha=0.4, initial=8.0, max_window=128):
        self.alpha = alpha
        self.estimate = initial
        self.max_window = max_window

    def observe_run(self, run_length):
        self.estimate = self.alpha * run_length + (1 - self.alpha) * self.estimate

    def predict_run(self, stream_state):
        return max(1, min(int(round(self.estimate)), self.max_window))


class ReadaheadSimulator:
    """Replays sequential runs; scores prefetch decisions.

    Cost model (in simulated microseconds): a miss (page not prefetched)
    costs ``miss_us``; a wasted prefetched page costs ``waste_us``; a
    prefetch decision itself costs ``decision_us`` (inference).
    """

    def __init__(self, policy, miss_us=100.0, waste_us=5.0, decision_us=1.0):
        self.policy = policy
        self.miss_us = miss_us
        self.waste_us = waste_us
        self.decision_us = decision_us
        self.misses = 0
        self.prefetched_used = 0
        self.prefetched_wasted = 0
        self.decisions = 0
        self.total_cost_us = 0.0

    def replay(self, runs):
        """``runs`` is an iterable of sequential-run lengths (pages)."""
        for run_length in runs:
            window = self.policy.predict_run(None)
            self.decisions += 1
            self.total_cost_us += self.decision_us
            used = min(window, run_length)
            wasted = max(window - run_length, 0)
            missed = max(run_length - window, 0)
            self.prefetched_used += used
            self.prefetched_wasted += wasted
            self.misses += missed
            self.total_cost_us += missed * self.miss_us + wasted * self.waste_us
            if hasattr(self.policy, "observe_run"):
                self.policy.observe_run(run_length)
        return self.total_cost_us

    def cost_per_run(self):
        if self.decisions == 0:
            return 0.0
        return self.total_cost_us / self.decisions

"""Learned preallocation sizing (P3 substrate).

Predicts upcoming demand by linear extrapolation over the recent request
sizes and grants ``request + predicted headroom``.  On steady workloads the
extra headroom avoids repeat allocations; on bursty/adversarial request
patterns the unclamped extrapolation produces grants beyond available
memory — the out-of-bounds outputs that P3 catches at the ``mm.alloc``
hook.

(The missing clamp is the point: the paper's position is that learned
policies will have such bugs, and the kernel needs a guardrail rather than
trusting every model to clamp correctly.)
"""

import collections


class LearnedPreallocPolicy:
    """``policy(requested, available) -> granted`` with trend extrapolation."""

    def __init__(self, window=8, horizon=4.0):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.window = window
        # How far ahead (in requests) the policy provisions for.
        self.horizon = horizon
        self._recent = collections.deque(maxlen=window)
        self.calls = 0

    def _predicted_demand(self):
        """Least-squares slope over the recent request sizes."""
        n = len(self._recent)
        if n < 2:
            return 0.0
        xs = range(n)
        mean_x = (n - 1) / 2.0
        mean_y = sum(self._recent) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, self._recent))
        var = sum((x - mean_x) ** 2 for x in xs)
        slope = cov / var if var else 0.0
        latest = self._recent[-1]
        return max(latest + slope * self.horizon, 0.0)

    def __call__(self, requested, available):
        self.calls += 1
        self._recent.append(requested)
        headroom = self._predicted_demand()
        return int(requested + headroom)


def clamped_prealloc(policy):
    """A corrected wrapper: the same predictor, clamped into legal bounds.

    Used as the REPLACE fallback when the raw learned policy violates P3.
    """

    def safe(requested, available):
        granted = policy(requested, available)
        return max(requested, min(granted, available))

    return safe

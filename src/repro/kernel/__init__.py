"""Simulated OS kernel subsystems.

The substitution for "runs inside the Linux kernel": a discrete-event kernel
with the subsystems the paper's examples need — replicated flash storage
(LinnOS, §5), memory management (P3, huge pages, tiered memory), CPU
scheduling (P6), a cache (P4), and a congestion-controlled link (P2).  Each
subsystem exposes kprobe-style hook points and publishes its metrics to the
global feature store, which is exactly the surface guardrail monitors
attach to.
"""

from repro.kernel.base import Kernel

__all__ = ["Kernel"]

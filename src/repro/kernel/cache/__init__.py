"""Cache substrate (P4: decision quality).

A fixed-capacity key cache whose eviction decision goes through the
``cache.evict`` function slot, plus shadow caches that replay the same
access stream through baseline policies.  The paper's P4 example property —
"decisions of the model must yield better hit rates than randomly selecting
elements" — is checked by comparing the live hit rate against the shadow
baseline's, both published to the feature store.
"""

from repro.kernel.cache.cache import KvCache, ShadowCache
from repro.kernel.cache.policies import lru_evict, mru_evict, random_evict

__all__ = ["KvCache", "ShadowCache", "lru_evict", "mru_evict", "random_evict"]

"""The cache, its policy view, and shadow baselines."""

import collections

from repro.detect.streaming import RateCounter
from repro.kernel.cache.policies import random_evict
from repro.sim.units import SECOND


class _Entry:
    __slots__ = ("inserted", "last_access", "access_count")

    def __init__(self, now):
        self.inserted = now
        self.last_access = now
        self.access_count = 1


class CacheView:
    """Read-only window a policy gets over the cache contents."""

    def __init__(self, entries):
        self._entries = entries

    def keys(self):
        return self._entries.keys()

    def last_access(self, key):
        return self._entries[key].last_access

    def insert_time(self, key):
        return self._entries[key].inserted

    def access_count(self, key):
        return self._entries[key].access_count

    def __len__(self):
        return len(self._entries)


class _PolicyCache:
    """Shared mechanics for the live cache and shadows."""

    def __init__(self, capacity, clock, policy):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._policy = policy
        self._entries = collections.OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_policy(self, policy):
        self._policy = policy

    def access(self, key):
        now = self._clock()
        entry = self._entries.get(key)
        if entry is not None:
            entry.last_access = now
            entry.access_count += 1
            self.hits += 1
            return True
        self.misses += 1
        if len(self._entries) >= self.capacity:
            victim = self._policy(CacheView(self._entries))
            if victim not in self._entries:
                raise ValueError(
                    "eviction policy returned non-resident key {!r}".format(victim)
                )
            del self._entries[victim]
            self.evictions += 1
        self._entries[key] = _Entry(now)
        return False

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)


class ShadowCache(_PolicyCache):
    """A baseline cache replaying the live access stream, never serving it."""


class KvCache(_PolicyCache):
    """The live cache: policy through the ``cache.evict`` slot, shadows fed
    automatically, hit rates published to the feature store.

    Published keys: ``cache.hit_rate`` and, per shadow,
    ``cache.<shadow>.hit_rate`` — both windowed over ``window`` ns, so a P4
    rule is simply ``LOAD(cache.hit_rate) >= LOAD(cache.random.hit_rate)``.
    """

    EVICT_SLOT = "cache.evict"
    BASELINE_NAME = "cache.random"

    def __init__(self, kernel, capacity, window=1 * SECOND,
                 metric_prefix="cache"):
        self.kernel = kernel
        self.metric_prefix = metric_prefix
        baseline = random_evict(kernel.engine.rng.get("cache.random"))
        if self.EVICT_SLOT not in kernel.functions:
            slot = kernel.functions.register(self.EVICT_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
        else:
            slot = kernel.functions.slot(self.EVICT_SLOT)
        super().__init__(capacity, lambda: kernel.engine.now,
                         lambda view: slot(view))
        self._shadows = {}
        self._hit_window = RateCounter(window)
        self._shadow_windows = {}
        self.access_hook = kernel.hooks.declare("cache.access")

    def add_shadow(self, name, policy):
        """Attach a shadow baseline; returns the :class:`ShadowCache`."""
        if name in self._shadows:
            raise ValueError("shadow {!r} already attached".format(name))
        shadow = ShadowCache(self.capacity, self._clock, policy)
        self._shadows[name] = shadow
        self._shadow_windows[name] = RateCounter(self._hit_window.window)
        return shadow

    def access(self, key):
        hit = super().access(key)
        now = self.kernel.engine.now
        self._hit_window.observe(now, hit)
        store = self.kernel.store
        store.save("cache.hit_rate", self._hit_window.rate(now))
        for name, shadow in self._shadows.items():
            shadow_hit = shadow.access(key)
            window = self._shadow_windows[name]
            window.observe(now, shadow_hit)
            store.save("cache.{}.hit_rate".format(name), window.rate(now))
        self.kernel.metrics.increment(self.metric_prefix + ".accesses")
        if hit:
            self.kernel.metrics.increment(self.metric_prefix + ".hits")
        self.access_hook.fire(key=key, hit=hit)
        return hit

    def shadow(self, name):
        return self._shadows[name]

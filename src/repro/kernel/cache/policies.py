"""Eviction policies.

An eviction policy is a callable ``policy(cache_view) -> key`` choosing the
victim.  ``cache_view`` exposes the resident keys with their bookkeeping
(insert time, last access, access count) but not the future — policies that
need learned predictions wrap a model around these observables.
"""


def lru_evict():
    """Evict the least recently used key."""

    def policy(view):
        return min(view.keys(), key=lambda k: (view.last_access(k), str(k)))

    return policy


def mru_evict():
    """Evict the most recently used key (good for cyclic scans, bad otherwise)."""

    def policy(view):
        return max(view.keys(), key=lambda k: (view.last_access(k), str(k)))

    return policy


def random_evict(rng):
    """Evict a uniformly random key — the paper's P4 comparison floor."""

    def policy(view):
        keys = sorted(view.keys(), key=str)
        return keys[int(rng.integers(len(keys)))]

    return policy


def lfu_evict():
    """Evict the least frequently used key."""

    def policy(view):
        return min(view.keys(), key=lambda k: (view.access_count(k), str(k)))

    return policy

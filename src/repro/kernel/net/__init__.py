"""Congestion-control substrate (P2: robustness; background: Orca).

A single bottleneck link driven in RTT epochs.  Each epoch the sender's
rate is set by the ``net.cc_update`` policy slot from noisy observations of
delivered throughput and loss.  The AIMD baseline is the known-safe
fallback; a learned controller can be noise-sensitive (P2) or collapse its
rate and fail to recover — the misbehavior §2 describes for learned
congestion control.
"""

from repro.kernel.net.link import BottleneckLink, aimd_controller

__all__ = ["BottleneckLink", "aimd_controller"]

"""Bottleneck link simulated in RTT epochs.

Model: one sender, one link of (possibly time-varying) capacity.  Each RTT
epoch:

1. the sender transmits at its current rate;
2. delivered = min(rate, capacity); loss = max(rate - capacity, 0) / rate;
3. the controller observes (rate, delivered, loss) — *with measurement
   noise* — and returns the next rate.

Published keys: ``net.utilization`` (delivered/capacity, windowed average
as ``net.utilization.avg``), ``net.rate_mbps``, ``net.loss``.
The ``net.cc_update`` hook fires every epoch.
"""

from repro.sim.units import MILLISECOND


def aimd_controller(increase_mbps=2.0, decrease_factor=0.5, min_rate=1.0):
    """Additive-increase / multiplicative-decrease baseline."""

    def controller(observation):
        rate = observation["rate_mbps"]
        if observation["loss"] > 0.0:
            return max(rate * decrease_factor, min_rate)
        return rate + increase_mbps

    return controller


class BottleneckLink:
    CC_SLOT = "net.cc_update"
    BASELINE_NAME = "net.aimd"

    def __init__(self, kernel, capacity_mbps=100.0, rtt=20 * MILLISECOND,
                 noise_std=0.0, initial_rate_mbps=10.0, utilization_window=32):
        if capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity_mbps = capacity_mbps
        self.rtt = rtt
        self.noise_std = noise_std
        self.rate_mbps = initial_rate_mbps
        self._rng = kernel.engine.rng.get("net.noise")
        self.epoch = 0
        self.total_delivered = 0.0
        self.total_offered = 0.0
        self.update_hook = kernel.hooks.declare("net.cc_update")
        baseline = aimd_controller()
        if self.CC_SLOT not in kernel.functions:
            kernel.functions.register(self.CC_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
        kernel.store.derive_moving_average("net.utilization",
                                           window=utilization_window)
        self._running = False

    def set_capacity(self, capacity_mbps):
        """Step the link capacity (path change, cross traffic...)."""
        if capacity_mbps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_mbps = capacity_mbps

    def start(self):
        """Begin the epoch loop at the current virtual time."""
        if self._running:
            raise RuntimeError("link is already running")
        self._running = True
        self.kernel.engine.schedule(self.rtt, self._epoch)
        return self

    def _epoch(self):
        self.epoch += 1
        rate = max(self.rate_mbps, 0.0)
        delivered = min(rate, self.capacity_mbps)
        loss = 0.0 if rate <= 0 else max(rate - self.capacity_mbps, 0.0) / rate
        utilization = delivered / self.capacity_mbps
        self.total_delivered += delivered
        self.total_offered += rate

        noise = self._rng.normal(0.0, self.noise_std) if self.noise_std else 0.0
        observation = {
            "rate_mbps": rate,
            # The throughput *measurement* is noisy — the P2 robustness
            # surface a rich-telemetry learned controller consumes.  Loss is
            # a discrete signal (dup ACKs) and stays crisp, which is why the
            # sign-based AIMD fallback is robust where the model is not.
            "delivered_mbps": max(delivered * (1.0 + noise), 0.0),
            "loss": loss,
            "rtt_ms": self.rtt / MILLISECOND,
        }
        controller = self.kernel.functions.slot(self.CC_SLOT)
        next_rate = float(controller(observation))

        store = self.kernel.store
        store.save("net.utilization", utilization)
        store.save("net.rate_mbps", rate)
        store.save("net.loss", loss)
        self.kernel.metrics.record("net.utilization", utilization)
        self.kernel.metrics.record("net.rate_mbps", rate)
        self.update_hook.fire(rate_mbps=rate, delivered_mbps=delivered,
                              loss=loss, utilization=utilization,
                              next_rate_mbps=next_rate)
        self.rate_mbps = next_rate
        self.kernel.engine.schedule(self.rtt, self._epoch)

    def mean_utilization(self):
        return self.kernel.metrics.series("net.utilization").mean()

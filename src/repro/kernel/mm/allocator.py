"""Page allocator with a swappable preallocation policy (P3 substrate).

On every allocation request the ``mm.prealloc_size`` policy slot decides
how many pages to actually reserve (request + readahead/preallocation,
like fault-around or hugepage padding).  A learned sizing policy can emit
out-of-bounds grants — more than is available, or even negative — which is
exactly the P3 property: *outputs must be within legal bounds*.

The allocator itself stays memory-safe (it clamps before applying), but it
fires the ``mm.alloc`` hook with the raw policy output *before* clamping so
a FUNCTION-triggered guardrail can see the illegal decision, and it counts
clamped grants.
"""


def identity_prealloc():
    """Baseline sizing policy: grant exactly what was requested."""

    def policy(requested, available):
        return requested

    return policy


class MemoryAllocator:
    PREALLOC_SLOT = "mm.prealloc_size"
    BASELINE_NAME = "mm.identity_prealloc"

    def __init__(self, kernel, total_pages):
        if total_pages <= 0:
            raise ValueError("total_pages must be positive")
        self.kernel = kernel
        self.total_pages = total_pages
        self.used_pages = 0
        self.alloc_hook = kernel.hooks.declare("mm.alloc")
        self.out_of_bounds_grants = 0
        self.failed_allocations = 0
        baseline = identity_prealloc()
        if self.PREALLOC_SLOT not in kernel.functions:
            kernel.functions.register(self.PREALLOC_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
        kernel.store.save("mm.available_pages", self.available_pages)

    @property
    def available_pages(self):
        return self.total_pages - self.used_pages

    def allocate(self, requested):
        """Allocate ``requested`` pages plus whatever the policy adds.

        Returns the number of pages actually reserved (0 when even the bare
        request cannot be satisfied).
        """
        if requested <= 0:
            raise ValueError("requested must be positive, got {}".format(requested))
        policy = self.kernel.functions.slot(self.PREALLOC_SLOT)
        granted = int(policy(requested, self.available_pages))

        out_of_bounds = granted > self.available_pages or granted < requested
        if out_of_bounds:
            self.out_of_bounds_grants += 1
        self.kernel.store.save("mm.last_grant", granted)
        self.kernel.store.save("mm.grant_out_of_bounds", 1 if out_of_bounds else 0)
        self.alloc_hook.fire(
            requested=requested,
            granted=granted,
            available=self.available_pages,
            out_of_bounds=out_of_bounds,
        )

        # The kernel-side clamp: never hand out memory that does not exist,
        # never less than the request if it fits.
        safe_grant = max(requested, min(granted, self.available_pages))
        if safe_grant > self.available_pages:
            self.failed_allocations += 1
            self.kernel.metrics.increment("mm.failed_allocations")
            return 0
        self.used_pages += safe_grant
        self.kernel.store.save("mm.available_pages", self.available_pages)
        self.kernel.metrics.increment("mm.allocations")
        return safe_grant

    def free(self, pages):
        if pages < 0 or pages > self.used_pages:
            raise ValueError(
                "cannot free {} pages ({} in use)".format(pages, self.used_pages)
            )
        self.used_pages -= pages
        self.kernel.store.save("mm.available_pages", self.available_pages)

"""Memory-management substrate.

Three pieces, each backing a different paper example:

- :class:`~repro.kernel.mm.allocator.MemoryAllocator` — allocation with a
  swappable preallocation-size policy; a misbehaving learned policy can
  grant more than available memory, the paper's P3 out-of-bounds example;
- :class:`~repro.kernel.mm.fault.PageFaultHandler` — the page-fault path
  with a huge-page promotion decision; bad promotion decisions pay
  compaction stalls of up to hundreds of ms (the paper's CBMM motivation),
  watched by the §2 example property "average page-fault latency over every
  10 s below 2 ms";
- :class:`~repro.kernel.mm.tiered.TieredMemory` — two-tier memory with a
  swappable placement/migration policy (background: Kleio/IDT/Sibyl).
"""

from repro.kernel.mm.allocator import MemoryAllocator
from repro.kernel.mm.fault import PageFaultHandler
from repro.kernel.mm.tiered import TieredMemory

__all__ = ["MemoryAllocator", "PageFaultHandler", "TieredMemory"]

"""Two-tier memory with a swappable placement policy.

Pages live in a fast tier (DRAM) or a slow tier (CXL/NVM).  Every access
pays the tier's latency; the ``mm.tier_placement`` policy slot is consulted
on each slow-tier access and decides whether to migrate the page up
(evicting the fast tier's coldest page when full).  The background section
of the paper cites exactly this task (Kleio, IDT, Sibyl) as learned-policy
territory, with the caveat that such engines "may perform poorly if the
workload is write-intensive and has random access patterns" — the quality
failure a P4 guardrail watches.

Published keys: ``mm.tier_hit_rate`` (fraction of recent accesses served
from the fast tier).
"""

import collections

from repro.detect.streaming import RateCounter
from repro.sim.units import SECOND


def never_migrate():
    """Baseline placement: static — pages stay where they first landed."""

    def policy(page, context):
        return False

    return policy


def promote_on_second_access(threshold=2):
    """Simple heuristic: promote after ``threshold`` slow-tier touches."""
    counts = collections.Counter()

    def policy(page, context):
        counts[page] += 1
        return counts[page] >= threshold

    return policy


class TieredMemory:
    PLACEMENT_SLOT = "mm.tier_placement"
    BASELINE_NAME = "mm.promote_on_second_access"

    def __init__(self, kernel, fast_capacity, fast_latency_ns=100,
                 slow_latency_ns=900, migration_cost_ns=2_000,
                 hit_window=1 * SECOND):
        if fast_capacity <= 0:
            raise ValueError("fast_capacity must be positive")
        self.kernel = kernel
        self.fast_capacity = fast_capacity
        self.fast_latency_ns = fast_latency_ns
        self.slow_latency_ns = slow_latency_ns
        self.migration_cost_ns = migration_cost_ns
        self._fast = collections.OrderedDict()  # page -> None, LRU order
        self.access_hook = kernel.hooks.declare("mm.tier_access")
        self.accesses = 0
        self.fast_hits = 0
        self.migrations = 0
        self._hits = RateCounter(hit_window)
        baseline = promote_on_second_access()
        if self.PLACEMENT_SLOT not in kernel.functions:
            kernel.functions.register(self.PLACEMENT_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
            kernel.functions.register_implementation("mm.never_migrate",
                                                     never_migrate())

    def access(self, page, is_write=False):
        """Touch ``page``; returns the access latency in ns."""
        self.accesses += 1
        now = self.kernel.engine.now
        hit = page in self._fast
        latency = self.fast_latency_ns if hit else self.slow_latency_ns
        if hit:
            self.fast_hits += 1
            self._fast.move_to_end(page)
        else:
            policy = self.kernel.functions.slot(self.PLACEMENT_SLOT)
            context = {
                "is_write": is_write,
                "fast_used": len(self._fast),
                "fast_capacity": self.fast_capacity,
                "now": now,
                "serial": self.accesses,
            }
            if policy(page, context):
                self._promote(page)
                latency += self.migration_cost_ns
        self._hits.observe(now, hit)
        self.kernel.store.save("mm.tier_hit_rate", self._hits.rate(now))
        self.kernel.metrics.record("mm.tier_access_ns", latency)
        self.access_hook.fire(page=page, hit=hit, is_write=is_write,
                              latency_ns=latency, serial=self.accesses)
        return latency

    def _promote(self, page):
        while len(self._fast) >= self.fast_capacity:
            self._fast.popitem(last=False)  # evict the coldest
        self._fast[page] = None
        self.migrations += 1

    @property
    def hit_rate(self):
        if self.accesses == 0:
            return 0.0
        return self.fast_hits / self.accesses

    def mean_access_ns(self):
        return self.kernel.metrics.series("mm.tier_access_ns").mean()

    def in_fast_tier(self, page):
        return page in self._fast

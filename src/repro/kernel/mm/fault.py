"""Page-fault path with a huge-page promotion decision.

The paper motivates guardrails with CBMM's observation that the kernel "may
spend up to 500 ms allocating a huge page".  Here every fault consults the
``mm.promote_hugepage`` policy slot; promoting under fragmentation pays a
compaction stall that grows with fragmentation, while promoting under low
fragmentation is cheap and speeds up later accesses.

Published keys:

- ``mm.page_fault_latency_ms`` — per-fault latency samples, plus the
  derived ``mm.page_fault_latency_ms.avg`` (the §2 example property:
  "average page fault latency over every 10 seconds below 2 ms").
- ``mm.fragmentation`` — the current fragmentation level in [0, 1].

The ``mm.page_fault`` hook fires per fault.
"""


def never_promote():
    """Baseline promotion policy: always use base pages."""

    def policy(fault_context):
        return False

    return policy


class PageFaultHandler:
    PROMOTE_SLOT = "mm.promote_hugepage"
    BASELINE_NAME = "mm.never_promote"

    def __init__(self, kernel, base_fault_us=3.0, hugepage_bonus_us=1.5,
                 compaction_ms_at_full_frag=400.0, avg_window=128):
        self.kernel = kernel
        self.base_fault_us = base_fault_us
        self.hugepage_bonus_us = hugepage_bonus_us
        self.compaction_ms_at_full_frag = compaction_ms_at_full_frag
        self.fragmentation = 0.0
        self.fault_hook = kernel.hooks.declare("mm.page_fault")
        self.fault_count = 0
        self.promotion_count = 0
        self.stalled_promotions = 0
        self._rng = kernel.engine.rng.get("mm.fault")
        baseline = never_promote()
        if self.PROMOTE_SLOT not in kernel.functions:
            kernel.functions.register(self.PROMOTE_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
        kernel.store.derive_moving_average("mm.page_fault_latency_ms",
                                           window=avg_window)
        kernel.store.save("mm.fragmentation", self.fragmentation)

    def set_fragmentation(self, level):
        """External fragmentation in [0, 1]; workloads shift this over time."""
        if not 0.0 <= level <= 1.0:
            raise ValueError("fragmentation must be in [0, 1], got {}".format(level))
        self.fragmentation = level
        self.kernel.store.save("mm.fragmentation", self.fragmentation)

    def fault(self, address=0, process="main"):
        """Handle one page fault; returns the simulated latency in ms."""
        self.fault_count += 1
        policy = self.kernel.functions.slot(self.PROMOTE_SLOT)
        context = {
            "address": address,
            "process": process,
            "fragmentation": self.fragmentation,
            "recent_faults": self.fault_count,
        }
        promote = bool(policy(context))
        latency_us = self._rng.lognormal(0.0, 0.3) * self.base_fault_us
        if promote:
            self.promotion_count += 1
            # Compaction stall scales superlinearly with fragmentation: with
            # a defragmented buddy allocator promotion is nearly free, under
            # heavy fragmentation it reaches the CBMM-reported hundreds of ms.
            stall_ms = self.compaction_ms_at_full_frag * (self.fragmentation ** 2)
            stall_ms *= self._rng.uniform(0.5, 1.5)
            if stall_ms > 1.0:
                self.stalled_promotions += 1
            latency_us += stall_ms * 1000.0
        else:
            # Base pages fault more often later; charge a small deferred cost.
            latency_us += self.hugepage_bonus_us

        latency_ms = latency_us / 1000.0
        self.kernel.store.save("mm.page_fault_latency_ms", latency_ms)
        self.kernel.metrics.record("mm.page_fault_latency_ms", latency_ms)
        self.fault_hook.fire(
            process=process,
            promote=promote,
            latency_ms=latency_ms,
            fragmentation=self.fragmentation,
        )
        return latency_ms

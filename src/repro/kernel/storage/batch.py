"""Columnar completion ingest for the batched device-model lane.

The scalar completion path pays the full feature-store and metric-recorder
fan-out per I/O: two ``store.save`` calls, a time-series append, and two
counter increments — five Python-level operations per event.  The batched
lane buffers those per-event effects in plain column lists and drains them
in one :meth:`FeatureStore.save_batch` / :meth:`MetricRecorder.record_batch`
call per column, amortizing dispatch over thousands of events.

Exactness contract (the "bugfix" half of this lane):

- The device model's RNG is untouched — batching begins strictly *after*
  service/dwell draws, so per-event draw order is the scalar path's by
  construction.
- Buffered values are exactly what the scalar saves would have stored
  (the float latency, the int 0/1 false-submit event) at exactly the
  event timestamps the scalar clock would have observed.
- No reader can observe pre-flush state: every buffered event arms the
  store's one-shot flush hook, and any store access (a rule's LOAD, a
  snapshot, a version probe) drains the buffers first.  Metric readers go
  through :meth:`ReplicatedVolume.flush_ingest`.

Given those, final counters, series, histograms and derived-estimator
state are bit-identical across batch sizes — pinned by the seeded
cross-check in ``tests/kernel/test_batch_ingest.py``.
"""


class BatchedCompletionIngest:
    """Buffers one volume's per-completion store/metric effects."""

    def __init__(self, store, metrics, metric_prefix, batch_size):
        if batch_size < 1:
            raise ValueError(
                "batch_size must be >= 1, got {}".format(batch_size))
        self.store = store
        self.metrics = metrics
        self.batch_size = int(batch_size)
        self._series_name = metric_prefix + ".io_latency_us"
        self._completed_name = metric_prefix + ".completed"
        self._slow_name = metric_prefix + ".slow_ios"
        self._times = []
        self._latencies = []
        self._fs_times = []
        self._fs_values = []
        self._slow_count = 0
        self.flush_count = 0
        # One stable bound method: defer_flush/cancel_flush match by
        # identity, and ``self.flush`` creates a fresh object per access.
        self._flush_cb = self.flush

    def __len__(self):
        return len(self._times)

    def add(self, now, latency_us, false_submit_event, slow):
        """Buffer one completion's effects.

        ``false_submit_event`` is ``None`` when the scalar path would not
        have saved a ``false_submit`` sample, else the 0/1 int it would
        have saved.
        """
        self.store.defer_flush(self._flush_cb)
        self._times.append(now)
        self._latencies.append(latency_us)
        if false_submit_event is not None:
            self._fs_times.append(now)
            self._fs_values.append(false_submit_event)
        if slow:
            self._slow_count += 1
        if len(self._times) >= self.batch_size:
            self.flush()

    def flush(self):
        """Drain all buffered events into the store and metrics."""
        self.store.cancel_flush(self._flush_cb)
        times = self._times
        if not times:
            return
        latencies = self._latencies
        fs_times = self._fs_times
        fs_values = self._fs_values
        slow_count = self._slow_count
        self._times = []
        self._latencies = []
        self._fs_times = []
        self._fs_values = []
        self._slow_count = 0
        self.flush_count += 1
        # Grouped-by-key replay: per-key store state (raw value, version
        # count, derived estimators) and metric series content are exactly
        # order-free across *different* keys, so grouping is lossless.
        self.store.save_batch("io_latency_us", latencies, times)
        if fs_values:
            self.store.save_batch("false_submit", fs_values, fs_times)
        self.metrics.record_batch(self._series_name, times, latencies)
        self.metrics.increment(self._completed_name, len(times))
        if slow_count:
            self.metrics.increment(self._slow_name, slow_count)


__all__ = ["BatchedCompletionIngest"]

"""SSD device model with GC-induced tail latency.

Flash devices serve most I/O fast but stall during garbage collection.
LinnOS's premise is that the onset of these slow episodes is *learnable*
from recent device behavior.  Each device's service mode follows a hidden
two-state process (FAST / SLOW) that evolves in wall-clock time — GC runs
for a duration whether or not I/O arrives, so a policy that steers around a
GC-ing device genuinely avoids its slow services (this is what makes the
learned policy profitable at all):

- **pre-drift profile** — rare, long GC episodes in long fast stretches.
  A slow completion means "GC in progress, more slowness imminent", so the
  trained mapping "avoid devices with slow recent history" wins big.
- **post-drift profile** — GC storms: short episodes with short gaps (think
  sudden write pressure).  A slow completion now mostly means the burst is
  already over, while a clean history means the next burst is due — the
  learned mapping inverts, and prediction-guided traffic *herds* onto
  about-to-stall replicas, performing worse than round-robin.

Latencies are lognormal around the mode's median.  The device models FIFO
queueing; reported request latency = queue wait + service.
"""

import collections
import math

from repro.sim.units import us


class DeviceProfile:
    """Service-time regime of one device.

    ``fast_duration_ns`` / ``slow_duration_ns`` are the *mean* dwell times
    of the hidden state (exponentially distributed).
    """

    def __init__(self, name, fast_median_us=80.0, fast_sigma=0.25,
                 slow_median_us=2000.0, slow_sigma=0.35,
                 fast_duration_ns=300_000_000, slow_duration_ns=30_000_000,
                 dwell_jitter=None):
        if fast_duration_ns <= 0 or slow_duration_ns <= 0:
            raise ValueError("state durations must be positive")
        if dwell_jitter is not None and not 0.0 <= dwell_jitter < 1.0:
            raise ValueError("dwell_jitter must be in [0, 1)")
        self.name = name
        self.fast_median_us = fast_median_us
        self.fast_sigma = fast_sigma
        self.slow_median_us = slow_median_us
        self.slow_sigma = slow_sigma
        self.fast_duration_ns = fast_duration_ns
        self.slow_duration_ns = slow_duration_ns
        # None -> exponential dwell times (memoryless episodes);
        # a float j -> uniform in [mean*(1-j), mean*(1+j)] (cyclical GC).
        self.dwell_jitter = dwell_jitter

    @classmethod
    def pre_drift(cls):
        """Training regime: ~30 ms GC episodes every ~300 ms (9% slow)."""
        return cls("pre_drift",
                   fast_duration_ns=300_000_000, slow_duration_ns=30_000_000)

    @classmethod
    def post_drift(cls):
        """Shifted regime: cyclical GC micro-bursts (write-pressure storms).

        ~2.5 ms bursts every ~6 ms, nearly periodic.  By the time a slow
        completion is observed the burst is over, so "slow recent history"
        now marks the *safest* replica, while a clean history means the next
        burst is due — the pre-drift mapping is inverted.
        """
        return cls("post_drift",
                   fast_duration_ns=5_000_000, slow_duration_ns=3_000_000,
                   dwell_jitter=0.15)

    def stationary_slow_fraction(self):
        total = self.fast_duration_ns + self.slow_duration_ns
        return self.slow_duration_ns / total

    def __repr__(self):
        return "DeviceProfile({!r})".format(self.name)


SLOW_STATE = "slow"
FAST_STATE = "fast"


class SsdDevice:
    """One replica: FIFO queue + hidden time-driven service process."""

    def __init__(self, engine, rng, name, profile=None, history_length=8,
                 slow_threshold_us=500.0, history_ttl=50_000_000):
        self.engine = engine
        self.rng = rng
        self.name = name
        self.profile = profile if profile is not None else DeviceProfile.pre_drift()
        self.slow_threshold_us = slow_threshold_us
        # History older than this (ns) is uninformative: a device nobody has
        # submitted to recently has likely finished its GC episode.  Without
        # the TTL, a policy steering away from slow-looking devices would
        # freeze their history and starve them forever.
        self.history_ttl = history_ttl
        self._queue = collections.deque()
        self._busy = False
        self._state = FAST_STATE
        self._state_event = None
        self.history = collections.deque(maxlen=history_length)  # service latencies (us)
        self.last_completion_time = None
        self.last_slow_completion_time = None
        self.served_count = 0
        self.slow_served_count = 0
        self._schedule_transition()

    # -- hidden state process ------------------------------------------------

    @property
    def state(self):
        """The hidden mode — visible to tests, not to policies."""
        return self._state

    def _schedule_transition(self):
        if self._state == FAST_STATE:
            mean = self.profile.fast_duration_ns
        else:
            mean = self.profile.slow_duration_ns
        jitter = self.profile.dwell_jitter
        if jitter is None:
            dwell = self.rng.exponential(mean)
        else:
            dwell = mean * (1.0 + jitter * (2.0 * self.rng.random() - 1.0))
        self._state_event = self.engine.schedule(max(int(dwell), 1), self._flip_state)

    def _flip_state(self):
        self._state = SLOW_STATE if self._state == FAST_STATE else FAST_STATE
        self._schedule_transition()

    def set_profile(self, profile):
        """Switch service regime mid-run (domain-shift injection)."""
        self.profile = profile
        if self._state_event is not None:
            self._state_event.cancel()
        self._schedule_transition()

    # -- observable features ---------------------------------------------------

    @property
    def queue_depth(self):
        """Requests waiting or in service — visible to the submit path."""
        return len(self._queue) + (1 if self._busy else 0)

    def _history_fresh(self):
        if self.last_completion_time is None:
            return False
        return self.engine.now - self.last_completion_time <= self.history_ttl

    def recent_slow_fraction(self, window=4):
        """Fraction of the last ``window`` completions that were slow.

        Stale history (no completion within ``history_ttl``) reads as 0.0 —
        see the constructor comment.
        """
        if not self.history or not self._history_fresh():
            return 0.0
        recent = list(self.history)[-window:]
        return sum(1 for lat in recent if lat > self.slow_threshold_us) / len(recent)

    def last_latency_us(self):
        if not self.history or not self._history_fresh():
            return 0.0
        return self.history[-1]

    # Normalization scale for the time-since-slow feature (50 ms).
    TIME_SINCE_SLOW_SCALE = 50_000_000

    def time_since_slow(self):
        """Time since the last *observed* slow completion, in [0, 1].

        1.0 means "no slow completion within the scale (or ever)".  Under
        near-periodic GC this feature carries the cycle phase — which is why
        a model retrained after a regime change can recover (the history
        fractions alone cannot express 'a burst is due').
        """
        if self.last_slow_completion_time is None:
            return 1.0
        elapsed = self.engine.now - self.last_slow_completion_time
        return min(elapsed / self.TIME_SINCE_SLOW_SCALE, 1.0)

    def features(self):
        """The LinnOS-style feature vector for this device.

        Latency-history features plus the slow-recency clock.  (LinnOS also
        feeds queue length; we leave it out because a queue-aware model
        implicitly load-balances, which masks the prediction-quality failure
        mode §5 studies.  The depth is still observable via
        :attr:`queue_depth` for policies that want it.)
        """
        return [
            self.recent_slow_fraction(4),
            self.recent_slow_fraction(8),
            1.0 if self.last_latency_us() > self.slow_threshold_us else 0.0,
            self.time_since_slow(),
        ]

    # -- service --------------------------------------------------------------

    def enqueue(self, request, on_complete):
        """Queue a request; ``on_complete(request, service_latency_us)`` fires
        when the device finishes it."""
        self._queue.append((request, on_complete))
        if not self._busy:
            self._start_next()

    def _start_next(self):
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        request, on_complete = self._queue.popleft()
        service_us = self._sample_service_us()
        self.engine.schedule(us(service_us), self._complete, request, on_complete,
                             service_us)

    def _sample_service_us(self):
        if self._state == SLOW_STATE:
            median, sigma = self.profile.slow_median_us, self.profile.slow_sigma
        else:
            median, sigma = self.profile.fast_median_us, self.profile.fast_sigma
        return float(self.rng.lognormal(math.log(median), sigma))

    def _complete(self, request, on_complete, service_us):
        self.served_count += 1
        if service_us > self.slow_threshold_us:
            self.slow_served_count += 1
            self.last_slow_completion_time = self.engine.now
        self.history.append(service_us)
        self.last_completion_time = self.engine.now
        on_complete(request, service_us)
        self._start_next()

    def __repr__(self):
        return "SsdDevice({!r}, depth={}, served={})".format(
            self.name, self.queue_depth, self.served_count
        )

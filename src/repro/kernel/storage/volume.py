"""Replicated volume with a swappable replica-pick policy.

The flash-RAID failover of LinnOS is modeled at the decision level: every
read may be served by any replica, and the submit path asks the
``storage.pick_device`` function slot which one.  The learned policy
predicts each replica's slow probability and steers around predicted-slow
devices; the fallback is round-robin.

Per completed I/O the volume:

- records ``storage.io_latency_us`` in the metric recorder (the Figure 2
  series);
- saves ``io_latency_us`` to the feature store (feeding derived aggregates);
- saves a ``false_submit`` event (1 when the model predicted the chosen
  device fast but the I/O came back slow) — feeding the derived
  ``false_submit_rate`` that Listing 2 loads;
- fires the ``storage.submit_io`` and ``storage.io_complete`` hook points.
"""

from repro.sim.units import SECOND, ns_to_us


class IoRequest:
    __slots__ = ("io_id", "submit_time", "is_write", "size",
                 "device_index", "used_model", "predicted_fast",
                 "complete_time", "latency_us", "inference_us")

    def __init__(self, io_id, submit_time, is_write=False, size=4096):
        self.io_id = io_id
        self.submit_time = submit_time
        self.is_write = is_write
        self.size = size
        self.device_index = None
        self.used_model = False
        self.predicted_fast = None
        self.complete_time = None
        self.latency_us = None
        self.inference_us = 0.0


class PickDecision:
    """What a pick policy returns."""

    __slots__ = ("index", "used_model", "predicted_fast", "inference_ns")

    def __init__(self, index, used_model=False, predicted_fast=None,
                 inference_ns=0):
        self.index = index
        self.used_model = used_model
        self.predicted_fast = predicted_fast
        self.inference_ns = inference_ns


def round_robin_policy():
    """The known-safe fallback: cycle through replicas."""
    state = {"next": 0}

    def pick(volume):
        index = state["next"] % len(volume.devices)
        state["next"] += 1
        return PickDecision(index, used_model=False)

    return pick


class ReplicatedVolume:
    """N-replica read volume with pluggable replica selection."""

    PICK_SLOT = "storage.pick_device"
    FALLBACK_NAME = "storage.round_robin"

    def __init__(self, kernel, devices, slow_threshold_us=500.0,
                 false_submit_window=1 * SECOND, metric_prefix="storage",
                 ingest_batch=None):
        if not devices:
            raise ValueError("need at least one device")
        self.kernel = kernel
        self.devices = list(devices)
        self.slow_threshold_us = slow_threshold_us
        self.metric_prefix = metric_prefix
        # Batched completion lane: buffer per-I/O store saves and metric
        # records in columns of up to ``ingest_batch`` events, flushed on
        # buffer-full or on any store read (the store's deferred-flush
        # hook).  None keeps the scalar per-event path.  Device RNG draws
        # happen before this point, so batch size can never perturb them.
        if ingest_batch:
            from repro.kernel.storage.batch import BatchedCompletionIngest
            self._ingest = BatchedCompletionIngest(
                kernel.store, kernel.metrics, metric_prefix, ingest_batch)
        else:
            self._ingest = None
        self._io_counter = 0
        self.inflight = 0
        self.completed = 0
        self.false_submits = 0
        self.model_submits = 0

        self.submit_hook = kernel.hooks.declare("storage.submit_io")
        self.complete_hook = kernel.hooks.declare("storage.io_complete")

        fallback = round_robin_policy()
        if self.PICK_SLOT not in kernel.functions:
            kernel.functions.register(self.PICK_SLOT, fallback)
            kernel.functions.register_implementation(self.FALLBACK_NAME, fallback)
        if "false_submit_rate" not in kernel.store:
            kernel.store.derive_rate(
                "false_submit", window=false_submit_window, name="false_submit_rate"
            )

    def install_policy(self, name, policy, activate=True):
        """Register a pick policy as a named implementation (A2 target)."""
        self.kernel.functions.register_implementation(name, policy)
        if activate:
            self.kernel.functions.replace(self.PICK_SLOT, name)

    def submit(self, is_write=False, size=4096):
        """Submit one I/O; replica choice goes through the policy slot."""
        self._io_counter += 1
        request = IoRequest(self._io_counter, self.kernel.engine.now, is_write, size)
        decision = self.kernel.functions.slot(self.PICK_SLOT)(self)
        request.device_index = decision.index
        request.used_model = decision.used_model
        request.predicted_fast = decision.predicted_fast
        # Inference happens on the submit path, so its cost is part of the
        # I/O's end-to-end latency (a stalled decision delays the I/O even
        # though the device never sees the wait).  Queue dynamics are left
        # untouched: the decision is still instantaneous in virtual time,
        # only the reported latency carries the charge.
        request.inference_us = ns_to_us(decision.inference_ns or 0)
        self.inflight += 1
        if decision.used_model:
            self.model_submits += 1
        self.submit_hook.fire(
            io_id=request.io_id,
            device=decision.index,
            used_model=decision.used_model,
            predicted_fast=decision.predicted_fast,
            queue_depth=self.devices[decision.index].queue_depth,
        )
        self.devices[decision.index].enqueue(request, self._on_complete)
        return request

    def _on_complete(self, request, service_us):
        now = self.kernel.engine.now
        request.complete_time = now
        request.latency_us = (ns_to_us(now - request.submit_time)
                              + request.inference_us)
        self.inflight -= 1
        self.completed += 1
        # "Slow" is a property of the device's service (a GC stall), not of
        # queueing congestion — the model predicts device state, so both its
        # labels and false-submit accounting use the service component.
        slow = service_us > self.slow_threshold_us
        false_submit = bool(request.used_model and request.predicted_fast and slow)
        if false_submit:
            self.false_submits += 1

        if self._ingest is not None:
            if (request.used_model and request.predicted_fast is not None
                    and request.predicted_fast):
                fs_event = 1 if false_submit else 0
            else:
                fs_event = None
            self._ingest.add(now, request.latency_us, fs_event, slow)
        else:
            store = self.kernel.store
            store.save("io_latency_us", request.latency_us)
            if request.used_model and request.predicted_fast is not None:
                # Rate denominator: every model-guided fast prediction.
                if request.predicted_fast:
                    store.save("false_submit", 1 if false_submit else 0)

            self.kernel.metrics.record(self.metric_prefix + ".io_latency_us",
                                       request.latency_us)
            self.kernel.metrics.increment(self.metric_prefix + ".completed")
            if slow:
                self.kernel.metrics.increment(self.metric_prefix + ".slow_ios")

        self.complete_hook.fire(
            io_id=request.io_id,
            device=request.device_index,
            latency_us=request.latency_us,
            service_us=service_us,
            slow=slow,
            used_model=request.used_model,
            predicted_fast=request.predicted_fast,
            false_submit=false_submit,
        )

    # -- summary ------------------------------------------------------------

    def flush_ingest(self):
        """Drain the batched ingest buffers (no-op on the scalar path)."""
        if self._ingest is not None:
            self._ingest.flush()

    def false_submit_fraction(self):
        if self.model_submits == 0:
            return 0.0
        return self.false_submits / self.model_submits

    def mean_latency_us(self):
        self.flush_ingest()
        return self.kernel.metrics.series(self.metric_prefix + ".io_latency_us").mean()

"""Synthetic storage workloads and drift injection.

Production traces are not available offline; these generators produce the
behaviors that matter for the paper's experiments — steady open-loop load,
rate phases (bursts), and a mid-run device-regime change (domain shift).
"""

from repro.sim.units import SECOND


class PoissonWorkload:
    """Open-loop Poisson arrivals of reads against a volume.

    ``phases`` is a list of ``(duration_ns, ios_per_second)`` tuples; the
    workload walks through them once and stops.  A single-phase workload is
    just ``[(duration, rate)]``.
    """

    def __init__(self, kernel, volume, phases, rng_name="workload",
                 write_fraction=0.0):
        if not phases:
            raise ValueError("need at least one phase")
        for duration, rate in phases:
            if duration <= 0 or rate <= 0:
                raise ValueError(
                    "bad phase (duration={}, rate={})".format(duration, rate)
                )
        self.kernel = kernel
        self.volume = volume
        self.phases = list(phases)
        self.write_fraction = write_fraction
        self.rng = kernel.engine.rng.get(rng_name)
        self.submitted = 0
        self._phase_index = 0
        self._phase_end = None
        self.done = False

    def start(self):
        """Begin issuing I/O at the current virtual time."""
        now = self.kernel.engine.now
        self._phase_end = now + self.phases[0][0]
        self._schedule_next()
        return self

    def _current_rate(self):
        return self.phases[self._phase_index][1]

    def _schedule_next(self):
        gap_s = self.rng.exponential(1.0 / self._current_rate())
        self.kernel.engine.schedule(max(int(gap_s * SECOND), 1), self._issue)

    def _issue(self):
        now = self.kernel.engine.now
        while now >= self._phase_end:
            self._phase_index += 1
            if self._phase_index >= len(self.phases):
                self.done = True
                return
            self._phase_end += self.phases[self._phase_index][0]
        is_write = self.rng.random() < self.write_fraction
        self.volume.submit(is_write=is_write)
        self.submitted += 1
        self._schedule_next()


class ReplayWorkload:
    """Replays an explicit list of submit times (deterministic traces).

    ``arrivals`` is an iterable of absolute virtual times (ns), optionally
    ``(time, is_write)`` pairs.  Useful for regression tests and for
    replaying externally generated traces without Poisson randomness.
    """

    def __init__(self, kernel, volume, arrivals):
        self.kernel = kernel
        self.volume = volume
        self.submitted = 0
        self._arrivals = []
        for entry in arrivals:
            if isinstance(entry, tuple):
                time, is_write = entry
            else:
                time, is_write = entry, False
            self._arrivals.append((int(time), bool(is_write)))
        self._arrivals.sort(key=lambda e: e[0])

    def start(self):
        for time, is_write in self._arrivals:
            self.kernel.engine.schedule_at(time, self._issue, is_write)
        return self

    def _issue(self, is_write):
        self.volume.submit(is_write=is_write)
        self.submitted += 1


def schedule_profile_change(kernel, devices, profile, at_time):
    """Switch every device in ``devices`` to ``profile`` at ``at_time``.

    This is the Figure 2 drift injection: the device regime changes mid-run,
    invalidating the learned policy's training distribution.
    """

    def change():
        for device in devices:
            device.set_profile(profile)
        kernel.metrics.record("storage.profile_change", 1.0)

    return kernel.engine.schedule_at(at_time, change)

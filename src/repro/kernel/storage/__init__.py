"""Replicated flash storage: the LinnOS substrate (§5 / Figure 2).

- :class:`~repro.kernel.storage.ssd.SsdDevice` — a flash device with a
  bimodal service process (fast path vs GC-induced slow episodes) driven by
  a hidden two-state Markov chain;
- :class:`~repro.kernel.storage.volume.ReplicatedVolume` — a flash-RAID-like
  volume: every read can be served by any replica, and the submit path picks
  a replica through a swappable policy slot (the learned LinnOS policy or a
  round-robin fallback);
- :mod:`~repro.kernel.storage.trace` — open-loop synthetic workloads with
  phases and mid-run device-behavior drift.
"""

from repro.kernel.storage.batch import BatchedCompletionIngest
from repro.kernel.storage.ssd import DeviceProfile, SsdDevice
from repro.kernel.storage.trace import (PoissonWorkload, ReplayWorkload,
                                        schedule_profile_change)
from repro.kernel.storage.volume import IoRequest, PickDecision, ReplicatedVolume

__all__ = [
    "BatchedCompletionIngest",
    "DeviceProfile",
    "SsdDevice",
    "PoissonWorkload",
    "ReplayWorkload",
    "schedule_profile_change",
    "IoRequest",
    "PickDecision",
    "ReplicatedVolume",
]

"""Schedulable tasks."""

NICE_0_WEIGHT = 1024

# CFS-style weight table: each nice step is ~1.25x.
def nice_to_weight(nice):
    if not -20 <= nice <= 19:
        raise ValueError("nice must be in [-20, 19], got {}".format(nice))
    return NICE_0_WEIGHT / (1.25 ** nice)


class Task:
    """A CPU-bound task with a finite (or unbounded) amount of work.

    ``burst_ns`` is the task's characteristic CPU burst: after running for
    one burst the task briefly sleeps (``think_ns``) before becoming
    runnable again, approximating interactive/batch mixes.
    ``total_work_ns=None`` means the task runs for the whole simulation.
    """

    def __init__(self, name, burst_ns=2_000_000, think_ns=0,
                 total_work_ns=None, nice=0):
        self.name = name
        self.burst_ns = burst_ns
        self.think_ns = think_ns
        self.total_work_ns = total_work_ns
        self.nice = nice
        self.weight = nice_to_weight(nice)

        self.vruntime = 0.0
        self.executed_ns = 0
        self.runnable_since = None   # when it last became runnable (ns)
        self.total_wait_ns = 0
        self.max_wait_ns = 0
        self.dispatch_count = 0
        self.finished = False
        self.killed = False
        self.remaining_burst_ns = burst_ns
        self.wait_samples = []

    @property
    def alive(self):
        return not (self.finished or self.killed)

    def set_nice(self, nice):
        self.nice = nice
        self.weight = nice_to_weight(nice)

    def mark_runnable(self, now):
        self.runnable_since = now

    def record_dispatch(self, now):
        """Called when the scheduler gives this task the CPU."""
        if self.runnable_since is not None:
            wait = now - self.runnable_since
            self.total_wait_ns += wait
            self.max_wait_ns = max(self.max_wait_ns, wait)
            self.wait_samples.append(wait)
            self.runnable_since = None
        self.dispatch_count += 1

    def account_run(self, ran_ns):
        """Charge ``ran_ns`` of CPU; returns True when the task completed."""
        self.executed_ns += ran_ns
        self.vruntime += ran_ns * (1024.0 / self.weight)
        self.remaining_burst_ns -= ran_ns
        if self.total_work_ns is not None and self.executed_ns >= self.total_work_ns:
            self.finished = True
        return self.finished

    def waiting_ns(self, now):
        """How long the task has currently been waiting for the CPU."""
        if self.runnable_since is None:
            return 0
        return now - self.runnable_since

    def __repr__(self):
        return "Task({!r}, nice={}, executed={}ms)".format(
            self.name, self.nice, self.executed_ns // 1_000_000
        )

"""CPU scheduling substrate (P6: fairness and liveness).

A single-CPU, timeslice-based scheduler whose pick-next decision goes
through the swappable ``sched.pick_next`` function slot.  The CFS-like
baseline picks minimum vruntime; a learned shortest-predicted-job-first
policy optimizes mean turnaround but can starve long tasks — the classic
liveness failure a P6 guardrail ("no ready task waits > 100 ms") detects,
answered by REPLACE or DEPRIORITIZE.
"""

from repro.kernel.sched.scheduler import CpuScheduler, SchedulerTaskController
from repro.kernel.sched.task import Task

__all__ = ["CpuScheduler", "SchedulerTaskController", "Task"]

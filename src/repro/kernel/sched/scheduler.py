"""Timeslice scheduler with a swappable pick-next policy.

The scheduler loop: pick a runnable task through the ``sched.pick_next``
function slot, run it for ``min(timeslice, remaining burst)``, account
vruntime and wait times, publish fairness metrics to the feature store, and
repeat.  When no task is runnable the CPU idles until the next wakeup.

Published feature-store keys (the P6 property surface):

- ``sched.max_wait_ms`` — the longest any currently-runnable task has been
  waiting (starvation signal);
- ``sched.wait_ms`` — per-dispatch wait samples (feeding derived
  aggregates such as ``sched.wait_ms.avg``).

The ``sched.pick_next_task`` hook fires on every dispatch.
"""

from repro.kernel.sched.task import Task
from repro.sim.units import MILLISECOND


def cfs_pick():
    """Baseline: minimum-vruntime (CFS-like) picker."""

    def pick(scheduler):
        runnable = scheduler.runnable_tasks()
        if not runnable:
            return None
        return min(runnable, key=lambda t: (t.vruntime, t.name))

    return pick


class SchedulerTaskController:
    """A4 DEPRIORITIZE target: renice or kill tasks by name.

    Priorities map to nice values; a priority <= ``kill_below`` kills the
    task (the OOM-killer analogy from the paper).
    """

    def __init__(self, scheduler, kill_below=0):
        self.scheduler = scheduler
        self.kill_below = kill_below
        self.renice_count = 0
        self.kill_count = 0

    def deprioritize(self, targets, priorities):
        for name, priority in zip(targets, priorities):
            task = self.scheduler.find_task(name)
            if task is None or not task.alive:
                continue
            if priority <= self.kill_below:
                self.scheduler.kill(task)
                self.kill_count += 1
            else:
                task.set_nice(min(int(priority), 19))
                self.renice_count += 1


class CpuScheduler:
    PICK_SLOT = "sched.pick_next"
    BASELINE_NAME = "sched.cfs"

    def __init__(self, kernel, timeslice=4 * MILLISECOND, metric_prefix="sched"):
        self.kernel = kernel
        self.timeslice = timeslice
        self.metric_prefix = metric_prefix
        self.tasks = []
        self._running = None
        self._idle = True
        self.context_switches = 0
        self.idle_ns = 0
        self._idle_since = None

        self.pick_hook = kernel.hooks.declare("sched.pick_next_task")
        baseline = cfs_pick()
        if self.PICK_SLOT not in kernel.functions:
            kernel.functions.register(self.PICK_SLOT, baseline)
            kernel.functions.register_implementation(self.BASELINE_NAME, baseline)
        kernel.store.derive_moving_average("sched.wait_ms", window=64)
        kernel.task_controller = SchedulerTaskController(self)

    # -- task management -----------------------------------------------------

    def add_task(self, task):
        if self.find_task(task.name) is not None:
            raise ValueError("task name {!r} already exists".format(task.name))
        self.tasks.append(task)
        task.mark_runnable(self.kernel.engine.now)
        self._kick()
        return task

    def spawn(self, name, **kwargs):
        return self.add_task(Task(name, **kwargs))

    def find_task(self, name):
        for task in self.tasks:
            if task.name == name:
                return task
        return None

    def kill(self, task):
        task.killed = True
        task.runnable_since = None

    def runnable_tasks(self):
        return [t for t in self.tasks if t.alive and t.runnable_since is not None]

    # -- scheduler loop ----------------------------------------------------------

    def _kick(self):
        if self._idle and self._running is None:
            self._idle = False
            if self._idle_since is not None:
                self.idle_ns += self.kernel.engine.now - self._idle_since
                self._idle_since = None
            self.kernel.engine.schedule(0, self._dispatch)

    def _dispatch(self):
        now = self.kernel.engine.now
        self._publish_waits(now)
        picker = self.kernel.functions.slot(self.PICK_SLOT)
        task = picker(self)
        if task is None or not task.alive:
            self._running = None
            self._idle = True
            self._idle_since = now
            return
        task.record_dispatch(now)
        self.kernel.store.save("sched.wait_ms",
                               task.wait_samples[-1] / MILLISECOND
                               if task.wait_samples else 0.0)
        self.pick_hook.fire(
            task=task.name,
            wait_ms=(task.wait_samples[-1] / MILLISECOND) if task.wait_samples else 0.0,
            runnable=len(self.runnable_tasks()),
        )
        self._running = task
        self.context_switches += 1
        run_ns = min(self.timeslice, task.remaining_burst_ns)
        self.kernel.engine.schedule(run_ns, self._tick, task, run_ns)

    def _tick(self, task, ran_ns):
        now = self.kernel.engine.now
        self._running = None
        if task.killed:
            self.kernel.engine.schedule(0, self._dispatch)
            return
        finished = task.account_run(ran_ns)
        self.kernel.metrics.record(self.metric_prefix + ".ran_ns", ran_ns)
        if finished:
            self.kernel.metrics.increment(self.metric_prefix + ".finished")
        elif task.remaining_burst_ns <= 0:
            # Burst done: think, then become runnable again.
            task.remaining_burst_ns = task.burst_ns
            if task.think_ns > 0:
                self.kernel.engine.schedule(task.think_ns, self._wake, task)
            else:
                task.mark_runnable(now)
        else:
            # Preempted mid-burst: still runnable.
            task.mark_runnable(now)
        self.kernel.engine.schedule(0, self._dispatch)

    def _wake(self, task):
        if not task.alive:
            return
        task.mark_runnable(self.kernel.engine.now)
        self._kick()

    def _publish_waits(self, now):
        waits = [t.waiting_ns(now) for t in self.runnable_tasks()]
        max_wait_ms = max(waits) / MILLISECOND if waits else 0.0
        self.kernel.store.save("sched.max_wait_ms", max_wait_ms)

    # -- summaries ------------------------------------------------------------

    def wait_stats(self):
        """Per-task mean/max wait in ms, for reports and tests.

        A task that is *still* waiting counts its in-progress wait toward
        the max — otherwise a fully starved task would report zero.
        """
        now = self.kernel.engine.now
        out = {}
        for task in self.tasks:
            samples = task.wait_samples
            max_wait = max(task.max_wait_ns, task.waiting_ns(now))
            out[task.name] = {
                "dispatches": task.dispatch_count,
                "mean_wait_ms": (sum(samples) / len(samples) / MILLISECOND)
                if samples else 0.0,
                "max_wait_ms": max_wait / MILLISECOND,
                "executed_ms": task.executed_ns / MILLISECOND,
                "alive": task.alive,
            }
        return out

"""The simulated kernel: a monitor host plus subsystems.

:class:`Kernel` extends :class:`~repro.core.host.MonitorHost` with a metric
recorder and a subsystem registry.  Subsystems are attached lazily so a test
that only needs storage does not pay for a scheduler.
"""

from repro.core.host import MonitorHost, RetrainQueue
from repro.core.registry import GuardrailManager
from repro.sim.engine import Engine
from repro.sim.metrics import MetricRecorder


class Kernel(MonitorHost):
    """A bootable simulated kernel.

    Typical setup::

        kernel = Kernel(seed=42)
        volume = kernel.attach("storage", ReplicatedVolume(kernel, replicas=3))
        kernel.guardrails.load(spec_text)
        kernel.run(until=10 * SECOND)
    """

    def __init__(self, seed=0, retrain_min_interval=0):
        engine = Engine(seed=seed)
        super().__init__(
            engine=engine,
            retrain_queue=RetrainQueue(min_interval=retrain_min_interval),
        )
        self.metrics = MetricRecorder(engine)
        self.guardrails = GuardrailManager(self)
        self._subsystems = {}

    def attach(self, name, subsystem):
        """Register a subsystem under ``name``; returns the subsystem."""
        if name in self._subsystems:
            raise ValueError("subsystem {!r} already attached".format(name))
        self._subsystems[name] = subsystem
        return subsystem

    def subsystem(self, name):
        try:
            return self._subsystems[name]
        except KeyError:
            known = ", ".join(sorted(self._subsystems)) or "<none>"
            raise KeyError(
                "no subsystem {!r}; attached: {}".format(name, known)
            ) from None

    def __contains__(self, name):
        return name in self._subsystems

    def run(self, until=None):
        """Advance the simulation (delegates to the engine)."""
        self.engine.run(until=until)

    @property
    def now(self):
        return self.engine.now

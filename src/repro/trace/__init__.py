"""repro.trace — kernel-style tracing & telemetry for guardrail runs.

An ftrace/perf analogue for the simulated kernel: tracepoints in the hot
paths (hook fires, monitor checks, rule evaluations, action dispatches,
feature-store saves, retrain jobs) emit structured events into a bounded
ring buffer through the process-global :data:`TRACER`.  Tracing costs one
predicate check per tracepoint when off; when on, per-category filters and
1-in-N sampling keep overhead tunable.  Exporters produce replayable JSONL
and Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``).

See ``docs/tracing.md`` and ``grctl trace``.
"""

from repro.trace.events import CATEGORIES, PHASE_INSTANT, PHASE_SPAN, TraceEvent
from repro.trace.export import (
    chrome_trace_dict,
    read_jsonl,
    save_chrome_trace,
    save_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.ring import RingBuffer
from repro.trace.summary import render_summary, summarize_events, summarize_tracer
from repro.trace.tracer import TRACER, GuardrailCounters, Tracer, get_tracer, tracing

__all__ = [
    "CATEGORIES",
    "PHASE_INSTANT",
    "PHASE_SPAN",
    "TraceEvent",
    "RingBuffer",
    "Tracer",
    "GuardrailCounters",
    "TRACER",
    "get_tracer",
    "tracing",
    "read_jsonl",
    "write_jsonl",
    "save_jsonl",
    "chrome_trace_dict",
    "write_chrome_trace",
    "save_chrome_trace",
    "summarize_events",
    "summarize_tracer",
    "render_summary",
]

"""Human summaries of a trace: what ``grctl trace`` prints.

Works from two sources:

- a live :class:`~repro.trace.tracer.Tracer` — per-guardrail counts come
  from its exact (never-sampled) counters;
- a replayed event list (JSONL) — counts are then derived from the events
  themselves, which undercounts if the original run sampled or wrapped.
"""

import collections

from repro.trace.events import PHASE_SPAN


def summarize_events(events, stat=None, dropped=0):
    """Reduce a trace to the dict :func:`render_summary` formats.

    ``stat`` is an exact per-guardrail counter table (``Tracer.stat()``);
    when ``None`` the equivalent is reconstructed from the event stream.
    """
    by_category = collections.Counter(e.category for e in events)
    hook_fires = collections.Counter()
    hook_busy_ns = collections.defaultdict(int)
    violations = []
    actions = []
    derived = {}

    def gr(name):
        return derived.setdefault(name, {
            "checks": 0, "violations": 0, "actions": 0, "check_cost_ns": 0,
        })

    for event in events:
        if event.category == "hook":
            hook_fires[event.name] += 1
            if event.phase == PHASE_SPAN:
                hook_busy_ns[event.name] += event.dur
        elif event.category == "monitor.check":
            if event.name == "violation":
                violations.append(event)
                if event.guardrail is not None:
                    gr(event.guardrail)["violations"] += 1
            elif event.guardrail is not None:
                entry = gr(event.guardrail)
                entry["checks"] += 1
                entry["check_cost_ns"] += event.dur
        elif event.category == "action":
            actions.append(event)
            if event.guardrail is not None:
                gr(event.guardrail)["actions"] += 1

    return {
        "events": len(events),
        "dropped": dropped,
        "span_ns": (events[-1].ts - events[0].ts) if events else 0,
        "by_category": dict(by_category),
        "hook_fires": hook_fires,
        "hook_busy_ns": dict(hook_busy_ns),
        "guardrails": stat if stat is not None else derived,
        "exact_counters": stat is not None,
        "violations": violations,
        "actions": actions,
    }


def summarize_tracer(tracer):
    return summarize_events(tracer.events(), stat=tracer.stat(),
                            dropped=tracer.buffer.dropped)


def _fmt_ts(ns):
    return "{:.3f}s".format(ns / 1e9)


def render_summary(summary, top=10):
    """Format a summary dict as the ``grctl trace`` report text."""
    lines = []
    lines.append("trace: {} event(s) over {} ({} overwritten)".format(
        summary["events"], _fmt_ts(summary["span_ns"]), summary["dropped"]))

    lines.append("")
    lines.append("events by category:")
    for category, count in sorted(summary["by_category"].items(),
                                  key=lambda kv: (-kv[1], kv[0])):
        lines.append("  {:<18} {:>8}".format(category, count))

    hottest = summary["hook_fires"].most_common(top)
    lines.append("")
    lines.append("hottest hooks (top {}):".format(top))
    if not hottest:
        lines.append("  <no hook events>")
    for name, fires in hottest:
        lines.append("  {:<26} {:>8} fire(s)".format(name, fires))

    lines.append("")
    header = "per-guardrail counters ({}):".format(
        "exact" if summary["exact_counters"] else "from events; lower bound")
    lines.append(header)
    guardrails = summary["guardrails"]
    if not guardrails:
        lines.append("  <no guardrail activity>")
    else:
        lines.append("  {:<24} {:>8} {:>11} {:>8} {:>14}".format(
            "guardrail", "checks", "violations", "actions", "check cost ns"))
        for name in sorted(guardrails):
            row = guardrails[name]
            lines.append("  {:<24} {:>8} {:>11} {:>8} {:>14}".format(
                name, row["checks"], row["violations"], row["actions"],
                row["check_cost_ns"]))

    lines.append("")
    lines.append("violation timeline:")
    violations = summary["violations"]
    if not violations:
        lines.append("  <none>")
    shown = violations if len(violations) <= 2 * top else (
        violations[:top] + violations[-top:])
    elided = len(violations) - len(shown)
    for i, event in enumerate(shown):
        if elided and i == top:
            lines.append("  ... {} more ...".format(elided))
        rule = (event.args or {}).get("rule", "")
        lines.append("  t={:<10} {:<24} {}".format(
            _fmt_ts(event.ts), event.guardrail or "?", rule))
    for event in summary["actions"][:top]:
        kind = event.name
        detail = (event.args or {}).get("detail", "")
        lines.append("  t={:<10} {:<24} -> {}{}".format(
            _fmt_ts(event.ts), event.guardrail or "?", kind,
            " ({})".format(detail) if detail else ""))
    return "\n".join(lines)

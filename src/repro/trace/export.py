"""Trace exporters: JSONL (replayable) and Chrome ``trace_event`` JSON.

- **JSONL** is the archival format: one event per line, loadable back into
  :class:`~repro.trace.events.TraceEvent` objects by :func:`read_jsonl`, so
  ``grctl trace --replay`` can summarize a run after the fact.
- **Chrome trace** is the visual format: the exported file loads directly in
  Perfetto or ``chrome://tracing``.  Virtual nanoseconds are mapped to the
  format's microsecond ``ts``; each category becomes a named "thread" so the
  timeline groups hook fires, monitor checks, actions, etc. into lanes.
"""

import json

from repro.trace.events import CATEGORIES, PHASE_SPAN, TraceEvent


def _jsonable(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return repr(value)


def event_to_jsonl_line(event):
    data = event.to_dict()
    if "args" in data:
        data["args"] = {k: _jsonable(v) for k, v in data["args"].items()}
    return json.dumps(data, sort_keys=True)


def write_jsonl(events, fp):
    """Write events to a file-like object, one JSON object per line."""
    count = 0
    for event in events:
        fp.write(event_to_jsonl_line(event))
        fp.write("\n")
        count += 1
    return count


def save_jsonl(events, path):
    with open(path, "w") as fp:
        return write_jsonl(events, fp)


def read_jsonl(fp_or_path):
    """Load a JSONL trace back into :class:`TraceEvent` objects."""
    if isinstance(fp_or_path, str):
        with open(fp_or_path) as fp:
            return read_jsonl(fp)
    events = []
    for line in fp_or_path:
        line = line.strip()
        if line:
            events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def chrome_trace_dict(events, pid=1):
    """Events as a Chrome ``trace_event`` "JSON Object Format" dict.

    Categories map to synthetic thread ids (with ``thread_name`` metadata)
    so each category renders as its own lane.  ``ts``/``dur`` are converted
    from virtual nanoseconds to the format's microseconds.
    """
    tids = {category: i + 1 for i, category in enumerate(CATEGORIES)}
    records = []
    for category in CATEGORIES:
        records.append({
            "ph": "M", "name": "thread_name", "pid": pid,
            "tid": tids[category], "args": {"name": category},
        })
    for event in events:
        tid = tids.get(event.category)
        if tid is None:  # unknown category: park it on its own lane
            tid = tids[event.category] = len(tids) + 1
            records.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": event.category},
            })
        args = {k: _jsonable(v) for k, v in (event.args or {}).items()}
        if event.guardrail is not None:
            args.setdefault("guardrail", event.guardrail)
        record = {
            "name": event.name,
            "cat": event.category,
            "pid": pid,
            "tid": tid,
            "ts": event.ts / 1000.0,
            "args": args,
        }
        if event.phase == PHASE_SPAN:
            record["ph"] = "X"
            record["dur"] = event.dur / 1000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"
        records.append(record)
    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_chrome_trace(events, fp, pid=1):
    json.dump(chrome_trace_dict(events, pid=pid), fp)


def save_chrome_trace(events, path, pid=1):
    with open(path, "w") as fp:
        write_chrome_trace(events, fp, pid=pid)

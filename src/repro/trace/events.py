"""Structured trace events.

One :class:`TraceEvent` is one observation from a tracepoint: an *instant*
(phase ``"i"``: a hook fired, a rule evaluated, a value was saved) or a
*complete span* (phase ``"X"``: a monitor check or retrain job with a
virtual-clock duration).  Events are plain data — everything else
(filtering, sampling, storage, export) lives in the tracer and exporters.

Timestamps are virtual nanoseconds from the simulation engine, so traces
from the same seed are bit-for-bit identical.
"""

#: The closed set of tracepoint categories.  Per-category enable/disable and
#: sampling key off these names; exporters map them to Chrome trace "threads".
CATEGORIES = (
    "hook",
    "monitor.check",
    "rule.eval",
    "action",
    "featurestore.save",
    "retrain",
    "fault",
    "supervisor",
    "fleet",
    "service",
    "autopilot",
    "scenarios",
)

PHASE_INSTANT = "i"
PHASE_SPAN = "X"


class TraceEvent:
    """One trace record.

    ``category``   one of :data:`CATEGORIES`;
    ``name``       the specific tracepoint (hook name, guardrail name,
                   rule source, action kind, store key, model name);
    ``ts``         virtual-clock nanoseconds;
    ``dur``        span duration in ns (0 for instants);
    ``phase``      ``"i"`` instant or ``"X"`` complete span;
    ``guardrail``  owning guardrail name, when attributable;
    ``args``       small dict of tracepoint-specific detail (or ``None``);
    ``seq``        global emission order, ties broken the same way the
                   engine breaks same-timestamp event ordering.
    """

    __slots__ = ("category", "name", "ts", "dur", "phase", "guardrail",
                 "args", "seq")

    def __init__(self, category, name, ts, dur=0, phase=PHASE_INSTANT,
                 guardrail=None, args=None, seq=0):
        self.category = category
        self.name = name
        self.ts = ts
        self.dur = dur
        self.phase = phase
        self.guardrail = guardrail
        self.args = args
        self.seq = seq

    def to_dict(self):
        """Flat dict form used by the JSONL exporter (stable key order)."""
        out = {
            "category": self.category,
            "name": self.name,
            "ts": self.ts,
            "phase": self.phase,
            "seq": self.seq,
        }
        if self.dur:
            out["dur"] = self.dur
        if self.guardrail is not None:
            out["guardrail"] = self.guardrail
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["category"], data["name"], data["ts"],
            dur=data.get("dur", 0),
            phase=data.get("phase", PHASE_INSTANT),
            guardrail=data.get("guardrail"),
            args=data.get("args"),
            seq=data.get("seq", 0),
        )

    def __repr__(self):
        return "TraceEvent({}/{}, t={}{}{})".format(
            self.category, self.name, self.ts,
            ", dur={}".format(self.dur) if self.dur else "",
            ", guardrail={}".format(self.guardrail) if self.guardrail else "",
        )

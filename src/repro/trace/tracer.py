"""The process-global tracer: categories, sampling, spans, counters.

Design constraints (mirroring ftrace/perf):

- **Near-zero cost when off.**  Every tracepoint is guarded by a single
  predicate check (``if TRACER.active:``) — no buffer, no dict lookups, no
  argument marshalling unless tracing is on.
- **Bounded memory.**  Events land in an overwrite-on-full
  :class:`~repro.trace.ring.RingBuffer`.
- **Tunable overhead when on.**  Each category can be disabled outright or
  sampled 1-in-N; sampling is deterministic for a given seed so traced runs
  stay reproducible.
- **Exact counters.**  Per-guardrail check/violation/action counters (and
  cumulative check cost) are maintained on *every* tracepoint hit while the
  tracer is active, independent of sampling — ``stat()`` always matches the
  monitor's own totals even when the event stream is sampled.

There is one process-global :data:`TRACER` instance, never replaced (hot
call sites import it once); (re)``start()`` resets its state.
"""

import contextlib
import itertools
import zlib

from repro.trace.events import CATEGORIES, PHASE_SPAN, TraceEvent
from repro.trace.ring import RingBuffer


def _phase_for(seed, category, every):
    """Deterministic sampling phase in ``[0, every)`` from (seed, category).

    Uses crc32, not ``hash()``: string hashing is randomized per process and
    would break cross-run sampling reproducibility.
    """
    h = (seed * 0x9E3779B97F4A7C15 + zlib.crc32(category.encode("utf-8")))
    h &= 0xFFFFFFFFFFFFFFFF
    h ^= h >> 31
    h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 29
    return h % every


class GuardrailCounters:
    """Exact per-guardrail tracepoint counters (never sampled)."""

    __slots__ = ("checks", "violations", "actions", "check_cost_ns")

    def __init__(self):
        self.checks = 0
        self.violations = 0
        self.actions = 0
        self.check_cost_ns = 0

    def snapshot(self):
        return {
            "checks": self.checks,
            "violations": self.violations,
            "actions": self.actions,
            "check_cost_ns": self.check_cost_ns,
        }


class _Span:
    """An open begin/end pair; ``Tracer.end`` turns it into one "X" event."""

    __slots__ = ("category", "name", "ts", "guardrail", "args")

    def __init__(self, category, name, ts, guardrail, args):
        self.category = category
        self.name = name
        self.ts = ts
        self.guardrail = guardrail
        self.args = args


class Tracer:
    """Ring-buffered structured tracing with per-category controls."""

    __slots__ = ("active", "buffer", "seed", "_every", "_phase", "_count",
                 "_seq", "_grs")

    def __init__(self, capacity=65536, seed=0):
        self.active = False
        self.buffer = RingBuffer(capacity)
        self.seed = seed
        # sample rate per category: 0 = category disabled, N = 1-in-N.
        self._every = {c: 1 for c in CATEGORIES}
        self._phase = {c: 0 for c in CATEGORIES}
        self._count = {c: 0 for c in CATEGORIES}
        self._seq = itertools.count()
        self._grs = {}

    # -- configuration -----------------------------------------------------

    def start(self, capacity=None, seed=None, categories=None, sample=None):
        """(Re)start tracing from a clean slate.

        ``categories``: iterable of category names to enable (default: all).
        ``sample``: dict ``{category: N}`` for 1-in-N sampling of the event
        stream (counters stay exact).  ``seed`` fixes the sampling phase.
        """
        if capacity is not None:
            self.buffer = RingBuffer(capacity)
        else:
            self.buffer.clear()
        if seed is not None:
            self.seed = seed
        enabled = set(CATEGORIES if categories is None else categories)
        unknown = enabled - set(CATEGORIES)
        if unknown:
            raise ValueError("unknown trace categories: {}".format(
                ", ".join(sorted(unknown))))
        self._every = {c: (1 if c in enabled else 0) for c in CATEGORIES}
        for category, every in (sample or {}).items():
            if category not in self._every:
                raise ValueError("unknown trace category {!r}".format(category))
            if every < 0:
                raise ValueError("sample rate must be >= 0, got {}".format(every))
            self._every[category] = int(every)
        self._phase = {
            c: _phase_for(self.seed, c, n) if n > 1 else 0
            for c, n in self._every.items()
        }
        self._count = {c: 0 for c in CATEGORIES}
        self._seq = itertools.count()
        self._grs = {}
        self.active = True
        return self

    def stop(self):
        """Deactivate; the buffer and counters stay readable."""
        self.active = False

    def set_category(self, category, enabled=True, sample_every=None):
        """Enable/disable one category (optionally with 1-in-N sampling)."""
        if category not in self._every:
            raise ValueError("unknown trace category {!r}".format(category))
        every = (sample_every if sample_every is not None else 1) if enabled else 0
        self._every[category] = every
        self._phase[category] = (
            _phase_for(self.seed, category, every) if every > 1 else 0
        )

    def category_enabled(self, category):
        return self._every.get(category, 0) != 0

    # -- emission ----------------------------------------------------------

    def _wants(self, category):
        every = self._every.get(category, 0)
        if every == 0:
            return False
        count = self._count[category]
        self._count[category] = count + 1
        if every == 1:
            return True
        return (count + self._phase[category]) % every == 0

    def emit(self, category, name, ts, dur=0, phase="i", guardrail=None,
             args=None):
        """Record one event, subject to category filter and sampling.

        Returns the event, or ``None`` when filtered/sampled out.  Callers
        must gate on ``TRACER.active`` themselves — that keeps the disabled
        cost to a single predicate check at the call site.
        """
        if not self._wants(category):
            return None
        event = TraceEvent(category, name, ts, dur=dur, phase=phase,
                           guardrail=guardrail, args=args,
                           seq=next(self._seq))
        self.buffer.append(event)
        return event

    def begin(self, category, name, ts, guardrail=None, args=None):
        """Open a span; pair with :meth:`end`.  Returns ``None`` if sampled out."""
        if not self._wants(category):
            return None
        return _Span(category, name, ts, guardrail, args)

    def end(self, span, ts, args=None):
        """Close ``span`` (ignoring ``None``) and record one "X" event."""
        if span is None:
            return None
        merged = span.args
        if args:
            merged = dict(merged or {})
            merged.update(args)
        event = TraceEvent(span.category, span.name, span.ts,
                           dur=max(0, ts - span.ts), phase=PHASE_SPAN,
                           guardrail=span.guardrail, args=merged,
                           seq=next(self._seq))
        self.buffer.append(event)
        return event

    # -- exact per-guardrail counters -------------------------------------

    def _gr(self, guardrail):
        counters = self._grs.get(guardrail)
        if counters is None:
            counters = self._grs[guardrail] = GuardrailCounters()
        return counters

    def note_check(self, guardrail, cost_ns=0):
        gr = self._gr(guardrail)
        gr.checks += 1
        gr.check_cost_ns += cost_ns

    def note_violation(self, guardrail):
        self._gr(guardrail).violations += 1

    def note_action(self, guardrail):
        self._gr(guardrail).actions += 1

    # -- introspection -----------------------------------------------------

    def events(self, category=None, guardrail=None):
        """Retained events oldest-first, optionally filtered."""
        out = self.buffer.snapshot()
        if category is not None:
            out = [e for e in out if e.category == category]
        if guardrail is not None:
            out = [e for e in out if e.guardrail == guardrail]
        return out

    def stat(self):
        """Per-guardrail counter table: ``{guardrail: {counter: value}}``.

        Exact regardless of sampling; matches the monitors' own totals.
        """
        return {name: gr.snapshot() for name, gr in sorted(self._grs.items())}

    def __repr__(self):
        return "Tracer(active={}, events={}, dropped={})".format(
            self.active, len(self.buffer), self.buffer.dropped
        )


#: The process-global tracer.  Tracepoints import this instance once and
#: guard on ``TRACER.active``; it is configured in place, never replaced.
TRACER = Tracer()


def get_tracer():
    return TRACER


@contextlib.contextmanager
def tracing(capacity=None, seed=None, categories=None, sample=None):
    """``with tracing() as t:`` — start the global tracer, stop on exit.

    Events and counters remain readable after the block (``t.events()``,
    ``t.stat()``); the next ``start()`` clears them.
    """
    TRACER.start(capacity=capacity, seed=seed, categories=categories,
                 sample=sample)
    try:
        yield TRACER
    finally:
        TRACER.stop()

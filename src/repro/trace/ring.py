"""Bounded, overwrite-on-full ring buffer — the ftrace buffer analogue.

Tracing must never exhaust memory, so the buffer has a fixed capacity and
the *oldest* record is overwritten when full (ftrace's default "overwrite"
mode).  ``dropped`` counts overwritten records so consumers know the trace
is a suffix of the run, not the whole run.
"""


class RingBuffer:
    """Fixed-capacity ring of arbitrary items, oldest overwritten first."""

    __slots__ = ("_slots", "_capacity", "_total")

    def __init__(self, capacity=65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive, got {}".format(capacity))
        self._capacity = int(capacity)
        self._slots = [None] * self._capacity
        self._total = 0

    @property
    def capacity(self):
        return self._capacity

    @property
    def total(self):
        """Items ever appended (including overwritten ones)."""
        return self._total

    @property
    def dropped(self):
        """Items lost to overwrite."""
        return max(0, self._total - self._capacity)

    def append(self, item):
        self._slots[self._total % self._capacity] = item
        self._total += 1

    def __len__(self):
        return min(self._total, self._capacity)

    def __bool__(self):
        return self._total > 0

    def __iter__(self):
        """Oldest retained item first."""
        if self._total <= self._capacity:
            yield from iter(self._slots[:self._total])
            return
        start = self._total % self._capacity
        yield from iter(self._slots[start:])
        yield from iter(self._slots[:start])

    def snapshot(self):
        """Retained items as a list, oldest first."""
        return list(self)

    def clear(self):
        self._slots = [None] * self._capacity
        self._total = 0

    def __repr__(self):
        return "RingBuffer(len={}, capacity={}, dropped={})".format(
            len(self), self._capacity, self.dropped
        )

"""repro.fleet — sharded multi-host fleet simulation + staged rollout.

The paper's §3.3 deploys guardrails *incrementally*; this package scales
that idea from one simulated kernel to a fleet of them:

- :mod:`repro.fleet.worker` runs N independent simulated hosts (each with
  its own engine, feature store, monitor host, and kernel workload) across
  a process pool, stepped in lockstep rounds;
- :mod:`repro.fleet.aggregate` defines the per-round **state digest** each
  host emits — counters plus mergeable metric sketches — and the fleet-wide
  merge, so central properties (violation rates, latency quantiles) are
  checked without shipping raw samples;
- :mod:`repro.fleet.rollout` is the control plane: versioned guardrail
  specs, staged plans (``canary:1 -> 25% -> 100%``), per-stage health gates
  against the pre-rollout baseline, and automatic halt + rollback through
  ``GuardrailManager.update()``;
- :mod:`repro.fleet.scenario` assembles the canonical experiment behind
  ``grctl fleet``: the Listing-2 false-submit guardrail rolling out across
  a storage fleet, with an optional fault-injected cohort that trips the
  canary gate.
"""

from repro.fleet.aggregate import FleetDigest, HostDigest
from repro.fleet.rollout import (
    GateConfig,
    GuardrailVersion,
    RolloutController,
    RolloutObserver,
    RolloutPlan,
    Stage,
    parse_stages,
)
from repro.fleet.scenario import build_fleet_rollout, run_fleet_rollout
from repro.fleet.worker import FleetError, FleetRunner, HostSpec, SimulatedHost

__all__ = [
    "FleetDigest",
    "FleetError",
    "FleetRunner",
    "GateConfig",
    "GuardrailVersion",
    "HostDigest",
    "HostSpec",
    "RolloutController",
    "RolloutObserver",
    "RolloutPlan",
    "SimulatedHost",
    "Stage",
    "parse_stages",
    "build_fleet_rollout",
    "run_fleet_rollout",
]

"""Staged-rollout control plane for fleet guardrail deployments.

The paper (§3.3) treats guardrail thresholds as operator policy that must
be deployed carefully; this module gives that deployment a kernel-style
control plane.  A rollout moves a fleet from one :class:`GuardrailVersion`
to the next through a :class:`RolloutPlan`: first a pre-rollout *baseline*
bake on the old version, then stages (``canary:1 -> 25% -> 100%``) that
widen the cohort of hosts running the new version.  After each stage bakes,
a health *gate* compares the cohort's aggregated digests against the
baseline — violation rate per host-second and the merged latency P95 —
and a tripped gate halts the rollout and rolls every updated host back to
the old version through ``GuardrailManager.update()``, the same no-reboot
path the rollout itself used.

Everything the controller does lands in a deterministic event timeline
(virtual-clock rounds, no wall time), mirrored onto the tracer's ``fleet``
category when tracing is active.
"""

import math

from repro.fleet.aggregate import FleetDigest
from repro.trace.tracer import TRACER


class GuardrailVersion:
    """One immutable, versioned guardrail spec (picklable via dicts).

    ``provenance`` is an optional machine-readable record of where the
    spec came from — the autopilot attaches the observed band, sample
    count, and prior threshold it tightened from.  Hand-written versions
    carry none, and ``to_dict`` omits the key entirely then, so reports
    of pre-autopilot rollouts are byte-identical to what they always were.
    """

    __slots__ = ("name", "version", "text", "provenance")

    def __init__(self, name, version, text, provenance=None):
        self.name = name
        self.version = int(version)
        self.text = text
        self.provenance = provenance

    def to_dict(self):
        out = {"name": self.name, "version": self.version, "text": self.text}
        if self.provenance is not None:
            out["provenance"] = self.provenance
        return out

    @classmethod
    def from_dict(cls, data):
        return cls(data["name"], data["version"], data["text"],
                   provenance=data.get("provenance"))

    def __repr__(self):
        return "GuardrailVersion({} v{})".format(self.name, self.version)


class Stage:
    """One rollout stage: widen the new-version cohort to ``target_hosts``."""

    __slots__ = ("label", "target_hosts", "bake_rounds")

    def __init__(self, label, target_hosts, bake_rounds):
        self.label = label
        self.target_hosts = int(target_hosts)
        self.bake_rounds = int(bake_rounds)

    def to_dict(self):
        return {"label": self.label, "target_hosts": self.target_hosts,
                "bake_rounds": self.bake_rounds}

    def __repr__(self):
        return "Stage({} -> {} hosts)".format(self.label, self.target_hosts)


def parse_stages(text, hosts, default_bake=2):
    """Parse a stage-plan string like ``"canary:1,25%,100%"``.

    Comma-separated entries; each is ``label:size``, a bare ``P%`` (percent
    of the fleet, rounded up), or a bare host count.  Unlabelled entries use
    their size spec as the label.  Targets are cumulative cohort sizes; an
    entry whose clamped target adds no hosts over its predecessor is
    dropped (on a 4-host fleet, ``canary:1,25%,100%`` collapses to two
    stages).  A plan that never grows the cohort is a :exc:`ValueError`.
    """
    if hosts <= 0:
        raise ValueError("hosts must be positive, got {}".format(hosts))
    stages = []
    previous = 0
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            raise ValueError("empty stage entry in {!r}".format(text))
        if ":" in entry:
            label, _, size_text = entry.partition(":")
            label = label.strip()
            size_text = size_text.strip()
        else:
            label, size_text = entry, entry
        if not label or not size_text:
            raise ValueError("bad stage entry {!r}".format(entry))
        if size_text.endswith("%"):
            try:
                percent = float(size_text[:-1])
            except ValueError:
                raise ValueError("bad stage size {!r}".format(size_text))
            if not 0 < percent <= 100:
                raise ValueError(
                    "stage percent must be in (0, 100], got {!r}".format(
                        size_text))
            target = min(hosts, int(math.ceil(hosts * percent / 100.0)))
        else:
            try:
                target = int(size_text)
            except ValueError:
                raise ValueError("bad stage size {!r}".format(size_text))
            if target <= 0:
                raise ValueError(
                    "stage size must be positive, got {!r}".format(size_text))
            target = min(hosts, target)
        if target <= previous:
            continue  # adds no hosts at this fleet size
        stages.append(Stage(label, target, default_bake))
        previous = target
    if not stages:
        raise ValueError(
            "stage plan {!r} never grows the cohort on {} host(s)".format(
                text, hosts))
    return stages


class GateConfig:
    """Health-gate thresholds applied after every stage bake.

    A stage passes unless the cohort's digests degrade past one of the
    bounds relative to the pre-rollout baseline:

    - ``max_violation_rate_delta``: absolute increase in guardrail
      violations per host-second;
    - ``max_inconclusive_rate_delta``: absolute increase in *inconclusive*
      checks per host-second.  A NaN/missing signal reads as inconclusive,
      not as a violation (see ``repro.core.expr``), so a cohort whose
      telemetry went dark would sail through a violations-only gate — and a
      guardrail that cannot evaluate is not safe to enforce;
    - ``max_p95_ratio``: multiplicative increase of the merged latency P95.

    ``min_checks`` is the sample floor: with fewer guardrail checks than
    this in the cohort digest, the gate reports "insufficient data" and
    passes rather than tripping on noise.

    The defaults are **calibrated**, not hand-picked: ``grctl eval
    calibrate`` sweeps each axis over the labelled episode dataset
    (``eval/dataset.jsonl``, see ``DATASET_VERSION.md``) and reproduces
    these exact values.  The violation and inconclusive bounds sit inside
    their feasible bands (clean cohorts measure ~0 on both axes; drift and
    corrupt faults push them to 1.0 and 0.875+).  The p95 bound is the
    log-midpoint of the clean noise ceiling (a 1-host canary cohort
    against a fleet-wide baseline measures ratios up to ~10x on a clean
    fleet — a Poisson burst blows the cohort tail) and the stall-fault
    floor (~25x): the old hand-picked 1.75 sat *inside* the clean noise
    band and false-tripped roughly half of all clean 16-host rollouts.
    """

    __slots__ = ("max_violation_rate_delta", "max_inconclusive_rate_delta",
                 "max_p95_ratio", "min_checks")

    def __init__(self, max_violation_rate_delta=0.5,
                 max_inconclusive_rate_delta=0.5, max_p95_ratio=16.0,
                 min_checks=1):
        self.max_violation_rate_delta = float(max_violation_rate_delta)
        self.max_inconclusive_rate_delta = float(max_inconclusive_rate_delta)
        self.max_p95_ratio = float(max_p95_ratio)
        self.min_checks = int(min_checks)

    def to_dict(self):
        return {
            "max_violation_rate_delta": self.max_violation_rate_delta,
            "max_inconclusive_rate_delta": self.max_inconclusive_rate_delta,
            "max_p95_ratio": self.max_p95_ratio,
            "min_checks": self.min_checks,
        }

    def evaluate(self, baseline, observed):
        """Compare cohort ``observed`` against ``baseline``; both digests."""
        base_rate = baseline.violation_rate()
        obs_rate = observed.violation_rate()
        rate_delta = obs_rate - base_rate
        base_inconclusive = baseline.inconclusive_rate()
        obs_inconclusive = observed.inconclusive_rate()
        inconclusive_delta = obs_inconclusive - base_inconclusive
        base_p95 = baseline.p95_us()
        obs_p95 = observed.p95_us()
        if base_p95 and not math.isnan(base_p95) and not math.isnan(obs_p95):
            p95_ratio = obs_p95 / base_p95
        else:
            p95_ratio = None
        measurements = {
            "baseline_violation_rate": base_rate,
            "violation_rate": obs_rate,
            "violation_rate_delta": rate_delta,
            "baseline_inconclusive_rate": base_inconclusive,
            "inconclusive_rate": obs_inconclusive,
            "inconclusive_rate_delta": inconclusive_delta,
            "baseline_p95_us": _none_if_nan(base_p95),
            "p95_us": _none_if_nan(obs_p95),
            "p95_ratio": p95_ratio,
            "checks": observed.checks,
        }
        if observed.checks < self.min_checks:
            return GateResult(True, ["insufficient data ({} < {} checks)"
                                     .format(observed.checks,
                                             self.min_checks)],
                              measurements)
        reasons = []
        if rate_delta > self.max_violation_rate_delta:
            reasons.append(
                "violation rate delta {:.3f} > {:.3f}/host-s".format(
                    rate_delta, self.max_violation_rate_delta))
        if inconclusive_delta > self.max_inconclusive_rate_delta:
            reasons.append(
                "inconclusive rate delta {:.3f} > {:.3f}/host-s".format(
                    inconclusive_delta, self.max_inconclusive_rate_delta))
        if p95_ratio is not None and p95_ratio > self.max_p95_ratio:
            reasons.append("p95 ratio {:.2f} > {:.2f}".format(
                p95_ratio, self.max_p95_ratio))
        return GateResult(not reasons, reasons, measurements)


class GateResult:
    """Outcome of one gate evaluation."""

    __slots__ = ("passed", "reasons", "measurements")

    def __init__(self, passed, reasons, measurements):
        self.passed = passed
        self.reasons = reasons
        self.measurements = measurements

    def to_dict(self):
        return {"passed": self.passed, "reasons": list(self.reasons),
                "measurements": dict(self.measurements)}


class RolloutPlan:
    """The full deployment recipe: baseline bake, stages, gate bounds."""

    __slots__ = ("stages", "baseline_rounds", "gate", "settle_rounds")

    def __init__(self, stages, baseline_rounds=3, gate=None, settle_rounds=1):
        if not stages:
            raise ValueError("a rollout needs at least one stage")
        if baseline_rounds < 1:
            raise ValueError("baseline_rounds must be >= 1")
        self.stages = list(stages)
        self.baseline_rounds = int(baseline_rounds)
        self.gate = gate or GateConfig()
        self.settle_rounds = int(settle_rounds)

    def to_dict(self):
        return {
            "baseline_rounds": self.baseline_rounds,
            "settle_rounds": self.settle_rounds,
            "stages": [stage.to_dict() for stage in self.stages],
            "gate": self.gate.to_dict(),
        }


class RolloutObserver:
    """Streaming hooks into a running :class:`RolloutController`.

    The controller calls these in deterministic order as the rollout
    advances; the default implementation ignores everything, so observers
    override only what they need.  ``repro.service`` subclasses this to
    ingest each round into the results store without buffering the run.
    """

    def on_round(self, round_index, time_ns, digests):
        """Every host digest of one committed lockstep round."""

    def on_timeline(self, entry):
        """One control-plane timeline entry, as recorded."""

    def on_phase(self, phase):
        """A phase (baseline / stage bake / rollback settle) finished.

        ``phase`` carries ``kind``, ``label``, ``target_hosts``,
        ``start_round`` and ``end_round`` (half-open round interval).
        """

    def on_gate(self, stage_label, round_index, result):
        """A stage gate was evaluated at the end of ``round_index``."""


class RolloutController:
    """Drives one rollout across a :class:`~repro.fleet.worker.FleetRunner`.

    The controller only ever sees digests — never raw samples — and only
    ever speaks directives (versioned spec updates keyed by host id), so
    the same logic would hold against real hosts behind an RPC boundary.
    An optional :class:`RolloutObserver` sees every round's digests and
    every control-plane event as they happen.
    """

    def __init__(self, runner, old_version, new_version, plan, round_ns,
                 observer=None):
        self.runner = runner
        self.old_version = old_version
        self.new_version = new_version
        self.plan = plan
        self.round_ns = round_ns
        self.observer = observer or RolloutObserver()
        self.timeline = []
        self._round_index = 0

    # -- internals ----------------------------------------------------------

    def _now_ns(self):
        return self._round_index * self.round_ns

    def _record(self, event, **detail):
        entry = {"round": self._round_index,
                 "time_s": self._now_ns() / 1e9,
                 "event": event}
        entry.update(detail)
        self.timeline.append(entry)
        if TRACER.active:
            TRACER.emit("fleet", event, self._now_ns(), args=detail or None)
        self.observer.on_timeline(entry)

    def _step(self, directives=None):
        """One lockstep round; returns the per-host digests."""
        round_index = self._round_index
        until_ns = (round_index + 1) * self.round_ns
        digests = self.runner.step_round(round_index, until_ns, directives)
        self._round_index += 1
        self.observer.on_round(round_index, until_ns, digests)
        return digests

    def _bake(self, rounds, cohort_ids, directives=None):
        """Run ``rounds`` rounds, folding cohort digests into one digest."""
        cohort = FleetDigest(self.round_ns)
        for _ in range(rounds):
            for digest in self._step(directives):
                if digest.host_id in cohort_ids:
                    cohort.merge_host(digest)
            directives = None  # only the first round carries the update
        return cohort

    def _directives(self, host_ids, version):
        payload = version.to_dict()
        return {host_id: [payload] for host_id in host_ids}

    # -- the rollout --------------------------------------------------------

    def _notify_phase(self, kind, label, target_hosts, start_round):
        self.observer.on_phase({
            "kind": kind,
            "label": label,
            "target_hosts": target_hosts,
            "start_round": start_round,
            "end_round": self._round_index,
        })

    def run(self):
        """Execute the plan; returns the deterministic rollout report."""
        host_ids = list(self.runner.host_ids)
        all_ids = set(host_ids)
        self._record("baseline.start", rounds=self.plan.baseline_rounds,
                     version=self.old_version.version)
        baseline = self._bake(self.plan.baseline_rounds, all_ids)
        self._notify_phase("baseline", "baseline", len(host_ids), 0)
        self._record("baseline.done",
                     violation_rate=baseline.violation_rate(),
                     p95_us=_none_if_nan(baseline.p95_us()))

        status = "completed"
        rolled_back_at = None
        stage_reports = []
        cohort_size = 0  # hosts[:cohort_size] run the new version
        for stage in self.plan.stages:
            target = min(stage.target_hosts, len(host_ids))
            new_hosts = host_ids[cohort_size:target]
            self._record("stage.start", stage=stage.label,
                         target_hosts=target, new_hosts=len(new_hosts),
                         version=self.new_version.version)
            stage_start = self._round_index
            cohort = self._bake(
                stage.bake_rounds, set(host_ids[:target]),
                self._directives(new_hosts, self.new_version))
            cohort_size = target
            self._notify_phase("stage", stage.label, target, stage_start)
            gate = self.plan.gate.evaluate(baseline, cohort)
            self.observer.on_gate(stage.label, self._round_index, gate)
            stage_reports.append({
                "stage": stage.to_dict(),
                "digest": cohort.to_dict(),
                "gate": gate.to_dict(),
            })
            if gate.passed:
                self._record("gate.pass", stage=stage.label,
                             violation_rate=gate.measurements[
                                 "violation_rate"])
                continue
            self._record("gate.trip", stage=stage.label,
                         reasons=list(gate.reasons))
            status = "rolled_back"
            rolled_back_at = stage.label
            rollback_hosts = host_ids[:cohort_size]
            self._record("rollback.start", hosts=len(rollback_hosts),
                         version=self.old_version.version)
            rollback_start = self._round_index
            settle = self._bake(
                max(self.plan.settle_rounds, 1), all_ids,
                self._directives(rollback_hosts, self.old_version))
            self._notify_phase("rollback", stage.label, len(rollback_hosts),
                               rollback_start)
            self._record("rollback.done",
                         violation_rate=settle.violation_rate())
            stage_reports[-1]["rollback"] = {"hosts": len(rollback_hosts),
                                             "digest": settle.to_dict()}
            break
        if status == "completed":
            self._record("rollout.completed", hosts=cohort_size,
                         version=self.new_version.version)

        return {
            "status": status,
            "rolled_back_at_stage": rolled_back_at,
            "hosts": len(host_ids),
            "rounds": self._round_index,
            "round_s": self.round_ns / 1e9,
            "versions": {
                "old": self.old_version.to_dict(),
                "new": self.new_version.to_dict(),
            },
            "plan": self.plan.to_dict(),
            "baseline": baseline.to_dict(),
            "stages": stage_reports,
            "timeline": list(self.timeline),
        }


def _none_if_nan(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


__all__ = [
    "GateConfig",
    "GateResult",
    "GuardrailVersion",
    "RolloutController",
    "RolloutObserver",
    "RolloutPlan",
    "Stage",
    "parse_stages",
]

"""Sharded fleet workers: N independent simulated hosts on a process pool.

Each :class:`SimulatedHost` is a full single-kernel stack — its own
:class:`~repro.sim.engine.Engine`, feature store, monitor host, replicated
storage volume, Poisson workload, and (optionally) an armed fault plan —
seeded deterministically from its :class:`HostSpec`.  Hosts share nothing,
which is what makes sharding safe: the :class:`FleetRunner` splits them
into contiguous shards across worker processes and steps the whole fleet
in lockstep *rounds*, reusing the ``repro.bench.runner`` process
machinery (daemon workers, ``Pipe`` transport with the send-before-exit
discipline, poll-with-deadline supervision).

Per round the runner broadcasts the control plane's directives (guardrail
version updates, keyed by host id), each worker steps its hosts to the
round boundary and ships back one :class:`~repro.fleet.aggregate.HostDigest`
per host.  Digests are merged sorted by host id, so the fleet-level result
is byte-identical across ``--jobs`` values — shard assignment can never
leak into the outcome.
"""

import multiprocessing
import time
import traceback

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fleet.aggregate import HostDigest
from repro.fleet.rollout import GuardrailVersion

_POLL_S = 0.02
_WORKER_TIMEOUT_S = 300.0


class FleetError(Exception):
    """A fleet worker died or broke the step protocol."""


#: Storage pick policies a host spec may name.  ``round_robin`` is the
#: volume's registered default slot, so it installs nothing.
STORAGE_POLICIES = ("storage.shortest_queue", "storage.round_robin")


class HostSpec:
    """Deterministic recipe for one simulated host (picklable).

    ``drift_s`` schedules the Figure-2 device-regime drift on this host:
    at that virtual second every replica switches to the post-drift
    profile, so the shortest-queue stand-in's "predict fast" mapping goes
    wrong and ``false_submit_rate`` spikes — a *behavioural* failure, as
    opposed to the telemetry failures ``fault_flags`` inject.

    ``policy`` picks the storage replica-selection policy (one of
    :data:`STORAGE_POLICIES`); ``domains`` lists the policy domains the
    host composes (``"storage"`` always first — the digest's I/O sketches
    ride on it); ``workload`` is the workload token the extra domains run
    (see :mod:`repro.scenarios.domains`).  The defaults reproduce the
    original single-policy storage host exactly.
    """

    __slots__ = ("host_id", "seed", "rate_ios", "replicas", "fault_flags",
                 "fault_seed", "drift_s", "policy", "domains", "workload")

    def __init__(self, host_id, seed, rate_ios=400, replicas=3,
                 fault_flags=(), fault_seed=0, drift_s=None,
                 policy="storage.shortest_queue", domains=("storage",),
                 workload="quiet"):
        self.host_id = int(host_id)
        self.seed = int(seed)
        self.rate_ios = int(rate_ios)
        self.replicas = int(replicas)
        self.fault_flags = tuple(fault_flags)
        self.fault_seed = int(fault_seed)
        self.drift_s = None if drift_s is None else float(drift_s)
        self.policy = str(policy)
        self.domains = tuple(domains)
        self.workload = str(workload)
        if self.policy not in STORAGE_POLICIES:
            raise ValueError(
                "host {}: unknown storage policy {!r}; known: {}".format(
                    self.host_id, self.policy, ", ".join(STORAGE_POLICIES)))
        if not self.domains or self.domains[0] != "storage":
            raise ValueError(
                "host {}: domains must start with 'storage', got {!r}"
                .format(self.host_id, self.domains))
        if len(set(self.domains)) != len(self.domains):
            raise ValueError("host {}: duplicate domains {!r}"
                             .format(self.host_id, self.domains))

    def __repr__(self):
        return "HostSpec(host{}, seed={}{}{}{})".format(
            self.host_id, self.seed,
            ", faulted" if self.fault_flags else "",
            ", drift@{:g}s".format(self.drift_s)
            if self.drift_s is not None else "",
            ", domains={}".format("+".join(self.domains))
            if self.domains != ("storage",) else "")


_COUNTER_KEYS = ("checks", "violations", "actions", "inconclusive")


def _zero_counters():
    return {key: 0 for key in _COUNTER_KEYS}


class SimulatedHost:
    """One host of the fleet: kernel + workload + versioned guardrail(s).

    The base workload is the ``grctl faults`` stand-in stack (replicated
    SSD volume served through the spec's storage policy; shortest-queue
    predicts "fast" on every submit) so the Listing-2 ``false_submit_rate``
    signal exists on every host without per-host model training.  Hosts
    with extra ``spec.domains`` compose more policy subsystems — cache,
    tiered memory, congestion control, scheduling — on the same kernel via
    :func:`repro.scenarios.domains.attach_domain`, each bringing its own
    guardrail; their counters land in per-domain digest ``groups``.
    """

    def __init__(self, spec, initial_version, round_ns, total_rounds):
        from repro.bench.scenarios import (
            build_storage_kernel,
            shortest_queue_policy,
        )
        from repro.kernel.storage import PoissonWorkload

        self.spec = spec
        self.round_ns = round_ns
        kernel, devices, volume = build_storage_kernel(
            seed=spec.seed, replicas=spec.replicas)
        self.kernel = kernel
        self.volume = volume
        if spec.policy == "storage.shortest_queue":
            volume.install_policy("storage.shortest_queue",
                                  shortest_queue_policy())
        # else storage.round_robin: the volume's default slot already
        # serves round-robin, nothing to install.
        self.version = initial_version.version
        self._guardrail_name = initial_version.name
        kernel.guardrails.load(initial_version.text)
        # Monitor -> domain, so guardrail counters can be grouped per
        # policy domain on multi-policy hosts.
        self._monitor_domains = {initial_version.name: "storage"}
        self.rigs = []
        for domain in spec.domains[1:]:
            from repro.scenarios.domains import attach_domain

            rig = attach_domain(kernel, domain, workload=spec.workload,
                                duration_ns=total_rounds * round_ns)
            self.rigs.append(rig)
            for monitor in rig.monitors:
                self._monitor_domains[monitor.name] = domain
        # Counter deltas must survive GuardrailManager.update(), which
        # replaces the monitor (and zeroes its counts): retired monitors'
        # totals accumulate here, per domain.
        self._retired = {domain: _zero_counters()
                         for domain in spec.domains}
        self._last_totals = {domain: _zero_counters()
                             for domain in spec.domains}
        if spec.fault_flags:
            plan = FaultPlan.from_flags(spec.fault_flags,
                                        seed=spec.fault_seed)
            self.injector = FaultInjector(kernel, plan).install()
        else:
            self.injector = None
        if spec.drift_s is not None:
            from repro.kernel.storage import DeviceProfile
            from repro.kernel.storage.trace import schedule_profile_change
            schedule_profile_change(kernel, devices,
                                    DeviceProfile.post_drift(),
                                    int(spec.drift_s * 1e9))
        self._digest = HostDigest(spec.host_id, 0, 0, self.version,
                                  window_ns=round_ns)
        volume.complete_hook.attach(self._on_io_complete,
                                    name="fleet.digest")
        self.workload = PoissonWorkload(
            kernel, volume, [(total_rounds * round_ns, spec.rate_ios)]
        ).start()

    # -- digest plumbing ---------------------------------------------------

    def _on_io_complete(self, _hook, now, payload):
        if payload.get("used_model") and payload.get("predicted_fast") is not None:
            predicted_fast = bool(payload["predicted_fast"])
        else:
            predicted_fast = False
        self._digest.observe_io(now, payload["latency_us"],
                                bool(payload.get("false_submit")),
                                predicted_fast)

    def _totals(self):
        """Per-domain cumulative guardrail counters, retirees included."""
        totals = {domain: dict(counters)
                  for domain, counters in self._retired.items()}
        for monitor in self.kernel.guardrails.monitors():
            domain = self._monitor_domains.get(monitor.name, "storage")
            bucket = totals.setdefault(domain, _zero_counters())
            bucket["checks"] += monitor.check_count
            bucket["violations"] += monitor.violation_count
            bucket["actions"] += monitor.action_dispatch_count
            bucket["inconclusive"] += monitor.inconclusive_count
        return totals

    # -- control-plane surface ---------------------------------------------

    def apply(self, version):
        """Move this host to ``version`` via the no-reboot update path."""
        if version.version == self.version:
            return
        manager = self.kernel.guardrails
        if version.name in manager:
            retiring = manager.get(version.name)
            domain = self._monitor_domains.get(version.name, "storage")
            retired = self._retired.setdefault(domain, _zero_counters())
            retired["checks"] += retiring.check_count
            retired["violations"] += retiring.violation_count
            retired["actions"] += retiring.action_dispatch_count
            retired["inconclusive"] += retiring.inconclusive_count
            manager.update(version.text)
        else:
            manager.load(version.text)
            self._monitor_domains.setdefault(version.name, "storage")
        self.version = version.version

    def step(self, until_ns):
        self.kernel.run(until=until_ns)

    def digest(self, round_index):
        """Seal and return the round's digest; open a fresh one."""
        digest = self._digest
        digest.round_index = round_index
        digest.time_ns = self.kernel.engine.now
        digest.version = self.version
        totals = self._totals()
        deltas = {
            domain: {key: counters[key]
                     - self._last_totals.get(domain, {}).get(key, 0)
                     for key in _COUNTER_KEYS}
            for domain, counters in totals.items()
        }
        for key in _COUNTER_KEYS:
            setattr(digest, key,
                    sum(group[key] for group in deltas.values()))
        if self.spec.domains != ("storage",):
            digest.groups = deltas
        self._last_totals = totals
        self._digest = HostDigest(self.spec.host_id, round_index + 1,
                                  0, self.version, window_ns=self.round_ns)
        return digest


def columnar_fleet_check(hosts, guardrail=None, payload=None):
    """Evaluate loaded guardrail rules across many hosts column-wise.

    The fleet-scale half of the bytecode-VM lane: for each rule of each
    loaded guardrail, the rule's feature-store loads are gathered into
    float64 columns (one row per host; ``None`` loads become the NaN
    missing-data sentinel) and the compiled bytecode runs *once* via
    :func:`repro.core.expr.eval_columns` instead of once per host.

    Verdicts use the monitor's mapping — ``None`` result → inconclusive,
    falsy → violation, else ok — and per-host charged ops are returned
    alongside, bit-equal to per-host scalar evaluation (pinned by
    ``tests/fleet/test_columnar.py``).  Rules outside the columnar lane's
    numeric contract (string constants, or a host store holding a
    non-numeric value for a gathered key) fall back to per-host scalar
    bytecode execution — same verdicts and ops, ``lane`` marked
    ``"scalar"``.  Host state is never perturbed: the sweep only reads.

    Returns ``{guardrail_name: [rule_entry, ...]}`` with one
    ``{"source", "lane", "verdicts", "ops"}`` entry per rule; hosts must
    agree on each guardrail's rule sources (uniform fleet version), else
    :class:`FleetError`.
    """
    import math

    import numpy as np

    from repro.core.expr import EvalContext, eval_columns
    from repro.core.expr.vm import OP_NAME, ColumnarError, execute

    hosts = list(hosts)
    if not hosts:
        return {}
    payload = payload or {}
    n = len(hosts)
    reference = hosts[0].kernel.guardrails
    names = [guardrail] if guardrail is not None else reference.names()

    results = {}
    for name in names:
        compiled = reference.get(name).compiled
        sources = [source for source, _, _ in compiled.rules]
        for host in hosts[1:]:
            other = host.kernel.guardrails.get(name).compiled
            if [source for source, _, _ in other.rules] != sources:
                raise FleetError(
                    "host {} disagrees on guardrail {!r} rules; columnar "
                    "sweep needs a uniform fleet version".format(
                        host.spec.host_id, name))

        entries = []
        for index, source in enumerate(sources):
            program = compiled.vm_programs[index]
            free_names = sorted({arg for op, arg in program.code
                                 if op == OP_NAME})
            loads, name_columns = {}, {}
            numeric = program.columnar_safe
            if numeric:
                for key in set(program.load_keys):
                    column = np.empty(n, dtype=np.float64)
                    for row, host in enumerate(hosts):
                        value = host.kernel.store.load(key)
                        if isinstance(value, (int, float)):
                            column[row] = float(value)
                        elif value is None:
                            column[row] = math.nan
                        else:
                            numeric = False  # out of contract: go scalar
                            break
                    if not numeric:
                        break
                    loads[key] = column
            if numeric:
                for identifier in free_names:
                    column = np.empty(n, dtype=np.float64)
                    for row, host in enumerate(hosts):
                        ctx = EvalContext(host.kernel.store,
                                          now=host.kernel.engine.now,
                                          payload=payload)
                        value = ctx.resolve(identifier)
                        if isinstance(value, (int, float)):
                            column[row] = float(value)
                        elif value is None:
                            column[row] = math.nan
                        else:
                            numeric = False
                            break
                    if not numeric:
                        break
                    name_columns[identifier] = column

            if numeric:
                try:
                    values, ops = eval_columns(program, n, loads=loads,
                                               names=name_columns)
                except ColumnarError:
                    numeric = False
            if numeric:
                verdicts = [
                    "inconclusive" if math.isnan(value)
                    else ("violation" if value == 0.0 else "ok")
                    for value in values.tolist()
                ]
                entries.append({"source": source, "lane": "columnar",
                                "verdicts": verdicts,
                                "ops": ops.tolist()})
                continue

            # Scalar fallback: same bytecode, one host at a time.
            verdicts, ops = [], []
            for host in hosts:
                ctx = EvalContext(host.kernel.store,
                                  now=host.kernel.engine.now,
                                  payload=payload)
                result = execute(program.code, ctx)
                ops.append(ctx.ops)
                if result is None:
                    verdicts.append("inconclusive")
                elif not result:
                    verdicts.append("violation")
                else:
                    verdicts.append("ok")
            entries.append({"source": source, "lane": "scalar",
                            "verdicts": verdicts, "ops": ops})
        results[name] = entries
    return results


def _step_hosts(hosts, round_index, until_ns, directives):
    """Apply directives, advance, and digest one shard of hosts."""
    digests = []
    for host in hosts:
        for version_dict in directives.get(host.spec.host_id, ()):
            host.apply(GuardrailVersion.from_dict(version_dict))
        host.step(until_ns)
        digests.append(host.digest(round_index))
    return digests


def _fleet_worker(specs, initial_version_dict, round_ns, total_rounds, conn):
    """Child-process entry: own a shard of hosts for the whole run.

    Results travel over a pipe (send completes before any exit), matching
    the bench runner's transport discipline.
    """
    try:
        version = GuardrailVersion.from_dict(initial_version_dict)
        hosts = [SimulatedHost(spec, version, round_ns, total_rounds)
                 for spec in specs]
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, round_index, until_ns, directives = message
            conn.send(("digests",
                       _step_hosts(hosts, round_index, until_ns, directives)))
    except EOFError:
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _InlineShard:
    """jobs=1 lane: the same stepping code, no subprocess."""

    def __init__(self, specs, initial_version, round_ns, total_rounds):
        self.hosts = [SimulatedHost(spec, initial_version, round_ns,
                                    total_rounds) for spec in specs]
        self._digests = None

    def send_step(self, round_index, until_ns, directives):
        self._digests = _step_hosts(self.hosts, round_index, until_ns,
                                    directives)

    def collect(self):
        digests, self._digests = self._digests, None
        return digests

    def close(self):
        pass


class _ProcessShard:
    """One worker process owning a contiguous shard of hosts."""

    def __init__(self, specs, initial_version, round_ns, total_rounds):
        self.specs = specs
        self.conn, child_conn = multiprocessing.Pipe(duplex=True)
        self.process = multiprocessing.Process(
            target=_fleet_worker,
            args=(specs, initial_version.to_dict(), round_ns, total_rounds,
                  child_conn),
            daemon=True)
        self.process.start()
        child_conn.close()

    def send_step(self, round_index, until_ns, directives):
        shard_directives = {
            spec.host_id: directives[spec.host_id]
            for spec in self.specs if spec.host_id in directives
        }
        try:
            self.conn.send(("step", round_index, until_ns, shard_directives))
        except (BrokenPipeError, OSError):
            raise FleetError(
                "fleet worker for hosts {} is gone".format(
                    [s.host_id for s in self.specs]))

    def collect(self, timeout_s=_WORKER_TIMEOUT_S):
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                if self.conn.poll(_POLL_S):
                    status, payload = self.conn.recv()
                    break
            except (EOFError, OSError):
                status, payload = None, None
                break
            if not self.process.is_alive() and not self.conn.poll():
                status, payload = None, None
                break
            if time.monotonic() > deadline:
                raise FleetError("fleet worker timed out after {:.0f}s"
                                 .format(timeout_s))
        if status == "digests":
            return payload
        if status == "error":
            raise FleetError("fleet worker crashed:\n{}".format(payload))
        raise FleetError(
            "fleet worker for hosts {} exited with code {}".format(
                [s.host_id for s in self.specs], self.process.exitcode))

    def close(self):
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.process.join(5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join()


class FleetRunner:
    """Steps a fleet of simulated hosts in lockstep rounds.

    ``jobs=1`` runs every host inline (fast, debuggable); ``jobs>1``
    spawns worker processes, each owning a contiguous shard.  Digest
    order and content are independent of ``jobs``.
    """

    def __init__(self, specs, initial_version, round_ns, total_rounds,
                 jobs=1):
        specs = sorted(specs, key=lambda s: s.host_id)
        if not specs:
            raise ValueError("fleet needs at least one host")
        jobs = max(1, min(int(jobs), len(specs)))
        self.jobs = jobs
        self.host_ids = [s.host_id for s in specs]
        if jobs == 1:
            self._shards = [_InlineShard(specs, initial_version, round_ns,
                                         total_rounds)]
        else:
            # Contiguous split, remainder spread over the first shards.
            base, extra = divmod(len(specs), jobs)
            shards, start = [], 0
            for index in range(jobs):
                size = base + (1 if index < extra else 0)
                shards.append(_ProcessShard(
                    specs[start:start + size], initial_version, round_ns,
                    total_rounds))
                start += size
            self._shards = shards
        self._closed = False

    def step_round(self, round_index, until_ns, directives=None):
        """Advance every host to ``until_ns``; digests sorted by host id."""
        directives = directives or {}
        for shard in self._shards:
            shard.send_step(round_index, until_ns, directives)
        digests = []
        for shard in self._shards:
            digests.extend(shard.collect())
        return sorted(digests, key=lambda d: d.host_id)

    def close(self):
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


__all__ = [
    "FleetError",
    "FleetRunner",
    "HostSpec",
    "STORAGE_POLICIES",
    "SimulatedHost",
    "columnar_fleet_check",
]

"""Mergeable cross-host statistics: the fleet digest schema.

Hosts never ship raw samples.  Each round every host emits one
:class:`HostDigest` — flat counters (violations, actions, completed I/Os)
plus bounded metric *sketches* (a fixed-bin latency histogram, a Welford
summary, a P² tail estimator, and a false-submit :class:`RateCounter`).
Counters add; sketches ``merge()`` (exact for histogram/rate-counter
events, tolerance-bounded for P²); so the control plane folds any set of
digests — across hosts, across rounds, across cohorts — into one
:class:`FleetDigest` and checks fleet-wide properties centrally.

Digest cost is what makes fleet scale work: one digest is a few hundred
bytes of counters plus ``O(bins)`` histogram state, independent of how
many I/Os the round served.
"""

import json
import math

from repro.detect.histogram import Histogram
from repro.detect.quantiles import P2Quantile
from repro.detect.streaming import RateCounter, SummaryDigest
from repro.sim.units import SECOND

#: Latency histogram bounds, microseconds.  Wide enough that post-drift GC
#: tails land in real bins, not just overflow; 50 bins keeps the per-digest
#: payload ~400 bytes.
LATENCY_LO_US = 0.0
LATENCY_HI_US = 5000.0
LATENCY_BINS = 50

#: The tail quantile every digest tracks with a P² sketch.
TAIL_Q = 0.95


def latency_histogram():
    """A fresh latency sketch with the fleet-standard bounds."""
    return Histogram(LATENCY_LO_US, LATENCY_HI_US, LATENCY_BINS)


def merge_groups(target, source):
    """Fold per-domain counter groups into ``target``; exact addition.

    Groups are ``{domain: {counter: int}}``; missing domains/counters read
    as zero, so any two group dicts merge, whatever subset of domains each
    host ran.  Returns ``target``.
    """
    for domain, counters in source.items():
        bucket = target.setdefault(domain, {})
        for key, value in counters.items():
            bucket[key] = bucket.get(key, 0) + value
    return target


class HostDigest:
    """One host's state digest for one round.

    ``violations``/``actions``/``checks`` are per-round deltas of the
    host's guardrail-manager totals; the sketches cover only the round's
    samples, so digests from different rounds merge without double
    counting.

    ``groups`` breaks the guardrail counters down per policy domain on
    multi-policy hosts (``{domain: {counter: int}}``, exact-additive under
    every merge path).  Single-domain storage hosts leave it empty, which
    keeps their serialized rows byte-identical to the pre-multi-policy
    schema.
    """

    __slots__ = ("host_id", "round_index", "time_ns", "version",
                 "checks", "violations", "actions", "inconclusive",
                 "completed_ios", "false_submits", "model_submits",
                 "latency", "latency_summary", "latency_tail",
                 "false_submit_rate", "groups")

    def __init__(self, host_id, round_index, time_ns, version,
                 window_ns=1 * SECOND):
        self.host_id = host_id
        self.round_index = round_index
        self.time_ns = time_ns
        self.version = version
        self.checks = 0
        self.violations = 0
        self.actions = 0
        self.inconclusive = 0
        self.completed_ios = 0
        self.false_submits = 0
        self.model_submits = 0
        self.latency = latency_histogram()
        self.latency_summary = SummaryDigest()
        self.latency_tail = P2Quantile(TAIL_Q)
        self.false_submit_rate = RateCounter(window_ns)
        self.groups = {}

    def observe_io(self, time_ns, latency_us, false_submit, predicted_fast):
        """Fold one completed I/O into the round's sketches."""
        self.completed_ios += 1
        self.latency.update(latency_us)
        self.latency_summary.update(latency_us)
        self.latency_tail.update(latency_us)
        if predicted_fast:
            self.model_submits += 1
            self.false_submit_rate.observe(time_ns, false_submit)
            if false_submit:
                self.false_submits += 1

    def to_dict(self):
        """JSON-friendly, deterministic summary (sketch *values*, not state)."""
        summary = {
            "host_id": self.host_id,
            "round": self.round_index,
            "time_s": self.time_ns / SECOND,
            "version": self.version,
            "checks": self.checks,
            "violations": self.violations,
            "actions": self.actions,
            "inconclusive": self.inconclusive,
            "completed_ios": self.completed_ios,
            "false_submits": self.false_submits,
            "model_submits": self.model_submits,
            "latency": self.latency_summary.to_dict(),
            "latency_p95_us": _none_if_nan(self.latency.quantile(TAIL_Q)),
        }
        if self.groups:
            summary["groups"] = {domain: dict(counters)
                                 for domain, counters
                                 in sorted(self.groups.items())}
        return summary

    #: Flat counter columns shared by :meth:`to_row` and the results store.
    COUNTER_FIELDS = ("checks", "violations", "actions", "inconclusive",
                      "completed_ios", "false_submits", "model_submits")

    def merge_round(self, other):
        """Fold a *later round of the same host* into this digest.

        Counters add and sketches merge exactly like the cross-host
        :meth:`FleetDigest.merge_host` path; the result summarizes the
        host over both rounds.  Used by the results store's downsampling
        to fold expired raw rounds into time buckets.  Returns ``self``.
        """
        if other.host_id != self.host_id:
            raise ValueError(
                "cannot fold host {} into host {}'s digest".format(
                    other.host_id, self.host_id))
        for field in self.COUNTER_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        merge_groups(self.groups, other.groups)
        self.latency.merge(other.latency)
        self.latency_summary.merge(other.latency_summary)
        self.latency_tail.merge(other.latency_tail)
        self.false_submit_rate.merge(other.false_submit_rate)
        if other.time_ns > self.time_ns:
            self.time_ns = other.time_ns
        self.round_index = min(self.round_index, other.round_index)
        self.version = other.version
        return self

    def to_row(self):
        """Exact, store-shaped serialization: flat columns + sketch state.

        The contract is *identity*: ``from_row(to_row(d))`` reconstructs a
        digest whose every counter and every sketch bit equals ``d``'s, so
        digests merged after a trip through the results store produce the
        same fleet aggregates — byte-identical once serialized — as the
        live digests would have.  Counters land in their own columns (the
        store indexes and sums them in SQL); sketch internals travel as one
        JSON text blob.
        """
        sketches = {
            "latency": self.latency.to_json(),
            "summary": self.latency_summary.to_json(),
            "tail": self.latency_tail.to_json(),
            "false_submit_rate": self.false_submit_rate.to_json(),
        }
        if self.groups:
            # Multi-policy hosts only: absent on legacy digests so their
            # rows stay byte-identical to the pre-groups schema.
            sketches["groups"] = self.groups
        row = {
            "host_id": self.host_id,
            "round_index": self.round_index,
            "time_ns": self.time_ns,
            "version": self.version,
            "sketches": json.dumps(sketches, sort_keys=True),
        }
        for field in self.COUNTER_FIELDS:
            row[field] = getattr(self, field)
        return row

    @classmethod
    def from_row(cls, row):
        """Inverse of :meth:`to_row`; exact by construction."""
        sketches = json.loads(row["sketches"])
        digest = cls(row["host_id"], row["round_index"], row["time_ns"],
                     row["version"],
                     window_ns=sketches["false_submit_rate"]["window"])
        for field in cls.COUNTER_FIELDS:
            setattr(digest, field, row[field])
        digest.latency = Histogram.from_json(sketches["latency"])
        digest.latency_summary = SummaryDigest.from_json(sketches["summary"])
        digest.latency_tail = P2Quantile.from_json(sketches["tail"])
        digest.false_submit_rate = RateCounter.from_json(
            sketches["false_submit_rate"])
        digest.groups = sketches.get("groups", {})
        return digest


class FleetDigest:
    """The merge of any set of host digests.

    Tracks which (host, round) cells were folded in so rate denominators
    (host-seconds) stay correct whether digests arrive per host, per round,
    or already partially merged.
    """

    def __init__(self, round_ns=1 * SECOND):
        self.round_ns = round_ns
        self.hosts = set()
        self.host_rounds = 0
        self.checks = 0
        self.violations = 0
        self.actions = 0
        self.inconclusive = 0
        self.completed_ios = 0
        self.false_submits = 0
        self.model_submits = 0
        self.latency = latency_histogram()
        self.latency_summary = SummaryDigest()
        self.latency_tail = P2Quantile(TAIL_Q)
        self.false_submit_rate = RateCounter(round_ns)
        self.groups = {}
        self.last_time_ns = 0

    def merge_host(self, digest, rounds=1):
        """Fold one :class:`HostDigest` in; returns ``self``.

        ``rounds`` is the number of lockstep rounds the digest summarizes —
        1 for a live per-round digest, more for a downsampled time bucket —
        so host-second rate denominators stay correct either way.
        """
        self.hosts.add(digest.host_id)
        self.host_rounds += rounds
        self.checks += digest.checks
        self.violations += digest.violations
        self.actions += digest.actions
        self.inconclusive += digest.inconclusive
        self.completed_ios += digest.completed_ios
        self.false_submits += digest.false_submits
        self.model_submits += digest.model_submits
        merge_groups(self.groups, digest.groups)
        self.latency.merge(digest.latency)
        self.latency_summary.merge(digest.latency_summary)
        self.latency_tail.merge(digest.latency_tail)
        self.false_submit_rate.merge(digest.false_submit_rate)
        if digest.time_ns > self.last_time_ns:
            self.last_time_ns = digest.time_ns
        return self

    def merge(self, other):
        """Fold another :class:`FleetDigest` in; returns ``self``."""
        if other.round_ns != self.round_ns:
            raise ValueError(
                "cannot merge FleetDigest(round_ns={}) with round_ns={}"
                .format(self.round_ns, other.round_ns))
        self.hosts |= other.hosts
        self.host_rounds += other.host_rounds
        self.checks += other.checks
        self.violations += other.violations
        self.actions += other.actions
        self.inconclusive += other.inconclusive
        self.completed_ios += other.completed_ios
        self.false_submits += other.false_submits
        self.model_submits += other.model_submits
        merge_groups(self.groups, other.groups)
        self.latency.merge(other.latency)
        self.latency_summary.merge(other.latency_summary)
        self.latency_tail.merge(other.latency_tail)
        self.false_submit_rate.merge(other.false_submit_rate)
        if other.last_time_ns > self.last_time_ns:
            self.last_time_ns = other.last_time_ns
        return self

    # -- fleet-wide properties --------------------------------------------

    def host_seconds(self):
        return self.host_rounds * (self.round_ns / SECOND)

    def violation_rate(self):
        """Guardrail violations per host-second (0.0 when empty)."""
        denominator = self.host_seconds()
        if denominator <= 0:
            return 0.0
        return self.violations / denominator

    def inconclusive_rate(self):
        """Inconclusive checks per host-second (0.0 when empty).

        NaN/missing signals read as inconclusive rather than violating, so
        this is the "guardrail has gone blind" health axis.
        """
        denominator = self.host_seconds()
        if denominator <= 0:
            return 0.0
        return self.inconclusive / denominator

    def p95_us(self):
        """Fleet-wide 95th-percentile latency from the merged histogram."""
        return self.latency.quantile(TAIL_Q)

    def mean_latency_us(self):
        return self.latency_summary.mean

    def false_submit_fraction(self):
        if self.model_submits == 0:
            return 0.0
        return self.false_submits / self.model_submits

    def to_dict(self):
        summary = {
            "hosts": len(self.hosts),
            "host_rounds": self.host_rounds,
            "checks": self.checks,
            "violations": self.violations,
            "actions": self.actions,
            "inconclusive": self.inconclusive,
            "completed_ios": self.completed_ios,
            "false_submits": self.false_submits,
            "model_submits": self.model_submits,
            "violation_rate": self.violation_rate(),
            "inconclusive_rate": self.inconclusive_rate(),
            "false_submit_fraction": self.false_submit_fraction(),
            "latency": self.latency_summary.to_dict(),
            "latency_p95_us": _none_if_nan(self.p95_us()),
            "latency_p95_p2_us": _none_if_nan(self.latency_tail.value),
        }
        if self.groups:
            summary["groups"] = {domain: dict(counters)
                                 for domain, counters
                                 in sorted(self.groups.items())}
        return summary


def _none_if_nan(value):
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


__all__ = [
    "FleetDigest",
    "HostDigest",
    "LATENCY_BINS",
    "LATENCY_HI_US",
    "LATENCY_LO_US",
    "TAIL_Q",
    "latency_histogram",
    "merge_groups",
]

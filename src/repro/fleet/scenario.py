"""The canonical fleet experiment: Listing 2 rolled out across a fleet.

Every host runs the Figure-2 storage stack (replicated pre-drift SSD
volume, shortest-queue stand-in policy that predicts "fast" on every
submit, Poisson read workload).  The rollout moves the fleet's
``low-false-submit`` guardrail from a report-only v1 to the enforcing v2
below through a staged plan with health gates.

Thresholds follow the §3.3 "thresholds require system knowledge" story:
the stand-in policy false-submits at the volume's stationary slow fraction
(~9% pre-drift), so v2 enforces at 0.2 — quiet on a healthy host, loud on
a broken one.  The faulted cohort carries a ``corrupt@false_submit_rate``
fault: the signal reads as NaN, which the rule runtime treats as *missing
data*, so every check on a faulted host comes back inconclusive instead
of violating.  That is exactly the hazard the gate's inconclusive-rate
axis exists for — a guardrail that cannot evaluate on the canary cohort
(~1 inconclusive/host-second against a ~0 baseline) is not safe to
enforce, so the rollout halts and rolls back.
"""

from repro.fleet.rollout import (
    GateConfig,
    GuardrailVersion,
    RolloutController,
    RolloutPlan,
    parse_stages,
)
from repro.fleet.worker import FleetRunner, HostSpec
from repro.sim.units import SECOND

GUARDRAIL_NAME = "low-false-submit"

#: v1 — observation mode: a loose bound, report-only.
FLEET_SPEC_V1 = """
guardrail low-false-submit {
  // v1: observe-only.  The bound is loose; violations just file reports.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.5 },
  action: { REPORT() }
}
"""

#: v2 — enforcement: the Listing-2 action at the fleet threshold.
FLEET_SPEC_V2 = """
guardrail low-false-submit {
  // v2: enforce.  0.2 clears the ~9% stationary false-submit floor of the
  // stand-in policy but catches a corrupted/broken signal immediately.
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.2 },
  action: {
    SAVE(ml_enabled, false),
    REPORT()
  }
}
"""


def fleet_versions():
    """The (old, new) guardrail versions the canonical rollout moves between."""
    return (GuardrailVersion(GUARDRAIL_NAME, 1, FLEET_SPEC_V1),
            GuardrailVersion(GUARDRAIL_NAME, 2, FLEET_SPEC_V2))


#: How the faulted cohort misbehaves, one kind per gate axis:
#: ``corrupt`` blinds the guardrail signal (NaN telemetry -> inconclusive
#: checks), ``drift`` switches the device regime so the stand-in policy
#: genuinely false-submits (violations), ``stall`` adds inference latency
#: to every pick (tail-latency blowup).
FLEET_FAULT_KINDS = ("corrupt", "drift", "stall")

#: Stall magnitude: with an ~130us clean p95, an 8ms decision stall pushes
#: the cohort p95 to the digest histogram cap — unambiguously past any
#: calibrated ratio threshold.
_STALL_LATENCY_US = 8000


def make_fleet_specs(hosts, seed, rate_ios, fault_hosts=0, fault_start_s=0,
                     fault_kind="corrupt"):
    """Deterministic per-host specs; hosts ``0..fault_hosts-1`` are faulted.

    Stage cohorts fill from host id 0 upward, so faulted hosts land in the
    canary cohort and the rollout's first gate sees them.  The fault starts
    at ``fault_start_s`` (normally the baseline boundary) so the pre-rollout
    baseline stays clean.  ``fault_kind`` picks the failure mode (see
    :data:`FLEET_FAULT_KINDS`).
    """
    if fault_kind not in FLEET_FAULT_KINDS:
        raise ValueError("unknown fleet fault kind {!r}; known: {}".format(
            fault_kind, ", ".join(FLEET_FAULT_KINDS)))
    specs = []
    for host_id in range(hosts):
        flags = ()
        drift_s = None
        if host_id < fault_hosts:
            if fault_kind == "corrupt":
                flags = ("corrupt@false_submit_rate:start={}".format(
                    int(fault_start_s)),)
            elif fault_kind == "stall":
                flags = ("stall@storage.pick_device:start={},latency_us={}"
                         .format(int(fault_start_s), _STALL_LATENCY_US),)
            else:  # drift
                drift_s = fault_start_s
        specs.append(HostSpec(
            host_id,
            # Distinct, seed-derived stream per host: reruns match exactly,
            # neighbouring hosts decorrelate.
            seed=seed * 10_000 + host_id * 101 + 7,
            rate_ios=rate_ios,
            fault_flags=flags,
            fault_seed=seed + host_id,
            drift_s=drift_s,
        ))
    return specs


class FleetScenario:
    """Everything needed to run (or re-run) one canonical rollout.

    Built by :func:`build_fleet_rollout` from the scenario knobs alone, so
    a run and its later regeneration from a results store construct
    identical plans, specs, and versions — the determinism the service's
    byte-identity contract rests on.
    """

    __slots__ = ("specs", "plan", "old_version", "new_version",
                 "total_rounds", "scenario")

    def __init__(self, specs, plan, old_version, new_version, total_rounds,
                 scenario):
        self.specs = specs
        self.plan = plan
        self.old_version = old_version
        self.new_version = new_version
        self.total_rounds = total_rounds
        self.scenario = scenario


def build_fleet_rollout(hosts=8, stages="canary:1,25%,100%", seed=42,
                        fault_hosts=0, quick=False, fault_kind="corrupt",
                        gate=None, versions=None):
    """Construct the canonical rollout scenario without running it.

    ``gate=None`` deploys behind the calibrated :class:`GateConfig`
    defaults; passing a config overrides them (``repro.eval`` uses a
    permissive gate here to record every stage's measurements).
    ``versions`` overrides the ``(old, new)`` :class:`GuardrailVersion`
    pair — the autopilot deploys its own proposed specs through the same
    workload, stages, and gates the canonical rollout uses.
    """
    if hosts < 1:
        raise ValueError("hosts must be >= 1, got {}".format(hosts))
    if quick:
        rate_ios, baseline_rounds, bake_rounds = 250, 2, 1
    else:
        rate_ios, baseline_rounds, bake_rounds = 500, 3, 2
    stage_list = parse_stages(stages, hosts, default_bake=bake_rounds)
    plan = RolloutPlan(stage_list, baseline_rounds=baseline_rounds,
                       gate=gate or GateConfig(), settle_rounds=1)
    total_rounds = (plan.baseline_rounds
                    + sum(stage.bake_rounds for stage in plan.stages)
                    + plan.settle_rounds)
    old_version, new_version = versions if versions else fleet_versions()
    specs = make_fleet_specs(hosts, seed, rate_ios,
                             fault_hosts=fault_hosts,
                             fault_start_s=plan.baseline_rounds,
                             fault_kind=fault_kind)
    scenario = {
        "hosts": hosts,
        "stages": stages,
        "seed": seed,
        "fault_hosts": fault_hosts,
        "fault_kind": fault_kind,
        "rate_ios": rate_ios,
        "quick": bool(quick),
    }
    return FleetScenario(specs, plan, old_version, new_version, total_rounds,
                         scenario)


def run_fleet_rollout(hosts=8, stages="canary:1,25%,100%", seed=42, jobs=1,
                      fault_hosts=0, quick=False, fault_kind="corrupt",
                      gate=None, observer=None, versions=None):
    """Run the canonical staged rollout; returns the rollout report dict.

    The report is deterministic for ``(hosts, stages, seed, fault_hosts,
    fault_kind, quick, gate)`` — it contains no wall-clock time and no
    ``jobs`` field, so the same run sharded differently is byte-identical
    once serialised.
    """
    built = build_fleet_rollout(hosts=hosts, stages=stages, seed=seed,
                                fault_hosts=fault_hosts, quick=quick,
                                fault_kind=fault_kind, gate=gate,
                                versions=versions)
    with FleetRunner(built.specs, built.old_version, SECOND,
                     built.total_rounds, jobs=jobs) as runner:
        controller = RolloutController(runner, built.old_version,
                                       built.new_version, built.plan, SECOND,
                                       observer=observer)
        report = controller.run()
    report["scenario"] = built.scenario
    return report


__all__ = [
    "FLEET_FAULT_KINDS",
    "FLEET_SPEC_V1",
    "FLEET_SPEC_V2",
    "FleetScenario",
    "GUARDRAIL_NAME",
    "build_fleet_rollout",
    "fleet_versions",
    "make_fleet_specs",
    "run_fleet_rollout",
]

"""Property templates P1–P6 (Figure 1, left table).

Each template expands to guardrail DSL text, ready for
``GuardrailManager.load``.  Templates encode the paper's taxonomy:

========  ========================  =========================================
Property  Template                  Default action (Figure 1 pairing)
========  ========================  =========================================
P1        :func:`in_distribution`   REPORT (early warning) + RETRAIN
P2        :func:`robustness`        RETRAIN
P3        :func:`output_bounds`     REPLACE with the fallback
P4        :func:`decision_quality`  REPLACE with the fallback
P5        :func:`decision_overhead` REPLACE with the fallback
P6        :func:`fairness_liveness` DEPRIORITIZE (or REPLACE)
========  ========================  =========================================

Templates emit plain DSL so the generated guardrail is inspectable,
version-controllable, and passes through the same parser/verifier path as a
hand-written one.
"""

from repro.core.properties.templates import (
    decision_overhead,
    decision_quality,
    fairness_liveness,
    in_distribution,
    output_bounds,
    robustness,
)

__all__ = [
    "decision_overhead",
    "decision_quality",
    "fairness_liveness",
    "in_distribution",
    "output_bounds",
    "robustness",
]

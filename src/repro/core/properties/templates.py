"""DSL generators for the P1–P6 property taxonomy."""

from repro.sim.units import SECOND


def _format_actions(actions):
    return ",\n    ".join(actions)


def _guardrail(name, triggers, rules, actions):
    return (
        "guardrail {name} {{\n"
        "  trigger: {{\n    {triggers}\n  }},\n"
        "  rule: {{\n    {rules}\n  }},\n"
        "  action: {{\n    {actions}\n  }}\n"
        "}}\n"
    ).format(
        name=name,
        triggers=",\n    ".join(triggers),
        rules=",\n    ".join(rules),
        actions=_format_actions(actions),
    )


def in_distribution(policy, psi_threshold=0.25, oor_threshold=0.05,
                    interval=1 * SECOND, actions=None, model=None):
    """P1 — model inputs must stay in the training distribution.

    Watches the drift keys an instrumented policy publishes
    (``<policy>.input_psi_max`` / ``input_oor_max``).  Default actions:
    REPORT the offending window, and queue a RETRAIN of ``model`` (defaults
    to the policy name) — "prolonged sequences of out-of-distribution data
    ... require retraining".
    """
    model = model or policy
    if actions is None:
        actions = [
            "REPORT(LOAD({p}.input_psi_max), LOAD({p}.input_oor_max))".format(p=policy),
            "RETRAIN({m})".format(m=model),
        ]
    return _guardrail(
        "{}-in-distribution".format(policy),
        ["TIMER(start_time, {})".format(interval)],
        [
            "LOAD({p}.input_psi_max) <= {t}".format(p=policy, t=psi_threshold),
            "LOAD({p}.input_oor_max) <= {t}".format(p=policy, t=oor_threshold),
        ],
        actions,
    )


def robustness(policy, sensitivity_threshold, interval=1 * SECOND,
               actions=None, model=None):
    """P2 — similar inputs must yield similar outputs.

    Watches ``<policy>.output_sensitivity`` (EWMA of the output swing under
    small input perturbations, published by the SensitivityProbe).  Default
    action: RETRAIN, per Figure 1's pairing for noise sensitivity.
    """
    model = model or policy
    if actions is None:
        actions = [
            "REPORT(LOAD({p}.output_sensitivity))".format(p=policy),
            "RETRAIN({m})".format(m=model),
        ]
    return _guardrail(
        "{}-robustness".format(policy),
        ["TIMER(start_time, {})".format(interval)],
        ["LOAD({p}.output_sensitivity) <= {t}".format(
            p=policy, t=sensitivity_threshold)],
        actions,
    )


def output_bounds(name, hook, rule, fallback_slot, fallback_impl,
                  actions=None):
    """P3 — outputs must be within legal bounds, checked at the source.

    ``hook`` is the kernel function whose payload carries the decision
    (e.g. ``mm.alloc`` with ``granted``/``available``); ``rule`` is the
    bound over those payload names (e.g. ``granted <= available``).
    Default action: REPLACE the policy with its fallback — Figure 1 pairs
    out-of-bound decisions with disabling the learned policy.
    """
    if actions is None:
        actions = [
            "REPORT()",
            "REPLACE({}, {})".format(fallback_slot, fallback_impl),
        ]
    return _guardrail(
        "{}-output-bounds".format(name),
        ["FUNCTION({})".format(hook)],
        [rule],
        actions,
    )


def decision_quality(name, metric_key, baseline_key, margin=0.0,
                     interval=1 * SECOND, fallback_slot=None,
                     fallback_impl=None, actions=None):
    """P4 — decisions must beat the baseline.

    Rule: ``LOAD(metric) >= LOAD(baseline) - margin`` (e.g. the learned
    cache's hit rate against the shadow random cache's).  Default action:
    REPLACE with the fallback when one is given, else REPORT.
    """
    if actions is None:
        actions = ["REPORT(LOAD({}), LOAD({}))".format(metric_key, baseline_key)]
        if fallback_slot and fallback_impl:
            actions.append("REPLACE({}, {})".format(fallback_slot, fallback_impl))
    rule = "LOAD({m}) >= LOAD({b}) - {g}".format(
        m=metric_key, b=baseline_key, g=margin
    )
    return _guardrail(
        "{}-decision-quality".format(name),
        ["TIMER(start_time, {})".format(interval)],
        [rule],
        actions,
    )


def decision_overhead(policy, interval=1 * SECOND, fallback_slot=None,
                      fallback_impl=None, actions=None, windowed=False):
    """P5 — inference cost must be offset by measured gains.

    Rule: ``LOAD(<policy>.net_benefit) >= 0`` over the InferenceMeter's
    ledger; with ``windowed=True`` the rule watches
    ``<policy>.net_benefit_window`` instead, so a regression cannot hide
    behind previously banked gains.  Default action: REPLACE with the
    fallback when given (running a model that costs more than it saves is
    strictly worse than the heuristic), else REPORT.
    """
    if actions is None:
        actions = ["REPORT(LOAD({p}.inference_ns), LOAD({p}.gain_ns))".format(p=policy)]
        if fallback_slot and fallback_impl:
            actions.append("REPLACE({}, {})".format(fallback_slot, fallback_impl))
    key = "net_benefit_window" if windowed else "net_benefit"
    return _guardrail(
        "{}-decision-overhead".format(policy),
        ["TIMER(start_time, {})".format(interval)],
        ["LOAD({p}.{k}) >= 0".format(p=policy, k=key)],
        actions,
    )


def fairness_liveness(name="sched", max_wait_ms=100.0,
                      interval=100_000_000, actions=None,
                      fallback_slot="sched.pick_next",
                      fallback_impl="sched.cfs"):
    """P6 — system-level fairness/liveness.

    The paper's running example: "No ready task should be starved for more
    than 100 ms", over the scheduler's published ``sched.max_wait_ms``.
    Default action: REPLACE the picker with the CFS baseline.
    """
    if actions is None:
        actions = [
            "REPORT(LOAD(sched.max_wait_ms))",
            "REPLACE({}, {})".format(fallback_slot, fallback_impl),
        ]
    return _guardrail(
        "{}-fairness-liveness".format(name),
        ["TIMER(start_time, {})".format(interval)],
        ["LOAD(sched.max_wait_ms) <= {}".format(max_wait_ms)],
        actions,
    )

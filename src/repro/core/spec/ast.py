"""AST node types for the guardrail DSL.

Nodes are plain, immutable-by-convention data holders.  Every node can
render itself back to DSL syntax (``to_source``) so specs round-trip, which
the tests use to check grammar coverage.
"""


class Node:
    def to_source(self):
        raise NotImplementedError

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.to_source())

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash((type(self).__name__, self.to_source()))


# -- expressions -----------------------------------------------------------


class NumberLiteral(Node):
    def __init__(self, value):
        self.value = value

    def to_source(self):
        return repr(self.value)


class BoolLiteral(Node):
    def __init__(self, value):
        self.value = bool(value)

    def to_source(self):
        return "true" if self.value else "false"


class StringLiteral(Node):
    def __init__(self, value):
        self.value = value

    def to_source(self):
        return '"{}"'.format(self.value.replace("\\", "\\\\").replace('"', '\\"'))


class Name(Node):
    """A free identifier, resolved against the compile environment."""

    def __init__(self, identifier):
        self.identifier = identifier

    def to_source(self):
        return self.identifier


class Load(Node):
    """``LOAD(key)`` — read from the global feature store."""

    def __init__(self, key):
        self.key = key

    def to_source(self):
        return "LOAD({})".format(self.key)


class Aggregate(Node):
    """A declarative streaming aggregate over a feature-store key.

    ``AVG(key, window)`` — time-windowed mean of saves ("the average
    page-fault latency over every 10 seconds");
    ``RATE(key, window)`` — fraction of truthy saves within the window;
    ``EWMA(key, alpha)`` — exponentially weighted moving average;
    ``P50/P95/P99(key)`` — streaming quantiles (whole-run, P² estimator).

    The compiler lowers an aggregate to a LOAD of a canonically-named
    derived key and arranges for that key to be registered when the monitor
    is loaded — the guardrail author never touches the store API.
    """

    WINDOWED = {"AVG", "RATE"}
    ALPHA = {"EWMA"}
    PLAIN = {"P50", "P95", "P99"}
    FUNCTIONS = WINDOWED | ALPHA | PLAIN

    def __init__(self, function, key, arg=None):
        if function not in self.FUNCTIONS:
            raise ValueError("unknown aggregate {!r}".format(function))
        self.function = function
        self.key = key
        self.arg = arg  # window ns (AVG/RATE), alpha (EWMA), None (P*)

    def derived_name(self):
        """The canonical feature-store key this aggregate lowers to.

        The name encodes the function and parameters, so two guardrails
        using the same aggregate share one estimator.
        """
        if self.function in self.WINDOWED:
            return "{}.{}{}".format(self.key, self.function.lower(),
                                    int(self.arg))
        if self.function in self.ALPHA:
            return "{}.ewma{}".format(
                self.key, str(float(self.arg)).replace(".", "_"))
        return "{}.{}".format(self.key, self.function.lower())

    def to_source(self):
        if self.arg is None:
            return "{}({})".format(self.function, self.key)
        return "{}({}, {!r})".format(self.function, self.key, self.arg)


class Call(Node):
    """Builtin call such as ``abs(x)`` / ``min(a, b)`` / ``max(a, b)``."""

    def __init__(self, function, args):
        self.function = function
        self.args = list(args)

    def to_source(self):
        return "{}({})".format(
            self.function, ", ".join(a.to_source() for a in self.args)
        )


class UnaryOp(Node):
    def __init__(self, op, operand):
        self.op = op  # '-' or '!'
        self.operand = operand

    def to_source(self):
        # '!' must be parenthesized as a whole: printed bare, `!(x) + 1`
        # would reparse as `!((x) + 1)` because logical-not binds looser
        # than arithmetic.
        if self.op == "!":
            return "(!({}))".format(self.operand.to_source())
        return "{}({})".format(self.op, self.operand.to_source())


class BinaryOp(Node):
    def __init__(self, op, left, right):
        self.op = op  # + - * / < <= > >= == != && ||
        self.left = left
        self.right = right

    def to_source(self):
        return "({} {} {})".format(
            self.left.to_source(), self.op, self.right.to_source()
        )


# -- triggers ----------------------------------------------------------------


class TimerTriggerSpec(Node):
    """``TIMER(start, interval[, stop])``; times in nanoseconds.

    ``start`` may be the symbolic name ``start_time`` (= when the monitor is
    loaded); ``stop`` defaults to "never".
    """

    def __init__(self, start, interval, stop=None):
        self.start = start
        self.interval = interval
        self.stop = stop

    def to_source(self):
        parts = [self.start.to_source(), self.interval.to_source()]
        if self.stop is not None:
            parts.append(self.stop.to_source())
        return "TIMER({})".format(", ".join(parts))


class FunctionTriggerSpec(Node):
    """``FUNCTION(hook_name)`` — check on every call of a kernel function."""

    def __init__(self, function_name):
        self.function_name = function_name

    def to_source(self):
        return "FUNCTION({})".format(self.function_name)


# -- rules -------------------------------------------------------------------


class RuleSpec(Node):
    """A boolean expression that must hold whenever the trigger fires."""

    def __init__(self, expression):
        self.expression = expression

    def to_source(self):
        return self.expression.to_source()


# -- actions -----------------------------------------------------------------


class ActionSpec(Node):
    kind = "action"


class ReportSpec(ActionSpec):
    """``REPORT(args...)`` — A1: log violation context for offline analysis."""

    kind = "REPORT"

    def __init__(self, args=()):
        self.args = list(args)

    def to_source(self):
        return "REPORT({})".format(", ".join(a.to_source() for a in self.args))


class ReplaceSpec(ActionSpec):
    """``REPLACE(old, new)`` — A2: swap the policy for a known-safe fallback."""

    kind = "REPLACE"

    def __init__(self, old_function, new_function):
        self.old_function = old_function
        self.new_function = new_function

    def to_source(self):
        return "REPLACE({}, {})".format(self.old_function, self.new_function)


class RetrainSpec(ActionSpec):
    """``RETRAIN(model[, input])`` — A3: queue asynchronous retraining."""

    kind = "RETRAIN"

    def __init__(self, model, input_expr=None):
        self.model = model
        self.input_expr = input_expr

    def to_source(self):
        if self.input_expr is None:
            return "RETRAIN({})".format(self.model)
        return "RETRAIN({}, {})".format(self.model, self.input_expr.to_source())


class DeprioritizeSpec(ActionSpec):
    """``DEPRIORITIZE({targets}, {priorities})`` — A4: adjust the workload."""

    kind = "DEPRIORITIZE"

    def __init__(self, targets, priorities):
        self.targets = list(targets)
        self.priorities = list(priorities)

    def to_source(self):
        return "DEPRIORITIZE({{{}}}, {{{}}})".format(
            ", ".join(self.targets),
            ", ".join(p.to_source() for p in self.priorities),
        )


class SaveSpec(ActionSpec):
    """``SAVE(key, expr)`` — write to the feature store (Listing 2 idiom)."""

    kind = "SAVE"

    def __init__(self, key, expression):
        self.key = key
        self.expression = expression

    def to_source(self):
        return "SAVE({}, {})".format(self.key, self.expression.to_source())


# -- top level ----------------------------------------------------------------


class GuardrailSpec(Node):
    """A parsed ``guardrail name { trigger ... rule ... action ... }`` block."""

    def __init__(self, name, triggers, rules, actions):
        self.name = name
        self.triggers = list(triggers)
        self.rules = list(rules)
        self.actions = list(actions)

    def to_source(self):
        lines = ["guardrail {} {{".format(self.name)]
        lines.append("  trigger: {")
        lines.append(
            ",\n".join("    " + t.to_source() for t in self.triggers)
        )
        lines.append("  },")
        lines.append("  rule: {")
        lines.append(",\n".join("    " + r.to_source() for r in self.rules))
        lines.append("  },")
        lines.append("  action: {")
        lines.append(",\n".join("    " + a.to_source() for a in self.actions))
        lines.append("  }")
        lines.append("}")
        return "\n".join(lines)

"""Semantic validation of parsed guardrail specs.

The parser guarantees shape; the validator enforces the constraints of the
Listing 1 grammar that are not purely syntactic:

- a guardrail has at least one trigger, one rule, and one action
  (``<Property> ::= (<Trigger>)+ (<Rule>)+`` and ``(<Action>)+``);
- TIMER intervals are positive constants and stop > start when both given;
- rules are boolean-valued expressions (top level is a comparison, boolean
  literal, logical connective, or a LOAD of a presumed-boolean key);
- DEPRIORITIZE target and priority lists have matching lengths.
"""

from repro.core.errors import SpecError
from repro.core.spec import ast as A


def validate_spec(spec):
    """Raise :class:`SpecError` when ``spec`` violates grammar semantics."""
    if not spec.triggers:
        raise SpecError("guardrail {!r} has no triggers (need at least one)".format(spec.name))
    if not spec.rules:
        raise SpecError("guardrail {!r} has no rules (need at least one)".format(spec.name))
    if not spec.actions:
        raise SpecError("guardrail {!r} has no actions (need at least one)".format(spec.name))
    for trigger in spec.triggers:
        _validate_trigger(spec.name, trigger)
    for rule in spec.rules:
        _validate_rule(spec.name, rule)
    for action in spec.actions:
        _validate_action(spec.name, action)
    return spec


def _validate_trigger(name, trigger):
    if isinstance(trigger, A.TimerTriggerSpec):
        interval = _constant_value(trigger.interval)
        if interval is not None and interval <= 0:
            raise SpecError(
                "guardrail {!r}: TIMER interval must be positive, got {}".format(
                    name, interval
                )
            )
        start = _constant_value(trigger.start)
        stop = _constant_value(trigger.stop) if trigger.stop is not None else None
        if start is not None and start < 0:
            raise SpecError(
                "guardrail {!r}: TIMER start must be >= 0, got {}".format(name, start)
            )
        if start is not None and stop is not None and stop <= start:
            raise SpecError(
                "guardrail {!r}: TIMER stop ({}) must be after start ({})".format(
                    name, stop, start
                )
            )
    elif isinstance(trigger, A.FunctionTriggerSpec):
        if not trigger.function_name:
            raise SpecError("guardrail {!r}: FUNCTION trigger needs a name".format(name))
    else:
        raise SpecError("guardrail {!r}: unknown trigger {!r}".format(name, trigger))


def _validate_rule(name, rule):
    expr = rule.expression
    if not _is_boolean_expression(expr):
        raise SpecError(
            "guardrail {!r}: rule {!r} is not boolean-valued "
            "(expected a comparison or logical expression)".format(
                name, expr.to_source()
            )
        )


_BOOLEAN_OPS = {"<", "<=", ">", ">=", "==", "!=", "&&", "||"}


def _is_boolean_expression(expr):
    if isinstance(expr, A.BoolLiteral):
        return True
    if isinstance(expr, A.BinaryOp):
        return expr.op in _BOOLEAN_OPS
    if isinstance(expr, A.UnaryOp):
        return expr.op == "!"
    if isinstance(expr, (A.Load, A.Name)):
        # A bare LOAD(flag) / name is allowed as "is truthy".
        return True
    return False


def _validate_action(name, action):
    if isinstance(action, A.DeprioritizeSpec):
        if not action.targets:
            raise SpecError(
                "guardrail {!r}: DEPRIORITIZE needs at least one target".format(name)
            )
        if len(action.targets) != len(action.priorities):
            raise SpecError(
                "guardrail {!r}: DEPRIORITIZE has {} targets but {} priorities".format(
                    name, len(action.targets), len(action.priorities)
                )
            )
    elif isinstance(action, A.ReplaceSpec):
        if action.old_function == action.new_function:
            raise SpecError(
                "guardrail {!r}: REPLACE target and fallback are both {!r}".format(
                    name, action.old_function
                )
            )
    elif not isinstance(
        action, (A.ReportSpec, A.RetrainSpec, A.SaveSpec)
    ):
        raise SpecError("guardrail {!r}: unknown action {!r}".format(name, action))


def _constant_value(expr):
    """Value of a constant expression, or None when it is not constant."""
    if expr is None:
        return None
    if isinstance(expr, A.NumberLiteral):
        return expr.value
    if isinstance(expr, A.UnaryOp) and expr.op == "-":
        inner = _constant_value(expr.operand)
        return None if inner is None else -inner
    return None

"""The guardrail specification DSL (Listing 1 of the paper).

Grammar, extended with the concrete syntax of Listing 2::

    <Guardrail> ::= "guardrail" <name> "{"
                        "trigger:" "{" <Trigger> ("," <Trigger>)* "}" ","
                        "rule:"    "{" <Rule>    ("," <Rule>)*    "}" ","
                        "action:"  "{" <Action>  ("," <Action>)*  "}"
                    "}"
    <Trigger>   ::= TIMER "(" <expr> "," <expr> ["," <expr>] ")"
                  | FUNCTION "(" <identifier> ")"
    <Rule>      ::= <expr>                      -- must hold; violation otherwise
    <Action>    ::= REPORT "(" [<expr-list>] ")"
                  | REPLACE "(" <identifier> "," <identifier> ")"
                  | RETRAIN "(" <identifier> ["," <expr>] ")"
                  | DEPRIORITIZE "(" "{" <identifier-list> "}" "," "{" <expr-list> "}" ")"
                  | SAVE "(" <key> "," <expr> ")"

Expressions support ``LOAD(key)``, arithmetic, comparisons, boolean logic
(``&&``/``||``/``!`` and ``and``/``or``/``not``), a small builtin set
(``abs``, ``min``, ``max``), numeric literals with optional time-unit
suffixes (``50ms``, ``100us``, ``1s`` — all normalized to nanoseconds),
and ``//`` / ``/* */`` comments.

Rules may also use **declarative aggregates** over feature-store keys —
``AVG(key, window)`` (time-windowed mean), ``RATE(key, window)`` (fraction
of truthy saves), ``EWMA(key, alpha)``, and ``P50/P95/P99(key)`` — so §4.3's
example property is written directly as::

    rule: { AVG(page_fault_latency_ms, 10s) <= 2 }

The compiler lowers each aggregate to a canonically-named derived key and
registers the streaming estimator when the monitor is loaded; guardrails
using the same aggregate share one estimator.

``SAVE`` appears as an action because the paper's own Listing 2 uses
``SAVE(ml_enabled, false)`` to disable the model — in our framework that is
sugar for a store write the surrounding system reacts to.
"""

from repro.core.spec.ast import (
    ActionSpec,
    Aggregate,
    BinaryOp,
    BoolLiteral,
    Call,
    DeprioritizeSpec,
    FunctionTriggerSpec,
    GuardrailSpec,
    Load,
    Name,
    NumberLiteral,
    ReplaceSpec,
    ReportSpec,
    RetrainSpec,
    RuleSpec,
    SaveSpec,
    StringLiteral,
    TimerTriggerSpec,
    UnaryOp,
)
from repro.core.spec.parser import parse_guardrail, parse_guardrails
from repro.core.spec.validator import validate_spec

__all__ = [
    "ActionSpec",
    "Aggregate",
    "BinaryOp",
    "BoolLiteral",
    "Call",
    "DeprioritizeSpec",
    "FunctionTriggerSpec",
    "GuardrailSpec",
    "Load",
    "Name",
    "NumberLiteral",
    "ReplaceSpec",
    "ReportSpec",
    "RetrainSpec",
    "RuleSpec",
    "SaveSpec",
    "StringLiteral",
    "TimerTriggerSpec",
    "UnaryOp",
    "parse_guardrail",
    "parse_guardrails",
    "validate_spec",
]

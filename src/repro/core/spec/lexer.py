"""Tokenizer for the guardrail DSL."""

from repro.core.errors import ParseError

# Longest operators first so '<=' wins over '<'.
_OPERATORS = [
    "&&", "||", "==", "!=", "<=", ">=",
    "{", "}", "(", ")", ",", ":", "<", ">", "+", "-", "*", "/", "!", "=",
]

_KEYWORDS = {
    "guardrail", "trigger", "rule", "action",
    "TIMER", "FUNCTION",
    "REPORT", "REPLACE", "RETRAIN", "DEPRIORITIZE",
    "SAVE", "LOAD",
    "AVG", "RATE", "EWMA", "P50", "P95", "P99",
    "true", "false", "and", "or", "not",
}

# Time-unit suffixes on numeric literals, normalized to nanoseconds.
_UNIT_NS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}


class Token:
    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind      # 'ident', 'keyword', 'number', 'string', 'op', 'eof'
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token({}, {!r}, {}:{})".format(self.kind, self.value, self.line, self.column)


class Lexer:
    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message):
        raise ParseError(message, self.line, self.column)

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _peek(self, offset=0):
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self._error("unterminated block comment")
            else:
                return

    def tokens(self):
        """Tokenize the whole input; always ends with an 'eof' token."""
        out = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                out.append(Token("eof", None, self.line, self.column))
                return out
            out.append(self._next_token())

    def _next_token(self):
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch == '"' or ch == "'":
            return self._string(line, column, ch)
        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, line, column)
        self._error("unexpected character {!r}".format(ch))

    def _number(self, line, column):
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE":
            lookahead = 1
            if self._peek(1) in "+-":
                lookahead = 2
            if self._peek(lookahead).isdigit():
                self._advance(lookahead)
                while self._peek().isdigit():
                    self._advance()
        literal = self.text[start:self.pos]
        value = float(literal)
        # Optional time-unit suffix: 50ms, 100us, 1s, 2ns.
        suffix_start = self.pos
        while self._peek().isalpha():
            self._advance()
        suffix = self.text[suffix_start:self.pos]
        if suffix:
            if suffix not in _UNIT_NS:
                raise ParseError(
                    "unknown unit suffix {!r} on number {!r}".format(suffix, literal),
                    line, column,
                )
            value *= _UNIT_NS[suffix]
        if value == int(value):
            value = int(value)
        return Token("number", value, line, column)

    def _word(self, line, column):
        start = self.pos
        while True:
            ch = self._peek()
            # NB: the emptiness check matters — "" is "in" every string.
            if not ch or not (ch.isalnum() or ch in "_."):
                break
            self._advance()
        word = self.text[start:self.pos]
        if word.endswith("."):
            self._error("identifier {!r} ends with a dot".format(word))
        kind = "keyword" if word in _KEYWORDS else "ident"
        return Token(kind, word, line, column)

    def _string(self, line, column, quote):
        self._advance()
        chars = []
        while True:
            ch = self._peek()
            if ch == "":
                raise ParseError("unterminated string literal", line, column)
            if ch == quote:
                self._advance()
                return Token("string", "".join(chars), line, column)
            if ch == "\\":
                self._advance()
                escaped = self._peek()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                if escaped not in mapping:
                    self._error("bad escape \\{}".format(escaped))
                chars.append(mapping[escaped])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def tokenize(text):
    """Tokenize DSL ``text`` into a list of :class:`Token`."""
    return Lexer(text).tokens()

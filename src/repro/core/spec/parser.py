"""Recursive-descent parser for the guardrail DSL."""

from repro.core.errors import ParseError
from repro.core.spec.ast import (
    Aggregate,
    BinaryOp,
    BoolLiteral,
    Call,
    DeprioritizeSpec,
    FunctionTriggerSpec,
    GuardrailSpec,
    Load,
    Name,
    NumberLiteral,
    ReplaceSpec,
    ReportSpec,
    RetrainSpec,
    RuleSpec,
    SaveSpec,
    StringLiteral,
    TimerTriggerSpec,
    UnaryOp,
)
from repro.core.spec.lexer import tokenize
from repro.core.spec.validator import validate_spec

_BUILTIN_FUNCTIONS = {"abs", "min", "max", "clamp"}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self):
        return self.tokens[self.index]

    def _advance(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message):
        token = self._peek()
        raise ParseError(message, token.line, token.column)

    def _expect_op(self, op):
        token = self._peek()
        if token.kind != "op" or token.value != op:
            self._error("expected {!r}, found {!r}".format(op, token.value))
        return self._advance()

    def _expect_keyword(self, word):
        token = self._peek()
        if token.kind != "keyword" or token.value != word:
            self._error("expected {!r}, found {!r}".format(word, token.value))
        return self._advance()

    def _expect_name(self):
        """Identifier; guardrail names may include '-' between identifiers."""
        token = self._peek()
        if token.kind not in ("ident", "keyword"):
            self._error("expected an identifier, found {!r}".format(token.value))
        self._advance()
        parts = [str(token.value)]
        while self._matches_op("-"):
            self._advance()
            nxt = self._peek()
            if nxt.kind not in ("ident", "keyword", "number"):
                self._error("dangling '-' in name")
            self._advance()
            parts.append(str(nxt.value))
        return "-".join(parts)

    def _expect_identifier(self):
        token = self._peek()
        if token.kind != "ident":
            self._error("expected an identifier, found {!r}".format(token.value))
        self._advance()
        return token.value

    def _matches_op(self, *ops):
        token = self._peek()
        return token.kind == "op" and token.value in ops

    def _matches_keyword(self, *words):
        token = self._peek()
        return token.kind == "keyword" and token.value in words

    def _consume_op_if(self, op):
        if self._matches_op(op):
            self._advance()
            return True
        return False

    # -- top level -----------------------------------------------------------

    def parse_all(self):
        specs = []
        while not self._at_eof():
            specs.append(self.parse_guardrail())
        return specs

    def _at_eof(self):
        return self._peek().kind == "eof"

    def parse_guardrail(self):
        self._expect_keyword("guardrail")
        name = self._expect_name()
        self._expect_op("{")
        triggers = rules = actions = None
        while not self._matches_op("}"):
            section = self._peek()
            if section.kind != "keyword" or section.value not in (
                "trigger", "rule", "action",
            ):
                self._error(
                    "expected a 'trigger:', 'rule:', or 'action:' section, found {!r}"
                    .format(section.value)
                )
            self._advance()
            self._expect_op(":")
            self._expect_op("{")
            if section.value == "trigger":
                if triggers is not None:
                    self._error("duplicate trigger section")
                triggers = self._parse_list(self._parse_trigger)
            elif section.value == "rule":
                if rules is not None:
                    self._error("duplicate rule section")
                rules = self._parse_list(self._parse_rule)
            else:
                if actions is not None:
                    self._error("duplicate action section")
                actions = self._parse_list(self._parse_action)
            self._expect_op("}")
            self._consume_op_if(",")
        self._expect_op("}")
        spec = GuardrailSpec(name, triggers or [], rules or [], actions or [])
        validate_spec(spec)
        return spec

    def _parse_list(self, parse_item):
        items = [parse_item()]
        while self._consume_op_if(","):
            if self._matches_op("}"):  # allow trailing comma
                break
            items.append(parse_item())
        return items

    # -- sections --------------------------------------------------------------

    def _parse_trigger(self):
        if self._matches_keyword("TIMER"):
            self._advance()
            self._expect_op("(")
            args = self._parse_list(self.parse_expression)
            self._expect_op(")")
            if len(args) == 2:
                return TimerTriggerSpec(args[0], args[1])
            if len(args) == 3:
                return TimerTriggerSpec(args[0], args[1], args[2])
            self._error("TIMER takes 2 or 3 arguments, got {}".format(len(args)))
        if self._matches_keyword("FUNCTION"):
            self._advance()
            self._expect_op("(")
            function_name = self._expect_identifier()
            self._expect_op(")")
            return FunctionTriggerSpec(function_name)
        self._error("expected TIMER(...) or FUNCTION(...)")

    def _parse_rule(self):
        return RuleSpec(self.parse_expression())

    def _parse_action(self):
        token = self._peek()
        if token.kind != "keyword":
            self._error(
                "expected REPORT, REPLACE, RETRAIN, DEPRIORITIZE, or SAVE, found {!r}"
                .format(token.value)
            )
        word = token.value
        if word == "REPORT":
            self._advance()
            self._expect_op("(")
            args = [] if self._matches_op(")") else self._parse_list(self.parse_expression)
            self._expect_op(")")
            return ReportSpec(args)
        if word == "REPLACE":
            self._advance()
            self._expect_op("(")
            old = self._expect_identifier()
            self._expect_op(",")
            new = self._expect_identifier()
            self._expect_op(")")
            return ReplaceSpec(old, new)
        if word == "RETRAIN":
            self._advance()
            self._expect_op("(")
            model = self._expect_identifier()
            input_expr = None
            if self._consume_op_if(","):
                input_expr = self.parse_expression()
            self._expect_op(")")
            return RetrainSpec(model, input_expr)
        if word == "DEPRIORITIZE":
            self._advance()
            self._expect_op("(")
            self._expect_op("{")
            targets = self._parse_list(self._expect_identifier)
            self._expect_op("}")
            self._expect_op(",")
            self._expect_op("{")
            priorities = self._parse_list(self.parse_expression)
            self._expect_op("}")
            self._expect_op(")")
            return DeprioritizeSpec(targets, priorities)
        if word == "SAVE":
            self._advance()
            self._expect_op("(")
            key = self._expect_identifier()
            self._expect_op(",")
            expression = self.parse_expression()
            self._expect_op(")")
            return SaveSpec(key, expression)
        self._error("unknown action {!r}".format(word))

    def _parse_aggregate(self, token):
        """``AVG(key, window)`` / ``RATE(key, window)`` / ``EWMA(key, alpha)``
        / ``P50|P95|P99(key)`` — parameters must be positive constants."""
        function = token.value
        self._advance()
        self._expect_op("(")
        key = self._expect_identifier()
        arg = None
        if self._consume_op_if(","):
            arg_token = self._peek()
            if arg_token.kind != "number":
                self._error("{} parameter must be a numeric constant".format(
                    function))
            self._advance()
            arg = arg_token.value
        self._expect_op(")")
        if function in Aggregate.PLAIN:
            if arg is not None:
                self._error("{} takes no parameter".format(function))
        elif arg is None:
            self._error("{} needs a parameter (window or alpha)".format(function))
        elif function in Aggregate.WINDOWED and arg <= 0:
            self._error("{} window must be positive".format(function))
        elif function in Aggregate.ALPHA and not 0.0 < arg <= 1.0:
            self._error("EWMA alpha must be in (0, 1]")
        return Aggregate(function, key, arg)

    # -- expressions (precedence climbing) ----------------------------------------

    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self._matches_op("||") or self._matches_keyword("or"):
            self._advance()
            left = BinaryOp("||", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self._matches_op("&&") or self._matches_keyword("and"):
            self._advance()
            left = BinaryOp("&&", left, self._parse_not())
        return left

    def _parse_not(self):
        if self._matches_op("!") or self._matches_keyword("not"):
            self._advance()
            return UnaryOp("!", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        if self._matches_op("<", "<=", ">", ">=", "==", "!="):
            op = self._advance().value
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._matches_op("+", "-"):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self._matches_op("*", "/"):
            op = self._advance().value
            left = BinaryOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self._matches_op("-"):
            self._advance()
            return UnaryOp("-", self._parse_unary())
        # '!' is usually consumed at the logical level (_parse_not), but it
        # is also legal on a tightly-bound operand, e.g. `1 + !(flag)` —
        # keeps printed ASTs reparseable.
        if self._matches_op("!") or self._matches_keyword("not"):
            self._advance()
            return UnaryOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return NumberLiteral(token.value)
        if token.kind == "string":
            self._advance()
            return StringLiteral(token.value)
        if token.kind == "keyword" and token.value in ("true", "false"):
            self._advance()
            return BoolLiteral(token.value == "true")
        if token.kind == "keyword" and token.value == "LOAD":
            self._advance()
            self._expect_op("(")
            key = self._expect_identifier()
            self._expect_op(")")
            return Load(key)
        if token.kind == "keyword" and token.value in Aggregate.FUNCTIONS:
            return self._parse_aggregate(token)
        if token.kind == "ident":
            self._advance()
            if self._matches_op("("):
                if token.value not in _BUILTIN_FUNCTIONS:
                    raise ParseError(
                        "unknown function {!r}; builtins are {}".format(
                            token.value, ", ".join(sorted(_BUILTIN_FUNCTIONS))
                        ),
                        token.line, token.column,
                    )
                self._advance()
                args = [] if self._matches_op(")") else self._parse_list(self.parse_expression)
                self._expect_op(")")
                return Call(token.value, args)
            return Name(token.value)
        if self._matches_op("("):
            self._advance()
            inner = self.parse_expression()
            self._expect_op(")")
            return inner
        self._error("expected an expression, found {!r}".format(token.value))


def parse_guardrail(text):
    """Parse exactly one guardrail block from DSL ``text``."""
    parser = _Parser(tokenize(text))
    spec = parser.parse_guardrail()
    if not parser._at_eof():
        parser._error("trailing input after guardrail block")
    return spec


def parse_guardrails(text):
    """Parse zero or more guardrail blocks (a guardrail 'file')."""
    return _Parser(tokenize(text)).parse_all()

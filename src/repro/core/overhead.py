"""Monitor overhead accounting (backs the P5 property).

The paper's third practitioner concern is that nobody can tell whether the
cost of running a learned policy — or of the guardrails themselves — is
justified.  Every monitor charges its rule evaluations and action dispatches
to an :class:`OverheadAccount`, which converts primitive-op counts into
simulated nanoseconds with a simple linear cost model.  Benchmarks and the
P5 property template read these accounts.
"""


class CostModel:
    """Linear cost model: fixed per-check cost plus per-op cost."""

    def __init__(self, ns_per_op=5, ns_per_check=50, ns_per_action=500):
        self.ns_per_op = ns_per_op
        self.ns_per_check = ns_per_check
        self.ns_per_action = ns_per_action

    def check_cost(self, ops):
        return self.ns_per_check + ops * self.ns_per_op

    def action_cost(self):
        return self.ns_per_action


class OverheadAccount:
    """Accumulated cost of one monitor."""

    def __init__(self, cost_model=None):
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.checks = 0
        self.ops = 0
        self.actions = 0
        self.simulated_ns = 0

    def charge_check(self, ops):
        self.checks += 1
        self.ops += ops
        # check_cost() inlined: charge_check is on every monitor check.
        cost = self.cost_model
        self.simulated_ns += cost.ns_per_check + ops * cost.ns_per_op

    def charge_action(self):
        self.actions += 1
        self.simulated_ns += self.cost_model.action_cost()

    def overhead_fraction(self, elapsed_ns):
        """Monitor time as a fraction of elapsed virtual time."""
        if elapsed_ns <= 0:
            return 0.0
        return self.simulated_ns / elapsed_ns

    def merge(self, other):
        self.checks += other.checks
        self.ops += other.ops
        self.actions += other.actions
        self.simulated_ns += other.simulated_ns
        return self

    def snapshot(self):
        return {
            "checks": self.checks,
            "ops": self.ops,
            "actions": self.actions,
            "simulated_ns": self.simulated_ns,
        }


class InferenceMeter:
    """Cost/benefit ledger for a learned policy itself (P5).

    ``record_inference`` charges model-inference time; ``record_gain``
    credits measured benefit versus the baseline (both in ns).  The P5 rule
    is then simply ``LOAD(policy.net_benefit) >= 0`` — inference overhead
    must be offset by its gains.

    A cumulative ledger can hide a regression behind months of banked
    gains, so ``record_decision`` additionally maintains
    ``<prefix>.net_benefit_window`` — the moving average of per-decision
    net benefit over the last ``window`` decisions — which is what a
    responsive P5 guardrail should watch.
    """

    def __init__(self, store, prefix, window=64):
        from repro.detect.streaming import MovingAverage

        self.store = store
        self.prefix = prefix
        self.inference_ns = 0
        self.gain_ns = 0
        self.inferences = 0
        self._window = MovingAverage(window)
        self._publish()

    def record_inference(self, ns):
        self.inference_ns += ns
        self.inferences += 1
        self._publish()

    def record_gain(self, ns):
        self.gain_ns += ns
        self._publish()

    def record_decision(self, inference_ns, gain_ns):
        """One decision's cost and measured benefit, cumulative + windowed."""
        self.inference_ns += inference_ns
        self.inferences += 1
        self.gain_ns += gain_ns
        self._window.update(gain_ns - inference_ns)
        self.store.save(self.prefix + ".net_benefit_window", self._window.value)
        self._publish()

    @property
    def net_benefit(self):
        return self.gain_ns - self.inference_ns

    def _publish(self):
        self.store.save(self.prefix + ".inference_ns", self.inference_ns)
        self.store.save(self.prefix + ".gain_ns", self.gain_ns)
        self.store.save(self.prefix + ".net_benefit", self.net_benefit)
        self.store.save(self.prefix + ".inferences", self.inferences)

"""The retraining lifecycle: closing the loop after A3 (§3.2).

The paper envisions retraining as an asynchronous, offline process: the
guardrail queues a request (A3), something trains a new model on fresh
data, and the system eventually switches back from the fallback.  The
:class:`RetrainDaemon` is that something:

1. it polls the host's retrain queue every ``poll_interval``;
2. for each accepted request it runs the registered trainer *off the
   critical path* — the simulated training time elapses on the virtual
   clock before the result lands;
3. on completion it invokes the model's re-enable hook (restore the
   function slot, flip the kill switch back on, or both).

Together with Listing 2 this closes the full loop the paper sketches:
misbehave -> detect -> disable -> retrain -> re-enable.
"""

from repro.trace.tracer import TRACER


class RetrainDaemon:
    """Drains the retrain queue on the virtual clock.

    ``register`` wires one model name to a ``trainer(request) -> result``
    callable plus an ``on_complete(result, request)`` re-enable hook and a
    simulated ``training_time`` (ns).  Multiple requests for the same model
    queued back-to-back collapse: only one training run is in flight per
    model, matching an offline training pipeline.
    """

    def __init__(self, host, poll_interval=1_000_000_000):
        self.host = host
        self.poll_interval = poll_interval
        self._models = {}
        self._in_flight = set()
        self.completed_count = 0
        self.collapsed_count = 0
        self._running = False

    def register(self, model, trainer, on_complete=None,
                 training_time=1_000_000_000):
        """Wire ``model`` to its trainer and re-enable hook."""
        if model in self._models:
            raise ValueError("model {!r} already registered".format(model))
        self._models[model] = {
            "trainer": trainer,
            "on_complete": on_complete,
            "training_time": training_time,
        }

    def start(self):
        if self._running:
            raise RuntimeError("daemon is already running")
        self._running = True
        self.host.engine.schedule(self.poll_interval, self._poll)
        return self

    def stop(self):
        self._running = False

    def _poll(self):
        if not self._running:
            return
        pending = self.host.retrain_queue.pending
        keep = []
        for request in pending:
            model = request["model"]
            if model not in self._models:
                keep.append(request)  # no trainer registered; leave queued
            elif model in self._in_flight:
                self.collapsed_count += 1  # one run in flight is enough
            else:
                self._begin(model, request)
        self.host.retrain_queue.pending = keep
        self.host.engine.schedule(self.poll_interval, self._poll)

    def _begin(self, model, request):
        self._in_flight.add(model)
        entry = self._models[model]
        now = self.host.engine.now
        requested_by = request.get("requested_by")
        self.host.reporter.note(
            "RETRAIN_START", requested_by or "daemon",
            now, detail="model={}".format(model))
        # The training-job span stretches over virtual time, so it is opened
        # here and closed in _finish; carry it on the request.
        if TRACER.active:
            request["_trace_span"] = TRACER.begin(
                "retrain", model, now, guardrail=requested_by,
                args={"queued_at": request.get("time")})
        self.host.engine.schedule(
            entry["training_time"], self._finish, model, request)

    def _finish(self, model, request):
        entry = self._models[model]
        result = entry["trainer"](request)
        self._in_flight.discard(model)
        self.completed_count += 1
        now = self.host.engine.now
        self.host.reporter.note(
            "RETRAIN_DONE", request.get("requested_by") or "daemon",
            now, detail="model={}".format(model))
        if TRACER.active:
            TRACER.end(request.pop("_trace_span", None), now)
        if entry["on_complete"] is not None:
            entry["on_complete"](result, request)

    @property
    def in_flight(self):
        return frozenset(self._in_flight)

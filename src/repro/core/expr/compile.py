"""Compile DSL expressions into bounded monitor programs.

An expression compiles to a Python callable ``program(ctx) -> value`` over an
:class:`EvalContext`.  Two properties matter for the in-kernel story:

- **Bounded cost.**  ``static_cost`` computes the exact number of primitive
  operations an expression performs (the tree is loop-free by construction),
  which the verifier checks against the instruction budget, and the runtime
  charges against the monitor's overhead account via ``ctx.charge``.
- **Missing-data semantics.**  ``LOAD`` of an absent key (or a NaN aggregate)
  yields ``None``; any arithmetic or comparison touching ``None`` yields
  ``None``.  A rule evaluating to ``None`` is "not enough data", which never
  counts as a violation.  Logical operators short-circuit around ``None``
  when the other side already decides the result (``false && ? == false``).
"""

import math

from repro.core.errors import CompileError
from repro.core.spec import ast as A


class EvalContext:
    """Everything an executing rule may see.

    ``payload`` holds FUNCTION-trigger call-site arguments, ``env`` holds
    compile-time bindings (e.g. ``start_time``), ``store`` is the global
    feature store.  ``ops`` accumulates the primitive-operation count for
    overhead accounting.
    """

    __slots__ = ("store", "now", "payload", "env", "ops")

    def __init__(self, store, now=0, payload=None, env=None):
        self.store = store
        self.now = now
        self.payload = payload or {}
        self.env = env or {}
        self.ops = 0

    def charge(self, amount=1):
        self.ops += amount

    def resolve(self, identifier):
        """Free-name lookup: trigger payload, then environment, then None."""
        if identifier in self.payload:
            return self.payload[identifier]
        if identifier in self.env:
            return self.env[identifier]
        if identifier == "now":
            return self.now
        return None


def _none_guard(value):
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


_LITERALS = (A.NumberLiteral, A.BoolLiteral, A.StringLiteral)


def _is_constant(expr):
    """True when ``expr`` has no runtime inputs (no LOAD, Name, Aggregate)."""
    if isinstance(expr, _LITERALS):
        return True
    if isinstance(expr, A.UnaryOp):
        return _is_constant(expr.operand)
    if isinstance(expr, A.BinaryOp):
        return _is_constant(expr.left) and _is_constant(expr.right)
    if isinstance(expr, A.Call):
        return all(_is_constant(arg) for arg in expr.args)
    return False


def fold_constant_value(expr):
    """Evaluate a constant subexpression once, at compile time.

    Returns ``(value, ops)`` where ``ops`` is exactly what the unfolded
    tree would have charged at runtime.  Both expression backends (closure
    and bytecode VM) fold through this single helper, so a folded constant
    is one shared value/ops pair — overhead accounting, and with it every
    deterministic benchmark metric, stays bit-identical across lanes.
    """
    program = _compile_node(expr)
    probe = EvalContext(None)
    value = program(probe)
    return value, probe.ops


def _fold_constant(expr):
    value, ops = fold_constant_value(expr)

    def folded(ctx, _value=value, _ops=ops):
        ctx.ops += _ops  # charge() inlined: this closure is the whole rule
        return _value

    return folded


def compile_expression(expr):
    """Compile an AST expression into ``program(ctx) -> value``."""
    if _is_constant(expr) and not isinstance(expr, _LITERALS):
        return _fold_constant(expr)
    return _compile_node(expr)


def _compile_node(expr):
    if isinstance(expr, A.NumberLiteral):
        value = expr.value

        def program(ctx, _value=value):
            ctx.charge()
            return _value

        return program

    if isinstance(expr, A.BoolLiteral):
        value = expr.value

        def program(ctx, _value=value):
            ctx.charge()
            return _value

        return program

    if isinstance(expr, A.StringLiteral):
        value = expr.value

        def program(ctx, _value=value):
            ctx.charge()
            return _value

        return program

    if isinstance(expr, A.Name):
        identifier = expr.identifier

        def program(ctx, _id=identifier):
            ctx.charge()
            return _none_guard(ctx.resolve(_id))

        return program

    if isinstance(expr, A.Load):
        key = expr.key

        def program(ctx, _key=key):
            ctx.charge(2)  # a store lookup is pricier than an ALU op
            return _none_guard(ctx.store.load(_key))

        return program

    if isinstance(expr, A.Call):
        return _compile_call(expr)

    if isinstance(expr, A.UnaryOp):
        operand = compile_expression(expr.operand)
        if expr.op == "-":

            def program(ctx, _operand=operand):
                value = _operand(ctx)
                ctx.charge()
                if value is None or not isinstance(value, (int, float)):
                    # Crash-free semantics (§4.2): negating a type-confused
                    # operand reads as missing data, never as a TypeError.
                    return None
                return -value

            return program
        if expr.op == "!":

            def program(ctx, _operand=operand):
                value = _operand(ctx)
                ctx.charge()
                return None if value is None else (not value)

            return program
        raise CompileError("unknown unary operator {!r}".format(expr.op))

    if isinstance(expr, A.BinaryOp):
        return _compile_binary(expr)

    if isinstance(expr, A.Aggregate):
        raise CompileError(
            "aggregate {} must be lowered by the guardrail compiler before "
            "expression compilation".format(expr.to_source())
        )

    raise CompileError("cannot compile expression node {!r}".format(expr))


_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


_COMPARISONS = ("<", "<=", ">", ">=", "==", "!=")


def fusion_params(expr):
    """Parameters for the fused ``LOAD(k) <cmp> const`` rule shape, or None.

    Returns ``(key, const, op, pre, post, flipped, ordered_cmp,
    const_dead)`` when ``expr`` is a threshold comparison between a LOAD
    and a constant (either operand order).  Both backends — the fused
    closure below and the bytecode VM's FUSED opcode — consume this one
    helper, so the charge split around the (possibly fault-injected)
    ``store.load`` is identical by construction.
    """
    if not isinstance(expr, A.BinaryOp) or expr.op not in _COMPARISONS:
        return None
    if isinstance(expr.left, A.Load) and _is_constant(expr.right):
        load, const_expr, flipped = expr.left, expr.right, False
    elif isinstance(expr.right, A.Load) and _is_constant(expr.left):
        load, const_expr, flipped = expr.right, expr.left, True
    else:
        return None

    const, const_ops = fold_constant_value(const_expr)
    # Generic-path charge split around the store load: LOAD charges 2
    # before touching the store; the constant's ops and the comparison's
    # own op land after (or before, when the constant is the left operand).
    pre = 2 if not flipped else const_ops + 2
    post = const_ops + 1 if not flipped else 1
    ordered_cmp = expr.op not in ("==", "!=")
    # Ordering comparisons yield None (missing data) for non-numeric
    # operands; a non-numeric constant can never produce a result.
    const_dead = ordered_cmp and not isinstance(const, (int, float))
    return (load.key, const, expr.op, pre, post, flipped, ordered_cmp,
            const_dead)


def _try_fuse_comparison(expr):
    """Fuse ``LOAD(k) <cmp> const`` (either order) into one closure.

    This is the dominant guardrail rule shape — a threshold on a raw or
    derived key (``LOAD(io_latency_us) < 500``, ``LOAD(x.rate) > 0.05``) —
    and the fused form replaces three chained programs with one.  Charge
    accounting is kept exactly equivalent to the generic path, including
    the ops charged before a (possibly fault-injected) ``store.load`` that
    raises mid-rule.
    """
    params = fusion_params(expr)
    if params is None:
        return None
    key, const, op, pre, post, flipped, ordered_cmp, const_dead = params
    fn = _ARITHMETIC[op]

    def program(ctx, _key=key, _const=const, _fn=fn, _pre=pre, _post=post,
                _flipped=flipped, _ordered=ordered_cmp, _dead=const_dead):
        # charge() is inlined (ctx.ops +=) — two method calls saved on the
        # hottest closure in the runtime; the split around the load is
        # unchanged so fault-injected loads observe identical partial ops.
        ctx.ops += _pre
        value = ctx.store.load(_key)
        ctx.ops += _post
        if value is None or _const is None or _dead:
            return None
        if isinstance(value, float) and value != value:
            return None  # NaN load reads as missing data
        if _ordered and not isinstance(value, (int, float)):
            return None
        return _fn(_const, value) if _flipped else _fn(value, _const)

    return program


def _compile_binary(expr):
    if expr.op in _COMPARISONS:
        fused = _try_fuse_comparison(expr)
        if fused is not None:
            return fused
    left = compile_expression(expr.left)
    right = compile_expression(expr.right)
    op = expr.op

    if op == "&&":

        def program(ctx, _left=left, _right=right):
            a = _left(ctx)
            ctx.charge()
            if a is False:
                return False
            b = _right(ctx)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return bool(a) and bool(b)

        return program

    if op == "||":

        def program(ctx, _left=left, _right=right):
            a = _left(ctx)
            ctx.charge()
            if a is not None and bool(a):
                return True
            b = _right(ctx)
            if b is not None and bool(b):
                return True
            if a is None or b is None:
                return None
            return False

        return program

    if op == "/":

        def program(ctx, _left=left, _right=right):
            a = _left(ctx)
            b = _right(ctx)
            ctx.charge()
            if a is None or b is None:
                return None
            # Crash-free semantics (§4.2): a type-confused operand reads as
            # missing data — "str" / 2 must not escape as a TypeError.
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                return None
            if b == 0:
                return None  # division by zero is "no data", not a crash
            return a / b

        return program

    if op in ("==", "!="):
        fn = _ARITHMETIC[op]

        def program(ctx, _left=left, _right=right, _fn=fn):
            a = _left(ctx)
            b = _right(ctx)
            ctx.charge()
            if a is None or b is None:
                return None
            return _fn(a, b)

        return program

    if op in _ARITHMETIC:
        fn = _ARITHMETIC[op]

        def program(ctx, _left=left, _right=right, _fn=fn):
            a = _left(ctx)
            b = _right(ctx)
            ctx.charge()
            if a is None or b is None:
                return None
            # Crash-free semantics (§4.2): a type-confused operand (e.g. a
            # string saved under a numeric key) reads as missing data, never
            # as an in-kernel exception.
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                return None
            return _fn(a, b)

        return program

    raise CompileError("unknown binary operator {!r}".format(op))


def _compile_call(expr):
    args = [compile_expression(a) for a in expr.args]
    name = expr.function

    if name == "abs":
        _require_arity(expr, 1)

        def program(ctx, _arg=args[0]):
            value = _arg(ctx)
            ctx.charge()
            if value is None or not isinstance(value, (int, float)):
                return None  # §4.2: abs of a type-confused operand
            return abs(value)

        return program

    if name in ("min", "max"):
        if len(args) < 2:
            raise CompileError("{}() needs at least 2 arguments".format(name))
        reducer = min if name == "min" else max

        def program(ctx, _args=args, _reduce=reducer):
            values = [a(ctx) for a in _args]
            ctx.charge(len(values))
            if any(not isinstance(v, (int, float)) for v in values):
                # Covers None and §4.2 type confusion: min(5, "str") must
                # not escape as an unorderable-types TypeError.
                return None
            return _reduce(values)

        return program

    if name == "clamp":
        _require_arity(expr, 3)

        def program(ctx, _args=args):
            value, lo, hi = (a(ctx) for a in _args)
            ctx.charge(2)
            if (not isinstance(value, (int, float))
                    or not isinstance(lo, (int, float))
                    or not isinstance(hi, (int, float))):
                return None  # covers None and §4.2 type confusion
            return max(lo, min(hi, value))

        return program

    raise CompileError("unknown builtin {!r}".format(name))


def _require_arity(expr, n):
    if len(expr.args) != n:
        raise CompileError(
            "{}() takes {} argument(s), got {}".format(expr.function, n, len(expr.args))
        )


def static_cost(expr):
    """Exact primitive-operation count of evaluating ``expr`` once.

    The expression tree has no loops or recursion, so the worst-case cost is
    just a weighted node count — this is what makes guardrail rules
    verifiable, in the same sense the eBPF verifier bounds program cost.
    Short-circuiting only makes the real cost lower.
    """
    if isinstance(expr, (A.NumberLiteral, A.BoolLiteral, A.StringLiteral, A.Name)):
        return 1
    if isinstance(expr, (A.Load, A.Aggregate)):
        # An aggregate lowers to a LOAD of a derived key; the streaming
        # estimator's update cost is charged to the *saver*, not the rule.
        return 2
    if isinstance(expr, A.UnaryOp):
        return 1 + static_cost(expr.operand)
    if isinstance(expr, A.BinaryOp):
        return 1 + static_cost(expr.left) + static_cost(expr.right)
    if isinstance(expr, A.Call):
        overhead = 2 if expr.function == "clamp" else max(len(expr.args), 1)
        return overhead + sum(static_cost(a) for a in expr.args)
    raise CompileError("cannot cost expression node {!r}".format(expr))

"""Bytecode VM for guardrail rule expressions.

``compile_to_vm`` lowers a DSL AST to a flat bytecode program — a tuple of
``(opcode, operand)`` pairs — executed by a small stack interpreter.  The
VM is a second backend for the same source language as the closure
compiler in :mod:`repro.core.expr.compile`, and it must be *bit-identical*
to it in every observable way:

- **Values**, including the None/NaN missing-data matrix, short-circuit
  results, and the §4.2 crash-free rule that type-confused operands read
  as missing data.
- **Charged ops** (``ctx.ops``), including the *partial* charge left
  behind when a fault-injected ``store.load`` raises mid-rule: every
  opcode charges at the same point in evaluation order as the closure it
  mirrors.
- **Structural decisions**: whole-constant expressions fold to a single
  ``CONST`` op via the shared :func:`fold_constant_value` helper, and the
  dominant ``LOAD(k) <cmp> const`` rule shape lowers to one ``FUSED`` op
  with the exact pre/post charge split of the fused closure
  (:func:`fusion_params` is shared too).

The closure path stays the reference implementation; the differential
fuzz harness (``tests/core/test_vm_differential.py``) asserts parity on
randomly generated expressions and store states.

On top of the scalar interpreter, :func:`eval_columns` evaluates one
program across *columns* — numpy arrays with one row per host/window/event
— amortizing interpreter dispatch over the whole batch.  Columnar
semantics use ``NaN`` as the missing-data sentinel and are defined for
numeric, finite data (the fleet's telemetry columns); programs touching
string constants refuse to run columnar rather than silently diverge.
"""

import numpy as np

from repro.core.errors import CompileError
from repro.core.spec import ast as A
from repro.core.expr.compile import (
    _ARITHMETIC,
    _LITERALS,
    _is_constant,
    _require_arity,
    fold_constant_value,
    fusion_params,
)

# -- opcodes ----------------------------------------------------------------
#
# Stack machine, loop-free by construction (the only jumps are the
# forward short-circuit jumps of && / ||), so program length bounds
# execution and the verifier's static budget argument carries over.

OP_CONST = 0      # arg (value, ops): charge ops, push value
OP_NAME = 1       # arg identifier: charge 1, push resolved free name
OP_LOAD = 2       # arg key: charge 2, push store value (None/NaN guarded)
OP_NEG = 3        # charge 1, numeric-guarded negate
OP_NOT = 4        # charge 1, logical not (None-guarded)
OP_ARITH = 5      # arg (op, fn): + - * < <= > >= — None+numeric guarded
OP_EQ = 6         # arg (op, fn): == != — None guarded only
OP_DIV = 7        # charge 1; None, numeric and divide-by-zero guarded
OP_AND = 8        # arg jump target: charge 1; TOS is False -> jump
OP_AND_JOIN = 9   # pop b, a; combine with && semantics
OP_OR = 10        # arg jump target: charge 1; TOS truthy -> push True, jump
OP_OR_JOIN = 11   # pop b, a; combine with || semantics
OP_ABS = 12       # charge 1, numeric-guarded abs
OP_MINMAX = 13    # arg (n, name): pop n values, charge n, reduce
OP_CLAMP = 14     # pop hi, lo, value; charge 2; max(lo, min(hi, value))
OP_FUSED = 15     # arg fusion_params tuple: the threshold rule shape

_OP_NAMES = {
    OP_CONST: "CONST", OP_NAME: "NAME", OP_LOAD: "LOAD", OP_NEG: "NEG",
    OP_NOT: "NOT", OP_ARITH: "ARITH", OP_EQ: "EQ", OP_DIV: "DIV",
    OP_AND: "AND", OP_AND_JOIN: "AND_JOIN", OP_OR: "OR",
    OP_OR_JOIN: "OR_JOIN", OP_ABS: "ABS", OP_MINMAX: "MINMAX",
    OP_CLAMP: "CLAMP", OP_FUSED: "FUSED",
}

_NUMERIC = (int, float)


class VmProgram:
    """A compiled bytecode program; callable like a closure program."""

    __slots__ = ("code",)

    def __init__(self, code):
        self.code = tuple(code)

    def __call__(self, ctx):
        return execute(self.code, ctx)

    def __len__(self):
        return len(self.code)

    @property
    def load_keys(self):
        """Feature-store keys this program reads, in evaluation order."""
        keys = []
        for op, arg in self.code:
            if op == OP_LOAD:
                keys.append(arg)
            elif op == OP_FUSED:
                keys.append(arg[0])
        return keys

    @property
    def columnar_safe(self):
        """True when the program is defined over numeric columns."""
        for op, arg in self.code:
            if op == OP_CONST and not isinstance(arg[0], _NUMERIC) \
                    and arg[0] is not None:
                return False
            if op == OP_FUSED and not isinstance(arg[1], _NUMERIC) \
                    and arg[1] is not None:
                return False
        return True

    def disasm(self):
        """Human-readable listing, one instruction per line."""
        lines = []
        for index, (op, arg) in enumerate(self.code):
            name = _OP_NAMES[op]
            if op in (OP_ARITH, OP_EQ):
                detail = arg[0]
            elif op == OP_CONST:
                detail = "{!r} (ops={})".format(arg[0], arg[1])
            elif op == OP_FUSED:
                key, const, cmp_op = arg[0], arg[1], arg[2]
                detail = "LOAD({}) {} {!r} (pre={}, post={})".format(
                    key, cmp_op, const, arg[3], arg[4])
            elif op == OP_MINMAX:
                detail = "{} n={}".format(arg[1], arg[0])
            elif arg is None:
                detail = ""
            else:
                detail = repr(arg)
            lines.append("{:>3}  {:<9} {}".format(index, name, detail))
        return lines


def compile_to_vm(expr):
    """Compile an AST expression into a :class:`VmProgram`.

    Mirrors :func:`compile_expression` decision-for-decision so values and
    charged ops agree with the closure backend on every input.
    """
    if _is_constant(expr) and not isinstance(expr, _LITERALS):
        value, ops = fold_constant_value(expr)
        return VmProgram([(OP_CONST, (value, ops))])
    code = []
    _emit(expr, code)
    return VmProgram(code)


def _emit(expr, code):
    if _is_constant(expr):
        if isinstance(expr, _LITERALS):
            code.append((OP_CONST, (expr.value, 1)))
        else:
            # Nested constant subtree: fold exactly like the closure
            # backend, charging the unfolded tree's ops.
            code.append((OP_CONST, fold_constant_value(expr)))
        return
    if isinstance(expr, A.Name):
        code.append((OP_NAME, expr.identifier))
        return
    if isinstance(expr, A.Load):
        code.append((OP_LOAD, expr.key))
        return
    if isinstance(expr, A.UnaryOp):
        _emit(expr.operand, code)
        if expr.op == "-":
            code.append((OP_NEG, None))
        elif expr.op == "!":
            code.append((OP_NOT, None))
        else:
            raise CompileError("unknown unary operator {!r}".format(expr.op))
        return
    if isinstance(expr, A.BinaryOp):
        _emit_binary(expr, code)
        return
    if isinstance(expr, A.Call):
        _emit_call(expr, code)
        return
    if isinstance(expr, A.Aggregate):
        raise CompileError(
            "aggregate {} must be lowered by the guardrail compiler before "
            "expression compilation".format(expr.to_source())
        )
    raise CompileError("cannot compile expression node {!r}".format(expr))


def _emit_binary(expr, code):
    params = fusion_params(expr)
    if params is not None:
        code.append((OP_FUSED, params))
        return
    op = expr.op
    if op in ("&&", "||"):
        _emit(expr.left, code)
        test_index = len(code)
        code.append(None)  # patched below with the jump target
        _emit(expr.right, code)
        code.append((OP_AND_JOIN if op == "&&" else OP_OR_JOIN, None))
        # Jump target = the instruction after the JOIN: on short-circuit
        # the result is already on the stack and the JOIN must not run.
        code[test_index] = (OP_AND if op == "&&" else OP_OR, len(code))
        return
    _emit(expr.left, code)
    _emit(expr.right, code)
    if op == "/":
        code.append((OP_DIV, None))
    elif op in ("==", "!="):
        code.append((OP_EQ, (op, _ARITHMETIC[op])))
    elif op in _ARITHMETIC:
        code.append((OP_ARITH, (op, _ARITHMETIC[op])))
    else:
        raise CompileError("unknown binary operator {!r}".format(op))


def _emit_call(expr, code):
    # Argument-first order mirrors _compile_call: a bad argument raises
    # before the arity check, with the same CompileError either way.
    for arg in expr.args:
        _emit(arg, code)
    name = expr.function
    if name == "abs":
        _require_arity(expr, 1)
        code.append((OP_ABS, None))
    elif name in ("min", "max"):
        if len(expr.args) < 2:
            raise CompileError("{}() needs at least 2 arguments".format(name))
        code.append((OP_MINMAX, (len(expr.args), name)))
    elif name == "clamp":
        _require_arity(expr, 3)
        code.append((OP_CLAMP, None))
    else:
        raise CompileError("unknown builtin {!r}".format(name))


# -- scalar interpreter -----------------------------------------------------


def execute(code, ctx):
    """Run a bytecode program against an :class:`EvalContext`.

    ``ctx.ops`` is charged incrementally at the same evaluation points as
    the closure backend, so a ``store.load`` that raises mid-program
    leaves exactly the partial charge the closure would have.
    """
    stack = []
    push = stack.append
    pop = stack.pop
    load = ctx.store.load if ctx.store is not None else None
    pc = 0
    end = len(code)
    # Dispatch chain ordered by opcode frequency in real rule programs:
    # loads and constants dominate, then arithmetic/comparisons.
    while pc < end:
        op, arg = code[pc]
        pc += 1
        if op == OP_LOAD:
            ctx.ops += 2
            value = load(arg)
            if value is None or (isinstance(value, float) and value != value):
                push(None)
            else:
                push(value)
        elif op == OP_CONST:
            ctx.ops += arg[1]
            push(arg[0])
        elif op == OP_ARITH:
            b = pop()
            a = pop()
            ctx.ops += 1
            if a is None or b is None:
                push(None)
            elif not isinstance(a, _NUMERIC) or not isinstance(b, _NUMERIC):
                push(None)  # §4.2 crash-free: type confusion = missing data
            else:
                push(arg[1](a, b))
        elif op == OP_FUSED:
            key, const, _cmp, pre, post, flipped, ordered, dead = arg
            ctx.ops += pre
            value = load(key)
            ctx.ops += post
            if value is None or const is None or dead:
                push(None)
            elif isinstance(value, float) and value != value:
                push(None)  # NaN load reads as missing data
            elif ordered and not isinstance(value, _NUMERIC):
                push(None)
            else:
                fn = _ARITHMETIC[_cmp]
                push(fn(const, value) if flipped else fn(value, const))
        elif op == OP_AND:
            ctx.ops += 1
            if stack[-1] is False:
                pc = arg
        elif op == OP_AND_JOIN:
            b = pop()
            a = pop()
            if b is False:
                push(False)
            elif a is None or b is None:
                push(None)
            else:
                push(bool(a) and bool(b))
        elif op == OP_OR:
            ctx.ops += 1
            a = stack[-1]
            if a is not None and bool(a):
                stack[-1] = True
                pc = arg
        elif op == OP_OR_JOIN:
            b = pop()
            a = pop()
            if b is not None and bool(b):
                push(True)
            elif a is None or b is None:
                push(None)
            else:
                push(False)
        elif op == OP_EQ:
            b = pop()
            a = pop()
            ctx.ops += 1
            push(None if a is None or b is None else arg[1](a, b))
        elif op == OP_DIV:
            b = pop()
            a = pop()
            ctx.ops += 1
            if a is None or b is None:
                push(None)
            elif not isinstance(a, _NUMERIC) or not isinstance(b, _NUMERIC):
                push(None)
            elif b == 0:
                push(None)  # division by zero is "no data", not a crash
            else:
                push(a / b)
        elif op == OP_NAME:
            ctx.ops += 1
            value = ctx.resolve(arg)
            if value is None or (isinstance(value, float) and value != value):
                push(None)
            else:
                push(value)
        elif op == OP_NEG:
            ctx.ops += 1
            value = pop()
            push(-value if isinstance(value, _NUMERIC) else None)
        elif op == OP_NOT:
            ctx.ops += 1
            value = pop()
            push(None if value is None else (not value))
        elif op == OP_ABS:
            ctx.ops += 1
            value = pop()
            push(abs(value) if isinstance(value, _NUMERIC) else None)
        elif op == OP_MINMAX:
            count, name = arg
            values = stack[-count:]
            del stack[-count:]
            ctx.ops += count
            if any(not isinstance(v, _NUMERIC) for v in values):
                push(None)
            else:
                push(min(values) if name == "min" else max(values))
        elif op == OP_CLAMP:
            hi = pop()
            lo = pop()
            value = pop()
            ctx.ops += 2
            if (not isinstance(value, _NUMERIC)
                    or not isinstance(lo, _NUMERIC)
                    or not isinstance(hi, _NUMERIC)):
                push(None)
            else:
                push(max(lo, min(hi, value)))
        else:  # pragma: no cover - emitter never produces unknown opcodes
            raise RuntimeError("unknown opcode {}".format(op))
    return stack[-1]


# -- columnar evaluator -----------------------------------------------------


class ColumnarError(ValueError):
    """Program or columns outside the columnar lane's numeric contract."""


def eval_columns(program, n, loads=None, names=None):
    """Evaluate ``program`` over columns of ``n`` rows at once.

    ``loads`` maps feature-store keys to float64 arrays (or scalars) and
    ``names`` maps free identifiers likewise; ``NaN`` is the missing-data
    sentinel on both input and output, mirroring the scalar lane's
    ``None``.  Returns ``(values, ops)``: a float64 array where boolean
    results are ``1.0``/``0.0`` and inconclusive rows are ``NaN``, and an
    int64 array of per-row charged ops (short-circuit skips are masked per
    row, exactly like scalar execution).

    The lane is defined for numeric, finite data — the shape of fleet
    telemetry.  Programs with string constants raise :class:`ColumnarError`
    instead of diverging silently from scalar semantics.
    """
    if not program.columnar_safe:
        raise ColumnarError(
            "program uses non-numeric constants; columnar lane is numeric-only")
    n = int(n)
    values, _is_bool, ops = _eval_span(
        program.code, 0, len(program.code), loads or {}, names or {}, n)
    return values, ops


def _column(mapping, key, n):
    value = mapping.get(key)
    if value is None:
        return np.full(n, np.nan)
    if isinstance(value, _NUMERIC):
        return np.full(n, float(value))
    column = np.asarray(value, dtype=np.float64)
    if column.shape != (n,):
        raise ColumnarError(
            "column {!r} has shape {}, expected ({},)".format(
                key, column.shape, n))
    return column


def _const_column(value, n):
    if value is None:
        return np.full(n, np.nan)
    return np.full(n, float(value))


def _eval_span(code, lo, hi, loads, names, n):
    """Evaluate ``code[lo:hi]``; returns (top value, is_bool, ops array)."""
    ops = np.zeros(n, dtype=np.int64)
    stack = []
    pc = lo
    while pc < hi:
        op, arg = code[pc]
        pc += 1
        if op == OP_FUSED:
            key, const, cmp_op, pre, post, _flipped, _ordered, dead = arg
            ops += pre + post
            column = _column(loads, key, n)
            if const is None or dead:
                stack.append((np.full(n, np.nan), True))
            else:
                fn = _ARITHMETIC[cmp_op]
                with np.errstate(invalid="ignore"):
                    # fusion_params already baked the operand order into
                    # pre/post; value-vs-const order only matters for the
                    # comparison itself.
                    if _flipped:
                        raw = fn(float(const), column)
                    else:
                        raw = fn(column, float(const))
                result = raw.astype(np.float64)
                result[np.isnan(column)] = np.nan
                stack.append((result, True))
        elif op == OP_LOAD:
            ops += 2
            stack.append((_column(loads, arg, n), False))
        elif op == OP_CONST:
            value, charged = arg
            ops += charged
            stack.append((_const_column(value, n), isinstance(value, bool)))
        elif op == OP_NAME:
            ops += 1
            stack.append((_column(names, arg, n), False))
        elif op == OP_ARITH:
            b, _ = stack.pop()
            a, _ = stack.pop()
            ops += 1
            name, fn = arg
            if name in ("<", "<=", ">", ">="):
                with np.errstate(invalid="ignore"):
                    raw = fn(a, b).astype(np.float64)
                raw[np.isnan(a) | np.isnan(b)] = np.nan
                stack.append((raw, True))
            else:
                with np.errstate(invalid="ignore", over="ignore"):
                    stack.append((fn(a, b), False))
        elif op == OP_EQ:
            b, _ = stack.pop()
            a, _ = stack.pop()
            ops += 1
            name, fn = arg
            raw = fn(a, b).astype(np.float64)
            raw[np.isnan(a) | np.isnan(b)] = np.nan
            stack.append((raw, True))
        elif op == OP_DIV:
            b, _ = stack.pop()
            a, _ = stack.pop()
            ops += 1
            dead = np.isnan(a) | np.isnan(b) | (b == 0)
            with np.errstate(invalid="ignore", divide="ignore"):
                raw = a / np.where(b == 0, 1.0, b)
            raw = np.where(dead, np.nan, raw)
            stack.append((raw, False))
        elif op == OP_AND:
            a, a_bool = stack.pop()
            ops += 1
            b, b_bool, b_ops = _eval_span(code, pc, arg - 1, loads, names, n)
            a_nan = np.isnan(a)
            b_nan = np.isnan(b)
            # Scalar short-circuits only on a literal False (`a is False`),
            # never on a numeric zero — the bool tag preserves that split.
            a_false = (a == 0) & ~a_nan if a_bool else np.zeros(n, dtype=bool)
            ops += np.where(a_false, 0, b_ops)
            b_false = (b == 0) & ~b_nan if b_bool else np.zeros(n, dtype=bool)
            false_mask = a_false | b_false
            truthy = ~a_nan & (a != 0) & ~b_nan & (b != 0)
            result = truthy.astype(np.float64)
            result[(a_nan | b_nan) & ~false_mask] = np.nan
            stack.append((result, True))
            pc = arg
        elif op == OP_OR:
            a, _a_bool = stack.pop()
            ops += 1
            b, _b_bool, b_ops = _eval_span(code, pc, arg - 1, loads, names, n)
            a_nan = np.isnan(a)
            b_nan = np.isnan(b)
            a_true = ~a_nan & (a != 0)
            ops += np.where(a_true, 0, b_ops)
            true_mask = a_true | (~b_nan & (b != 0))
            result = true_mask.astype(np.float64)
            result[(a_nan | b_nan) & ~true_mask] = np.nan
            stack.append((result, True))
            pc = arg
        elif op == OP_NEG:
            a, _ = stack.pop()
            ops += 1
            stack.append((-a, False))
        elif op == OP_NOT:
            a, _ = stack.pop()
            ops += 1
            raw = (a == 0).astype(np.float64)
            raw[np.isnan(a)] = np.nan
            stack.append((raw, True))
        elif op == OP_ABS:
            a, _ = stack.pop()
            ops += 1
            stack.append((np.abs(a), False))
        elif op == OP_MINMAX:
            count, name = arg
            columns = [entry[0] for entry in stack[-count:]]
            del stack[-count:]
            ops += count
            reducer = np.minimum if name == "min" else np.maximum
            result = columns[0]
            for column in columns[1:]:
                result = reducer(result, column)  # NaN propagates
            stack.append((result, False))
        elif op == OP_CLAMP:
            hi_col, _ = stack.pop()
            lo_col, _ = stack.pop()
            value, _ = stack.pop()
            ops += 2
            stack.append(
                (np.maximum(lo_col, np.minimum(hi_col, value)), False))
        else:  # pragma: no cover - JOIN ops are skipped via the jump
            raise RuntimeError(
                "unexpected opcode {} in columnar span".format(op))
    top_value, top_bool = stack[-1]
    return top_value, top_bool, ops


__all__ = [
    "ColumnarError",
    "VmProgram",
    "compile_to_vm",
    "eval_columns",
    "execute",
]

"""Rule-expression compilation and evaluation."""

from repro.core.expr.compile import EvalContext, compile_expression, static_cost

__all__ = ["EvalContext", "compile_expression", "static_cost"]

"""Rule-expression compilation and evaluation.

Two backends share one source language: the closure compiler
(:func:`compile_expression`, the reference implementation) and the
bytecode VM (:func:`compile_to_vm`), which adds a columnar batch
evaluator (:func:`eval_columns`).
"""

from repro.core.expr.compile import EvalContext, compile_expression, static_cost
from repro.core.expr.vm import VmProgram, compile_to_vm, eval_columns

__all__ = [
    "EvalContext",
    "VmProgram",
    "compile_expression",
    "compile_to_vm",
    "eval_columns",
    "static_cost",
]

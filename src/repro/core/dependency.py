"""Dependency-tracked property checking (§6).

"Another interesting area ... is the potential to improve over
trigger-based periodic checking by tracking a minimal set of data
dependencies, enabling such properties to be automatically checked only
when relevant system state changes."

:func:`rule_load_keys` statically extracts the feature-store keys a
guardrail's rules LOAD — the rule's exact read set, thanks to the closed
expression language.  :class:`DependencyTrigger` subscribes to store
changes and fires the monitor only when one of those keys (or a key it is
derived from) changes, instead of on a timer.  ``min_spacing`` bounds the
worst-case check rate the way the verifier's minimum TIMER interval does.
"""

from repro.core.spec import ast as A
from repro.core.triggers import Trigger


def expression_load_keys(expr):
    """All LOAD keys appearing in one expression."""
    keys = set()
    _walk(expr, keys)
    return keys


def _walk(expr, keys):
    if isinstance(expr, A.Load):
        keys.add(expr.key)
    elif isinstance(expr, A.Aggregate):
        # An aggregate reads its derived key, whose version bumps whenever
        # the source key is saved — watching it is sufficient.
        keys.add(expr.derived_name())
    elif isinstance(expr, A.UnaryOp):
        _walk(expr.operand, keys)
    elif isinstance(expr, A.BinaryOp):
        _walk(expr.left, keys)
        _walk(expr.right, keys)
    elif isinstance(expr, A.Call):
        for arg in expr.args:
            _walk(arg, keys)


def rule_load_keys(spec):
    """The read set of a guardrail spec's rules."""
    keys = set()
    for rule in spec.rules:
        keys |= expression_load_keys(rule.expression)
    return keys


class DependencyTrigger(Trigger):
    """Fires when any watched feature-store key changes.

    Derived keys (e.g. ``false_submit_rate``) change when their source key
    is saved; the store bumps the derived key's version on source saves, so
    watching the derived key's name is sufficient.
    """

    def __init__(self, keys, min_spacing=0):
        self.keys = set(keys)
        self.min_spacing = min_spacing
        self._unsubscribe = None
        self._fire = None
        self._last_fired = None
        self.change_count = 0
        self.fire_count = 0
        self.suppressed_count = 0

    def arm(self, host, fire):
        if self._unsubscribe is not None:
            raise RuntimeError("dependency trigger is already armed")
        self._fire = fire
        self._host = host
        self._unsubscribe = host.store.subscribe(self._on_change)

    def _on_change(self, key, value, now):
        if key not in self.keys:
            return
        self.change_count += 1
        if (self.min_spacing and self._last_fired is not None
                and now - self._last_fired < self.min_spacing):
            self.suppressed_count += 1
            return
        self._last_fired = now
        self.fire_count += 1
        self._fire({"changed_key": key})

    def disarm(self):
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._fire = None

    @property
    def armed(self):
        return self._unsubscribe is not None


def convert_to_dependency_triggered(monitor, min_spacing=0):
    """Swap a loaded monitor's triggers for one dependency trigger.

    Returns the new trigger.  The monitor keeps its rules, actions, and
    stats; only the "when to check" changes — exactly the decoupling §4.1
    argues for.
    """
    keys = rule_load_keys(monitor.compiled.spec)
    was_enabled = monitor.enabled
    monitor.disarm()
    trigger = DependencyTrigger(keys, min_spacing=min_spacing)
    monitor.triggers = [trigger]
    if was_enabled:
        monitor.arm()
    return trigger

"""Runtime triggers: when a monitor evaluates its rules (§4.1).

Triggers are deliberately decoupled from rules — the same rule can be
checked periodically (TIMER, cheap, bounded overhead, delayed detection) or
on every call of a kernel function (FUNCTION, immediate, per-call cost).
"""


class Trigger:
    """Base runtime trigger; subclasses arm against a monitor host."""

    def arm(self, host, fire):
        """Start delivering ``fire(payload)`` callbacks.  Returns nothing."""
        raise NotImplementedError

    def disarm(self):
        """Stop delivering callbacks.  Idempotent."""
        raise NotImplementedError

    @property
    def armed(self):
        raise NotImplementedError


class TimerTrigger(Trigger):
    """Fire every ``interval`` ns, from ``start`` until ``stop``.

    ``start`` is absolute virtual time; ``None`` means "when armed".
    ``stop=None`` means never stop.  The payload carries the tick time and
    index so rules can reference them.
    """

    def __init__(self, interval, start=None, stop=None):
        if interval <= 0:
            raise ValueError("interval must be positive, got {}".format(interval))
        self.interval = int(interval)
        self.start = start
        self.stop = stop
        self._event = None
        self._host = None
        self._fire = None
        self.tick_count = 0

    def arm(self, host, fire):
        if self._event is not None:
            raise RuntimeError("timer trigger is already armed")
        self._host = host
        self._fire = fire
        first = self._host.engine.now if self.start is None else max(
            self.start, self._host.engine.now
        )
        # First check happens one interval after start: an "every 1s" check
        # has nothing to look at at t=start.
        self._event = host.engine.schedule_at(first + self.interval, self._tick)

    def _tick(self):
        # Keep the fired event around: re-arming reuses the same object via
        # the engine's allocation-free reschedule lane (periodic timers are
        # the dominant source of heap churn in long runs).
        event, self._event = self._event, None
        now = self._host.engine.now
        if self.stop is not None and now > self.stop:
            return
        self.tick_count += 1
        self._fire({"tick": self.tick_count, "tick_time": now})
        if self._fire is None or self._event is not None:
            return  # disarmed (or disarmed and re-armed) from inside the check
        next_time = now + self.interval
        if self.stop is not None and next_time > self.stop:
            return
        self._event = self._host.engine.reschedule(event, next_time)

    def disarm(self):
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._fire = None

    @property
    def armed(self):
        return self._fire is not None

    def __repr__(self):
        return "TimerTrigger(interval={}, start={}, stop={})".format(
            self.interval, self.start, self.stop
        )


class FunctionTrigger(Trigger):
    """Fire on every call of a named kernel hook point (kprobe-style)."""

    def __init__(self, function_name):
        self.function_name = function_name
        self._probe = None
        self._fire = None
        self.call_count = 0

    def arm(self, host, fire):
        if self._probe is not None:
            raise RuntimeError("function trigger is already armed")
        point = host.hooks.get(self.function_name)
        self._fire = fire
        self._probe = point.attach(self._on_call, name="guardrail:" + self.function_name)

    def _on_call(self, hook_name, now, payload):
        fire = self._fire
        if fire is None:
            # A stale probe delivering through the hooks' deferred-removal
            # path must not call into a disarmed monitor.
            return
        self.call_count += 1
        enriched = dict(payload)
        enriched.setdefault("hook", hook_name)
        fire(enriched)

    def disarm(self):
        if self._probe is not None:
            self._probe.detach()
            self._probe = None
        self._fire = None

    @property
    def armed(self):
        return self._probe is not None

    def __repr__(self):
        return "FunctionTrigger({!r})".format(self.function_name)

"""The function table: named, swappable policy slots.

The paper's A2 action is ``REPLACE(old_function_ptr, new_function_ptr)`` —
swap a misbehaving learned policy for a known-safe fallback.  In a real
kernel this would patch a function pointer (e.g. a struct ops entry); here
subsystems call through a named slot in a :class:`FunctionTable`, and
REPLACE rebinds the slot.

Slots remember their original binding so a later ``restore`` (e.g. after
retraining completes) can re-enable the learned policy.
"""

from repro.core.errors import ActionError


class FunctionSlot:
    """One indirection point.  ``current`` is what callers actually invoke."""

    __slots__ = ("name", "original", "current", "swap_count")

    def __init__(self, name, implementation):
        self.name = name
        self.original = implementation
        self.current = implementation
        self.swap_count = 0

    def __call__(self, *args, **kwargs):
        return self.current(*args, **kwargs)

    @property
    def replaced(self):
        return self.current is not self.original


class FunctionTable:
    """Named slots plus a registry of candidate implementations."""

    def __init__(self):
        self._slots = {}
        self._implementations = {}

    def register(self, name, implementation):
        """Create slot ``name`` bound to ``implementation``; returns the slot."""
        if name in self._slots:
            raise ActionError("function slot {!r} already registered".format(name))
        slot = FunctionSlot(name, implementation)
        self._slots[name] = slot
        self._implementations[name] = implementation
        return slot

    def register_implementation(self, name, implementation):
        """Register a swap candidate that is not itself a call-through slot."""
        if name in self._implementations:
            raise ActionError("implementation {!r} already registered".format(name))
        self._implementations[name] = implementation

    def slot(self, name):
        try:
            return self._slots[name]
        except KeyError:
            known = ", ".join(sorted(self._slots)) or "<none>"
            raise ActionError(
                "unknown function slot {!r}; known slots: {}".format(name, known)
            ) from None

    def __contains__(self, name):
        return name in self._slots

    def resolve_implementation(self, name):
        if name in self._implementations:
            return self._implementations[name]
        raise ActionError("unknown implementation {!r}".format(name))

    def replace(self, old, new):
        """Rebind slot ``old`` to the implementation registered as ``new``."""
        slot = self.slot(old)
        implementation = self.resolve_implementation(new)
        slot.current = implementation
        slot.swap_count += 1
        return slot

    def restore(self, name):
        """Rebind slot ``name`` to its original implementation."""
        slot = self.slot(name)
        slot.current = slot.original
        return slot

    def names(self):
        return sorted(self._slots)

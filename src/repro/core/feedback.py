"""Guardrail feedback-loop (oscillation) detection (§6).

"Deploying multiple guardrails in the kernel — each monitoring a different
property — can create feedback loops, where preventing one violation
triggers another, causing the system to oscillate between violation
states."

The :class:`FeedbackDetector` watches action notes from the violation
reporter and flags two oscillation signatures:

- **key flapping** — the same feature-store key SAVEd with alternating
  values by guardrail actions (e.g. ``ml_enabled`` toggling);
- **action ping-pong** — two guardrails interleaving action dispatches
  within a window, each apparently undoing the other.

Detection is passive; ``dampen`` applies the standard mitigation of
disabling the younger guardrail of an oscillating pair so an operator can
break the loop without a reboot.
"""

import collections


class OscillationReport:
    def __init__(self, kind, subjects, count, window):
        self.kind = kind          # 'key-flapping' | 'action-ping-pong'
        self.subjects = subjects  # (key,) or (guardrail_a, guardrail_b)
        self.count = count        # alternations observed in the window
        self.window = window

    def __repr__(self):
        return "OscillationReport({}, {}, count={})".format(
            self.kind, self.subjects, self.count
        )


class FeedbackDetector:
    """Scans reporter notes for oscillation signatures."""

    def __init__(self, host, window, min_alternations=4):
        self.host = host
        self.window = window
        self.min_alternations = min_alternations
        self._scanned = 0

    def scan(self):
        """Analyze all notes so far; returns a list of reports."""
        notes = self.host.reporter.notes
        now = self.host.engine.now
        cutoff = now - self.window
        recent = [n for n in notes if n["time"] >= cutoff]
        reports = []
        reports.extend(self._scan_key_flapping(recent))
        reports.extend(self._scan_ping_pong(recent))
        self._scanned = len(notes)
        return reports

    def _scan_key_flapping(self, notes):
        # SAVE notes record "key = value"; flapping = the same key written
        # with a value different from its previous write, repeatedly.
        writes = collections.defaultdict(list)  # key -> [(time, value, guardrail)]
        for note in notes:
            if note["kind"] != "SAVE":
                continue
            key, _, value = note["detail"].partition(" = ")
            writes[key].append((note["time"], value, note["guardrail"]))
        reports = []
        for key, events in writes.items():
            alternations = sum(
                1 for (_, prev, _), (_, cur, _) in zip(events, events[1:])
                if prev != cur
            )
            if alternations >= self.min_alternations:
                guardrails = tuple(sorted({g for _, _, g in events}))
                reports.append(OscillationReport(
                    "key-flapping", (key,) + guardrails, alternations, self.window
                ))
        return reports

    def _scan_ping_pong(self, notes):
        # Interleaved non-REPORT actions from two guardrails: A B A B ...
        actions = [
            (n["time"], n["guardrail"]) for n in notes if n["kind"] != "REPORT"
        ]
        transitions = collections.Counter()
        for (_, a), (_, b) in zip(actions, actions[1:]):
            if a != b:
                transitions[tuple(sorted((a, b)))] += 1
        reports = []
        for pair, count in transitions.items():
            if count >= self.min_alternations:
                reports.append(OscillationReport(
                    "action-ping-pong", pair, count, self.window
                ))
        return reports

    def dampen(self, manager, report):
        """Break the loop: disarm the most recently loaded involved guardrail."""
        involved = [name for name in report.subjects if name in manager]
        if not involved:
            return None
        # monitors() preserves load order; the last-loaded one is the victim.
        ordered = [m.name for m in manager.monitors() if m.name in involved]
        victim = ordered[-1]
        manager.disable(victim)
        self.host.reporter.note("DAMPEN", victim, self.host.engine.now,
                                detail="disabled to break {}".format(report.kind))
        return victim

"""The guardrail manager: incremental deployment and runtime update (§3.3, §6).

A :class:`GuardrailManager` owns every monitor loaded into one (simulated)
kernel.  Guardrails can be added incrementally while the system runs,
enabled/disabled, and *updated in place* — replacing a loaded guardrail with
a recompiled version without restarting the kernel, the paper's
"update guardrails at runtime without requiring a kernel reboot".
"""

from repro.core.compiler import CompiledGuardrail, GuardrailCompiler
from repro.core.errors import GuardrailError


class GuardrailManager:
    def __init__(self, host, compiler=None):
        self.host = host
        self.compiler = compiler if compiler is not None else GuardrailCompiler()
        self._monitors = {}
        self.load_count = 0
        self.update_count = 0

    def load(self, guardrail, arm=True, cooldown=0):
        """Compile (if needed) and load a guardrail; returns its monitor.

        ``guardrail`` may be DSL text, a parsed spec, or an already compiled
        :class:`CompiledGuardrail`.
        """
        compiled = self._ensure_compiled(guardrail, cooldown)
        if compiled.name in self._monitors:
            raise GuardrailError(
                "guardrail {!r} is already loaded; use update() to replace it"
                .format(compiled.name)
            )
        monitor = compiled.instantiate(self.host)
        self._monitors[compiled.name] = monitor
        self.load_count += 1
        if arm:
            monitor.arm()
        return monitor

    def load_all(self, text, arm=True):
        """Load every guardrail block in a DSL file; returns the monitors."""
        from repro.core.spec import parse_guardrails

        return [self.load(spec, arm=arm) for spec in parse_guardrails(text)]

    def update(self, guardrail, arm=True, cooldown=0):
        """Replace a loaded guardrail with a recompiled version, no reboot.

        The old monitor is disarmed first so there is no window where both
        versions fire.  Violation history does not carry over.
        """
        compiled = self._ensure_compiled(guardrail, cooldown)
        old = self._monitors.get(compiled.name)
        if old is None:
            raise GuardrailError(
                "guardrail {!r} is not loaded; use load()".format(compiled.name)
            )
        old.disarm()
        monitor = compiled.instantiate(self.host)
        self._monitors[compiled.name] = monitor
        self.update_count += 1
        if arm:
            monitor.arm()
        return monitor

    def unload(self, name):
        """Disarm and remove a guardrail."""
        monitor = self.get(name)
        monitor.disarm()
        del self._monitors[name]
        return monitor

    def get(self, name):
        try:
            return self._monitors[name]
        except KeyError:
            known = ", ".join(sorted(self._monitors)) or "<none>"
            raise GuardrailError(
                "no loaded guardrail named {!r}; loaded: {}".format(name, known)
            ) from None

    def __contains__(self, name):
        return name in self._monitors

    def names(self):
        return sorted(self._monitors)

    def monitors(self):
        """Loaded monitors in load order (dict insertion order)."""
        return list(self._monitors.values())

    def enable(self, name):
        self.get(name).arm()

    def disable(self, name):
        self.get(name).disarm()

    def total_overhead_ns(self):
        return sum(m.overhead.simulated_ns for m in self._monitors.values())

    def total_violations(self):
        return sum(m.violation_count for m in self._monitors.values())

    def stats(self):
        return {name: self._monitors[name].stats() for name in self.names()}

    def _ensure_compiled(self, guardrail, cooldown):
        if isinstance(guardrail, CompiledGuardrail):
            return guardrail
        return self.compiler.compile(guardrail, cooldown=cooldown)

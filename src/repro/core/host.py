"""The monitor host: what compiled guardrails run against.

A :class:`MonitorHost` bundles the engine, hook registry, feature store,
function table, retrain queue, task controller, and violation reporter.  The
simulated kernel (:class:`repro.kernel.base.Kernel`) builds one of these;
unit tests can build a bare host without any kernel subsystems.
"""

import collections

from repro.core.featurestore import FeatureStore
from repro.core.functions import FunctionTable
from repro.faults.supervisor import MonitorSupervisor
from repro.sim.engine import Engine
from repro.sim.hooks import HookRegistry
from repro.trace.tracer import TRACER


class ViolationReporter:
    """Collects A1 REPORT records and one-line action notes.

    Bounded: keeps at most ``capacity`` full reports (oldest dropped) so a
    flapping guardrail cannot exhaust memory — the in-kernel analogue would
    be a fixed ring buffer.  Backed by ``deque(maxlen=capacity)`` so
    at-capacity eviction is O(1); a plain list's ``pop(0)`` shifts all
    10k entries on every report once the buffer fills, which is a real cost
    on the hot report path.
    """

    def __init__(self, capacity=10_000):
        self._capacity = capacity
        self.reports = collections.deque(maxlen=capacity)
        self.notes = collections.deque(maxlen=capacity)
        self.dropped = 0

    @property
    def capacity(self):
        return self._capacity

    @capacity.setter
    def capacity(self, value):
        # Re-bound both rings; a shrink evicts oldest-first and counts them.
        self.dropped += max(0, len(self.reports) - value)
        self.dropped += max(0, len(self.notes) - value)
        self._capacity = value
        self.reports = collections.deque(self.reports, maxlen=value)
        self.notes = collections.deque(self.notes, maxlen=value)

    def report(self, guardrail, rule, time, payload, store_snapshot, extras):
        record = {
            "guardrail": guardrail,
            "rule": rule,
            "time": time,
            "payload": payload,
            "store": store_snapshot,
            "extras": extras,
        }
        if len(self.reports) == self.capacity:
            self.dropped += 1
        self.reports.append(record)

    def note(self, kind, guardrail, time, detail=""):
        if len(self.notes) == self.capacity:
            self.dropped += 1
        self.notes.append({
            "kind": kind,
            "guardrail": guardrail,
            "time": time,
            "detail": detail,
        })

    def reports_for(self, guardrail):
        return [r for r in self.reports if r["guardrail"] == guardrail]

    def notes_for(self, kind=None, guardrail=None):
        out = self.notes
        if kind is not None:
            out = [n for n in out if n["kind"] == kind]
        if guardrail is not None:
            out = [n for n in out if n["guardrail"] == guardrail]
        return out


class RetrainQueue:
    """Asynchronous retraining requests with per-model rate limiting (§3.2)."""

    def __init__(self, min_interval=0):
        self.min_interval = min_interval
        self.pending = []
        self.accepted_count = 0
        self.rejected_count = 0
        self._last_accepted = {}
        self._trainers = {}

    def register_trainer(self, model, trainer):
        """``trainer(request)`` runs when the request is drained."""
        self._trainers[model] = trainer

    def request(self, model, now, data_ref=None, requested_by=None):
        """Enqueue a retrain; returns False when rate-limited."""
        last = self._last_accepted.get(model)
        if last is not None and now - last < self.min_interval:
            self.rejected_count += 1
            if TRACER.active:
                TRACER.emit("retrain", "request", now, guardrail=requested_by,
                            args={"model": model, "accepted": False})
            return False
        if TRACER.active:
            TRACER.emit("retrain", "request", now, guardrail=requested_by,
                        args={"model": model, "accepted": True})
        self._last_accepted[model] = now
        self.accepted_count += 1
        self.pending.append({
            "model": model,
            "time": now,
            "data_ref": data_ref,
            "requested_by": requested_by,
        })
        return True

    def drain(self):
        """Run every pending request through its trainer (offline step)."""
        completed = []
        pending, self.pending = self.pending, []
        for request in pending:
            trainer = self._trainers.get(request["model"])
            if trainer is not None:
                trainer(request)
            completed.append(request)
        return completed


class NullTaskController:
    """Default A4 target when no scheduler is attached: records requests."""

    def __init__(self):
        self.requests = []

    def deprioritize(self, targets, priorities):
        self.requests.append((list(targets), list(priorities)))


class MonitorHost:
    """Everything a guardrail monitor needs from the surrounding system."""

    def __init__(self, engine=None, hooks=None, store=None, functions=None,
                 retrain_queue=None, task_controller=None, reporter=None,
                 supervisor=None):
        self.engine = engine if engine is not None else Engine()
        self.hooks = hooks if hooks is not None else HookRegistry(self.engine)
        self.store = store if store is not None else FeatureStore(
            clock=lambda: self.engine.now
        )
        self.functions = functions if functions is not None else FunctionTable()
        self.retrain_queue = retrain_queue if retrain_queue is not None else RetrainQueue()
        self.task_controller = (
            task_controller if task_controller is not None else NullTaskController()
        )
        self.reporter = reporter if reporter is not None else ViolationReporter()
        # Crash-only containment: monitors report crashing rules/actions
        # here; the supervisor trips per-guardrail circuit breakers.
        self.supervisor = (
            supervisor if supervisor is not None else MonitorSupervisor(self)
        )
